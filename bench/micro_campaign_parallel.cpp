// Campaign parallelism micro-bench: the same cell grid run sequentially
// (jobs=1) and on the thread pool, reporting wall-clock speedup and
// verifying that the two summary CSVs are byte-identical — the determinism
// contract that lets a parallel sweep replace the sequential driver.
//
// Exit status: 0 when the parallel run reproduced the sequential CSV
// exactly, 1 otherwise.
#include <chrono>
#include <iostream>

#include "core/campaign.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/thread_pool.h"

namespace {

struct TimedRun {
  double seconds = 0.0;
  std::string csv;
};

TimedRun time_campaign(wfs::core::CampaignSpec spec, std::size_t jobs) {
  spec.jobs = jobs;
  wfs::core::Campaign campaign(std::move(spec));
  const auto start = std::chrono::steady_clock::now();
  campaign.run();
  const auto stop = std::chrono::steady_clock::now();
  TimedRun run;
  run.seconds = std::chrono::duration<double>(stop - start).count();
  run.csv = campaign.summary_csv();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("micro_campaign_parallel",
                         "sequential vs pooled campaign: speedup + equivalence");
  cli.add_flag("jobs", "0", "pool width for the parallel run (0 = all cores)");
  cli.add_flag("tasks", "40", "workflow size per cell");
  if (!cli.parse(argc, argv)) return 1;
  const auto jobs_flag = static_cast<std::size_t>(cli.get_int("jobs"));
  const std::size_t jobs =
      jobs_flag == 0 ? support::ThreadPool::default_workers() : jobs_flag;

  core::CampaignSpec spec;
  spec.paradigms = {core::Paradigm::kKn10wNoPM, core::Paradigm::kLC10wNoPM};
  spec.recipes = {"blast", "seismology", "cycles"};
  spec.sizes = {static_cast<std::size_t>(cli.get_int("tasks")),
                static_cast<std::size_t>(cli.get_int("tasks")) * 2};
  const std::size_t cells = spec.cell_count();

  std::cout << "micro_campaign_parallel — shared-pool campaign runner\n";
  std::cout << "=====================================================\n\n";
  std::cout << support::format("grid: {} cells; parallel width: {} workers\n\n", cells,
                               jobs);

  const TimedRun sequential = time_campaign(spec, 1);
  std::cout << support::format("jobs=1:  {:.2f} s wall\n", sequential.seconds);
  const TimedRun parallel = time_campaign(spec, jobs);
  std::cout << support::format("jobs={}: {:.2f} s wall\n", jobs, parallel.seconds);

  const double speedup =
      parallel.seconds > 0.0 ? sequential.seconds / parallel.seconds : 0.0;
  std::cout << support::format("speedup: {:.2f}x over {} cells\n", speedup, cells);

  if (parallel.csv != sequential.csv) {
    std::cout << "FAILED: parallel summary CSV differs from the sequential run\n";
    return 1;
  }
  std::cout << "result equivalence: parallel summary CSV is byte-identical\n";
  if (jobs > 1 && speedup < 1.1) {
    std::cout << "note: speedup below 1.1x — cells too small or machine loaded\n";
  }
  return 0;
}
