// Figure 4 reproduction: comparison between setups of the serverless
// computational paradigm.
//
// Paper layout: x-axis = {Kn1wPM, Kn1wNoPM, Kn10wNoPM}, colours = workflow
// sizes, facets = {execution time, power, CPU, memory} x {Blast,
// Epigenomics} (the two representative families). Expected shape (§V-B):
// 10wNoPM slightly improves execution time, power and memory, with less
// optimal CPU usage — the most balanced setup, picked for Figure 7.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace wfs;

  std::cout << "Figure 4 — serverless (Knative) paradigm setups\n";
  std::cout << "===============================================\n\n";

  const std::vector<core::Paradigm> paradigms = {
      core::Paradigm::kKn1wPM, core::Paradigm::kKn1wNoPM, core::Paradigm::kKn10wNoPM};
  const std::vector<std::string> recipes = {"blast", "epigenomics"};
  const std::vector<std::size_t> sizes = {50, 200};

  const bench::SweepResult sweep = bench::run_sweep(paradigms, recipes, sizes);
  bench::print_metric_charts(sweep, paradigms, recipes, sizes);

  // The paper's conclusion from this figure.
  std::cout << "\nconclusions vs Kn1wNoPM (per workflow, large size):\n";
  for (const std::string& recipe : recipes) {
    const core::ExperimentResult* one =
        bench::find_result(sweep, core::Paradigm::kKn1wNoPM, recipe, 200);
    const core::ExperimentResult* ten =
        bench::find_result(sweep, core::Paradigm::kKn10wNoPM, recipe, 200);
    if (one != nullptr && ten != nullptr) {
      std::cout << core::delta_row(support::format("Kn10wNoPM vs Kn1wNoPM [{}]", recipe),
                                   core::compare(*ten, *one));
    }
  }
  return 0;
}
