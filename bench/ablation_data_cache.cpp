// Ablation: node-local data cache + locality-aware placement.
//
// Sweeps cache capacity {off, 64 MB, 256 MB} x cache_aware_placement
// {off, on} x data backend {shared drive, object store} over the seven
// WfCommons recipes (Kn10wNoPM, 100 tasks). The cache is write-through, so
// correctness is unchanged; the interesting columns are the hit rate and
// how many bytes never reach the backing store. Locality-aware placement
// steers pods to the node that already holds their inputs, so "on" should
// dominate "off" at equal capacity whenever a workflow re-reads data.
#include <cstdint>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "support/format.h"
#include "wfcommons/recipes/recipe.h"

namespace {

struct CacheCell {
  std::uint64_t cache_mb = 0;
  bool placement = false;
  const char* label = "";
};

}  // namespace

int main() {
  using namespace wfs;

  constexpr CacheCell kCells[] = {
      {0, false, "off"},         {64, false, "64M/any"},  {64, true, "64M/local"},
      {256, false, "256M/any"},  {256, true, "256M/local"},
  };

  std::cout << "Ablation — node-local data cache (Kn10wNoPM, 100 tasks)\n";
  std::cout << "=======================================================\n\n";

  for (const core::DataBackend backend :
       {core::DataBackend::kSharedDrive, core::DataBackend::kObjectStore}) {
    const char* backend_name =
        backend == core::DataBackend::kSharedDrive ? "shared-drive" : "object-store";
    std::cout << support::format("backend: {}\n", backend_name);
    std::cout << support::format("{:<14}{:<12}{:>10}{:>10}{:>14}{:>14}{:>10}\n", "recipe",
                                 "cache", "time_s", "hit_rate", "backing_rd_MB", "saved_MB",
                                 "locality");
    for (const std::string& recipe : wfcommons::recipe_names()) {
      for (const CacheCell& cell : kCells) {
        core::ExperimentConfig config;
        config.paradigm = core::Paradigm::kKn10wNoPM;
        config.recipe = recipe;
        config.num_tasks = 100;
        config.backend = backend;
        config.data_cache_mb_per_node = cell.cache_mb;
        config.cache_aware_placement = cell.placement;
        core::ExperimentResult result = core::run_experiment(config);
        std::cout << support::format(
            "{:<14}{:<12}{:>10.1f}{:>10.3f}{:>14.1f}{:>14.1f}{:>10}\n", recipe, cell.label,
            result.makespan_seconds, result.cache_hit_rate,
            static_cast<double>(result.storage_bytes_read) / 1.0e6,
            static_cast<double>(result.cache_bytes_saved) / 1.0e6,
            result.locality_placements);
      }
      std::cout << "\n";
    }
  }
  std::cout << "note: cache off is the exact pre-cache code path (the decorator is\n"
               "not constructed); hit_rate > 0 with reduced backing_rd_MB vs off\n"
               "shows the node-local cache absorbing re-reads, and the locality\n"
               "column counts placements steered by cached input bytes.\n";
  return 0;
}
