// Figure 3 reproduction: workflow characterisation.
//
// For each of the seven families the paper's Figure 3 shows (a) the DAG,
// (b) the number of functions per phase, and (c) the function counts by
// type. This binary prints the textual equivalents: per-phase composition,
// a phase-density bar chart, and a category histogram, plus the structural
// stats behind the paper's dense/layered grouping (§V-D).
#include <filesystem>
#include <fstream>
#include <iostream>

#include "metrics/ascii_chart.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/visualization.h"

int main(int argc, char** argv) {
  using namespace wfs;
  const std::size_t tasks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200;
  // Optional second argument: directory for Graphviz DOT files (the
  // artifact's generate_visualization.py outputs).
  const std::string dot_dir = argc > 2 ? argv[2] : "";
  if (!dot_dir.empty()) std::filesystem::create_directories(dot_dir);

  std::cout << "Figure 3 — workflow characterisation (" << tasks << "-task instances)\n";
  std::cout << "====================================================================\n\n";

  wfcommons::WorkflowGenerator generator;
  for (const std::string& family : wfcommons::recipe_names()) {
    const wfcommons::Workflow wf = generator.generate(family, tasks, 1);
    const wfcommons::DagStats stats = wfcommons::compute_stats(wf);

    std::cout << wfcommons::render_structure(wf);
    std::cout << support::format(
        "  stats: {} levels, max width {}, mean width {:.1f}, {} roots, {} leaves, "
        "{} categories, density {:.2f} -> {}\n",
        stats.levels, stats.max_width, stats.mean_width, stats.roots, stats.leaves,
        stats.categories, stats.density, wfcommons::to_string(wfcommons::classify(wf)));
    const wfcommons::CriticalPath cp = wfcommons::critical_path(wf);
    std::cout << support::format(
        "  critical path: {} tasks, {:.1f}s uncontended (the makespan floor)\n",
        cp.tasks.size(), cp.seconds);

    // (b) functions per phase.
    std::vector<metrics::Bar> phase_bars;
    const auto hist = wfcommons::phase_histogram(wf);
    for (std::size_t i = 0; i < hist.size(); ++i) {
      phase_bars.push_back({support::format("phase {:>2}", i), static_cast<double>(hist[i])});
    }
    metrics::BarChartOptions options;
    options.width = 40;
    options.unit = "functions";
    options.value_precision = 0;
    std::cout << metrics::bar_chart(phase_bars, options);

    // (c) functions by type.
    std::vector<metrics::Bar> category_bars;
    for (const auto& [category, count] : wfcommons::category_histogram(wf)) {
      category_bars.push_back({category, static_cast<double>(count)});
    }
    std::cout << metrics::bar_chart(category_bars, options) << "\n";

    if (!dot_dir.empty()) {
      const std::string path = dot_dir + "/" + wf.name() + ".dot";
      std::ofstream out(path);
      out << wfcommons::to_dot(wf);
      std::cout << "  wrote " << path << "\n\n";
    }
  }
  return 0;
}
