// Micro-benchmarks: the JSON substrate (parse/serialize throughput on
// workflow-shaped documents).
#include <benchmark/benchmark.h>

#include "json/parse.h"
#include "json/write.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/wfformat.h"

namespace {

std::string workflow_text(std::size_t tasks) {
  wfs::wfcommons::WorkflowGenerator generator;
  wfs::wfcommons::Workflow wf = generator.generate("blast", tasks, 1);
  wfs::wfcommons::KnativeTranslator().apply(wf);
  return wfs::wfcommons::write_workflow(wf, wfs::wfcommons::ArgsStyle::kKeyValue);
}

void BM_JsonParseWorkflow(benchmark::State& state) {
  const std::string text = workflow_text(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::json::parse(text));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * text.size()));
}
BENCHMARK(BM_JsonParseWorkflow)->Arg(50)->Arg(250)->Arg(1000);

void BM_JsonWriteCompact(benchmark::State& state) {
  const wfs::json::Value doc = wfs::json::parse(workflow_text(250));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::json::write_compact(doc));
  }
}
BENCHMARK(BM_JsonWriteCompact);

void BM_JsonWritePretty(benchmark::State& state) {
  const wfs::json::Value doc = wfs::json::parse(workflow_text(250));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::json::write_pretty(doc));
  }
}
BENCHMARK(BM_JsonWritePretty);

void BM_JsonRoundTrip(benchmark::State& state) {
  const std::string text = workflow_text(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::json::write_compact(wfs::json::parse(text)));
  }
}
BENCHMARK(BM_JsonRoundTrip);

}  // namespace
