// Metrics hot-path micro-bench: per-operation cost of counter-inc and
// histogram-observe through the handle API, in both states a call site can
// be in — metrics enabled (handle resolved) and metrics off (handle is
// nullptr, the one-branch no-op path every instrumented component takes
// when no registry is attached).
//
// The no-op path is the always-paid tax, so it gets hard assertions:
//  * it must allocate nothing (global operator new/delete are intercepted);
//  * it must cost on the order of a branch (budget: 5 ns/op, with slack
//    for noisy CI machines via --noop-budget-ns).
//
// Exit status: 0 when the no-op path held its budget and stayed
// allocation-free, 1 otherwise.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <new>

#include "metrics/registry.h"
#include "support/cli.h"
#include "support/format.h"

namespace {

// Global allocation counter: every operator new lands here, so a window of
// zero delta proves the measured loop never touched the heap.
std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct Measurement {
  double ns_per_op = 0.0;
  std::uint64_t allocations = 0;
};

/// Times `op` over `iterations` calls and counts heap allocations inside
/// the window. `op` must return a value that depends on its work so the
/// loop cannot be optimised away; the accumulated result is sunk into a
/// volatile.
template <typename Op>
Measurement measure(std::size_t iterations, Op&& op) {
  const std::uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  const auto start = std::chrono::steady_clock::now();
  double sink = 0.0;
  for (std::size_t i = 0; i < iterations; ++i) sink += op(i);
  const auto stop = std::chrono::steady_clock::now();
  static volatile double g_sink;
  g_sink = sink;
  Measurement m;
  m.ns_per_op = std::chrono::duration<double, std::nano>(stop - start).count() /
                static_cast<double>(iterations);
  m.allocations = g_allocations.load(std::memory_order_relaxed) - allocs_before;
  return m;
}

void print_row(const char* label, const Measurement& m) {
  std::cout << wfs::support::format("{:<28} {:>8.2f} ns/op   {:>6} allocations\n", label,
                                    m.ns_per_op, m.allocations);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("micro_metrics",
                         "per-op cost of counter-inc / histogram-observe, on and off");
  cli.add_flag("iterations", "2000000", "operations per measured loop");
  cli.add_flag("noop-budget-ns", "5", "max ns/op allowed for the no-op path");
  if (!cli.parse(argc, argv)) return 1;
  const auto iterations = static_cast<std::size_t>(cli.get_int("iterations"));
  const double noop_budget = static_cast<double>(cli.get_int("noop-budget-ns"));

  std::cout << "micro_metrics — handle-based metrics hot path\n";
  std::cout << "=============================================\n\n";
  std::cout << support::format("{} iterations per loop, no-op budget {:g} ns/op\n\n",
                               iterations, noop_budget);

  metrics::MetricsRegistry registry;
  metrics::Counter& counter =
      registry.counter("bench_ops_total", "bench counter", {{"site", "hot"}});
  metrics::Histogram& histogram =
      registry.histogram("bench_op_seconds", "bench histogram", {{"site", "hot"}});

  // The shape every instrumented component uses: a plain pointer that is
  // nullptr when no registry is attached. `volatile` keeps the compiler
  // from folding the null check away, preserving the per-call branch.
  metrics::Counter* const counter_handles[2] = {nullptr, &counter};
  metrics::Histogram* const histogram_handles[2] = {nullptr, &histogram};
  volatile int enabled = 0;

  enabled = 0;
  const Measurement counter_off = measure(iterations, [&](std::size_t) {
    metrics::Counter* handle = counter_handles[enabled];
    if (handle != nullptr) handle->inc();
    return 1.0;
  });
  enabled = 1;
  const Measurement counter_on = measure(iterations, [&](std::size_t) {
    metrics::Counter* handle = counter_handles[enabled];
    if (handle != nullptr) handle->inc();
    return 1.0;
  });
  enabled = 0;
  const Measurement histogram_off = measure(iterations, [&](std::size_t i) {
    metrics::Histogram* handle = histogram_handles[enabled];
    const double value = static_cast<double>(i & 1023) * 1e-3;
    if (handle != nullptr) handle->observe(value);
    return value;
  });
  enabled = 1;
  const Measurement histogram_on = measure(iterations, [&](std::size_t i) {
    metrics::Histogram* handle = histogram_handles[enabled];
    const double value = static_cast<double>(i & 1023) * 1e-3;
    if (handle != nullptr) handle->observe(value);
    return value;
  });

  print_row("counter inc (no-op)", counter_off);
  print_row("counter inc (enabled)", counter_on);
  print_row("histogram observe (no-op)", histogram_off);
  print_row("histogram observe (enabled)", histogram_on);

  std::cout << support::format(
      "\nenabled totals: counter={:g}, histogram count={} sum={:.1f}\n", counter.value(),
      histogram.count(), histogram.sum());

  bool ok = true;
  if (counter_off.allocations != 0 || histogram_off.allocations != 0) {
    std::cout << "FAILED: no-op path allocated on the heap\n";
    ok = false;
  }
  if (counter_on.allocations != 0 || histogram_on.allocations != 0) {
    std::cout << "FAILED: enabled path allocated on the heap\n";
    ok = false;
  }
  if (counter_off.ns_per_op > noop_budget || histogram_off.ns_per_op > noop_budget) {
    std::cout << support::format("FAILED: no-op path over budget ({:g} ns/op)\n",
                                 noop_budget);
    ok = false;
  }
  if (ok) std::cout << "no-op path: allocation-free and within budget\n";
  return ok ? 0 : 1;
}
