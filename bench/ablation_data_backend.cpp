// Ablation: workflow data backend — shared drive vs external object store
// (the paper's §VII future-work item "impacts of using external distributed
// data storage for managing scientific workflows").
//
// The shared drive has low per-op latency but congests when a wide phase
// writes at once; the object store pays a 15 ms request tax per I/O but
// scales out. Expect: I/O-light dense families barely notice; the
// data-heavier chains (srasearch moves multi-MB archives per task) shift.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"

int main() {
  using namespace wfs;

  std::cout << "Ablation — shared drive vs object store (Kn10wNoPM, 200 tasks)\n";
  std::cout << "==============================================================\n\n";
  std::cout << core::result_header();

  for (const std::string recipe : {"blast", "srasearch", "epigenomics"}) {
    core::ExperimentResult per_backend[2];
    int index = 0;
    for (const core::DataBackend backend :
         {core::DataBackend::kSharedDrive, core::DataBackend::kObjectStore}) {
      core::ExperimentConfig config;
      config.paradigm = core::Paradigm::kKn10wNoPM;
      config.recipe = recipe;
      config.num_tasks = 200;
      config.backend = backend;
      core::ExperimentResult result = core::run_experiment(config);
      result.paradigm_name =
          backend == core::DataBackend::kSharedDrive ? "shared-drive" : "object-store";
      std::cout << core::result_row(result);
      per_backend[index++] = std::move(result);
    }
    if (per_backend[0].ok() && per_backend[1].ok()) {
      std::cout << core::delta_row(support::format("object-store vs shared [{}]", recipe),
                                   core::compare(per_backend[1], per_backend[0]));
    }
    std::cout << "\n";
  }
  std::cout << "note: the WFM and the wfbench service are backend-agnostic — they\n"
               "program against storage::DataStore, so this sweep changes one enum.\n";
  return 0;
}
