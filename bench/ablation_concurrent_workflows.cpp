// Ablation: multiple concurrent workflows on one serverless platform — the
// paper's §VII expectation that "fine-grained resource management and the
// auto-scaling mechanism of serverless can improve ... resource usage when
// we consider the invocation of multiple concurrent functions by different
// workflows".
//
// Setup: the 4 dense group-1 families, 100 tasks each, on one shared
// deployment (core::run_fleet). Sequential = one after another (the
// figure-bench methodology); concurrent = all four started together.
// Both paradigms gain: interleaved phases fill the gaps each single
// workflow leaves. The baseline gains more wall time (its worker pools
// are huge and otherwise idle), while serverless gains are bounded by the
// replica ceiling — but serverless keeps its 4-7x resource advantage
// either way, which is the paper's §VII point.
#include <iostream>

#include "core/fleet.h"
#include "support/format.h"

int main() {
  using namespace wfs;
  std::cout << "Ablation — concurrent workflows on one shared platform\n";
  std::cout << "======================================================\n\n";

  const std::vector<core::FleetItem> suite = {
      {"blast", 100, 1}, {"bwa", 100, 2}, {"genome", 100, 3}, {"seismology", 100, 4}};

  const auto print = [](const char* label, const core::FleetResult& fleet) {
    std::cout << support::format(
        "{:<28} {}  wall {:>8.1f}s  mean cpu {:>6.2f}%  mean mem {:>7.2f} GiB  "
        "cold starts {}\n",
        label, fleet.ok() ? "ok    " : "FAILED", fleet.wall_seconds,
        fleet.cpu_percent.time_weighted_mean, fleet.memory_gib.time_weighted_mean,
        fleet.cold_starts);
  };

  core::FleetConfig config;
  config.items = suite;

  for (const core::Paradigm paradigm :
       {core::Paradigm::kKn10wNoPM, core::Paradigm::kLC10wNoPM}) {
    config.paradigm = paradigm;
    config.concurrent = false;
    const core::FleetResult sequential = core::run_fleet(config);
    config.concurrent = true;
    const core::FleetResult concurrent = core::run_fleet(config);
    print(support::format("{} sequential", core::to_string(paradigm)).c_str(), sequential);
    print(support::format("{} concurrent", core::to_string(paradigm)).c_str(), concurrent);
    std::cout << support::format(
        "  -> concurrency saves {:.1f}% wall time at {:.2f}x utilisation\n\n",
        (1.0 - concurrent.wall_seconds / sequential.wall_seconds) * 100.0,
        concurrent.cpu_percent.time_weighted_mean /
            sequential.cpu_percent.time_weighted_mean);
  }
  std::cout << "the §VII multi-workflow sharing effect: both paradigms interleave phases;\n"
               "the baseline recovers more wall time (its resident pools were idle),\n"
               "serverless keeps its large memory advantage while sharing.\n";
  return 0;
}
