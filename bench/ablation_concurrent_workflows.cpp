// Ablation: multiple concurrent workflows on one serverless platform — the
// paper's §VII expectation that "fine-grained resource management and the
// auto-scaling mechanism of serverless can improve ... resource usage when
// we consider the invocation of multiple concurrent functions by different
// workflows".
//
// Setup: the 4 dense group-1 families, 100 tasks each, on one shared
// deployment (core::run_fleet). Sequential = one after another (the
// figure-bench methodology); concurrent = all four started together.
// Both paradigms gain: interleaved phases fill the gaps each single
// workflow leaves. The baseline gains more wall time (its worker pools
// are huge and otherwise idle), while serverless gains are bounded by the
// replica ceiling — but serverless keeps its 4-7x resource advantage
// either way, which is the paper's §VII point.
#include <iostream>

#include "core/fleet.h"
#include "support/cli.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("ablation_concurrent_workflows",
                         "concurrent workflows on one shared platform");
  cli.add_flag("jobs", "0", "parallel fleet workers (0 = all cores, 1 = sequential)");
  if (!cli.parse(argc, argv)) return 1;
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  std::cout << "Ablation — concurrent workflows on one shared platform\n";
  std::cout << "======================================================\n\n";

  const std::vector<core::FleetItem> suite = {
      {"blast", 100, 1}, {"bwa", 100, 2}, {"genome", 100, 3}, {"seismology", 100, 4}};

  const auto print = [](const char* label, const core::FleetResult& fleet) {
    std::cout << support::format(
        "{:<28} {}  wall {:>8.1f}s  mean cpu {:>6.2f}%  mean mem {:>7.2f} GiB  "
        "cold starts {}\n",
        label, fleet.ok() ? "ok    " : "FAILED", fleet.wall_seconds,
        fleet.cpu_percent.time_weighted_mean, fleet.memory_gib.time_weighted_mean,
        fleet.cold_starts);
  };

  // The four fleets are independent simulations — run them as one sweep on
  // the thread pool; results come back in config order.
  const std::vector<core::Paradigm> paradigms = {core::Paradigm::kKn10wNoPM,
                                                 core::Paradigm::kLC10wNoPM};
  std::vector<core::FleetConfig> configs;
  for (const core::Paradigm paradigm : paradigms) {
    for (const bool concurrent : {false, true}) {
      core::FleetConfig config;
      config.items = suite;
      config.paradigm = paradigm;
      config.concurrent = concurrent;
      configs.push_back(std::move(config));
    }
  }
  const std::vector<core::FleetResult> fleets = core::run_fleets(configs, jobs);

  for (std::size_t p = 0; p < paradigms.size(); ++p) {
    const core::FleetResult& sequential = fleets[p * 2];
    const core::FleetResult& concurrent = fleets[p * 2 + 1];
    print(support::format("{} sequential", core::to_string(paradigms[p])).c_str(),
          sequential);
    print(support::format("{} concurrent", core::to_string(paradigms[p])).c_str(),
          concurrent);
    std::cout << support::format(
        "  -> concurrency saves {:.1f}% wall time at {:.2f}x utilisation\n\n",
        (1.0 - concurrent.wall_seconds / sequential.wall_seconds) * 100.0,
        concurrent.cpu_percent.time_weighted_mean /
            sequential.cpu_percent.time_weighted_mean);
  }
  std::cout << "the §VII multi-workflow sharing effect: both paradigms interleave phases;\n"
               "the baseline recovers more wall time (its resident pools were idle),\n"
               "serverless keeps its large memory advantage while sharing.\n";
  return 0;
}
