// Table II reproduction: the computational-paradigm nomenclature, plus the
// concrete deployment each label maps onto in this codebase (pods/containers,
// workers, requests/limits, autoscaling bounds).
#include <iostream>

#include "core/paradigm.h"
#include "support/format.h"
#include "support/strings.h"

int main() {
  using namespace wfs;

  std::cout << "Table II — computational paradigms\n";
  std::cout << "==================================\n\n";
  for (const core::Paradigm paradigm : core::all_paradigms()) {
    const core::ParadigmInfo& info = core::paradigm_info(paradigm);
    std::cout << support::format("{:<14} {}\n", info.name, info.description);
  }

  std::cout << "\nDeployment details (this reproduction)\n";
  std::cout << "--------------------------------------\n";
  for (const core::Paradigm paradigm : core::all_paradigms()) {
    const core::ParadigmInfo& info = core::paradigm_info(paradigm);
    if (info.serverless) {
      const auto spec = core::knative_spec_for(paradigm);
      std::cout << support::format(
          "{:<14} knative: {} workers/pod, cpu {}({} limit), mem req {}, scale {}..{}, "
          "cold start {:.1f}s, PM={}\n",
          info.name, spec.container.workers, spec.cpu_request, spec.cpu_limit,
          support::human_bytes(spec.memory_request), spec.min_scale, spec.max_scale,
          sim::to_seconds(spec.cold_start), spec.container.persistent_memory);
    } else {
      const auto config = core::local_config_for(paradigm);
      std::cout << support::format(
          "{:<14} local: {} container(s)/node, {} workers each, --cpus={}, --memory={}, "
          "PM={}\n",
          info.name, config.containers_per_node, config.container.service.workers,
          config.container.cpus,
          config.container.memory_limit == 0 ? std::string("none")
                                             : support::human_bytes(config.container.memory_limit),
          config.container.service.persistent_memory);
    }
  }
  return 0;
}
