// Micro-benchmarks: autoscaler decision path and kube-scheduler placement —
// the per-tick costs of the serverless control plane.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "faas/autoscaler.h"
#include "faas/kube_scheduler.h"
#include "faas/service_config.h"
#include "sim/simulation.h"

namespace {

void BM_AutoscalerObserveDecide(benchmark::State& state) {
  wfs::faas::AutoscalerConfig config;
  wfs::faas::Autoscaler scaler(config, 7.0, 0, 100);
  wfs::sim::SimTime now = 0;
  double concurrency = 0.0;
  for (auto _ : state) {
    now += 2 * wfs::sim::kSecond;
    concurrency = concurrency < 200.0 ? concurrency + 13.0 : 0.0;
    scaler.observe(now, concurrency);
    benchmark::DoNotOptimize(scaler.decide(now, 5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AutoscalerObserveDecide);

void BM_SchedulerPlacement(benchmark::State& state) {
  wfs::sim::Simulation sim;
  wfs::cluster::Cluster cluster = wfs::cluster::Cluster::paper_testbed(sim);
  wfs::faas::KubeScheduler scheduler(cluster);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.place(2.0, 1ULL << 30));
  }
}
BENCHMARK(BM_SchedulerPlacement);

void BM_SchedulerFillDrain(benchmark::State& state) {
  for (auto _ : state) {
    wfs::sim::Simulation sim;
    wfs::cluster::Cluster cluster = wfs::cluster::Cluster::paper_testbed(sim);
    wfs::faas::KubeScheduler scheduler(cluster);
    std::vector<wfs::cluster::Node*> placed;
    while (wfs::cluster::Node* node = scheduler.place(2.0, 1ULL << 30)) {
      if (!node->ledger().try_reserve(2.0, 1ULL << 30)) break;
      placed.push_back(node);
    }
    for (wfs::cluster::Node* node : placed) node->ledger().release(2.0, 1ULL << 30);
  }
}
BENCHMARK(BM_SchedulerFillDrain);

}  // namespace
