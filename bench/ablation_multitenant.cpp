// Ablation: multi-tenant open-loop traffic against one shared platform —
// the serverless promise the paper leans on ("scientists share the cluster,
// the platform absorbs the load") stress-tested the way SRE would: an
// open-loop arrival process that does NOT slow down when the platform does.
//
// Part 1 (knee): two equal tenants, Poisson arrivals, offered load swept
// over a 2x ladder. Below saturation goodput tracks offered load ~1:1;
// past the knee completions stop keeping up and the goodput curve bends
// flat. The knee rung (last rung with goodput/offered >= 0.8) is the
// platform's effective per-window capacity and the bench's headline figure.
//
// Part 2 (isolation): a greedy tenant offers 10x the small tenants' load
// past the knee. With the admission knobs off the activator is one blind
// FIFO — the greedy tenant's backlog buries everyone. With per-tenant
// quotas + weighted-fair dequeue the small tenants must keep completing
// runs (zero starved tenants) and Jain fairness over weight-normalised
// goodput must improve.
//
// Every figure is simulated and seed-deterministic, so the --json-out file
// (baselines/BENCH_tenancy.json) is machine-independent and scripts/
// bench_check can hold both the knee location and the zero-starvation
// guarantee.
#include <fstream>
#include <iostream>
#include <vector>

#include "core/report.h"
#include "json/value.h"
#include "json/write.h"
#include "load/traffic.h"
#include "support/cli.h"
#include "support/format.h"

namespace {

wfs::load::TrafficConfig base_traffic(double offered_rps, double cpu_work,
                                      double window_seconds, std::uint64_t seed) {
  wfs::load::TrafficConfig config;
  config.tenants = {{"alice", "blast", 10, 1.0, 1.0}, {"bob", "cycles", 10, 1.0, 1.0}};
  config.offered_load_rps = offered_rps;
  config.window_seconds = window_seconds;
  config.drain_seconds = 2.0 * window_seconds;
  config.cpu_work = cpu_work;
  config.seed = seed;
  config.collect_metrics = false;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("ablation_multitenant",
                         "open-loop multi-tenant traffic: goodput knee + tenant isolation");
  cli.add_flag("window", "300", "measurement window (simulated seconds)");
  // Tasks at this scale run ~40 s and the platform's throughput comes from
  // per-pod concurrency, so the knee lands mid-ladder and a quota counted in
  // request slots is meaningful (48 slots ~ a third of the ~130-slot
  // capacity at this operating point).
  cli.add_flag("cpu-work", "50", "per-task compute scale (paper default 100)");
  cli.add_flag("seed", "1", "arrival-process seed");
  cli.add_flag("quota", "48", "per-tenant in-flight request quota (isolation rows)");
  cli.add_flag("queue-limit", "256", "per-tenant activator queue bound (0 = unbounded)");
  cli.add_flag("jobs", "0", "sweep worker threads (0 = hardware concurrency)");
  cli.add_flag("json-out", "", "write the figures as JSON to this file");
  if (!cli.parse(argc, argv)) return 1;

  const double window = cli.get_double("window");
  const double cpu_work = cli.get_double("cpu-work");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  bool ok = true;

  // ---- part 1: the goodput-vs-offered-load knee ----------------------------
  const std::vector<double> ladder{0.02, 0.04, 0.08, 0.16, 0.32, 0.64};
  std::vector<load::TrafficConfig> sweep;
  for (const double offered : ladder) {
    sweep.push_back(base_traffic(offered, cpu_work, window, seed));
  }

  std::cout << support::format(
      "Ablation — open-loop multi-tenant traffic (2 tenants, {}s window)\n", window);
  std::cout << "==================================================================\n\n";
  std::cout << "offered_rps  goodput_rps  efficiency  submitted  completed  rejected\n";

  const std::vector<load::TrafficResult> knee_rows = load::run_traffic_sweep(sweep, jobs);
  json::Array knee_json;
  double knee_offered = 0.0;
  double peak_goodput = 0.0;
  for (std::size_t i = 0; i < knee_rows.size(); ++i) {
    const load::TrafficResult& row = knee_rows[i];
    const double efficiency = ladder[i] > 0.0 ? row.goodput_rps / ladder[i] : 0.0;
    std::cout << support::format("{:>11.3f}  {:>11.4f}  {:>10.3f}  {:>9}  {:>9}  {:>8}\n",
                                 ladder[i], row.goodput_rps, efficiency, row.submitted,
                                 row.completed, row.rejected_requests);
    if (efficiency >= 0.8) knee_offered = ladder[i];
    peak_goodput = std::max(peak_goodput, row.goodput_rps);
    json::Object cell;
    cell.set("offered_rps", ladder[i]);
    cell.set("goodput_rps", row.goodput_rps);
    cell.set("efficiency", efficiency);
    cell.set("submitted", row.submitted);
    cell.set("completed", row.completed);
    knee_json.push_back(json::Value(std::move(cell)));
  }
  const double low_load_efficiency =
      ladder.front() > 0.0 ? knee_rows.front().goodput_rps / ladder.front() : 0.0;
  const double top_load_efficiency =
      ladder.back() > 0.0 ? knee_rows.back().goodput_rps / ladder.back() : 0.0;
  std::cout << support::format("\nknee: {} rps (last rung with efficiency >= 0.8), peak goodput {:.4f} rps\n\n",
                               knee_offered, peak_goodput);
  if (low_load_efficiency < 0.9) {
    std::cout << "FAILED: the platform must keep up at the bottom rung (efficiency >= 0.9)\n";
    ok = false;
  }
  if (top_load_efficiency > 0.75) {
    std::cout << "FAILED: the top rung must sit past the knee (efficiency <= 0.75) — "
                 "no saturation means the sweep measured nothing\n";
    ok = false;
  }

  // ---- part 2: greedy-tenant isolation, quotas off vs on -------------------
  const double overload = 2.0 * std::max(knee_offered, ladder.front());
  load::TrafficConfig greedy = base_traffic(overload, cpu_work, window, seed);
  greedy.tenants = {{"greedy", "blast", 10, 1.0, 10.0},
                    {"small-a", "blast", 10, 1.0, 1.0},
                    {"small-b", "cycles", 10, 1.0, 1.0}};

  load::TrafficConfig guarded = greedy;
  guarded.tenant_quota = static_cast<std::size_t>(cli.get_int("quota"));
  guarded.tenant_queue_limit = static_cast<std::size_t>(cli.get_int("queue-limit"));
  guarded.fair_dequeue = true;

  const std::vector<load::TrafficResult> isolation =
      load::run_traffic_sweep({greedy, guarded}, jobs);
  const load::TrafficResult& off = isolation[0];
  const load::TrafficResult& on = isolation[1];

  std::cout << support::format(
      "isolation — greedy tenant at 10x share, offered {} rps (2x knee)\n", overload);
  std::cout << "\nquotas off (blind FIFO):\n" << core::tenancy_summary(off);
  std::cout << "\nquotas + fair dequeue on:\n" << core::tenancy_summary(on);

  std::size_t small_completed_on = 0;
  for (const load::TenantStats& tenant : on.tenants) {
    if (tenant.name != "greedy") small_completed_on += tenant.completed;
    if (tenant.completed == 0 && tenant.submitted > 0) {
      std::cout << support::format("FAILED: tenant {} starved despite quotas + fair dequeue\n",
                                   tenant.name);
      ok = false;
    }
  }
  if (on.jain_fairness + 1e-9 < off.jain_fairness) {
    std::cout << support::format(
        "FAILED: fairness must not regress with quotas on ({:.3f} -> {:.3f})\n",
        off.jain_fairness, on.jain_fairness);
    ok = false;
  }

  if (!cli.get("json-out").empty()) {
    json::Object doc;
    doc.set("bench", std::string("ablation_multitenant"));
    doc.set("window_seconds", window);
    doc.set("cpu_work", cpu_work);
    doc.set("knee", std::move(knee_json));
    doc.set("knee_offered_rps", knee_offered);
    doc.set("peak_goodput_rps", peak_goodput);
    doc.set("low_load_efficiency", low_load_efficiency);
    doc.set("top_load_efficiency", top_load_efficiency);
    json::Object iso;
    iso.set("offered_rps", overload);
    iso.set("jain_quotas_off", off.jain_fairness);
    iso.set("jain_quotas_on", on.jain_fairness);
    iso.set("starved_quotas_off", off.starved_tenants);
    iso.set("starved_quotas_on", on.starved_tenants);
    iso.set("small_tenant_completed_quotas_on", small_completed_on);
    iso.set("rejected_quotas_on", on.rejected_requests);
    doc.set("isolation", std::move(iso));
    std::ofstream out(cli.get("json-out"));
    out << json::write_pretty(json::Value(std::move(doc))) << "\n";
    std::cout << "wrote " << cli.get("json-out") << "\n";
  }

  std::cout << "\nnote: both isolation rows replay the identical arrival sequences — the\n"
               "only change is the activator's admission policy.\n";
  return ok ? 0 : 1;
}
