// Ablation: WFM dispatch mode — the paper's level barrier vs dependency-driven.
//
// §III-C's WFM walks the workflow level by level: every function of level N
// must return before any function of level N+1 is sent. Dependency-driven
// scheduling relaxes that to the true DAG constraint — a function is sent
// the moment its last parent's outputs land — so a slow straggler no longer
// holds back siblings' independent subtrees. The sweep runs every recipe
// family under both modes on the same workload and checks three properties:
//
//   1. the two modes execute the identical task set with identical per-task
//      success (scheduling is an ordering choice, not a semantic one),
//   2. dependency-driven never has a larger makespan,
//   3. on a phase-heavy, width-imbalanced family (Epigenomics) it is
//      strictly faster.
//
// A final demo runs two workflows concurrently on ONE WorkflowManager —
// the run-table API the barrier-era `busy()` contract forbade.
#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fleet.h"
#include "support/format.h"
#include "wfcommons/recipes/recipe.h"

int main() {
  using namespace wfs;

  std::cout << "Ablation — WFM dispatch mode (phase barrier vs dependency-driven)\n";
  std::cout << "=================================================================\n\n";
  std::cout << support::format("{:<14} {:>12} {:>12} {:>9}  outcomes\n", "recipe",
                               "barrier_s", "depdrv_s", "speedup");

  bool ok = true;
  bool epigenomics_strictly_faster = false;
  for (const std::string& recipe : wfcommons::recipe_names()) {
    core::ExperimentConfig config;
    config.paradigm = core::Paradigm::kLC10wNoPM;  // no autoscaling noise
    config.recipe = recipe;
    config.num_tasks = 200;

    config.wfm.scheduling = core::SchedulingMode::kPhaseBarrier;
    const core::ExperimentResult barrier = core::run_experiment(config);
    config.wfm.scheduling = core::SchedulingMode::kDependencyDriven;
    const core::ExperimentResult depdriven = core::run_experiment(config);

    // Property 1: identical task sets, identical per-task success.
    std::map<std::string, bool> expected;
    for (const core::TaskOutcome& task : barrier.run.tasks) expected[task.name] = task.ok;
    bool identical = barrier.ok() && depdriven.ok() &&
                     depdriven.run.tasks.size() == expected.size();
    for (const core::TaskOutcome& task : depdriven.run.tasks) {
      const auto it = expected.find(task.name);
      identical = identical && it != expected.end() && it->second == task.ok;
    }

    // Property 2 (and 3 for epigenomics): dependency-driven is never slower.
    const bool not_slower = depdriven.makespan_seconds <= barrier.makespan_seconds + 1e-9;
    if (recipe == "epigenomics" &&
        depdriven.makespan_seconds < barrier.makespan_seconds) {
      epigenomics_strictly_faster = true;
    }
    ok = ok && identical && not_slower;

    std::cout << support::format("{:<14} {:>11.1f}s {:>11.1f}s {:>8.2f}x  {}\n", recipe,
                                 barrier.makespan_seconds, depdriven.makespan_seconds,
                                 barrier.makespan_seconds / depdriven.makespan_seconds,
                                 identical ? (not_slower ? "identical" : "SLOWER")
                                           : "DIVERGED");
  }

  // Concurrent-runs demo: two families on one shared platform, both driven
  // by a single WorkflowManager's run table.
  std::cout << "\nConcurrent runs on one WorkflowManager\n";
  std::cout << "--------------------------------------\n";
  core::FleetConfig fleet_config;
  fleet_config.paradigm = core::Paradigm::kLC10wNoPM;
  fleet_config.items = {{"blast", 100, 1}, {"seismology", 100, 2}};
  fleet_config.concurrent = true;
  fleet_config.wfm.scheduling = core::SchedulingMode::kDependencyDriven;
  const core::FleetResult fleet = core::run_fleet(fleet_config);
  double makespan_sum = 0.0;
  for (const core::WorkflowRunResult& run : fleet.runs) {
    std::cout << support::format("  run #{}: {} — {:.1f}s, {} tasks\n", run.run_id,
                                 run.ok() ? "ok" : "FAILED", run.makespan_seconds,
                                 run.tasks_total);
    makespan_sum += run.makespan_seconds;
  }
  const bool distinct_ids =
      fleet.runs.size() == 2 && fleet.runs[0].run_id != fleet.runs[1].run_id;
  const bool overlapped = fleet.wall_seconds < makespan_sum;
  std::cout << support::format(
      "  wall {:.1f}s vs {:.1f}s makespan sum — runs {}\n", fleet.wall_seconds,
      makespan_sum, overlapped ? "overlapped" : "DID NOT OVERLAP");
  ok = ok && fleet.ok() && distinct_ids && overlapped;

  if (!ok || !epigenomics_strictly_faster) {
    std::cout << "\nSELF-CHECK FAILED: ";
    if (!epigenomics_strictly_faster) {
      std::cout << "dependency-driven not strictly faster on epigenomics";
    } else {
      std::cout << "see rows above";
    }
    std::cout << "\n";
    return 1;
  }
  std::cout << "\nself-check passed: identical outcomes everywhere, dependency-driven\n"
               "never slower, strictly faster on epigenomics, and two workflows ran\n"
               "concurrently on one manager.\n";
  return 0;
}
