// Micro-benchmarks: discrete-event engine throughput (the cost floor under
// every experiment) and the processor-sharing rebalance path.
#include <benchmark/benchmark.h>

#include "cluster/node.h"
#include "sim/simulation.h"

namespace {

void BM_ScheduleAndRun(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    wfs::sim::Simulation sim;
    for (std::size_t i = 0; i < events; ++i) {
      sim.schedule_in(static_cast<wfs::sim::SimTime>(i % 1000), [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * events));
}
BENCHMARK(BM_ScheduleAndRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_CancelHeavyQueue(benchmark::State& state) {
  for (auto _ : state) {
    wfs::sim::Simulation sim;
    std::vector<wfs::sim::EventId> ids;
    ids.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
      ids.push_back(sim.schedule_in(i, [] {}));
    }
    for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
    sim.run();
  }
}
BENCHMARK(BM_CancelHeavyQueue);

void BM_ProcessorSharingRebalance(benchmark::State& state) {
  // N concurrent work items; each completion triggers a full rebalance —
  // the hot path of wide workflow phases.
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    wfs::sim::Simulation sim;
    wfs::cluster::NodeSpec spec;
    spec.cores = 96.0;
    wfs::cluster::Node node(sim, spec);
    for (int i = 0; i < n; ++i) {
      node.submit_work(0.8, 10.0 + i % 7, wfs::cluster::kNoQuotaGroup, [] {});
    }
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}
BENCHMARK(BM_ProcessorSharingRebalance)->Arg(50)->Arg(200)->Arg(1000);

}  // namespace
