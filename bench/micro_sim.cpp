// Simulation-engine micro-bench: the PR's before/after ablation for the
// sharded, batch-dispatching event core.
//
// Replays a translated 10^5-task workflow DAG as a pure event workload —
// task start / finish / child-notify events spread across a small cluster
// of nodes, service times quantised to a scheduling grid, cross-node
// notifications paying a fixed transfer latency — on three engines:
//  * legacy: the seed's engine, reproduced verbatim below (one
//    priority_queue of (time, seq, id) entries + an id->callback map; two
//    O(log n) heap operations and three hash-map touches per event);
//  * batched: today's sim::Simulation (min-heap of DISTINCT timestamps over
//    FIFO buckets, whole instants dispatched per heap operation);
//  * sharded N: sim::ShardedSimulation with the cluster nodes mapped onto N
//    shards and the transfer latency as the conservative lookahead.
//
// Every engine must finish every task and produce the same order-invariant
// (id, finish-time) checksum — the determinism contract — and the sharded
// engine at --shards must beat the legacy engine by --min-speedup in
// simulated events/second. Exit status: 0 when both hold, 1 otherwise.
// --json-out lands the figures for baselines/BENCH_sim.json.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/dag.h"
#include "json/value.h"
#include "json/write.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/translators/knative.h"

namespace {

using wfs::core::ExecutionPlan;
using wfs::core::TaskId;
using wfs::sim::SimTime;

// ---- the seed engine, reproduced verbatim ------------------------------------
// One heap entry per event, callbacks in a side map so cancel() can release
// them promptly. This is the exact pre-batching implementation (minus
// cancel, which the replay never uses): the "before" half of the ablation.
class LegacySim {
 public:
  using Callback = std::function<void()>;

  void schedule_at(SimTime at, Callback fn) {
    const std::uint64_t id = next_id_++;
    heap_.push(Entry{at, next_sequence_++, id});
    callbacks_.emplace(id, std::move(fn));
  }
  void schedule_in(SimTime delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  void run() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      const auto it = callbacks_.find(top.id);
      Callback fn = std::move(it->second);
      callbacks_.erase(it);
      now_ = top.time;
      ++executed_;
      fn();
    }
  }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    std::uint64_t id;
    bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t next_id_ = 1;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
};

// ---- plan-replay workload ----------------------------------------------------

constexpr std::size_t kNodes = 4;         // cluster nodes (fixed across engines)
constexpr SimTime kLocalDelay = 100;      // same-node child notification
constexpr SimTime kTransfer = 500;        // cross-node transfer = the lookahead
constexpr SimTime kGrid = 100;            // service-time quantum

// Deterministic quantised service time: collisions on the grid are the
// realistic regime (schedulers tick, services are quantised) and what the
// bucket queue exploits.
SimTime duration_of(double cpu_work) {
  const auto steps = static_cast<std::uint64_t>(cpu_work * 10.0) % 64;
  return kGrid * static_cast<SimTime>(1 + steps);
}

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// Engine adapters: where events live (one queue, or one shard per node
// group) and how a cross-node notification travels.
struct SequentialOnLegacy {
  LegacySim& sim;
  void schedule_in(std::size_t /*node*/, SimTime delay, LegacySim::Callback fn) {
    sim.schedule_in(delay, std::move(fn));
  }
  [[nodiscard]] SimTime now(std::size_t /*node*/) const { return sim.now(); }
  void notify(std::size_t /*from*/, std::size_t /*to*/, SimTime at, LegacySim::Callback fn) {
    sim.schedule_at(at, std::move(fn));
  }
};

struct SequentialOnBatched {
  wfs::sim::Simulation& sim;
  void schedule_in(std::size_t /*node*/, SimTime delay, wfs::sim::EventQueue::Callback fn) {
    sim.schedule_in(delay, std::move(fn));
  }
  [[nodiscard]] SimTime now(std::size_t /*node*/) const { return sim.now(); }
  void notify(std::size_t /*from*/, std::size_t /*to*/, SimTime at,
              wfs::sim::EventQueue::Callback fn) {
    sim.schedule_at(at, std::move(fn));
  }
};

struct ShardedByNode {
  wfs::sim::ShardedSimulation& sim;
  [[nodiscard]] wfs::sim::ShardedSimulation::Shard& of(std::size_t node) const {
    return sim.shard(node % sim.shard_count());
  }
  void schedule_in(std::size_t node, SimTime delay, wfs::sim::EventQueue::Callback fn) {
    of(node).schedule_in(delay, std::move(fn));
  }
  [[nodiscard]] SimTime now(std::size_t node) const { return of(node).now(); }
  void notify(std::size_t from, std::size_t to, SimTime at,
              wfs::sim::EventQueue::Callback fn) {
    of(from).post(to % sim.shard_count(), at, std::move(fn));
  }
};

/// Replays the DAG on `engine`. Every task belongs to a node; its events
/// run on that node's shard only, and each node's state (pending counters
/// of ITS tasks, checksum lane) is touched by that shard alone — the
/// sharded-engine contract.
template <typename Engine>
class Replay {
 public:
  Replay(const ExecutionPlan& plan, Engine engine)
      : plan_(plan), engine_(engine), pending_(plan.task_count()),
        checksum_lane_(kNodes, 0), finished_lane_(kNodes, 0) {
    const auto indegrees = plan_.indegrees();
    for (TaskId id = 0; id < plan_.task_count(); ++id) {
      pending_[id] = indegrees[id];
      if (pending_[id] == 0) {
        engine_.schedule_in(node_of(id), 0, [this, id] { start(id); });
      }
    }
  }

  [[nodiscard]] std::uint64_t checksum() const {
    std::uint64_t total = 0;
    for (const std::uint64_t lane : checksum_lane_) total += lane;
    return total;
  }
  [[nodiscard]] std::uint64_t finished() const {
    std::uint64_t total = 0;
    for (const std::uint64_t lane : finished_lane_) total += lane;
    return total;
  }

 private:
  static std::size_t node_of(TaskId id) { return id % kNodes; }

  void start(TaskId id) {
    engine_.schedule_in(node_of(id), duration_of(plan_.cpu_work(id)),
                        [this, id] { finish(id); });
  }

  void finish(TaskId id) {
    const std::size_t node = node_of(id);
    const SimTime now = engine_.now(node);
    checksum_lane_[node] +=
        mix(id * 0x9E3779B97F4A7C15ULL ^ static_cast<std::uint64_t>(now));
    ++finished_lane_[node];
    for (const TaskId child : plan_.children(id)) {
      const std::size_t target = node_of(child);
      const SimTime at = now + (target == node ? kLocalDelay : kTransfer);
      engine_.notify(node, target, at, [this, child] {
        if (--pending_[child] == 0) start(child);
      });
    }
  }

  const ExecutionPlan& plan_;
  Engine engine_;
  std::vector<std::uint32_t> pending_;
  std::vector<std::uint64_t> checksum_lane_;
  std::vector<std::uint64_t> finished_lane_;
};

struct EngineReport {
  std::string name;
  std::uint64_t events = 0;
  std::uint64_t finished = 0;
  std::uint64_t checksum = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t windows = 0;      // sharded engines only
  std::uint64_t sync_stalls = 0;  // sharded engines only
};

EngineReport run_legacy(const ExecutionPlan& plan) {
  LegacySim sim;
  Replay<SequentialOnLegacy> replay(plan, SequentialOnLegacy{sim});
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  EngineReport report;
  report.name = "legacy";
  report.events = sim.executed();
  report.finished = replay.finished();
  report.checksum = replay.checksum();
  report.wall_seconds = std::chrono::duration<double>(stop - start).count();
  report.events_per_sec = static_cast<double>(report.events) / report.wall_seconds;
  return report;
}

EngineReport run_batched(const ExecutionPlan& plan) {
  wfs::sim::Simulation sim;
  sim.set_event_limit(1'000'000'000);
  Replay<SequentialOnBatched> replay(plan, SequentialOnBatched{sim});
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  EngineReport report;
  report.name = "batched";
  report.events = sim.executed_events();
  report.finished = replay.finished();
  report.checksum = replay.checksum();
  report.wall_seconds = std::chrono::duration<double>(stop - start).count();
  report.events_per_sec = static_cast<double>(report.events) / report.wall_seconds;
  return report;
}

EngineReport run_sharded(const ExecutionPlan& plan, std::size_t shards) {
  wfs::sim::ShardedConfig config;
  config.lookahead = kTransfer;
  config.event_limit = 1'000'000'000;
  wfs::sim::ShardedSimulation sim(shards, config);
  Replay<ShardedByNode> replay(plan, ShardedByNode{sim});
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const auto stop = std::chrono::steady_clock::now();
  EngineReport report;
  report.name = wfs::support::format("sharded{}", shards);
  report.events = sim.executed_events();
  report.finished = replay.finished();
  report.checksum = replay.checksum();
  report.wall_seconds = std::chrono::duration<double>(stop - start).count();
  report.events_per_sec = static_cast<double>(report.events) / report.wall_seconds;
  report.windows = sim.windows();
  report.sync_stalls = sim.sync_stalls();
  return report;
}

void print_report(const EngineReport& r, const EngineReport& legacy) {
  std::cout << wfs::support::format(
      "  {:<9} {:>9} events  {:>7.3f} s  {:>11.4g} events/s  {:>5.2f}x",
      r.name, r.events, r.wall_seconds, r.events_per_sec,
      r.events_per_sec / legacy.events_per_sec);
  if (r.windows > 0) {
    std::cout << wfs::support::format("  ({} windows, {} stalls)", r.windows,
                                      r.sync_stalls);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("micro_sim",
                         "event-engine ablation: seed heap vs batched vs sharded");
  cli.add_flag("recipe", "blast", "workflow family to instantiate");
  cli.add_flag("tasks", "100000", "instance size (tasks)");
  cli.add_flag("shards", "4", "shard count for the headline comparison");
  cli.add_flag("min-speedup", "2", "required events/s gain of sharded over legacy");
  cli.add_flag("json-out", "", "write the figures as JSON to this file");
  if (!cli.parse(argc, argv)) return 1;

  const std::string recipe = cli.get("recipe");
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks"));
  const auto shards = static_cast<std::size_t>(cli.get_int("shards"));
  const double min_speedup = cli.get_double("min-speedup");

  wfcommons::GenerateOptions options;
  options.num_tasks = tasks;
  options.seed = 1;
  wfcommons::Workflow wf = wfcommons::make_recipe(recipe)->generate(options);
  wfcommons::KnativeTranslatorConfig tconfig;
  tconfig.service_url = "http://svc:80/wfbench";
  wfcommons::KnativeTranslator(tconfig).apply(wf);
  const core::ExecutionPlan plan = core::build_plan(wf, "/shared/wfbench");

  std::cout << support::format(
      "micro_sim — plan replay of {} ({} tasks) across {} nodes\n", recipe,
      plan.task_count(), kNodes);
  std::cout << "================================================================\n";

  const EngineReport legacy = run_legacy(plan);
  print_report(legacy, legacy);
  const EngineReport batched = run_batched(plan);
  print_report(batched, legacy);
  std::vector<std::size_t> counts{2};
  if (shards != 2) counts.push_back(shards);
  std::vector<EngineReport> sharded_reports;
  for (const std::size_t count : counts) {
    sharded_reports.push_back(run_sharded(plan, count));
    print_report(sharded_reports.back(), legacy);
  }
  const EngineReport& headline = sharded_reports.back();

  bool ok = true;
  std::vector<const EngineReport*> checked{&batched};
  for (const EngineReport& r : sharded_reports) checked.push_back(&r);
  for (const EngineReport* r : checked) {
    if (r->checksum != legacy.checksum || r->finished != plan.task_count()) {
      std::cout << support::format(
          "FAILED: {} diverged from the seed engine (checksum {:x} vs {:x}, "
          "{} of {} tasks finished)\n",
          r->name, r->checksum, legacy.checksum, r->finished, plan.task_count());
      ok = false;
    }
  }
  const double speedup = headline.events_per_sec / legacy.events_per_sec;
  if (ok && speedup < min_speedup) {
    std::cout << support::format(
        "FAILED: {} at {:.2f}x over legacy, below required {:g}x\n", headline.name,
        speedup, min_speedup);
    ok = false;
  }
  if (ok) {
    std::cout << support::format(
        "\n{}: {:.2f}x simulated events/s over the seed engine, checksums equal\n",
        headline.name, speedup);
  }

  if (!cli.get("json-out").empty()) {
    json::Object doc;
    doc.set("bench", std::string("micro_sim"));
    doc.set("recipe", recipe);
    doc.set("tasks", plan.task_count());
    doc.set("nodes", kNodes);
    json::Array engines;
    const auto add = [&engines](const EngineReport& r) {
      json::Object o;
      o.set("engine", r.name);
      o.set("events", r.events);
      o.set("events_per_sec", r.events_per_sec);
      o.set("wall_seconds", r.wall_seconds);
      if (r.windows > 0) {
        o.set("windows", r.windows);
        o.set("sync_stalls", r.sync_stalls);
      }
      engines.push_back(json::Value(std::move(o)));
    };
    add(legacy);
    add(batched);
    for (const EngineReport& r : sharded_reports) add(r);
    doc.set("engines", std::move(engines));
    doc.set("speedup_over_legacy", speedup);
    std::ofstream out(cli.get("json-out"));
    out << json::write_pretty(json::Value(std::move(doc))) << "\n";
    std::cout << "wrote " << cli.get("json-out") << "\n";
  }
  return ok ? 0 : 1;
}
