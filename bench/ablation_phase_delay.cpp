// Ablation: the WFM's fixed inter-phase delay (§III-C hard-codes 1 s).
//
// The paper motivates the delay as a settle time so the previous phase's
// outputs are visible on the shared drive; the WFM also re-checks inputs
// before dispatch. This ablation sweeps the delay on the phase-heavy
// Epigenomics family (where it costs the most) and on the flat Seismology
// family (where it costs almost nothing), showing that (a) correctness does
// not depend on the delay — the input check catches stragglers — and (b) the
// delay's makespan cost scales with phase count.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"

int main() {
  using namespace wfs;

  std::cout << "Ablation — WFM inter-phase delay\n";
  std::cout << "================================\n\n";
  std::cout << core::result_header();

  for (const std::string recipe : {"epigenomics", "seismology"}) {
    for (const double delay_s : {0.0, 0.5, 1.0, 5.0}) {
      core::ExperimentConfig config;
      config.paradigm = core::Paradigm::kLC10wNoPM;  // no autoscaling noise
      config.recipe = recipe;
      config.num_tasks = 200;
      config.wfm.phase_delay = sim::from_seconds(delay_s);
      core::ExperimentResult result = core::run_experiment(config);
      result.paradigm_name = support::format("delay={:.1f}s", delay_s);
      std::cout << core::result_row(result);
    }
    std::cout << "\n";
  }

  std::cout << "note: runs stay correct at delay=0 because the WFM polls the shared\n"
               "drive for each function's inputs before dispatch; the delay only\n"
               "adds makespan, linearly in the number of phases.\n";
  return 0;
}
