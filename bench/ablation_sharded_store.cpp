// Ablation: the distributed data plane — shared filesystem vs a sharded,
// replicated object tier vs sharded + node-cache p2p transfer (the paper's
// §VII future-work item "impacts of using external distributed data storage
// for managing scientific workflows", taken to its logical end).
//
// The shared drive is one box: 2 GB/s of aggregate bandwidth and a 2 ms op
// tax that every task in a wide phase contends for. The sharded tier pays a
// higher per-op RPC (5 ms) but brings 4 nodes x 2 GB/s and spreads every
// wide phase across the ring; p2p lets a consumer pull a producer's output
// straight from its node cache without touching the backing tier at all.
// Expect: the data-heavy families (srasearch's multi-MB archives, blast's
// wide fan-out) shift to the sharded rows; I/O-light dense families barely
// notice the extra RPC latency.
//
// The durability rows kill one storage node mid-run: at RF 2 the workflow
// rides through on surviving replicas while background repair re-replicates;
// the RF 1 contrast row shows what the replication is buying.
//
// --json-out lands the figures for baselines/BENCH_storage.json — every one
// is simulated (makespans, byte ratios, completed flags), so the file is
// machine-independent and scripts/bench_check can hold the trend.
#include <fstream>
#include <iostream>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "json/value.h"
#include "json/write.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/recipes/recipe.h"

namespace {

wfs::core::ExperimentConfig base_config(const std::string& recipe, std::size_t tasks) {
  wfs::core::ExperimentConfig config;
  config.paradigm = wfs::core::Paradigm::kKn1wNoPM;
  config.recipe = recipe;
  config.num_tasks = tasks;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("ablation_sharded_store",
                         "shared fs vs sharded store vs sharded + p2p transfer");
  cli.add_flag("tasks", "200", "workflow size (number of tasks)");
  cli.add_flag("storage-nodes", "4", "sharded-tier node count");
  cli.add_flag("cache-mb", "4096", "node cache size for the p2p row (MiB)");
  // Low relative compute so the data plane — not the CPU — is the critical
  // resource; at the paper's default the I/O tier is never the bottleneck
  // and every backend looks alike.
  cli.add_flag("cpu-work", "1", "per-task compute scale (paper default 100)");
  // "Large sizes": multiply the recipes' published file footprints so the
  // data plane is the critical resource the three rows actually compare.
  cli.add_flag("data-scale", "100", "multiplier on all workflow file sizes");
  cli.add_flag("json-out", "", "write the figures as JSON to this file");
  if (!cli.parse(argc, argv)) return 1;

  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks"));
  const auto storage_nodes = static_cast<std::size_t>(cli.get_int("storage-nodes"));
  const auto cache_mb = static_cast<std::uint64_t>(cli.get_int("cache-mb"));
  const double cpu_work = cli.get_double("cpu-work");
  const double data_scale = cli.get_double("data-scale");

  std::cout << support::format(
      "Ablation — shared fs vs sharded store vs sharded+p2p (Kn1wNoPM, {} tasks)\n",
      tasks);
  std::cout << "==========================================================================\n\n";
  std::cout << core::result_header();

  bool ok = true;
  json::Array recipe_rows;
  for (const std::string& recipe : wfcommons::recipe_names()) {
    // Row 1: the seed data plane — one shared filesystem.
    core::ExperimentConfig config = base_config(recipe, tasks);
    config.cpu_work = cpu_work;
    config.data_scale = data_scale;
    core::ExperimentResult shared_fs = core::run_experiment(config);
    shared_fs.paradigm_name = "shared-fs";
    std::cout << core::result_row(shared_fs);

    // Row 2: sharded, replicated object tier.
    config.storage_nodes = storage_nodes;
    config.replication_factor = 2;
    core::ExperimentResult sharded = core::run_experiment(config);
    sharded.paradigm_name = "sharded";
    std::cout << core::result_row(sharded);

    // Row 3: sharded tier + node caches + peer-to-peer transfer. Placement
    // is deliberately not cache-aware: consumers land away from producers,
    // so the traffic p2p absorbs is visible as a backing-read cut.
    config.data_cache_mb_per_node = cache_mb;
    config.p2p_transfer = true;
    core::ExperimentResult p2p = core::run_experiment(config);
    p2p.paradigm_name = "sharded+p2p";
    std::cout << core::result_row(p2p);

    if (!shared_fs.ok() || !sharded.ok() || !p2p.ok()) {
      std::cout << support::format("FAILED: a {} run did not complete\n", recipe);
      ok = false;
      continue;
    }
    std::cout << core::delta_row(support::format("sharded vs shared [{}]", recipe),
                                 core::compare(sharded, shared_fs));
    std::cout << core::delta_row(support::format("    +p2p vs shared [{}]", recipe),
                                 core::compare(p2p, shared_fs));
    std::cout << "\n";

    json::Object row;
    row.set("recipe", recipe);
    row.set("makespan_shared_s", shared_fs.makespan_seconds);
    row.set("makespan_sharded_s", sharded.makespan_seconds);
    row.set("makespan_p2p_s", p2p.makespan_seconds);
    row.set("sharded_speedup", shared_fs.makespan_seconds / sharded.makespan_seconds);
    row.set("p2p_speedup", shared_fs.makespan_seconds / p2p.makespan_seconds);
    row.set("shared_bytes_read", shared_fs.storage_bytes_read);
    row.set("p2p_backing_bytes_read", p2p.storage_bytes_read);
    // Fraction of the backing-tier read traffic the p2p path left behind.
    row.set("backing_read_ratio",
            shared_fs.storage_bytes_read == 0
                ? 1.0
                : static_cast<double>(p2p.storage_bytes_read) /
                      static_cast<double>(shared_fs.storage_bytes_read));
    row.set("p2p_transfers", p2p.p2p_transfers);
    row.set("p2p_bytes_saved", p2p.p2p_bytes_saved);
    recipe_rows.push_back(json::Value(std::move(row)));
  }

  // Durability: kill storage node 1 a quarter of the way into a data-heavy
  // run. At RF 2 the workflow completes on surviving replicas while repair
  // re-replicates in the background; RF 1 is the contrast.
  std::cout << "durability — seismology, kill storage node 1 mid-run\n";
  json::Object durability;
  {
    core::ExperimentConfig config = base_config("seismology", tasks);
    config.cpu_work = cpu_work;
    config.data_scale = data_scale;
    config.storage_nodes = storage_nodes;
    config.replication_factor = 2;
    config.storage_kill_at_seconds = 10.0;
    config.storage_kill_node = 1;
    core::ExperimentResult rf2 = core::run_experiment(config);
    rf2.paradigm_name = "rf2+kill";
    std::cout << core::result_row(rf2);

    config.replication_factor = 1;
    core::ExperimentResult rf1 = core::run_experiment(config);
    rf1.paradigm_name = "rf1+kill";
    std::cout << core::result_row(rf1);

    if (!rf2.ok() || rf2.storage_lost_objects != 0) {
      std::cout << "FAILED: the RF 2 run must ride through a single node kill\n";
      ok = false;
    }
    std::cout << support::format(
        "rf2: {} objects ({} MB) re-replicated in the background, {} lost\n",
        rf2.storage_repair_objects, rf2.storage_repair_bytes / 1'000'000,
        rf2.storage_lost_objects);
    std::cout << support::format(
        "rf1: {} objects lost at the kill ({})\n\n", rf1.storage_lost_objects,
        rf1.ok() ? "workflow survived on recomputation-free reads"
                 : "workflow failed: " + rf1.failure_reason);

    durability.set("recipe", std::string("seismology"));
    durability.set("rf2_completed", rf2.ok() ? 1.0 : 0.0);
    durability.set("rf2_lost_objects", rf2.storage_lost_objects);
    durability.set("rf2_repair_objects", rf2.storage_repair_objects);
    durability.set("rf2_repair_bytes", rf2.storage_repair_bytes);
    durability.set("rf2_makespan_s", rf2.makespan_seconds);
    durability.set("rf1_completed", rf1.ok() ? 1.0 : 0.0);
    durability.set("rf1_lost_objects", rf1.storage_lost_objects);
  }

  if (!cli.get("json-out").empty()) {
    json::Object doc;
    doc.set("bench", std::string("ablation_sharded_store"));
    doc.set("tasks", tasks);
    doc.set("storage_nodes", storage_nodes);
    doc.set("cache_mb", cache_mb);
    doc.set("recipes", std::move(recipe_rows));
    doc.set("durability", std::move(durability));
    std::ofstream out(cli.get("json-out"));
    out << json::write_pretty(json::Value(std::move(doc))) << "\n";
    std::cout << "wrote " << cli.get("json-out") << "\n";
  }

  std::cout << "note: all three rows run the identical workflow and WFM — the only\n"
               "change is which storage::DataStore the platform wires underneath.\n";
  return ok ? 0 : 1;
}
