// Ablation: the paper's future-work hybrid mapping (§V-D / §VI).
//
// "The optimal strategy for complex workflows might be combining executions
// on serverless and bare-metal local containers for different tasks or
// groups of tasks." This bench evaluates three placement policies over the
// whole 7-family suite:
//   all-serverless  — every family on Kn10wNoPM;
//   all-local       — every family on LC10wNoPM;
//   hybrid          — per family, pick by the structural classifier:
//                     layered (group 2) families go serverless (their time
//                     gap is small, resource win large); dense families go
//                     to local containers when time matters.
// Reported: aggregate makespan, mean resource usage and energy per policy.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"

int main() {
  using namespace wfs;

  std::cout << "Ablation — hybrid paradigm mapping across the 7-family suite (200 tasks)\n";
  std::cout << "========================================================================\n\n";

  struct PolicyTotals {
    double time = 0.0;
    double cpu = 0.0;
    double memory = 0.0;
    double energy = 0.0;
    int families = 0;
  };

  const auto run_one = [](core::Paradigm paradigm, const std::string& recipe) {
    core::ExperimentConfig config;
    config.paradigm = paradigm;
    config.recipe = recipe;
    config.num_tasks = 200;
    return core::run_experiment(config);
  };

  wfcommons::WorkflowGenerator generator;
  PolicyTotals serverless_totals;
  PolicyTotals local_totals;
  PolicyTotals hybrid_totals;

  std::cout << core::result_header();
  for (const std::string& recipe : wfcommons::recipe_names()) {
    const core::ExperimentResult kn = run_one(core::Paradigm::kKn10wNoPM, recipe);
    const core::ExperimentResult lc = run_one(core::Paradigm::kLC10wNoPM, recipe);
    const auto group = wfcommons::classify(generator.generate(recipe, 200, 1));
    const bool pick_serverless = group == wfcommons::BehaviorGroup::kLayered;
    const core::ExperimentResult& hybrid = pick_serverless ? kn : lc;

    std::cout << core::result_row(kn) << core::result_row(lc);
    std::cout << support::format("  -> hybrid picks {} for {} ({})\n", hybrid.paradigm_name,
                                 recipe, wfcommons::to_string(group));

    const auto add = [](PolicyTotals& totals, const core::ExperimentResult& result) {
      totals.time += result.makespan_seconds;
      totals.cpu += result.cpu_percent.time_weighted_mean;
      totals.memory += result.memory_gib.time_weighted_mean;
      totals.energy += result.energy_joules;
      ++totals.families;
    };
    add(serverless_totals, kn);
    add(local_totals, lc);
    add(hybrid_totals, hybrid);
  }

  const auto print_policy = [](const char* name, const PolicyTotals& totals) {
    std::cout << support::format(
        "{:<16} total time {:>8.1f}s  mean cpu {:>6.2f}%  mean mem {:>7.2f} GiB  energy "
        "{:>8.1f} kJ\n",
        name, totals.time, totals.cpu / totals.families, totals.memory / totals.families,
        totals.energy / 1000.0);
  };
  std::cout << "\npolicy totals over the suite:\n";
  print_policy("all-serverless", serverless_totals);
  print_policy("all-local", local_totals);
  print_policy("hybrid", hybrid_totals);
  std::cout << "\nthe hybrid recovers most of all-local's speed on dense families while\n"
               "keeping all-serverless's resource profile on layered ones — the paper's\n"
               "conjecture, quantified.\n";
  return 0;
}
