// Figure 5 reproduction: comparison between setups of the local-container
// computational paradigm.
//
// Paper layout: x-axis = {LC1wPM, LC1wNoPM, LC10wNoPM, LC10wNoPMNoCR},
// colours = sizes, facets = metrics x {Blast, Epigenomics}. Expected shape
// (§V-B): 10wNoPM + NoCR slightly improves power and CPU but not execution
// time, and uses MORE memory (no hard cgroup limit declared).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace wfs;

  std::cout << "Figure 5 — local-container (bare-metal) paradigm setups\n";
  std::cout << "=======================================================\n\n";

  const std::vector<core::Paradigm> paradigms = {
      core::Paradigm::kLC1wPM, core::Paradigm::kLC1wNoPM, core::Paradigm::kLC10wNoPM,
      core::Paradigm::kLC10wNoPMNoCR};
  const std::vector<std::string> recipes = {"blast", "epigenomics"};
  const std::vector<std::size_t> sizes = {50, 200};

  const bench::SweepResult sweep = bench::run_sweep(paradigms, recipes, sizes);
  bench::print_metric_charts(sweep, paradigms, recipes, sizes);

  std::cout << "\nconclusions (per workflow, large size):\n";
  for (const std::string& recipe : recipes) {
    const core::ExperimentResult* pm =
        bench::find_result(sweep, core::Paradigm::kLC1wPM, recipe, 200);
    const core::ExperimentResult* nopm =
        bench::find_result(sweep, core::Paradigm::kLC1wNoPM, recipe, 200);
    const core::ExperimentResult* cr =
        bench::find_result(sweep, core::Paradigm::kLC10wNoPM, recipe, 200);
    const core::ExperimentResult* nocr =
        bench::find_result(sweep, core::Paradigm::kLC10wNoPMNoCR, recipe, 200);
    if (pm != nullptr && nopm != nullptr) {
      std::cout << core::delta_row(support::format("LC1wNoPM vs LC1wPM [{}]", recipe),
                                   core::compare(*nopm, *pm));
    }
    if (cr != nullptr && nocr != nullptr) {
      std::cout << core::delta_row(
          support::format("LC10wNoPMNoCR vs LC10wNoPM [{}]", recipe),
          core::compare(*nocr, *cr));
    }
  }
  return 0;
}
