// Ablation: pod cold-start latency.
//
// Knative's pod boot time is the serverless tax the paper's group 1
// workflows pay on every scale-up. Sweeping it (0 / 1 / 2.5 / 10 s) on the
// headline Kn10wNoPM deployment quantifies how much of the serverless
// execution-time gap is cold start vs throughput ceiling.
//
// Pass a path as argv[1] to also record a Chrome trace of the paper-default
// 2.5 s cell (task attempts, pod cold-start/serving spans, autoscaler
// decisions) for chrome://tracing / Perfetto.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace wfs;

  const std::string trace_path = argc > 1 ? argv[1] : "";

  std::cout << "Ablation — Knative pod cold-start latency (blast-200, Kn10wNoPM)\n";
  std::cout << "================================================================\n\n";
  std::cout << core::result_header();

  core::ExperimentConfig lc_config;
  lc_config.paradigm = core::Paradigm::kLC10wNoPM;
  lc_config.recipe = "blast";
  lc_config.num_tasks = 200;
  const core::ExperimentResult baseline = core::run_experiment(lc_config);

  std::string attribution;
  for (const double cold_start_s : {0.0, 1.0, 2.5, 10.0}) {
    core::ExperimentConfig config;
    config.paradigm = core::Paradigm::kKn10wNoPM;
    config.recipe = "blast";
    config.num_tasks = 200;
    faas::KnativeServiceSpec spec = core::knative_spec_for(config.paradigm);
    spec.cold_start = sim::from_seconds(cold_start_s);
    config.knative_spec_override = spec;
    if (cold_start_s == 2.5) config.trace_path = trace_path;  // paper default
    core::ExperimentResult result = core::run_experiment(config);
    result.paradigm_name = support::format("cold={:.1f}s", cold_start_s);
    std::cout << core::result_row(result);
    attribution += "  " + result.paradigm_name + "  " + core::overhead_summary(result);
  }
  std::cout << core::result_row(baseline);

  std::cout << "\ncold-start attribution per cell:\n" << attribution;
  if (!trace_path.empty()) {
    std::cout << support::format(
        "\ntrace of the cold=2.5s cell written to {} — open with chrome://tracing "
        "or https://ui.perfetto.dev\n",
        trace_path);
  }

  std::cout << "\nnote: even at zero cold start the serverless run stays slower than\n"
               "the baseline — the dominant cost for dense workflows is the capped\n"
               "aggregate pod compute (max_scale x cpu_limit), not pod boots.\n";
  return 0;
}
