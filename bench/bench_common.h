// Shared sweep/rendering helpers for the figure-reproduction benches.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/experiment.h"
#include "core/report.h"
#include "metrics/ascii_chart.h"
#include "support/format.h"

namespace wfs::bench {

struct SweepResult {
  std::vector<core::ExperimentResult> results;
};

/// Runs the full cross product paradigms x recipes x sizes (the layout of
/// the paper's faceted figures) and prints progress rows as it goes.
/// `jobs` > 1 runs cells on a thread pool (0 = hardware_concurrency):
/// results stay in deterministic grid order, but the printed progress rows
/// arrive in completion order.
inline SweepResult run_sweep(const std::vector<core::Paradigm>& paradigms,
                             const std::vector<std::string>& recipes,
                             const std::vector<std::size_t>& sizes,
                             std::uint64_t seed = 1, std::size_t jobs = 1) {
  core::CampaignSpec spec;
  spec.paradigms = paradigms;
  spec.recipes = recipes;
  spec.sizes = sizes;
  spec.seed = seed;
  spec.jobs = jobs;
  core::Campaign campaign(std::move(spec));
  std::cout << core::result_header();
  campaign.run([](const core::ExperimentResult& result) {
    std::cout << core::result_row(result) << std::flush;
  });
  SweepResult sweep;
  sweep.results = campaign.results();
  return sweep;
}

inline const core::ExperimentResult* find_result(const SweepResult& sweep,
                                                 core::Paradigm paradigm,
                                                 const std::string& recipe, std::size_t size) {
  for (const core::ExperimentResult& result : sweep.results) {
    if (result.config.paradigm == paradigm && result.config.recipe == recipe &&
        result.config.num_tasks == size) {
      return &result;
    }
  }
  return nullptr;
}

/// The figures' four metrics as grouped bars: one group per (recipe, size)
/// row, one bar per paradigm.
inline void print_metric_charts(const SweepResult& sweep,
                                const std::vector<core::Paradigm>& paradigms,
                                const std::vector<std::string>& recipes,
                                const std::vector<std::size_t>& sizes) {
  struct Metric {
    const char* title;
    const char* unit;
    double (*get)(const core::ExperimentResult&);
  };
  const Metric metrics[] = {
      {"execution time", "s",
       [](const core::ExperimentResult& r) { return r.makespan_seconds; }},
      {"mean power", "W",
       [](const core::ExperimentResult& r) { return r.power_watts.time_weighted_mean; }},
      {"mean CPU usage", "%",
       [](const core::ExperimentResult& r) { return r.cpu_percent.time_weighted_mean; }},
      {"mean memory usage", "GiB",
       [](const core::ExperimentResult& r) { return r.memory_gib.time_weighted_mean; }},
  };

  for (const Metric& metric : metrics) {
    std::cout << "\n" << metric.title << ":\n";
    metrics::GroupedBars bars;
    for (const core::Paradigm paradigm : paradigms) {
      bars.series_names.push_back(core::to_string(paradigm));
    }
    for (const std::string& recipe : recipes) {
      for (const std::size_t size : sizes) {
        std::vector<double> row;
        for (const core::Paradigm paradigm : paradigms) {
          const core::ExperimentResult* result = find_result(sweep, paradigm, recipe, size);
          row.push_back(result != nullptr ? metric.get(*result) : 0.0);
        }
        bars.row_labels.push_back(support::format("{}-{}", recipe, size));
        bars.values.push_back(std::move(row));
      }
    }
    metrics::BarChartOptions options;
    options.width = 40;
    options.unit = metric.unit;
    std::cout << metrics::grouped_bar_chart(bars, options);
  }
}

}  // namespace wfs::bench
