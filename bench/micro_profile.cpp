// Micro bench: the run profiler's makespan attribution, self-checked.
//
// Three cells, each engineered so a different segment of the taxonomy owns
// the observed critical path:
//  * cold-start — blast-100 on Kn10wNoPM with a 10 s pod boot and light
//    compute: every scale-up pays ten simulated seconds of boot, so the
//    profiler must blame cold starts;
//  * transfer — genome-100 on the shared drive with 100x file sizes and
//    near-zero compute (the ablation_sharded_store shape): the one-box data
//    plane is the critical resource, so the profiler must blame transfer;
//  * compute — blast-50 on resident local containers at a heavy cpu-work:
//    no cold starts, little queueing, so compute must own the path.
//
// Every cell also asserts the accounting identity the profiler guarantees:
// the critical-path segments sum to the makespan within 1e-6 s. A wrong
// attribution or a broken identity exits non-zero, so the bench doubles as
// a regression gate; --json-out lands the percentages for
// baselines/BENCH_profile.json and scripts/bench_check.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "json/value.h"
#include "json/write.h"
#include "obs/profile.h"
#include "support/cli.h"
#include "support/format.h"

namespace {

struct Cell {
  std::string name;
  wfs::core::ExperimentConfig config;
  wfs::obs::Segment expect;
};

std::vector<Cell> build_cells() {
  using namespace wfs;
  std::vector<Cell> cells;

  {
    Cell cell;
    cell.name = "cold-start";
    cell.config.paradigm = core::Paradigm::kKn10wNoPM;
    cell.config.recipe = "blast";
    cell.config.num_tasks = 100;
    cell.config.cpu_work = 1.0;
    faas::KnativeServiceSpec spec = core::knative_spec_for(cell.config.paradigm);
    spec.cold_start = sim::from_seconds(10.0);
    cell.config.knative_spec_override = spec;
    cell.expect = obs::Segment::kColdStart;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell;
    cell.name = "transfer";
    cell.config.paradigm = core::Paradigm::kKn1wNoPM;
    cell.config.recipe = "genome";
    cell.config.num_tasks = 100;
    cell.config.cpu_work = 1.0;
    cell.config.data_scale = 100.0;
    // Zero pod boot so the data plane — not the first cold start — owns
    // the path; this cell isolates transfer the way the cold cell isolates
    // boot latency.
    faas::KnativeServiceSpec spec = core::knative_spec_for(cell.config.paradigm);
    spec.cold_start = sim::SimTime{0};
    cell.config.knative_spec_override = spec;
    cell.expect = obs::Segment::kTransfer;
    cells.push_back(std::move(cell));
  }
  {
    Cell cell;
    cell.name = "compute";
    cell.config.paradigm = core::Paradigm::kLC10wNoPM;
    cell.config.recipe = "blast";
    cell.config.num_tasks = 50;
    cell.config.cpu_work = 250.0;
    cell.expect = obs::Segment::kCompute;
    cells.push_back(std::move(cell));
  }
  return cells;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("micro_profile",
                         "critical-path attribution on three engineered cells");
  cli.add_flag("json-out", "", "write the figures as JSON to this file");
  if (!cli.parse(argc, argv)) return 1;

  std::cout << "Micro — run profiler attribution (cold-start / transfer / compute cells)\n";
  std::cout << "========================================================================\n";

  bool ok = true;
  json::Array rows;
  for (const Cell& cell : build_cells()) {
    const core::ExperimentResult result = core::run_experiment(cell.config);
    const obs::RunProfile& profile = result.run.profile;
    std::cout << support::format("\n[{}] {}-{} on {}\n", cell.name, cell.config.recipe,
                                 cell.config.num_tasks, result.paradigm_name);
    if (!result.ok() || !profile.valid) {
      std::cout << support::format("FAILED: run did not complete ({})\n",
                                   result.failure_reason);
      ok = false;
      continue;
    }
    std::cout << core::profile_summary(profile);

    // Identity: the critical-path segments tile [0, makespan] exactly.
    const double closure = std::abs(profile.critical.total() - profile.makespan_seconds);
    if (closure > 1e-6) {
      std::cout << support::format(
          "FAILED: attribution does not sum to the makespan (off by {:.9f}s)\n", closure);
      ok = false;
    }
    const obs::Segment dominant = profile.dominant();
    if (dominant != cell.expect) {
      std::cout << support::format("FAILED: expected {} to dominate, profiler blames {}\n",
                                   obs::to_string(cell.expect), obs::to_string(dominant));
      ok = false;
    }

    json::Object row;
    row.set("cell", cell.name);
    row.set("makespan_s", profile.makespan_seconds);
    row.set("static_cp_s", profile.static_cp_seconds);
    row.set("dominant", std::string(obs::to_string(dominant)));
    row.set("dominant_pct", profile.pct(dominant));
    row.set("overhead_pct", profile.pct(obs::Segment::kOverhead));
    for (std::size_t i = 0; i < obs::kSegmentCount; ++i) {
      const auto segment = static_cast<obs::Segment>(i);
      row.set(std::string(obs::to_string(segment)) + "_pct", profile.pct(segment));
    }
    rows.push_back(json::Value(std::move(row)));
  }

  if (!cli.get("json-out").empty()) {
    json::Object doc;
    doc.set("bench", std::string("micro_profile"));
    doc.set("cells", std::move(rows));
    std::ofstream out(cli.get("json-out"));
    out << json::write_pretty(json::Value(std::move(doc))) << "\n";
    std::cout << "\nwrote " << cli.get("json-out") << "\n";
  }

  std::cout << (ok ? "\nall attribution checks passed\n"
                   : "\nFAILED: attribution checks did not hold\n");
  return ok ? 0 : 1;
}
