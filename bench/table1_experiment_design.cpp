// Table I reproduction: the experiment design.
//
// Paper: 140 experiments = 98 fine-grained (7 computational paradigms x 7
// workflows x 2 sizes) + 42 coarse-grained (2 paradigms x 7 workflows x 3
// sizes). This binary enumerates exactly that design out of the paradigm
// catalog and the recipe catalog, so the sweep the other benches run is
// auditable against the paper's Table I.
#include <fstream>
#include <iostream>

#include "core/experiment.h"
#include "core/paradigm.h"
#include "core/report.h"
#include "metrics/registry.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/thread_pool.h"
#include "wfcommons/recipes/recipe.h"

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("table1_experiment_design",
                         "enumerate the paper's Table I design");
  cli.add_flag("jobs", "0",
               "campaign workers to plan for (0 = all cores, 1 = sequential)");
  cli.add_flag("metrics-out", "",
               "write the design plan as a Prometheus exposition (.prom) to this file");
  cli.add_switch("profile",
                 "run one representative cell (blast-200 Kn10wNoPM) and print its "
                 "critical-path attribution");
  if (!cli.parse(argc, argv)) return 1;
  const auto jobs_flag = static_cast<std::size_t>(cli.get_int("jobs"));
  const std::size_t jobs =
      jobs_flag == 0 ? support::ThreadPool::default_workers() : jobs_flag;

  const auto fine = core::fine_grained_paradigms();
  const auto coarse = core::coarse_grained_paradigms();
  const auto families = wfcommons::recipe_names();
  const std::vector<std::size_t> fine_sizes = {50, 200};
  const std::vector<std::size_t> coarse_sizes = {100, 500, 1000};

  std::cout << "Table I — experimental design plan\n";
  std::cout << "==================================\n\n";

  std::size_t fine_count = 0;
  std::cout << support::format("a) fine-grained: {} paradigms x {} workflows x {} sizes\n",
                               fine.size(), families.size(), fine_sizes.size());
  for (const core::Paradigm paradigm : fine) {
    std::cout << "   " << core::to_string(paradigm) << ":";
    for (const std::string& family : families) {
      for (const std::size_t size : fine_sizes) {
        (void)size;
        ++fine_count;
      }
      std::cout << " " << family;
    }
    std::cout << "\n";
  }
  std::cout << support::format("   subtotal: {} experiments\n\n", fine_count);

  std::size_t coarse_count = 0;
  std::cout << support::format("b) coarse-grained: {} paradigms x {} workflows x {} sizes\n",
                               coarse.size(), families.size(), coarse_sizes.size());
  for (const core::Paradigm paradigm : coarse) {
    std::cout << "   " << core::to_string(paradigm) << ": sizes";
    for (const std::size_t size : coarse_sizes) {
      std::cout << " " << size;
      coarse_count += families.size();
    }
    std::cout << " across all " << families.size() << " workflows\n";
  }
  std::cout << support::format("   subtotal: {} experiments\n\n", coarse_count);

  const std::size_t total = fine_count + coarse_count;
  std::cout << support::format("total: {} experiments (paper: 140 = 98 + 42)\n", total);
  // Every cell is an independent simulation, so a full rerun spreads over
  // the campaign thread pool (run_all_wfbench --jobs N).
  std::cout << support::format(
      "execution plan: {} pool workers -> at most {} waves of experiments\n", jobs,
      (total + jobs - 1) / jobs);
  const bool match = fine_count == 98 && coarse_count == 42;
  std::cout << (match ? "design matches the paper's Table I\n"
                      : "WARNING: design deviates from the paper's Table I\n");

  if (!cli.get("metrics-out").empty()) {
    // The plan itself as an exposition: how many cells each granularity and
    // paradigm contributes, and the worker count the plan assumed.
    metrics::MetricsRegistry registry;
    registry
        .counter("table1_planned_experiments_total",
                 "experiment cells in the paper's Table I design",
                 {{"granularity", "fine"}})
        .inc(static_cast<double>(fine_count));
    registry
        .counter("table1_planned_experiments_total",
                 "experiment cells in the paper's Table I design",
                 {{"granularity", "coarse"}})
        .inc(static_cast<double>(coarse_count));
    for (const core::Paradigm paradigm : fine) {
      registry
          .counter("table1_paradigm_cells_total", "cells per computational paradigm",
                   {{"paradigm", core::to_string(paradigm)}})
          .inc(static_cast<double>(families.size() * fine_sizes.size()));
    }
    for (const core::Paradigm paradigm : coarse) {
      registry
          .counter("table1_paradigm_cells_total", "cells per computational paradigm",
                   {{"paradigm", core::to_string(paradigm)}})
          .inc(static_cast<double>(families.size() * coarse_sizes.size()));
    }
    registry.gauge("table1_pool_workers", "campaign workers the plan assumed")
        .set(static_cast<double>(jobs));
    std::ofstream prom(cli.get("metrics-out"));
    if (prom) {
      prom << registry.prometheus_text();
      std::cout << support::format("design exposition written to {}\n",
                                   cli.get("metrics-out"));
    } else {
      std::cerr << "failed to write metrics to " << cli.get("metrics-out") << "\n";
      return 1;
    }
  }

  if (cli.get_switch("profile")) {
    // The design is a plan, not a run — but one representative cell shows
    // what each planned experiment's makespan decomposes into.
    core::ExperimentConfig config;
    config.paradigm = core::Paradigm::kKn10wNoPM;
    config.recipe = "blast";
    config.num_tasks = 200;
    const core::ExperimentResult cell = core::run_experiment(config);
    std::cout << "\nrepresentative cell (blast-200 Kn10wNoPM):\n"
              << core::result_header() << core::result_row(cell)
              << core::profile_summary(cell);
  }
  return match ? 0 : 1;
}
