// Micro-benchmarks: plan building and full end-to-end experiment wall time —
// how expensive a simulated paper cell is on the host machine.
#include <benchmark/benchmark.h>

#include "core/dag.h"
#include "core/experiment.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/knative.h"

namespace {

void BM_BuildPlan(benchmark::State& state) {
  wfs::wfcommons::WorkflowGenerator generator;
  wfs::wfcommons::Workflow wf =
      generator.generate("epigenomics", static_cast<std::size_t>(state.range(0)), 1);
  wfs::wfcommons::KnativeTranslator().apply(wf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::core::build_plan(wf, "/shared"));
  }
}
BENCHMARK(BM_BuildPlan)->Arg(250)->Arg(1000);

void BM_FullExperimentServerless(benchmark::State& state) {
  for (auto _ : state) {
    wfs::core::ExperimentConfig config;
    config.paradigm = wfs::core::Paradigm::kKn10wNoPM;
    config.recipe = "blast";
    config.num_tasks = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(wfs::core::run_experiment(config));
  }
}
BENCHMARK(BM_FullExperimentServerless)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_FullExperimentDepDriven(benchmark::State& state) {
  for (auto _ : state) {
    wfs::core::ExperimentConfig config;
    config.paradigm = wfs::core::Paradigm::kKn10wNoPM;
    config.recipe = "blast";
    config.num_tasks = static_cast<std::size_t>(state.range(0));
    config.wfm.scheduling = wfs::core::SchedulingMode::kDependencyDriven;
    benchmark::DoNotOptimize(wfs::core::run_experiment(config));
  }
}
BENCHMARK(BM_FullExperimentDepDriven)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_FullExperimentLocal(benchmark::State& state) {
  for (auto _ : state) {
    wfs::core::ExperimentConfig config;
    config.paradigm = wfs::core::Paradigm::kLC10wNoPM;
    config.recipe = "blast";
    config.num_tasks = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(wfs::core::run_experiment(config));
  }
}
BENCHMARK(BM_FullExperimentLocal)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace
