// Figure 6 reproduction: coarse-grained granularity, serverless vs local
// containers.
//
// Paper layout: colours = {Kn1000wPM, LC1000wPM}, x-axis = workflow sizes
// (these are the only runs that conclude at the biggest sizes), facets =
// metrics x all 7 workflows. Expected shape (§V-C): with a whole-machine
// reservation serverless is close to — sometimes faster than — local
// containers on execution time, but loses its resource-efficiency edge
// (similar or worse power, CPU and memory).
#include <iostream>

#include "bench_common.h"
#include "support/cli.h"
#include "wfcommons/recipes/recipe.h"

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("fig6_coarse_grained",
                         "coarse-grained serverless vs local containers");
  // --quick keeps CI runs short (drops the 1000-task size).
  cli.add_switch("quick", "drop the 1000-task size");
  cli.add_flag("jobs", "0", "parallel experiment workers (0 = all cores, 1 = sequential)");
  if (!cli.parse(argc, argv)) return 1;
  const bool quick = cli.get_switch("quick");
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  std::cout << "Figure 6 — coarse-grained serverless vs local containers\n";
  std::cout << "========================================================\n\n";

  const std::vector<core::Paradigm> paradigms = core::coarse_grained_paradigms();
  const std::vector<std::string> recipes = wfcommons::recipe_names();
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{100, 500} : std::vector<std::size_t>{100, 500, 1000};

  const bench::SweepResult sweep = bench::run_sweep(paradigms, recipes, sizes, 1, jobs);
  bench::print_metric_charts(sweep, paradigms, recipes, sizes);

  std::cout << "\ncoarse-grained serverless vs local containers (largest size):\n";
  const std::size_t largest = sizes.back();
  for (const std::string& recipe : recipes) {
    const core::ExperimentResult* kn =
        bench::find_result(sweep, core::Paradigm::kKn1000wPM, recipe, largest);
    const core::ExperimentResult* lc =
        bench::find_result(sweep, core::Paradigm::kLC1000wPM, recipe, largest);
    if (kn != nullptr && lc != nullptr && kn->ok() && lc->ok()) {
      std::cout << core::delta_row(support::format("Kn1000wPM vs LC1000wPM [{}]", recipe),
                                   core::compare(*kn, *lc));
    }
  }
  return 0;
}
