// Plan-representation micro-bench: the PR-6 before/after ablation.
//
// Builds the SAME translated workflow into both plan representations —
//  * legacy: the seed's row-of-structs `vector<vector<PlannedTask>>`
//    (per-task strings, per-task TaskParams, per-task heap edge vectors),
//  * columnar: the ExecutionPlan structure-of-arrays (interned arena,
//    constant-compressed columns, CSR adjacency) —
// and reports, at 10^3 and 10^5 tasks:
//  * bytes/task of live heap each representation retains (global
//    operator new/delete are intercepted and malloc_usable_size-accounted,
//    so the figure includes allocator rounding, i.e. real memory);
//  * simulated tasks/second of a dependency-driven ready-set sweep over
//    the whole DAG (the dispatcher's data-structure walk with the network
//    and simulator stripped away: pop a ready task, read its cpu_work,
//    decrement its children's pending counters, push newly-ready ids).
//
// Exit status: 0 when, at the largest size, the columnar plan is at least
// --min-ratio x smaller per task AND sweeps faster than the legacy
// representation; 1 otherwise. --json-out lands the figures for
// baselines/BENCH_plan.json.
#include <malloc.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dag.h"
#include "json/value.h"
#include "json/write.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/translators/knative.h"

namespace {

// Live-heap accounting: every global new/delete passes through here.
// malloc_usable_size counts the bytes the allocator actually dedicates to
// the block (request + rounding), so deltas measure real retained memory.
std::atomic<std::int64_t> g_live_bytes{0};
std::atomic<std::int64_t> g_live_blocks{0};

void track_alloc(void* p) noexcept {
  g_live_bytes.fetch_add(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  g_live_blocks.fetch_add(1, std::memory_order_relaxed);
}

void track_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_bytes.fetch_sub(static_cast<std::int64_t>(malloc_usable_size(p)),
                         std::memory_order_relaxed);
  g_live_blocks.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) {
  if (void* p = std::malloc(size)) {
    track_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  if (void* p = std::malloc(size)) {
    track_alloc(p);
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  track_free(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  track_free(p);
  std::free(p);
}

namespace {

using wfs::core::ExecutionPlan;
using wfs::core::PlannedTask;
using wfs::core::TaskId;

std::int64_t live_bytes() { return g_live_bytes.load(std::memory_order_relaxed); }

wfs::wfcommons::Workflow translated(const std::string& recipe, std::size_t tasks) {
  wfs::wfcommons::GenerateOptions options;
  options.num_tasks = tasks;
  options.seed = 1;
  wfs::wfcommons::Workflow wf = wfs::wfcommons::make_recipe(recipe)->generate(options);
  wfs::wfcommons::KnativeTranslatorConfig config;
  config.service_url = "http://svc:80/wfbench";
  wfs::wfcommons::KnativeTranslator(config).apply(wf);
  return wf;
}

/// The seed's plan representation, built the way the seed's build_plan
/// built it (exact reserves — measured at its best).
struct LegacyPlan {
  std::vector<std::vector<PlannedTask>> phases;
};

void build_legacy(LegacyPlan& out, const wfs::wfcommons::Workflow& wf,
                  const std::string& workdir) {
  std::unordered_map<std::string, std::size_t> flat_ids;
  std::size_t next_id = 0;
  const auto level_decomposition = wfs::wfcommons::levels(wf);
  out.phases.reserve(level_decomposition.size());
  for (std::size_t level = 0; level < level_decomposition.size(); ++level) {
    std::vector<PlannedTask> phase;
    phase.reserve(level_decomposition[level].size());
    for (const wfs::wfcommons::Task* task : level_decomposition[level]) {
      phase.push_back(PlannedTask{task->name, task->api_url,
                                  wfs::core::to_task_params(*task, workdir), level,
                                  {}, {}});
      flat_ids.emplace(task->name, next_id++);
    }
    out.phases.push_back(std::move(phase));
  }
  std::size_t level_start = 0;
  for (std::size_t level = 0; level < level_decomposition.size(); ++level) {
    for (std::size_t i = 0; i < level_decomposition[level].size(); ++i) {
      const wfs::wfcommons::Task* task = level_decomposition[level][i];
      PlannedTask& planned = out.phases[level][i];
      planned.parents.reserve(task->parents.size());
      for (const std::string& parent : task->parents) {
        planned.parents.push_back(flat_ids.at(parent));
      }
      planned.children.reserve(task->children.size());
      for (const std::string& child : task->children) {
        planned.children.push_back(flat_ids.at(child));
      }
    }
    level_start += level_decomposition[level].size();
  }
}

struct SweepResult {
  double tasks_per_sec = 0.0;
  std::size_t processed = 0;
};

/// Dependency-driven ready-set sweep over the legacy representation: the
/// seed WFM's walk — a flat pointer table into the phase vectors, per-task
/// heap `children` vectors, `pending` counters sized from `parents`.
SweepResult sweep_legacy(const LegacyPlan& plan, std::size_t rounds) {
  std::vector<const PlannedTask*> tasks;
  for (const auto& phase : plan.phases) {
    for (const PlannedTask& task : phase) tasks.push_back(&task);
  }
  const std::size_t n = tasks.size();
  std::vector<std::size_t> pristine(n);
  for (std::size_t i = 0; i < n; ++i) pristine[i] = tasks[i]->parents.size();

  std::vector<std::size_t> pending(n);
  std::vector<std::size_t> queue;
  queue.reserve(n);
  double sink = 0.0;
  std::size_t processed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    pending = pristine;
    queue.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (pending[i] == 0) queue.push_back(i);
    }
    std::size_t head = 0;
    while (head < queue.size()) {
      const std::size_t id = queue[head++];
      sink += tasks[id]->params.cpu_work;
      for (const std::size_t child : tasks[id]->children) {
        if (--pending[child] == 0) queue.push_back(child);
      }
    }
    processed += queue.size();
  }
  const auto stop = std::chrono::steady_clock::now();
  [[maybe_unused]] static volatile double g_sink;
  g_sink = sink;
  SweepResult result;
  result.processed = processed;
  result.tasks_per_sec = static_cast<double>(processed) /
                         std::chrono::duration<double>(stop - start).count();
  return result;
}

/// The same sweep over the columnar plan: indegree column copied into the
/// pending counters, children as CSR spans, cpu_work as a flat column read.
SweepResult sweep_columnar(const ExecutionPlan& plan, std::size_t rounds) {
  const std::size_t n = plan.task_count();
  const auto indegrees = plan.indegrees();
  std::vector<std::uint32_t> pending(n);
  std::vector<TaskId> queue;
  queue.reserve(n);
  double sink = 0.0;
  std::size_t processed = 0;
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t round = 0; round < rounds; ++round) {
    std::copy(indegrees.begin(), indegrees.end(), pending.begin());
    queue.clear();
    for (TaskId id = 0; id < n; ++id) {
      if (pending[id] == 0) queue.push_back(id);
    }
    std::size_t head = 0;
    while (head < queue.size()) {
      const TaskId id = queue[head++];
      sink += plan.cpu_work(id);
      for (const TaskId child : plan.children(id)) {
        if (--pending[child] == 0) queue.push_back(child);
      }
    }
    processed += queue.size();
  }
  const auto stop = std::chrono::steady_clock::now();
  [[maybe_unused]] static volatile double g_sink;
  g_sink = sink;
  SweepResult result;
  result.processed = processed;
  result.tasks_per_sec = static_cast<double>(processed) /
                         std::chrono::duration<double>(stop - start).count();
  return result;
}

struct SizeReport {
  std::size_t tasks = 0;
  double legacy_bytes_per_task = 0.0;
  double columnar_bytes_per_task = 0.0;
  double compression_ratio = 0.0;
  double legacy_tasks_per_sec = 0.0;
  double columnar_tasks_per_sec = 0.0;
  double sweep_speedup = 0.0;
};

SizeReport run_size(const std::string& recipe, std::size_t tasks) {
  const wfs::wfcommons::Workflow wf = translated(recipe, tasks);
  const std::string workdir = "/shared/wfbench";

  // Build each representation inside a live-byte window; every build
  // temporary (level decomposition, id maps, builder streams) is freed
  // before the window closes, so the delta is exactly what the
  // representation retains.
  auto legacy = std::make_unique<LegacyPlan>();
  const std::int64_t legacy_before = live_bytes();
  build_legacy(*legacy, wf, workdir);
  const std::int64_t legacy_bytes = live_bytes() - legacy_before;

  auto plan = std::make_unique<ExecutionPlan>();
  const std::int64_t columnar_before = live_bytes();
  *plan = wfs::core::build_plan(wf, workdir);
  const std::int64_t columnar_bytes = live_bytes() - columnar_before;

  const std::size_t n = plan->task_count();
  // Enough rounds that the sweep timing window is well above clock noise.
  const std::size_t rounds = std::max<std::size_t>(3, 3'000'000 / std::max<std::size_t>(n, 1));
  const SweepResult legacy_sweep = sweep_legacy(*legacy, rounds);
  const SweepResult columnar_sweep = sweep_columnar(*plan, rounds);
  if (legacy_sweep.processed != rounds * n || columnar_sweep.processed != rounds * n) {
    std::cerr << "FAILED: sweep did not visit every task (cycle or broken edges)\n";
    std::exit(1);
  }

  SizeReport report;
  report.tasks = n;
  report.legacy_bytes_per_task =
      static_cast<double>(legacy_bytes) / static_cast<double>(n);
  report.columnar_bytes_per_task =
      static_cast<double>(columnar_bytes) / static_cast<double>(n);
  report.compression_ratio = report.legacy_bytes_per_task / report.columnar_bytes_per_task;
  report.legacy_tasks_per_sec = legacy_sweep.tasks_per_sec;
  report.columnar_tasks_per_sec = columnar_sweep.tasks_per_sec;
  report.sweep_speedup = report.columnar_tasks_per_sec / report.legacy_tasks_per_sec;
  return report;
}

void print_report(const SizeReport& r) {
  std::cout << wfs::support::format("{} tasks\n", r.tasks);
  std::cout << wfs::support::format("  bytes/task     legacy {:>10.1f}   columnar {:>8.1f}   ratio {:>5.2f}x\n",
                                    r.legacy_bytes_per_task, r.columnar_bytes_per_task,
                                    r.compression_ratio);
  std::cout << wfs::support::format("  sweep tasks/s  legacy {:>10.3g}   columnar {:>8.3g}   speedup {:>4.2f}x\n\n",
                                    r.legacy_tasks_per_sec, r.columnar_tasks_per_sec,
                                    r.sweep_speedup);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("micro_plan",
                         "plan representation ablation: row-of-structs vs columnar");
  cli.add_flag("recipe", "blast", "workflow family to instantiate");
  cli.add_flag("small", "1000", "small instance size (tasks)");
  cli.add_flag("large", "100000", "large instance size (tasks)");
  cli.add_flag("min-ratio", "5", "required bytes/task compression at the large size");
  cli.add_flag("json-out", "", "write the figures as JSON to this file");
  if (!cli.parse(argc, argv)) return 1;

  const std::string recipe = cli.get("recipe");
  const auto small = static_cast<std::size_t>(cli.get_int("small"));
  const auto large = static_cast<std::size_t>(cli.get_int("large"));
  const double min_ratio = cli.get_double("min-ratio");

  std::cout << "micro_plan — row-of-structs vs columnar ExecutionPlan (" << recipe
            << ")\n";
  std::cout << "================================================================\n\n";

  const SizeReport small_report = run_size(recipe, small);
  print_report(small_report);
  const SizeReport large_report = run_size(recipe, large);
  print_report(large_report);

  if (!cli.get("json-out").empty()) {
    json::Object doc;
    doc.set("bench", std::string("micro_plan"));
    doc.set("recipe", recipe);
    json::Array sizes;
    for (const SizeReport* r : {&small_report, &large_report}) {
      json::Object o;
      o.set("tasks", r->tasks);
      o.set("legacy_bytes_per_task", r->legacy_bytes_per_task);
      o.set("columnar_bytes_per_task", r->columnar_bytes_per_task);
      o.set("compression_ratio", r->compression_ratio);
      o.set("legacy_tasks_per_sec", r->legacy_tasks_per_sec);
      o.set("columnar_tasks_per_sec", r->columnar_tasks_per_sec);
      o.set("sweep_speedup", r->sweep_speedup);
      sizes.push_back(json::Value(std::move(o)));
    }
    doc.set("sizes", std::move(sizes));
    std::ofstream out(cli.get("json-out"));
    out << json::write_pretty(json::Value(std::move(doc))) << "\n";
    std::cout << "wrote " << cli.get("json-out") << "\n";
  }

  bool ok = true;
  if (large_report.compression_ratio < min_ratio) {
    std::cout << support::format(
        "FAILED: bytes/task compression {:.2f}x below required {:g}x at {} tasks\n",
        large_report.compression_ratio, min_ratio, large_report.tasks);
    ok = false;
  }
  if (large_report.sweep_speedup <= 1.0) {
    std::cout << support::format(
        "FAILED: columnar sweep not faster ({:.2f}x) at {} tasks\n",
        large_report.sweep_speedup, large_report.tasks);
    ok = false;
  }
  if (ok) {
    std::cout << support::format(
        "columnar plan: {:.2f}x smaller, {:.2f}x faster sweep at {} tasks\n",
        large_report.compression_ratio, large_report.sweep_speedup, large_report.tasks);
  }
  return ok ? 0 : 1;
}
