// Figure 7 reproduction: the headline comparison between the best serverless
// setup (Kn10wNoPM) and the directly comparable local-container baseline
// (LC10wNoPM) across all seven workflow families.
//
// Expected shape (§V-D):
//  * group 1 (Blast, BWA, Genome, Seismology, Srasearch): serverless shows
//    longer execution time, as expected;
//  * group 2 (Cycles, Epigenomics): the gap is much narrower;
//  * across the board serverless matches power while cutting CPU usage (the
//    paper reports up to 78.11%) and memory usage (up to 73.92%).
// Pass a positional path argument to also record a Chrome trace of one
// extra blast-200 Kn10wNoPM cell (for chrome://tracing / Perfetto
// inspection of where the serverless time goes).
#include <algorithm>
#include <fstream>
#include <iostream>

#include "bench_common.h"
#include "support/cli.h"
#include "wfcommons/recipes/recipe.h"

int main(int argc, char** argv) {
  using namespace wfs;
  support::CliParser cli("fig7_serverless_vs_lc",
                         "serverless vs local containers headline comparison");
  cli.add_flag("jobs", "0", "parallel experiment workers (0 = all cores, 1 = sequential)");
  cli.add_flag("metrics-out", "",
               "write the sweep's merged Prometheus exposition (.prom) to this file");
  cli.add_switch("profile",
                 "run one blast-200 Kn10wNoPM cell and print its critical-path attribution");
  if (!cli.parse(argc, argv)) return 1;
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));

  std::cout << "Figure 7 — serverless (Kn10wNoPM) vs local containers (LC10wNoPM)\n";
  std::cout << "=================================================================\n\n";

  const std::vector<core::Paradigm> paradigms = {core::Paradigm::kKn10wNoPM,
                                                 core::Paradigm::kLC10wNoPM};
  const std::vector<std::string> recipes = wfcommons::recipe_names();
  const std::vector<std::size_t> sizes = {50, 200};

  const bench::SweepResult sweep = bench::run_sweep(paradigms, recipes, sizes, 1, jobs);
  bench::print_metric_charts(sweep, paradigms, recipes, sizes);

  std::cout << "\nserverless vs local containers, per family (200-task instances):\n";
  double best_cpu = 0.0;
  double best_memory = 0.0;
  std::string best_cpu_family;
  std::string best_memory_family;
  for (const std::string& recipe : recipes) {
    const core::ExperimentResult* kn =
        bench::find_result(sweep, core::Paradigm::kKn10wNoPM, recipe, 200);
    const core::ExperimentResult* lc =
        bench::find_result(sweep, core::Paradigm::kLC10wNoPM, recipe, 200);
    if (kn == nullptr || lc == nullptr || !kn->ok() || !lc->ok()) continue;
    const core::MetricDeltas deltas = core::compare(*kn, *lc);
    std::cout << core::delta_row(recipe, deltas);
    if (deltas.cpu_pct < best_cpu) {
      best_cpu = deltas.cpu_pct;
      best_cpu_family = recipe;
    }
    if (deltas.memory_pct < best_memory) {
      best_memory = deltas.memory_pct;
      best_memory_family = recipe;
    }
  }

  std::cout << support::format(
      "\nheadline: serverless reduces CPU usage by up to {:.2f}% ({}) and memory usage by up "
      "to {:.2f}% ({})\n",
      -best_cpu, best_cpu_family, -best_memory, best_memory_family);
  std::cout << "paper reports: up to 78.11% (CPU) and 73.92% (memory)\n";

  if (!cli.get("metrics-out").empty()) {
    // Per-cell registries merge into one exposition: counters and histogram
    // buckets add across cells, gauges keep their maxima.
    const metrics::MetricsSnapshot merged = core::merged_metrics(sweep.results);
    std::ofstream prom(cli.get("metrics-out"));
    if (prom) {
      prom << metrics::prometheus_text(merged);
      std::cout << support::format("merged metrics exposition written to {}\n",
                                   cli.get("metrics-out"));
    } else {
      std::cerr << "failed to write metrics to " << cli.get("metrics-out") << "\n";
      return 1;
    }
  }

  if (!cli.positional().empty() || cli.get_switch("profile")) {
    // One extra cell: blast-200 on the serverless headline setup — traced
    // when a path was given, profiled when --profile asked for it (the two
    // compose: the trace then carries the critical-path lane).
    core::ExperimentConfig config;
    config.paradigm = core::Paradigm::kKn10wNoPM;
    config.recipe = "blast";
    config.num_tasks = 200;
    if (!cli.positional().empty()) config.trace_path = cli.positional().front();
    const core::ExperimentResult extra = core::run_experiment(config);
    std::cout << "\nblast-200 Kn10wNoPM cell:\n" << core::overhead_summary(extra);
    if (cli.get_switch("profile")) std::cout << core::profile_summary(extra);
    if (!config.trace_path.empty()) {
      std::cout << support::format(
          "trace written to {} — open with chrome://tracing or https://ui.perfetto.dev\n",
          config.trace_path);
    }
  }
  return 0;
}
