// Micro-benchmarks: workflow generation and analysis scaling across the
// seven recipe families.
#include <benchmark/benchmark.h>

#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/recipes/recipe.h"

namespace {

void BM_GenerateFamily(benchmark::State& state, const std::string& family) {
  wfs::wfcommons::WorkflowGenerator generator;
  const auto tasks = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate(family, tasks, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * tasks));
}

BENCHMARK_CAPTURE(BM_GenerateFamily, blast, std::string("blast"))->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, bwa, std::string("bwa"))->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, cycles, std::string("cycles"))->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, epigenomics, std::string("epigenomics"))
    ->Arg(250)
    ->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, genome, std::string("genome"))->Arg(250)->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, seismology, std::string("seismology"))
    ->Arg(250)
    ->Arg(1000);
BENCHMARK_CAPTURE(BM_GenerateFamily, srasearch, std::string("srasearch"))->Arg(250)->Arg(1000);

void BM_ValidateWorkflow(benchmark::State& state) {
  wfs::wfcommons::WorkflowGenerator generator;
  const wfs::wfcommons::Workflow wf =
      generator.generate("epigenomics", static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wf.validate());
  }
}
BENCHMARK(BM_ValidateWorkflow)->Arg(250)->Arg(1000);

void BM_LevelDecomposition(benchmark::State& state) {
  wfs::wfcommons::WorkflowGenerator generator;
  const wfs::wfcommons::Workflow wf =
      generator.generate("cycles", static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wfs::wfcommons::levels(wf));
  }
}
BENCHMARK(BM_LevelDecomposition)->Arg(250)->Arg(1000);

}  // namespace
