// Ablation: fault tolerance under pod churn.
//
// Knative gives the paper's framework "fault-tolerance" for free at the
// platform level (§III) — but a crashed pod still 503s its in-flight
// wfbench invocations, and the paper's WFM prototype has no retries, so a
// single crash fails the workflow. This sweep quantifies the interplay:
// chaos kill rate x WFM retry budget on blast-120, Kn10wNoPM.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"

int main() {
  using namespace wfs;

  std::cout << "Ablation — pod churn vs WFM retries (blast-120, Kn10wNoPM)\n";
  std::cout << "==========================================================\n\n";
  std::cout << support::format("{:<12} {:<9} {:<8} {:>9} {:>9} {:>9} {:>7}\n", "kill rate",
                               "retries", "status", "time(s)", "failed", "resent",
                               "kills");

  for (const double kill_rate : {0.0, 0.0005, 0.001, 0.002}) {
    for (const int retries : {0, 2, 6}) {
      core::ExperimentConfig config;
      config.paradigm = core::Paradigm::kKn10wNoPM;
      config.recipe = "blast";
      config.num_tasks = 120;
      faas::KnativeServiceSpec spec = core::knative_spec_for(config.paradigm);
      spec.chaos_pod_kill_rate = kill_rate;
      config.knative_spec_override = spec;
      config.wfm.task_retries = retries;
      const core::ExperimentResult result = core::run_experiment(config);
      std::cout << support::format("{:<12} {:<9} {:<8} {:>9.1f} {:>9} {:>9} {:>7}\n",
                                   support::format("{:.4f}/tick", kill_rate), retries,
                                   result.ok() ? "ok" : "FAILED", result.makespan_seconds,
                                   result.run.tasks_failed, result.run.task_retries,
                                   result.chaos_kills);
    }
    std::cout << "\n";
  }
  std::cout << "without retries any churn fails the run (the paper prototype's\n"
               "behaviour); a small retry budget restores completion at a modest\n"
               "makespan cost, because wfbench functions are idempotent.\n";
  return 0;
}
