// Ablation: KPA autoscaler configuration.
//
// The paper varies "the configurations of the auto-scaling mechanisms for
// the serverless setups" (Table I) and discusses how eager scale-up creates
// under-utilised pods (§VI). This sweep isolates three knobs on blast-200:
//   * max_scale — the replica ceiling (the throughput/efficiency trade);
//   * target utilisation — how aggressively pods are packed;
//   * scale-to-zero grace — how long idle pods hold memory.
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"

namespace {

wfs::core::ExperimentResult run_with(wfs::faas::KnativeServiceSpec spec, std::string label) {
  wfs::core::ExperimentConfig config;
  config.paradigm = wfs::core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 200;
  config.knative_spec_override = std::move(spec);
  wfs::core::ExperimentResult result = wfs::core::run_experiment(config);
  result.paradigm_name = std::move(label);
  return result;
}

}  // namespace

int main() {
  using namespace wfs;

  std::cout << "Ablation — autoscaler configuration (blast-200, Kn10wNoPM base)\n";
  std::cout << "===============================================================\n\n";

  const faas::KnativeServiceSpec base = core::knative_spec_for(core::Paradigm::kKn10wNoPM);

  std::cout << "max_scale (replica ceiling):\n" << core::result_header();
  for (const int max_scale : {4, 8, 16, 32}) {
    faas::KnativeServiceSpec spec = base;
    spec.max_scale = max_scale;
    std::cout << core::result_row(run_with(spec, support::format("max={}", max_scale)));
  }

  std::cout << "\ntarget utilisation (pod packing):\n" << core::result_header();
  for (const double target : {0.5, 0.7, 0.9}) {
    faas::KnativeServiceSpec spec = base;
    spec.autoscaler.target_utilization = target;
    std::cout << core::result_row(run_with(spec, support::format("target={:.1f}", target)));
  }

  std::cout << "\nautoscaler tick (scale-up reaction time):\n" << core::result_header();
  for (const double tick_s : {0.5, 2.0, 5.0, 10.0}) {
    faas::KnativeServiceSpec spec = base;
    spec.autoscaler.tick = sim::from_seconds(tick_s);
    std::cout << core::result_row(run_with(spec, support::format("tick={:.1f}s", tick_s)));
  }

  std::cout << "\nnote: raising max_scale buys execution time at the cost of the very\n"
               "CPU/memory savings that motivate serverless — the paper's fine- vs\n"
               "coarse-grained tension in one knob.\n";
  return 0;
}
