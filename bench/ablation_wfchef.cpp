// Ablation: WfChef-derived recipes vs the hand-written structural recipes.
//
// WfCommons' pipeline is WfInstances -> WfChef -> WfGen (paper Figure 2).
// This bench validates the learned path: for each family with a curated
// instance, generate a 200-task workflow from (a) the hand-written recipe
// and (b) the WfChef profile learned from the instance, run both through
// the headline Figure 7 pair, and compare the serverless-vs-local deltas.
// If the chef learned the family faithfully, the deltas land close.
#include <iostream>
#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "core/workflow_manager.h"
#include "faas/platform.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"

#include "core/experiment.h"
#include "core/report.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/translators/local_container.h"
#include "wfcommons/wfchef.h"
#include "wfcommons/wfinstances.h"

namespace {

// Run a pre-built workflow under a paradigm (the ExperimentRunner generates
// from the recipe catalog, so chef-derived workflows go through the lower
// level API here).
wfs::core::ExperimentResult run_workflow(wfs::wfcommons::Workflow workflow,
                                         wfs::core::Paradigm paradigm) {
  using namespace wfs;
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);
  const core::ParadigmInfo& info = core::paradigm_info(paradigm);

  std::unique_ptr<faas::KnativePlatform> knative;
  std::unique_ptr<containers::LocalContainerRuntime> local;
  if (info.serverless) {
    faas::KnativeServiceSpec spec = core::knative_spec_for(paradigm);
    wfcommons::KnativeTranslatorConfig tconfig;
    tconfig.service_url = "http://" + spec.authority + "/wfbench";
    wfcommons::KnativeTranslator(tconfig).apply(workflow);
    knative = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    knative->deploy();
  } else {
    containers::LocalRuntimeConfig config = core::local_config_for(paradigm);
    wfcommons::LocalContainerTranslatorConfig tconfig;
    tconfig.endpoint_url = "http://" + config.authority + "/wfbench";
    wfcommons::LocalContainerTranslator(tconfig).apply(workflow);
    local = std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router,
                                                                config);
    local->start();
  }

  metrics::Sampler sampler(sim);
  sampler.add_probe("cpu", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.add_probe("mem", [&cluster] {
    return static_cast<double>(cluster.resident_memory()) / (1024.0 * 1024.0 * 1024.0);
  });
  sampler.add_probe("power", [&cluster] { return cluster.power_watts(); });
  sampler.add_probe("pods", [&] { return knative ? knative->ready_pods() : 0.0; });
  sampler.sample_now();
  sampler.start();

  core::WorkflowManager wfm(sim, router, fs);
  std::optional<core::WorkflowRunResult> run;
  wfm.run(workflow, [&](core::WorkflowRunResult r) {
    run = std::move(r);
    sampler.sample_now();
    sampler.stop();
  });
  sim.run_until(4 * sim::kHour);

  core::ExperimentResult result;
  result.paradigm_name = info.name;
  result.workflow_name = workflow.name();
  result.config.num_tasks = workflow.size();
  if (run.has_value()) {
    result.completed = run->completed;
    result.run = std::move(*run);
    result.makespan_seconds = result.run.makespan_seconds;
  }
  result.cpu_series = sampler.series("cpu");
  result.memory_series = sampler.series("mem");
  result.power_series = sampler.series("power");
  result.pods_series = sampler.series("pods");
  result.cpu_percent = metrics::summarize(result.cpu_series);
  result.memory_gib = metrics::summarize(result.memory_series);
  result.power_watts = metrics::summarize(result.power_series);
  result.energy_joules = result.power_series.integral();
  if (knative) knative->shutdown();
  if (local) local->shutdown();
  return result;
}

}  // namespace

int main() {
  using namespace wfs;

  std::cout << "Ablation — WfChef-derived vs hand-written recipes (200 tasks, Fig. 7 pair)\n";
  std::cout << "==========================================================================\n\n";

  wfcommons::GenerateOptions options;
  options.num_tasks = 200;
  options.seed = 1;

  for (const std::string family : {"blast", "epigenomics", "seismology", "cycles"}) {
    const auto hand = wfcommons::make_recipe(family);
    const auto chef = wfcommons::chef_from_instances(family);

    const core::ExperimentResult hand_kn =
        run_workflow(hand->generate(options), core::Paradigm::kKn10wNoPM);
    const core::ExperimentResult hand_lc =
        run_workflow(hand->generate(options), core::Paradigm::kLC10wNoPM);
    const core::ExperimentResult chef_kn =
        run_workflow(chef->generate(options), core::Paradigm::kKn10wNoPM);
    const core::ExperimentResult chef_lc =
        run_workflow(chef->generate(options), core::Paradigm::kLC10wNoPM);

    std::cout << core::delta_row(support::format("hand-written [{}]", family),
                                 core::compare(hand_kn, hand_lc));
    std::cout << core::delta_row(support::format("wfchef-derived [{}]", family),
                                 core::compare(chef_kn, chef_lc));
    std::cout << "\n";
  }
  std::cout << "close deltas mean the learned profiles carry the structural features\n"
               "(phase widths, category mix, knob ranges) the paradigm comparison\n"
               "actually depends on — WfChef closes the WfCommons loop.\n";
  return 0;
}
