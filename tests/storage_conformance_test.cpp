// Backend-conformance suite: SharedFilesystem, ObjectStore and
// ShardedObjectStore must agree on the storage-layer contract — miss
// accounting, congestion-slot semantics, cleanup (clear/remove) hygiene
// across in-flight completions, and the metrics they emit. Each divergence here was a real bug: the shared-fs
// miss path used to occupy no congestion slot and record no op-duration
// observation, clear() left counters stale, and an in-flight write callback
// could resurrect its file after clear()/remove().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "sim/simulation.h"
#include "storage/object_store.h"
#include "storage/shared_fs.h"
#include "storage/sharded_store.h"

namespace wfs {
namespace {

/// Uniform handle over both backends so every conformance test runs
/// verbatim against each.
struct Backend {
  std::string name;           // metrics label
  storage::DataStore* store = nullptr;
  std::function<std::size_t()> inflight;
  sim::SimTime miss_latency = 0;
};

class SharedFsBackend {
 public:
  explicit SharedFsBackend(sim::Simulation& sim) {
    storage::SharedFsConfig config;
    config.op_latency = 2 * sim::kMillisecond;
    fs_ = std::make_unique<storage::SharedFilesystem>(sim, config);
  }
  Backend backend() {
    return {"shared_fs", fs_.get(), [this] { return fs_->inflight_ops(); },
            2 * sim::kMillisecond};
  }

 private:
  std::unique_ptr<storage::SharedFilesystem> fs_;
};

class ObjectStoreBackend {
 public:
  explicit ObjectStoreBackend(sim::Simulation& sim) {
    storage::ObjectStoreConfig config;
    config.request_latency = 15 * sim::kMillisecond;
    os_ = std::make_unique<storage::ObjectStore>(sim, config);
  }
  Backend backend() {
    return {"object_store", os_.get(), [this] { return os_->inflight_ops(); },
            15 * sim::kMillisecond};
  }

 private:
  std::unique_ptr<storage::ObjectStore> os_;
};

class ShardedBackend {
 public:
  explicit ShardedBackend(sim::Simulation& sim) {
    storage::ShardedStoreConfig config;
    config.op_latency = 5 * sim::kMillisecond;
    store_ = std::make_unique<storage::ShardedObjectStore>(sim, config);
  }
  Backend backend() {
    return {"sharded_store", store_.get(), [this] { return store_->inflight_ops(); },
            5 * sim::kMillisecond};
  }

 private:
  std::unique_ptr<storage::ShardedObjectStore> store_;
};

template <typename Fn>
void for_each_backend(Fn&& fn) {
  {
    sim::Simulation sim;
    SharedFsBackend shared(sim);
    Backend backend = shared.backend();
    SCOPED_TRACE("backend=shared_fs");
    fn(sim, backend);
  }
  {
    sim::Simulation sim;
    ObjectStoreBackend object(sim);
    Backend backend = object.backend();
    SCOPED_TRACE("backend=object_store");
    fn(sim, backend);
  }
  {
    sim::Simulation sim;
    ShardedBackend sharded(sim);
    Backend backend = sharded.backend();
    SCOPED_TRACE("backend=sharded_store");
    fn(sim, backend);
  }
}

// ---- satellite: unified miss accounting -------------------------------------

TEST(StorageConformance, MissOccupiesACongestionSlotWhileInFlight) {
  // Regression: the shared-fs miss path used to schedule its callback
  // without taking an inflight slot, so a storm of misses (WFM polling)
  // never contended with real transfers — unlike the object store, whose
  // 404s go through the same frontend. A miss is an op: it holds a slot
  // for its latency window on BOTH backends.
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    bool called = false;
    backend.store->read("missing", [&](bool ok) {
      called = true;
      EXPECT_FALSE(ok);
    });
    EXPECT_FALSE(called);
    EXPECT_EQ(backend.inflight(), 1u);  // the miss holds a slot
    sim.run();
    EXPECT_TRUE(called);
    EXPECT_EQ(backend.inflight(), 0u);
    EXPECT_EQ(sim.now(), backend.miss_latency);
    EXPECT_EQ(backend.store->failed_reads(), 1u);
  });
}

TEST(StorageConformance, MissCountsAsReadOpAndLandsInTheDurationHistogram) {
  // The other half of the divergence: a miss must show up in
  // storage_ops_total{op=read} and storage_op_duration_seconds like any
  // completed operation, on both backends, identically.
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    metrics::MetricsRegistry registry;
    backend.store->set_metrics(&registry);
    backend.store->read("missing", [](bool) {});
    sim.run();

    const metrics::MetricsSnapshot snapshot = registry.snapshot();
    const metrics::MetricPoint* ops = snapshot.find(
        "storage_ops_total", {{"backend", backend.name}, {"op", "read"}});
    ASSERT_NE(ops, nullptr);
    EXPECT_DOUBLE_EQ(ops->value, 1.0);
    const metrics::MetricPoint* failed =
        snapshot.find("storage_failed_reads_total", {{"backend", backend.name}});
    ASSERT_NE(failed, nullptr);
    EXPECT_DOUBLE_EQ(failed->value, 1.0);
    const metrics::MetricPoint* duration = snapshot.find(
        "storage_op_duration_seconds", {{"backend", backend.name}, {"op", "read"}});
    ASSERT_NE(duration, nullptr);
    EXPECT_EQ(duration->histogram.count, 1u);
    EXPECT_NEAR(duration->histogram.sum, sim::to_seconds(backend.miss_latency), 1e-9);
    // No bytes moved: the bytes family stays untouched by a miss.
    const metrics::MetricPoint* bytes = snapshot.find(
        "storage_bytes_total", {{"backend", backend.name}, {"op", "read"}});
    if (bytes != nullptr) EXPECT_DOUBLE_EQ(bytes->value, 0.0);
  });
}

TEST(SharedFsConformance, MissContendsWithRealTransfersAtTheBoundary) {
  // With congestion_threshold = 1, an in-flight miss pushes a concurrent
  // real read over the threshold: the read's slot count is 2, so it gets
  // half the pipe. Before the fix the miss was invisible to the congestion
  // model and the read ran at full bandwidth.
  sim::Simulation sim;
  storage::SharedFsConfig config;
  config.op_latency = 2 * sim::kMillisecond;
  config.read_bandwidth_bps = 1e6;  // 1 MB/s
  config.congestion_threshold = 1;
  storage::SharedFilesystem fs(sim, config);
  fs.stage("real.dat", 1'000'000);

  fs.read("missing", [](bool) {});            // slot 1: the miss
  sim::SimTime read_done_at = 0;
  fs.read("real.dat", [&](bool ok) {          // slot 2: shares the pipe
    EXPECT_TRUE(ok);
    read_done_at = sim.now();
  });
  sim.run();
  // 1 MB at 0.5 MB/s = 2 s (+ op latency), not 1 s.
  EXPECT_NEAR(sim::to_seconds(read_done_at), 2.002, 1e-3);
}

// ---- satellite: congestion boundary -----------------------------------------

TEST(SharedFsConformance, CongestionBoundaryIsSelfInclusiveAndPathAgnostic) {
  // Pins the intended semantics: each transfer's slot count includes
  // itself, so with threshold = 2 the first two concurrent ops run at full
  // bandwidth and the third — the (threshold+1)-th — is computed with
  // inflight = 3 and gets threshold/3 of the pipe. The read and write
  // paths must agree exactly at that boundary.
  constexpr std::uint64_t kSize = 1'000'000;
  const auto run_reads = [](int count) {
    sim::Simulation sim;
    storage::SharedFsConfig config;
    config.op_latency = 0;
    config.read_bandwidth_bps = 1e6;
    config.write_bandwidth_bps = 1e6;  // symmetric so paths are comparable
    config.congestion_threshold = 2;
    storage::SharedFilesystem fs(sim, config);
    for (int i = 0; i < count; ++i) fs.stage("f" + std::to_string(i), kSize);
    sim::SimTime last = 0;
    for (int i = 0; i < count; ++i) {
      fs.read("f" + std::to_string(i), [&, i](bool ok) {
        EXPECT_TRUE(ok);
        last = std::max(last, sim.now());
      });
    }
    sim.run();
    return sim::to_seconds(last);
  };
  const auto run_writes = [](int count) {
    sim::Simulation sim;
    storage::SharedFsConfig config;
    config.op_latency = 0;
    config.read_bandwidth_bps = 1e6;
    config.write_bandwidth_bps = 1e6;
    config.congestion_threshold = 2;
    storage::SharedFilesystem fs(sim, config);
    sim::SimTime last = 0;
    for (int i = 0; i < count; ++i) {
      fs.write("f" + std::to_string(i), kSize, [&] { last = std::max(last, sim.now()); });
    }
    sim.run();
    return sim::to_seconds(last);
  };

  // At the threshold: both concurrent ops see inflight <= 2, full speed.
  EXPECT_NEAR(run_reads(2), 1.0, 1e-6);
  EXPECT_NEAR(run_writes(2), 1.0, 1e-6);
  // One past the threshold: the third op shares (2/3 of the pipe).
  EXPECT_NEAR(run_reads(3), 1.5, 1e-6);
  EXPECT_NEAR(run_writes(3), 1.5, 1e-6);
  // The paths agree exactly — no pre/post-increment divergence.
  EXPECT_DOUBLE_EQ(run_reads(3), run_writes(3));
}

// ---- satellite: clear()/remove() hygiene ------------------------------------

TEST(StorageConformance, ClearResetsTrafficCounters) {
  // Regression: clear() used to drop the files but keep bytes_read /
  // bytes_written / failed_reads from the previous experiment, skewing
  // cross-experiment accounting.
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    backend.store->stage("a", 1000);
    backend.store->read("a", [](bool) {});
    backend.store->write("b", 2000, [] {});
    backend.store->read("missing", [](bool) {});
    sim.run();
    EXPECT_GT(backend.store->bytes_read(), 0u);
    EXPECT_GT(backend.store->bytes_written(), 0u);
    EXPECT_EQ(backend.store->failed_reads(), 1u);

    backend.store->clear();
    EXPECT_EQ(backend.store->bytes_read(), 0u);
    EXPECT_EQ(backend.store->bytes_written(), 0u);
    EXPECT_EQ(backend.store->failed_reads(), 0u);
    EXPECT_EQ(backend.inflight(), 0u);
    EXPECT_FALSE(backend.store->exists("a"));
    EXPECT_FALSE(backend.store->exists("b"));
  });
}

TEST(StorageConformance, InFlightWriteDoesNotResurrectAfterClear) {
  // Regression: a write completion scheduled before clear() used to
  // re-insert its file into the fresh store.
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    bool done = false;
    backend.store->write("ghost", 1'000'000, [&] { done = true; });
    backend.store->clear();  // mid-flight
    sim.run();
    EXPECT_TRUE(done);  // the writer's callback still fires
    EXPECT_FALSE(backend.store->exists("ghost"));
    EXPECT_EQ(backend.store->bytes_written(), 0u);
    EXPECT_EQ(backend.inflight(), 0u);
  });
}

TEST(StorageConformance, InFlightReadAcrossClearDoesNotUnderflowInflight) {
  // Regression: the read completion used to decrement inflight_
  // unconditionally; after clear() reset it to zero, the stale completion
  // underflowed the counter and poisoned the congestion model (a size_t
  // wrap means every later transfer computes as massively congested).
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    backend.store->stage("a", 1'000'000);
    bool done = false;
    backend.store->read("a", [&](bool) { done = true; });
    backend.store->clear();  // mid-flight
    sim.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(backend.inflight(), 0u);  // not SIZE_MAX
    EXPECT_EQ(backend.store->bytes_read(), 0u);
  });
}

TEST(StorageConformance, RemoveBarsInFlightWriteFromLanding) {
  // remove() guarantees the name stays absent until a *later* stage/write:
  // an in-flight write that raced the removal must not land, but a write
  // issued after the removal must.
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    backend.store->write("data", 1000, [] {});
    (void)backend.store->remove("data");  // before the transfer completes
    sim.run();
    EXPECT_FALSE(backend.store->exists("data"));

    backend.store->write("data", 1000, [] {});  // fresh write, after remove
    sim.run();
    EXPECT_TRUE(backend.store->exists("data"));
  });
}

TEST(StorageConformance, RemoveReportsPresenceAndStatSizeAgrees) {
  for_each_backend([](sim::Simulation& sim, Backend& backend) {
    backend.store->stage("x", 4321);
    ASSERT_TRUE(backend.store->stat_size("x").has_value());
    EXPECT_EQ(*backend.store->stat_size("x"), 4321u);
    EXPECT_FALSE(backend.store->stat_size("y").has_value());
    EXPECT_TRUE(backend.store->remove("x"));
    EXPECT_FALSE(backend.store->remove("x"));
    EXPECT_FALSE(backend.store->stat_size("x").has_value());
    (void)sim;
  });
}

// ---- satellite: object-store aggregate ceiling ------------------------------

TEST(ObjectStoreAggregate, ZeroMeansUnlimitedUnder100Writers) {
  // aggregate_bps = 0: a hundred concurrent writers all run at the
  // per-object rate — the frontend fleet absorbs the fan-in, no collapse.
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 15 * sim::kMillisecond;
  config.per_object_write_bps = 1e6;
  config.aggregate_bps = 0.0;
  storage::ObjectStore os(sim, config);
  constexpr int kWriters = 100;
  constexpr std::uint64_t kSize = 1'000'000;  // 1 s at per-object rate
  int completed = 0;
  for (int i = 0; i < kWriters; ++i) {
    os.write("obj" + std::to_string(i), kSize, [&] {
      ++completed;
      EXPECT_NEAR(sim::to_seconds(sim.now()), 1.015, 1e-6);  // all at full rate
    });
  }
  sim.run();
  EXPECT_EQ(completed, kWriters);
  EXPECT_EQ(os.bytes_written(), kWriters * kSize);
}

TEST(ObjectStoreAggregate, FiniteCeilingThrottles100Writers) {
  // A finite ceiling divides across the in-flight set: the k-th concurrent
  // writer sees min(per_object, aggregate / k). With aggregate = 10x the
  // per-object rate, the first ten writers are per-object-bound and the
  // hundredth runs at a tenth of the per-object rate.
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 0;
  config.per_object_write_bps = 1e6;
  config.aggregate_bps = 1e7;  // 10x per-object
  storage::ObjectStore os(sim, config);
  constexpr int kWriters = 100;
  constexpr std::uint64_t kSize = 1'000'000;
  std::vector<double> done_at(kWriters, 0.0);
  for (int i = 0; i < kWriters; ++i) {
    os.write("obj" + std::to_string(i), kSize, [&, i] {
      done_at[i] = sim::to_seconds(sim.now());
    });
  }
  sim.run();
  EXPECT_NEAR(done_at[0], 1.0, 1e-6);    // 1st: aggregate/1 > per-object
  EXPECT_NEAR(done_at[9], 1.0, 1e-6);    // 10th: aggregate/10 == per-object
  EXPECT_NEAR(done_at[19], 2.0, 1e-6);   // 20th: half the per-object rate
  EXPECT_NEAR(done_at[99], 10.0, 1e-6);  // 100th: a tenth
}

TEST(ObjectStoreAggregate, PerObjectRateBindsWhenCeilingIsGenerous) {
  // The two limits compose as a min(): a huge aggregate never speeds a
  // single object past its per-object rate.
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 0;
  config.per_object_write_bps = 1e6;
  config.aggregate_bps = 1e12;
  storage::ObjectStore os(sim, config);
  bool done = false;
  os.write("solo", 2'000'000, [&] {
    done = true;
    EXPECT_NEAR(sim::to_seconds(sim.now()), 2.0, 1e-6);
  });
  sim.run();
  EXPECT_TRUE(done);
}

TEST(ObjectStoreAggregate, ListAfterPutIsStronglyConsistent) {
  // Modern S3 semantics: invisible while the PUT is in flight, and the
  // moment the PUT completes every reader sees the object — an immediate
  // GET succeeds with the full size.
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 10 * sim::kMillisecond;
  config.per_object_write_bps = 1e6;
  storage::ObjectStore os(sim, config);
  bool read_ok = false;
  os.write("fresh", 500'000, [&] {
    EXPECT_TRUE(os.exists("fresh"));  // visible at completion, not before
    ASSERT_TRUE(os.stat_size("fresh").has_value());
    EXPECT_EQ(*os.stat_size("fresh"), 500'000u);
    os.read("fresh", [&](bool ok) { read_ok = ok; });
  });
  EXPECT_FALSE(os.exists("fresh"));  // not visible while in flight
  sim.run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(os.failed_reads(), 0u);
}

}  // namespace
}  // namespace wfs
