// Node-local data cache layer: the CachedStore decorator (per-node LRU,
// write-through, invalidation), the KubeScheduler locality policy it
// feeds, and the end-to-end experiment/campaign wiring.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/campaign.h"
#include "core/experiment.h"
#include "core/results_io.h"
#include "faas/kube_scheduler.h"
#include "metrics/registry.h"
#include "obs/trace_recorder.h"
#include "sim/simulation.h"
#include "storage/cached_store.h"
#include "storage/shared_fs.h"

namespace wfs {
namespace {

storage::SharedFsConfig slow_fs_config() {
  storage::SharedFsConfig config;
  config.op_latency = 2 * sim::kMillisecond;
  config.read_bandwidth_bps = 1e6;  // 1 MB/s: shared-drive reads are visibly slow
  config.write_bandwidth_bps = 1e6;
  return config;
}

// ---- decorator behaviour ----------------------------------------------------

TEST(CachedStore, SecondReadOnANodeIsAHitAndSkipsTheBackingStore) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& node = cache.node_view("worker");
  fs.stage("input.dat", 1'000'000);

  bool first = false;
  node.read("input.dat", [&](bool ok) { first = ok; });
  sim.run();
  ASSERT_TRUE(first);
  const double miss_seconds = sim::to_seconds(sim.now());
  EXPECT_NEAR(miss_seconds, 1.002, 1e-3);  // the full shared-drive trip
  EXPECT_EQ(fs.bytes_read(), 1'000'000u);

  bool second = false;
  node.read("input.dat", [&](bool ok) { second = ok; });
  sim.run();
  ASSERT_TRUE(second);
  // Served locally: ~125 ms at 8 GB/s + 200 us, and no new backing traffic.
  EXPECT_LT(sim::to_seconds(sim.now()) - miss_seconds, 0.01);
  EXPECT_EQ(fs.bytes_read(), 1'000'000u);

  const storage::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.bytes_saved, 1'000'000u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(CachedStore, WriteIsWriteThroughAndFillsTheWriterNodeOnly) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& producer = cache.node_view("master");
  storage::DataStore& consumer = cache.node_view("worker");

  producer.write("out.dat", 500'000, [] {});
  EXPECT_FALSE(producer.exists("out.dat"));  // visible only on completion
  sim.run();
  EXPECT_TRUE(producer.exists("out.dat"));
  EXPECT_TRUE(fs.exists("out.dat"));  // the backing store is the truth
  EXPECT_EQ(cache.node_cached_bytes("master"), 500'000u);
  EXPECT_EQ(cache.node_cached_bytes("worker"), 0u);

  // Producer-side read: a hit. Other node: a miss that fills via
  // read-through.
  producer.read("out.dat", [](bool) {});
  consumer.read("out.dat", [](bool) {});
  sim.run();
  EXPECT_EQ(cache.node_stats("master").hits, 1u);
  EXPECT_EQ(cache.node_stats("worker").misses, 1u);
  EXPECT_EQ(cache.node_cached_bytes("worker"), 500'000u);
}

TEST(CachedStore, OverwriteInvalidatesOtherNodesCopies) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& a = cache.node_view("a");
  storage::DataStore& b = cache.node_view("b");
  fs.stage("shared.dat", 1000);
  a.read("shared.dat", [](bool) {});
  sim.run();
  ASSERT_EQ(cache.node_cached_bytes("a"), 1000u);

  b.write("shared.dat", 2000, [] {});  // new version from the other node
  sim.run();
  EXPECT_EQ(cache.node_cached_bytes("a"), 0u);  // stale copy dropped
  EXPECT_EQ(cache.node_cached_bytes("b"), 2000u);
  EXPECT_EQ(cache.node_stats("a").invalidations, 1u);
}

TEST(CachedStore, LruEvictionKeepsTheCacheBounded) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CacheConfig config;
  config.capacity_bytes = 2500;
  storage::CachedStore cache(sim, fs, config);
  storage::DataStore& node = cache.node_view("n");
  fs.stage("a", 1000);
  fs.stage("b", 1000);
  fs.stage("c", 1000);

  node.read("a", [](bool) {});
  sim.run();
  node.read("b", [](bool) {});
  sim.run();
  node.read("a", [](bool) {});  // touch: "a" becomes MRU
  sim.run();
  node.read("c", [](bool) {});  // evicts "b", the LRU entry
  sim.run();

  EXPECT_EQ(cache.node_cached_bytes("n"), 2000u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.cached_bytes("n", {"a"}), 1000u);
  EXPECT_EQ(cache.cached_bytes("n", {"b"}), 0u);
  EXPECT_EQ(cache.cached_bytes("n", {"c"}), 1000u);

  // Objects larger than the whole cache are never admitted.
  fs.stage("huge", 10'000);
  node.read("huge", [](bool) {});
  sim.run();
  EXPECT_EQ(cache.cached_bytes("n", {"huge"}), 0u);
  EXPECT_EQ(cache.node_cached_bytes("n"), 2000u);
}

TEST(CachedStore, RemoveAndClearInvalidateEveryNode) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& a = cache.node_view("a");
  storage::DataStore& b = cache.node_view("b");
  fs.stage("x", 100);
  fs.stage("y", 200);
  a.read("x", [](bool) {});
  b.read("x", [](bool) {});
  b.read("y", [](bool) {});
  sim.run();
  ASSERT_EQ(cache.node_cached_bytes("a"), 100u);
  ASSERT_EQ(cache.node_cached_bytes("b"), 300u);

  EXPECT_TRUE(cache.remove("x"));
  EXPECT_FALSE(cache.exists("x"));
  EXPECT_EQ(cache.node_cached_bytes("a"), 0u);
  EXPECT_EQ(cache.node_cached_bytes("b"), 200u);
  // The next read of a removed name is an honest miss, not a stale hit.
  bool ok = true;
  a.read("x", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_FALSE(ok);

  cache.clear();
  EXPECT_EQ(cache.node_cached_bytes("a"), 0u);
  EXPECT_EQ(cache.node_cached_bytes("b"), 0u);
  EXPECT_FALSE(cache.exists("y"));
  EXPECT_EQ(fs.bytes_read(), 0u);  // clear() forwarded to the backing store
}

TEST(CachedStore, RestagingInvalidatesCachedCopies) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& node = cache.node_view("n");
  cache.stage("in.dat", 1000);
  node.read("in.dat", [](bool) {});
  sim.run();
  ASSERT_EQ(cache.cached_bytes("n", {"in.dat"}), 1000u);

  cache.stage("in.dat", 4000);  // replaced content
  EXPECT_EQ(cache.cached_bytes("n", {"in.dat"}), 0u);
  node.read("in.dat", [](bool) {});
  sim.run();
  EXPECT_EQ(cache.cached_bytes("n", {"in.dat"}), 4000u);
}

TEST(CachedStore, NodelessReadsPassThroughWithoutFillingAnyCache) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  (void)cache.node_view("n");
  fs.stage("wfm-polled.dat", 1000);
  cache.read("wfm-polled.dat", [](bool) {});  // the WFM's path
  sim.run();
  EXPECT_EQ(cache.node_cached_bytes("n"), 0u);
  const storage::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
}

TEST(CachedStore, EmitsMetricsAndTraceSpans) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  metrics::MetricsRegistry registry;
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  cache.set_metrics(&registry);
  cache.set_trace(&recorder);
  storage::DataStore& node = cache.node_view("worker");
  fs.stage("d", 1000);
  node.read("d", [](bool) {});
  sim.run();
  node.read("d", [](bool) {});
  sim.run();

  const metrics::MetricsSnapshot snapshot = registry.snapshot();
  const metrics::MetricPoint* hits =
      snapshot.find("storage_cache_hits_total", {{"node", "worker"}});
  ASSERT_NE(hits, nullptr);
  EXPECT_DOUBLE_EQ(hits->value, 1.0);
  const metrics::MetricPoint* misses =
      snapshot.find("storage_cache_misses_total", {{"node", "worker"}});
  ASSERT_NE(misses, nullptr);
  EXPECT_DOUBLE_EQ(misses->value, 1.0);
  const metrics::MetricPoint* saved =
      snapshot.find("storage_cache_bytes_saved_total", {{"node", "worker"}});
  ASSERT_NE(saved, nullptr);
  EXPECT_DOUBLE_EQ(saved->value, 1000.0);

  bool saw_hit = false;
  bool saw_miss = false;
  for (const obs::TraceEvent& event : recorder.events()) {
    saw_hit = saw_hit || event.category == "cache-hit";
    saw_miss = saw_miss || event.category == "cache-miss";
  }
  EXPECT_TRUE(saw_hit);
  EXPECT_TRUE(saw_miss);
}

// ---- locality-aware placement -----------------------------------------------

TEST(KubeSchedulerLocality, CachedInputBytesWinOverTheStrategyScore) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  // Warm the *smaller* node's cache so LeastAllocated (which favours the
  // bigger master node on equal load) would pick differently.
  const std::string warm = cluster.node(1).name();
  fs.stage("in1", 1000);
  fs.stage("in2", 500);
  cache.node_view(warm).read("in1", [](bool) {});
  cache.node_view(warm).read("in2", [](bool) {});
  sim.run();

  faas::KubeScheduler scheduler(cluster);
  scheduler.set_data_cache(&cache);
  cluster::Node* chosen = scheduler.place(2.0, 1ULL << 30, {"in1", "in2"});
  ASSERT_NE(chosen, nullptr);
  EXPECT_EQ(chosen->name(), warm);
  EXPECT_EQ(scheduler.locality_placements(), 1u);

  // Empty input set: pure strategy score, identical to the plain overload.
  cluster::Node* strategy_pick = scheduler.place(2.0, 1ULL << 30, {});
  cluster::Node* plain_pick = scheduler.place(2.0, 1ULL << 30);
  ASSERT_NE(strategy_pick, nullptr);
  EXPECT_EQ(strategy_pick, plain_pick);
  EXPECT_EQ(scheduler.locality_placements(), 1u);  // unchanged

  // Nothing relevant cached: fall back to the strategy score too.
  cluster::Node* cold_pick = scheduler.place(2.0, 1ULL << 30, {"elsewhere"});
  EXPECT_EQ(cold_pick, plain_pick);
  EXPECT_EQ(scheduler.locality_placements(), 1u);
}

// ---- end-to-end wiring ------------------------------------------------------

TEST(ExperimentCache, CacheOnYieldsHitsAndCutsSharedDriveReads) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 40;

  const core::ExperimentResult off = core::run_experiment(config);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.cache_hits + off.cache_misses, 0u);
  EXPECT_DOUBLE_EQ(off.cache_hit_rate, 0.0);
  EXPECT_GT(off.storage_bytes_read, 0u);

  config.data_cache_mb_per_node = 256;
  config.cache_aware_placement = true;
  const core::ExperimentResult on = core::run_experiment(config);
  ASSERT_TRUE(on.ok());
  EXPECT_GT(on.cache_hits, 0u);
  EXPECT_GT(on.cache_hit_rate, 0.0);
  EXPECT_GT(on.cache_bytes_saved, 0u);
  // Every byte a hit served locally is a byte the shared drive never moved.
  EXPECT_LT(on.storage_bytes_read, off.storage_bytes_read);
}

TEST(ExperimentCache, ResultJsonRoundTripsCacheCounters) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "seismology";
  config.num_tasks = 30;
  config.data_cache_mb_per_node = 128;
  config.cache_aware_placement = true;
  const core::ExperimentResult original = core::run_experiment(config);
  ASSERT_TRUE(original.ok());

  const core::ExperimentResult restored =
      core::parse_result(core::write_result(original));
  EXPECT_EQ(restored.config.data_cache_mb_per_node, 128u);
  EXPECT_TRUE(restored.config.cache_aware_placement);
  EXPECT_EQ(restored.cache_hits, original.cache_hits);
  EXPECT_EQ(restored.cache_misses, original.cache_misses);
  EXPECT_EQ(restored.cache_bytes_saved, original.cache_bytes_saved);
  EXPECT_DOUBLE_EQ(restored.cache_hit_rate, original.cache_hit_rate);
  EXPECT_EQ(restored.storage_bytes_read, original.storage_bytes_read);
  EXPECT_EQ(restored.storage_bytes_written, original.storage_bytes_written);
}

TEST(CampaignCache, SummaryCsvIsByteIdenticalWhenTheCacheIsDisabled) {
  // The knobs default to off; a spec that sets them to their defaults must
  // reproduce the exact same bytes — the cache may not perturb any paper
  // figure unless explicitly enabled.
  const auto run_csv = [](std::uint64_t cache_mb, bool placement) {
    core::CampaignSpec spec;
    spec.paradigms = {core::Paradigm::kKn10wNoPM};
    spec.recipes = {"blast"};
    spec.sizes = {20};
    spec.data_cache_mb_per_node = cache_mb;
    spec.cache_aware_placement = placement;
    core::Campaign campaign(std::move(spec));
    campaign.run();
    return campaign.summary_csv();
  };
  EXPECT_EQ(run_csv(0, false), run_csv(0, true));  // placement alone is inert

  const std::string enabled = run_csv(256, true);
  EXPECT_NE(enabled, run_csv(0, false));
  EXPECT_NE(enabled.find("cache_hit_rate,shared_drive_bytes_saved"), std::string::npos);
}

// ---- regression: phantom writer-node cache fill -----------------------------

TEST(CachedStore, RemoveMidFlightWriteDoesNotFillTheWriterCache) {
  // Regression: the backing stores bar a write completion whose generation
  // a remove() raced (the name must stay absent), but the writer node's
  // cache used to fill unconditionally on completion — and then served
  // hits for an object the backing store never landed (read() succeeded
  // while exists() was false).
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& writer = cache.node_view("w");

  writer.write("out.dat", 1000, [] {});
  (void)cache.remove("out.dat");  // bars the in-flight landing
  sim.run();
  EXPECT_FALSE(cache.exists("out.dat"));
  EXPECT_EQ(cache.node_cached_bytes("w"), 0u);  // no phantom fill

  bool ok = true;
  writer.read("out.dat", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_FALSE(ok);  // an honest miss, not a stale hit

  // A write issued AFTER the remove lands normally and may fill.
  writer.write("out.dat", 2000, [] {});
  sim.run();
  EXPECT_TRUE(cache.exists("out.dat"));
  EXPECT_EQ(cache.node_cached_bytes("w"), 2000u);
}

// ---- regression: stale read-through fill ------------------------------------

TEST(CachedStore, RestageDuringInFlightMissDoesNotFillStaleBytes) {
  // Regression: the miss path used to fill from stat_size() AFTER the
  // backing read completed, so a stage() that raced the in-flight read
  // resurrected the entry its invalidation had just dropped — recording
  // the NEW size for the OLD bytes on the wire.
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& node = cache.node_view("n");
  cache.stage("in.dat", 1'000'000);

  node.read("in.dat", [](bool) {});  // old bytes leave the drive (~1 s)
  cache.stage("in.dat", 4'000'000);  // content replaced mid-transfer
  sim.run();
  // The late fill must not land: the bytes the node received are not the
  // bytes the backing store now holds.
  EXPECT_EQ(cache.cached_bytes("n", {"in.dat"}), 0u);

  // A fresh read caches the current content at its current size.
  node.read("in.dat", [](bool) {});
  sim.run();
  EXPECT_EQ(cache.cached_bytes("n", {"in.dat"}), 4'000'000u);
}

TEST(CachedStore, RemoveDuringInFlightMissDoesNotResurrectTheEntry) {
  // Same race, remove() flavour: after remove() the name must stay absent
  // until a later stage/write — including in every node cache.
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CachedStore cache(sim, fs);
  storage::DataStore& node = cache.node_view("n");
  cache.stage("gone.dat", 1'000'000);

  node.read("gone.dat", [](bool) {});  // miss in flight
  (void)cache.remove("gone.dat");
  sim.run();
  EXPECT_FALSE(cache.exists("gone.dat"));
  EXPECT_EQ(cache.cached_bytes("n", {"gone.dat"}), 0u);  // not resurrected

  bool ok = true;
  node.read("gone.dat", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_FALSE(ok);
}

// ---- peer-to-peer transfer --------------------------------------------------

TEST(CachedStoreP2p, MissPullsFromThePeerCacheInsteadOfTheBackingStore) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CacheConfig config;
  config.p2p_enabled = true;
  storage::CachedStore cache(sim, fs, config);
  storage::DataStore& producer = cache.node_view("a");
  storage::DataStore& consumer = cache.node_view("b");

  producer.write("out.dat", 1'000'000, [] {});
  sim.run();
  const std::uint64_t backing_reads = fs.bytes_read();

  bool ok = false;
  const double start = sim::to_seconds(sim.now());
  consumer.read("out.dat", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_TRUE(ok);
  // The pull rode the node-to-node link: no new backing traffic, and far
  // faster than the ~1 s shared-drive trip (0.5 ms at 2 GB/s + 300 us).
  EXPECT_EQ(fs.bytes_read(), backing_reads);
  EXPECT_LT(sim::to_seconds(sim.now()) - start, 0.01);
  EXPECT_EQ(cache.node_cached_bytes("b"), 1'000'000u);  // the pull filled b

  const storage::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.p2p_transfers, 1u);
  EXPECT_EQ(stats.p2p_bytes, 1'000'000u);

  // b now serves its own hits.
  consumer.read("out.dat", [](bool) {});
  sim.run();
  EXPECT_EQ(cache.node_stats("b").hits, 1u);
  EXPECT_EQ(cache.stats().p2p_transfers, 1u);  // no second pull
}

TEST(CachedStoreP2p, FallsBackToTheBackingStoreWhenNoPeerHoldsIt) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CacheConfig config;
  config.p2p_enabled = true;
  storage::CachedStore cache(sim, fs, config);
  (void)cache.node_view("a");
  storage::DataStore& consumer = cache.node_view("b");
  fs.stage("cold.dat", 500'000);

  bool ok = false;
  consumer.read("cold.dat", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(fs.bytes_read(), 500'000u);  // the backing store served it
  EXPECT_EQ(cache.stats().p2p_transfers, 0u);
}

TEST(CachedStoreP2p, RemoveDuringInFlightPullBarsTheFill) {
  // The p2p fill obeys the same generation guard as read-through: a
  // remove() racing the link transfer bars the receiving node's insert.
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());
  storage::CacheConfig config;
  config.p2p_enabled = true;
  storage::CachedStore cache(sim, fs, config);
  storage::DataStore& producer = cache.node_view("a");
  storage::DataStore& consumer = cache.node_view("b");
  producer.write("hot.dat", 1'000'000, [] {});
  sim.run();

  consumer.read("hot.dat", [](bool) {});  // p2p pull in flight
  (void)cache.remove("hot.dat");
  sim.run();
  EXPECT_EQ(cache.cached_bytes("b", {"hot.dat"}), 0u);
}

TEST(CachedStoreP2p, MinOpLatencyCoversTheP2pLink) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim, slow_fs_config());  // op_latency 2 ms
  storage::CacheConfig config;
  config.hit_latency = 500;
  config.p2p_latency = 300;
  {
    storage::CachedStore cache(sim, fs, config);
    EXPECT_EQ(cache.min_op_latency(), 500);  // p2p off: hit latency binds
  }
  config.p2p_enabled = true;
  {
    storage::CachedStore cache(sim, fs, config);
    EXPECT_EQ(cache.min_op_latency(), 300);  // p2p on: the link binds
  }
}

}  // namespace
}  // namespace wfs
