// Unit tests for the cluster substrate: processor-sharing CPU engine,
// cgroup quota groups, memory residency/OOM, power model, ledger.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "support/rng.h"
#include "cluster/node.h"
#include "cluster/power.h"
#include "cluster/resource_ledger.h"
#include "sim/periodic.h"
#include "sim/simulation.h"

namespace wfs::cluster {
namespace {

NodeSpec small_node(double cores = 4.0) {
  NodeSpec spec;
  spec.name = "n0";
  spec.cores = cores;
  spec.memory_bytes = 8ULL << 30;
  spec.core_speed = 1.0;  // 1 work unit / second / core
  return spec;
}

// ---- power -------------------------------------------------------------------

TEST(Power, IdleAndFullScale) {
  PowerModel model{100.0, 400.0, 0.15};
  EXPECT_DOUBLE_EQ(model.watts(0.0, 0.0), 100.0);
  EXPECT_DOUBLE_EQ(model.watts(1.0, 0.0), 400.0);
  EXPECT_DOUBLE_EQ(model.watts(0.5, 0.0), 250.0);
}

TEST(Power, SpinIsHeavilyDiscounted) {
  PowerModel model{100.0, 400.0, 0.15};
  const double compute = model.watts(0.5, 0.0);
  const double spin = model.watts(0.0, 0.5);
  EXPECT_GT(compute, spin);
  EXPECT_DOUBLE_EQ(spin, 100.0 + 300.0 * 0.15 * 0.5);
}

TEST(Power, SpinCannotExceedFreeCores) {
  PowerModel model{100.0, 400.0, 0.15};
  // compute 1.0 leaves no room: spin contribution must vanish.
  EXPECT_DOUBLE_EQ(model.watts(1.0, 0.8), 400.0);
}

TEST(Power, ClampsOutOfRangeInputs) {
  PowerModel model{100.0, 400.0, 0.15};
  EXPECT_DOUBLE_EQ(model.watts(2.0, 0.0), 400.0);
  EXPECT_DOUBLE_EQ(model.watts(-1.0, 0.0), 100.0);
}

// ---- ledger -------------------------------------------------------------------

TEST(Ledger, ReserveAndRelease) {
  ResourceLedger ledger(10.0, 1000);
  EXPECT_TRUE(ledger.try_reserve(4.0, 400));
  EXPECT_TRUE(ledger.try_reserve(6.0, 600));
  EXPECT_FALSE(ledger.try_reserve(0.1, 0));
  ledger.release(4.0, 400);
  EXPECT_DOUBLE_EQ(ledger.free_cpus(), 4.0);
  EXPECT_EQ(ledger.free_memory(), 400u);
}

TEST(Ledger, AllOrNothing) {
  ResourceLedger ledger(10.0, 1000);
  EXPECT_FALSE(ledger.try_reserve(20.0, 10));   // cpu too big
  EXPECT_FALSE(ledger.try_reserve(1.0, 2000));  // memory too big
  EXPECT_DOUBLE_EQ(ledger.reserved_cpus(), 0.0);
  EXPECT_EQ(ledger.reserved_memory(), 0u);
}

TEST(Ledger, OverReleaseClampsToZero) {
  ResourceLedger ledger(10.0, 1000);
  ASSERT_TRUE(ledger.try_reserve(2.0, 100));
  ledger.release(5.0, 500);
  EXPECT_DOUBLE_EQ(ledger.reserved_cpus(), 0.0);
  EXPECT_EQ(ledger.reserved_memory(), 0u);
}

TEST(Ledger, ExactFitSurvivesFloatChurn) {
  ResourceLedger ledger(96.0, 1000);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ledger.try_reserve(0.1, 0));
    ledger.release(0.1, 0);
  }
  EXPECT_TRUE(ledger.try_reserve(96.0, 0));
}

// ---- node compute (processor sharing) -------------------------------------------

TEST(Node, SingleTaskDurationMatchesModel) {
  sim::Simulation sim;
  Node node(sim, small_node());
  sim::SimTime done_at = -1;
  node.submit_work(0.5, 10.0, kNoQuotaGroup, [&] { done_at = sim.now(); });
  sim.run();
  // 10 units at 0.5 cores x 1 unit/s = 20 s.
  EXPECT_NEAR(sim::to_seconds(done_at), 20.0, 1e-3);
}

TEST(Node, UncontendedTasksRunAtFullDemand) {
  sim::Simulation sim;
  Node node(sim, small_node(4.0));
  int completed = 0;
  // 4 tasks x 1 core on a 4-core node: no slowdown.
  for (int i = 0; i < 4; ++i) {
    node.submit_work(1.0, 10.0, kNoQuotaGroup, [&] { ++completed; });
  }
  const sim::SimTime end = sim.run();
  EXPECT_EQ(completed, 4);
  EXPECT_NEAR(sim::to_seconds(end), 10.0, 1e-3);
}

TEST(Node, OversubscriptionSlowsProportionally) {
  sim::Simulation sim;
  Node node(sim, small_node(4.0));
  int completed = 0;
  // 8 tasks x 1 core on 4 cores: 2x slowdown.
  for (int i = 0; i < 8; ++i) {
    node.submit_work(1.0, 10.0, kNoQuotaGroup, [&] { ++completed; });
  }
  const sim::SimTime end = sim.run();
  EXPECT_EQ(completed, 8);
  EXPECT_NEAR(sim::to_seconds(end), 20.0, 1e-2);
}

TEST(Node, LateArrivalSharesFairly) {
  sim::Simulation sim;
  Node node(sim, small_node(1.0));
  sim::SimTime first_done = -1;
  sim::SimTime second_done = -1;
  node.submit_work(1.0, 10.0, kNoQuotaGroup, [&] { first_done = sim.now(); });
  sim.schedule_at(5 * sim::kSecond, [&] {
    node.submit_work(1.0, 10.0, kNoQuotaGroup, [&] { second_done = sim.now(); });
  });
  sim.run();
  // First: 5 s alone (5 units done) + shares the core until its remaining
  // 5 units finish at rate 0.5 -> +10 s => t=15. Second: has 5 units left at
  // t=15, finishes at t=20.
  EXPECT_NEAR(sim::to_seconds(first_done), 15.0, 1e-2);
  EXPECT_NEAR(sim::to_seconds(second_done), 20.0, 1e-2);
}

TEST(Node, WorkConservation) {
  sim::Simulation sim;
  Node node(sim, small_node(3.0));
  double submitted = 0.0;
  support::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const double units = rng.uniform_real(1.0, 20.0);
    submitted += units;
    const sim::SimTime at = sim::from_seconds(rng.uniform_real(0.0, 30.0));
    sim.schedule_at(at, [&node, units, &rng] {
      // demand varies per task
      node.submit_work(0.25 + 0.75 * 0.5, units, kNoQuotaGroup, [] {});
    });
  }
  sim.run();
  EXPECT_NEAR(node.completed_work_units(), submitted, submitted * 1e-6 + 1e-3);
  EXPECT_EQ(node.active_work_items(), 0u);
  EXPECT_DOUBLE_EQ(node.compute_load(), 0.0);
}

TEST(Node, ZeroWorkCompletesImmediately) {
  sim::Simulation sim;
  Node node(sim, small_node());
  bool done = false;
  node.submit_work(1.0, 0.0, kNoQuotaGroup, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(sim.now(), 0);
}

TEST(Node, CancelWorkNeverCompletes) {
  sim::Simulation sim;
  Node node(sim, small_node());
  bool done = false;
  const WorkId id = node.submit_work(1.0, 100.0, kNoQuotaGroup, [&] { done = true; });
  sim.schedule_at(sim::kSecond, [&] { node.cancel_work(id); });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(node.active_work_items(), 0u);
}

TEST(Node, RejectsBadWork) {
  sim::Simulation sim;
  Node node(sim, small_node());
  EXPECT_THROW(node.submit_work(0.0, 1.0, kNoQuotaGroup, [] {}), std::invalid_argument);
  EXPECT_THROW(node.submit_work(-1.0, 1.0, kNoQuotaGroup, [] {}), std::invalid_argument);
  EXPECT_THROW(node.submit_work(1.0, -1.0, kNoQuotaGroup, [] {}), std::invalid_argument);
}

// ---- quota groups ---------------------------------------------------------------

TEST(Node, QuotaGroupCapsAggregateRate) {
  sim::Simulation sim;
  Node node(sim, small_node(8.0));
  const QuotaGroupId group = node.create_quota_group(2.0);  // --cpus=2
  int completed = 0;
  // 4 tasks x 1 core demand, group capped at 2 cores -> each runs at 0.5.
  for (int i = 0; i < 4; ++i) {
    node.submit_work(1.0, 10.0, group, [&] { ++completed; });
  }
  const sim::SimTime end = sim.run();
  EXPECT_EQ(completed, 4);
  EXPECT_NEAR(sim::to_seconds(end), 20.0, 1e-2);
}

TEST(Node, QuotaDoesNotThrottleUnderLimit) {
  sim::Simulation sim;
  Node node(sim, small_node(8.0));
  const QuotaGroupId group = node.create_quota_group(2.0);
  sim::SimTime done_at = -1;
  node.submit_work(1.0, 10.0, group, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(sim::to_seconds(done_at), 10.0, 1e-3);
}

TEST(Node, IndependentQuotaGroups) {
  sim::Simulation sim;
  Node node(sim, small_node(8.0));
  const QuotaGroupId a = node.create_quota_group(1.0);
  const QuotaGroupId b = node.create_quota_group(4.0);
  sim::SimTime a_done = -1;
  sim::SimTime b_done = -1;
  // a: 2 tasks over 1 core -> 20 s; b: 2 tasks over 4 cores -> 10 s.
  node.submit_work(1.0, 10.0, a, [&] { a_done = sim.now(); });
  node.submit_work(1.0, 10.0, a, [] {});
  node.submit_work(1.0, 10.0, b, [&] { b_done = sim.now(); });
  node.submit_work(1.0, 10.0, b, [] {});
  sim.run();
  EXPECT_NEAR(sim::to_seconds(a_done), 20.0, 1e-2);
  EXPECT_NEAR(sim::to_seconds(b_done), 10.0, 1e-2);
}

TEST(Node, DestroyedQuotaGroupUncapsWork) {
  sim::Simulation sim;
  Node node(sim, small_node(8.0));
  const QuotaGroupId group = node.create_quota_group(0.5);
  sim::SimTime done_at = -1;
  node.submit_work(1.0, 10.0, group, [&] { done_at = sim.now(); });
  sim.schedule_at(10 * sim::kSecond, [&] { node.destroy_quota_group(group); });
  sim.run();
  // 10 s at 0.5 cores (5 units) + 5 s at 1.0 core = done at t=15.
  EXPECT_NEAR(sim::to_seconds(done_at), 15.0, 1e-2);
}

// ---- background load & metrics -------------------------------------------------

TEST(Node, BackgroundLoadAppearsInCpuFraction) {
  sim::Simulation sim;
  Node node(sim, small_node(4.0));
  const LoadId spin = node.add_background_load(1.0, /*spin=*/true);
  EXPECT_DOUBLE_EQ(node.cpu_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(node.spin_load(), 1.0);
  node.remove_background_load(spin);
  EXPECT_DOUBLE_EQ(node.cpu_fraction(), 0.0);
}

TEST(Node, SpinYieldsToCompute) {
  sim::Simulation sim;
  Node node(sim, small_node(4.0));
  node.add_background_load(4.0, /*spin=*/true);
  node.submit_work(3.0, 300.0, kNoQuotaGroup, [] {});
  sim.step(0);
  // Compute takes 3 cores; spin can only occupy the remaining 1.
  EXPECT_DOUBLE_EQ(node.compute_load(), 3.0);
  EXPECT_DOUBLE_EQ(node.spin_load(), 1.0);
  EXPECT_DOUBLE_EQ(node.cpu_fraction(), 1.0);
}

TEST(Node, PowerReflectsComputeVsSpin) {
  sim::Simulation sim;
  NodeSpec spec = small_node(4.0);
  spec.power = PowerModel{100.0, 300.0, 0.1};
  Node node(sim, spec);
  EXPECT_DOUBLE_EQ(node.power_watts(), 100.0);
  node.add_background_load(4.0, /*spin=*/true);
  EXPECT_DOUBLE_EQ(node.power_watts(), 100.0 + 200.0 * 0.1);
}

// ---- memory -------------------------------------------------------------------

TEST(Node, MemoryAccounting) {
  sim::Simulation sim;
  Node node(sim, small_node());
  EXPECT_TRUE(node.add_memory(1ULL << 30));
  EXPECT_TRUE(node.add_memory(2ULL << 30));
  EXPECT_EQ(node.resident_memory(), 3ULL << 30);
  node.remove_memory(1ULL << 30);
  EXPECT_EQ(node.resident_memory(), 2ULL << 30);
  EXPECT_EQ(node.peak_memory(), 3ULL << 30);
  EXPECT_EQ(node.oom_events(), 0u);
}

TEST(Node, OomDetectedButAccountingContinues) {
  sim::Simulation sim;
  Node node(sim, small_node());  // 8 GiB
  EXPECT_TRUE(node.add_memory(7ULL << 30));
  EXPECT_FALSE(node.add_memory(2ULL << 30));  // 9 GiB > 8 GiB
  EXPECT_EQ(node.oom_events(), 1u);
  EXPECT_EQ(node.resident_memory(), 9ULL << 30);
}

TEST(Node, RemoveMoreThanResidentClamps) {
  sim::Simulation sim;
  Node node(sim, small_node());
  node.add_memory(100);
  node.remove_memory(1000);
  EXPECT_EQ(node.resident_memory(), 0u);
}

// ---- cluster -------------------------------------------------------------------

TEST(Cluster, PaperTestbedShape) {
  sim::Simulation sim;
  Cluster cluster = Cluster::paper_testbed(sim);
  EXPECT_EQ(cluster.size(), 2u);
  EXPECT_DOUBLE_EQ(cluster.total_cores(), 192.0);
  EXPECT_EQ(cluster.total_memory(), (256ULL + 192ULL) << 30);
  EXPECT_NE(cluster.find("master"), nullptr);
  EXPECT_NE(cluster.find("worker"), nullptr);
  EXPECT_EQ(cluster.find("gpu"), nullptr);
}

TEST(Cluster, AggregatesAcrossNodes) {
  sim::Simulation sim;
  Cluster cluster(sim, {small_node(4.0), small_node(4.0)});
  cluster.node(0).add_memory(1ULL << 30);
  cluster.node(1).add_memory(2ULL << 30);
  EXPECT_EQ(cluster.resident_memory(), 3ULL << 30);
  cluster.node(0).submit_work(2.0, 100.0, kNoQuotaGroup, [] {});
  sim.step(0);
  EXPECT_DOUBLE_EQ(cluster.compute_load(), 2.0);
  EXPECT_DOUBLE_EQ(cluster.cpu_fraction(), 0.25);
}

TEST(Cluster, RequiresAtLeastOneNode) {
  sim::Simulation sim;
  EXPECT_THROW(Cluster(sim, {}), std::invalid_argument);
}

// ---- randomized churn property -------------------------------------------------

class NodeChurn : public testing::TestWithParam<int> {};

TEST_P(NodeChurn, InvariantsHoldUnderRandomSubmitCancelQuota) {
  // Property: under a random interleaving of submits, cancels, quota-group
  // creation/destruction and background loads, the node never reports more
  // compute load than it has cores, every uncancelled item completes
  // exactly once, and the node drains back to zero.
  sim::Simulation sim;
  NodeSpec spec = small_node(6.0);
  Node node(sim, spec);
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);

  int completions = 0;
  int expected_completions = 0;
  std::vector<WorkId> cancellable;
  std::vector<QuotaGroupId> groups = {kNoQuotaGroup};
  std::vector<LoadId> loads;

  sim::PeriodicTask invariant(sim, sim::kSecond, [&](sim::SimTime) {
    EXPECT_LE(node.compute_load(), spec.cores + 1e-9);
    EXPECT_GE(node.compute_load(), -1e-9);
    EXPECT_LE(node.cpu_fraction(), 1.0 + 1e-12);
  });
  invariant.start();

  sim::SimTime at = 0;
  for (int i = 0; i < 120; ++i) {
    at += sim::from_seconds(rng.uniform_real(0.0, 2.0));
    const int action = static_cast<int>(rng.uniform_int(0, 9));
    sim.schedule_at(at, [&, action] {
      if (action < 5) {  // submit
        const QuotaGroupId group =
            groups[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(groups.size()) - 1))];
        ++expected_completions;
        const WorkId id = node.submit_work(rng.uniform_real(0.2, 2.0),
                                           rng.uniform_real(0.5, 15.0), group,
                                           [&completions] { ++completions; });
        if (rng.chance(0.3)) cancellable.push_back(id);
      } else if (action < 7) {  // cancel something still pending (maybe)
        if (!cancellable.empty()) {
          const WorkId id = cancellable.back();
          cancellable.pop_back();
          // Completed items make cancel a no-op; track precisely by
          // checking the active set.
          const std::size_t before = node.active_work_items();
          node.cancel_work(id);
          if (node.active_work_items() < before) --expected_completions;
        }
      } else if (action == 7) {  // new quota group
        groups.push_back(node.create_quota_group(rng.uniform_real(0.5, 4.0)));
      } else if (action == 8) {  // background load toggling
        if (!loads.empty() && rng.chance(0.5)) {
          node.remove_background_load(loads.back());
          loads.pop_back();
        } else {
          loads.push_back(node.add_background_load(rng.uniform_real(0.1, 1.0),
                                                   rng.chance(0.5)));
        }
      } else if (groups.size() > 1) {  // destroy a quota group
        node.destroy_quota_group(groups.back());
        groups.pop_back();
      }
    });
  }
  sim.run_until(at + sim::kMinute);
  invariant.stop();
  sim.run();

  EXPECT_EQ(completions, expected_completions);
  EXPECT_EQ(node.active_work_items(), 0u);
  EXPECT_DOUBLE_EQ(node.compute_load() - node.background_compute_load(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeChurn, testing::Range(1, 7));

}  // namespace
}  // namespace wfs::cluster
