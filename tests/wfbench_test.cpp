// Tests for the wfbench module: POST-body (de)serialization, the stress
// cost model, and the worker-pool service (queueing, PM/NoPM memory
// semantics, OOM kills, missing inputs, shutdown).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "cluster/node.h"
#include "json/parse.h"
#include "json/write.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "wfbench/native.h"
#include "wfbench/service.h"
#include "wfbench/stress_model.h"
#include "wfbench/task_params.h"

namespace wfs::wfbench {
namespace {

// ---- task params -------------------------------------------------------------

TEST(TaskParams, PaperRequestParses) {
  // The exact POST body from §III-B of the paper.
  const char* body = R"({"name":"split_fasta_00000001", "percent-cpu":0.6,
      "cpu-work":100, "out":{"split_fasta_00000001_output.txt": 204082},
      "inputs": ["split_fasta_00000001_input.txt"],
      "workdir":"../data/wfbench-knative"})";
  const TaskParams params = parse_task_params(body);
  EXPECT_EQ(params.name, "split_fasta_00000001");
  EXPECT_DOUBLE_EQ(params.percent_cpu, 0.6);
  EXPECT_DOUBLE_EQ(params.cpu_work, 100.0);
  ASSERT_EQ(params.outputs.size(), 1u);
  EXPECT_EQ(params.outputs[0].first, "split_fasta_00000001_output.txt");
  EXPECT_EQ(params.outputs[0].second, 204082u);
  EXPECT_EQ(params.inputs, (std::vector<std::string>{"split_fasta_00000001_input.txt"}));
  EXPECT_EQ(params.workdir, "../data/wfbench-knative");
}

TEST(TaskParams, RoundTrip) {
  TaskParams params;
  params.name = "map_00000007";
  params.percent_cpu = 0.85;
  params.cpu_work = 120.5;
  params.memory_bytes = 512 << 20;
  params.outputs = {{"a.out", 100}, {"b.out", 200}};
  params.inputs = {"x.in", "y.in"};
  params.workdir = "/shared";
  const TaskParams copy = task_params_from_json(to_json(params));
  EXPECT_EQ(copy, params);
}

TEST(TaskParams, DefaultsForOptionalFields) {
  const TaskParams params = parse_task_params(R"({"name":"t"})");
  EXPECT_DOUBLE_EQ(params.percent_cpu, 0.6);
  EXPECT_DOUBLE_EQ(params.cpu_work, 100.0);
  EXPECT_EQ(params.memory_bytes, 0u);
  EXPECT_TRUE(params.outputs.empty());
  EXPECT_TRUE(params.inputs.empty());
}

TEST(TaskParams, RejectsBadBodies) {
  EXPECT_THROW(parse_task_params("[]"), std::invalid_argument);
  EXPECT_THROW(parse_task_params("{}"), std::invalid_argument);  // missing name
  EXPECT_THROW(parse_task_params(R"({"name": 42})"), std::invalid_argument);
  EXPECT_THROW(parse_task_params(R"({"name":"t","percent-cpu":"high"})"),
               std::invalid_argument);
  EXPECT_THROW(parse_task_params(R"({"name":"t","percent-cpu":0})"), std::invalid_argument);
  EXPECT_THROW(parse_task_params(R"({"name":"t","cpu-work":-5})"), std::invalid_argument);
  EXPECT_THROW(parse_task_params(R"({"name":"t","out":[1]})"), std::invalid_argument);
  EXPECT_THROW(parse_task_params(R"({"name":"t","inputs":[3]})"), std::invalid_argument);
  EXPECT_THROW(parse_task_params("not json"), json::ParseError);
}

// ---- stress model ---------------------------------------------------------------

TEST(StressModel, ComputeDominatedEstimate) {
  TaskParams params;
  params.name = "t";
  params.percent_cpu = 0.5;
  params.cpu_work = 100.0;
  const EnvironmentModel env;  // core_speed 1.0
  const StressEstimate estimate = wfbench::estimate(params, env);
  EXPECT_DOUBLE_EQ(estimate.compute_seconds, 200.0);
  EXPECT_DOUBLE_EQ(estimate.read_seconds, 0.0);
  EXPECT_DOUBLE_EQ(estimate.write_seconds, 0.0);
  EXPECT_DOUBLE_EQ(estimate.total_seconds(), 200.0);
}

TEST(StressModel, IoTermsScaleWithSizes) {
  TaskParams params;
  params.name = "t";
  params.cpu_work = 0.0;
  params.inputs = {"a", "b"};
  params.outputs = {{"o", 1'200'000'000}};  // 1.2 GB at 1.2 GB/s = 1 s
  EnvironmentModel env;
  env.io_latency_seconds = 0.0;
  const StressEstimate estimate = wfbench::estimate(params, env);
  EXPECT_GT(estimate.read_seconds, 0.0);
  EXPECT_NEAR(estimate.write_seconds, 1.0, 1e-6);
}

TEST(StressModel, CpuSecondsIndependentOfPercentCpu) {
  TaskParams a;
  a.name = "a";
  a.percent_cpu = 0.2;
  a.cpu_work = 50.0;
  TaskParams b = a;
  b.percent_cpu = 0.9;
  const EnvironmentModel env;
  EXPECT_DOUBLE_EQ(cpu_seconds(a, env), cpu_seconds(b, env));
}

// ---- service fixture --------------------------------------------------------------

class ServiceTest : public testing::Test {
 protected:
  ServiceTest() : node_(sim_, make_node()), fs_(sim_) {}

  static cluster::NodeSpec make_node() {
    cluster::NodeSpec spec;
    spec.name = "n";
    spec.cores = 8.0;
    spec.memory_bytes = 16ULL << 30;
    return spec;
  }

  TaskParams simple_task(const std::string& name, double work = 10.0,
                         std::uint64_t mem = 1ULL << 30) {
    TaskParams params;
    params.name = name;
    params.percent_cpu = 1.0;
    params.cpu_work = work;
    params.memory_bytes = mem;
    return params;
  }

  sim::Simulation sim_;
  cluster::Node node_;
  storage::SharedFilesystem fs_;
};

TEST_F(ServiceTest, ExecutesTaskThroughAllPhases) {
  ServiceConfig config;
  config.workers = 2;
  WfBenchService service(sim_, node_, fs_, config);
  fs_.stage("in.txt", 1000);

  TaskParams params = simple_task("t1");
  params.inputs = {"in.txt"};
  params.outputs = {{"out.txt", 2000}};

  net::HttpResponse response;
  service.handle(params, [&](net::HttpResponse r) { response = std::move(r); });
  sim_.run();

  EXPECT_EQ(response.status, 200);
  EXPECT_TRUE(fs_.exists("out.txt"));
  EXPECT_EQ(service.stats().completed, 1u);
  // Response body carries the measured runtime.
  const json::Value body = json::parse(response.body);
  EXPECT_GE(body.find("runtimeInSeconds")->as_double(), 10.0);
}

TEST_F(ServiceTest, QueuesBeyondWorkerCount) {
  ServiceConfig config;
  config.workers = 2;
  WfBenchService service(sim_, node_, fs_, config);
  int done = 0;
  for (int i = 0; i < 5; ++i) {
    service.handle(simple_task("t" + std::to_string(i)),
                   [&](net::HttpResponse) { ++done; });
  }
  EXPECT_EQ(service.busy_workers(), 2);
  EXPECT_EQ(service.queue_depth(), 3u);
  EXPECT_EQ(service.inflight(), 5u);
  EXPECT_FALSE(service.has_capacity());
  sim_.run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(service.stats().max_queue_depth, 3u);
  EXPECT_EQ(service.busy_workers(), 0);
}

TEST_F(ServiceTest, MissingInputFailsRequest) {
  ServiceConfig config;
  WfBenchService service(sim_, node_, fs_, config);
  TaskParams params = simple_task("t");
  params.inputs = {"never_written.txt"};
  net::HttpResponse response;
  service.handle(params, [&](net::HttpResponse r) { response = std::move(r); });
  sim_.run();
  EXPECT_EQ(response.status, 500);
  EXPECT_EQ(service.stats().missing_input_failures, 1u);
  EXPECT_EQ(service.busy_workers(), 0);  // worker released on failure
}

TEST_F(ServiceTest, NoPmReleasesMemoryAfterTask) {
  ServiceConfig config;
  config.persistent_memory = false;
  WfBenchService service(sim_, node_, fs_, config);
  const std::uint64_t base = service.resident_bytes();
  service.handle(simple_task("t", 10.0, 2ULL << 30), [](net::HttpResponse) {});
  sim_.step(0);
  EXPECT_EQ(service.resident_bytes(), base + (2ULL << 30));
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), base);  // stressor freed
}

TEST_F(ServiceTest, PmKeepsMemoryUntilShutdown) {
  ServiceConfig config;
  config.persistent_memory = true;
  config.workers = 1;
  WfBenchService service(sim_, node_, fs_, config);
  const std::uint64_t base = service.resident_bytes();

  service.handle(simple_task("t1", 10.0, 2ULL << 30), [](net::HttpResponse) {});
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), base + (2ULL << 30));  // --vm-keep

  // A second task reusing the same worker does not double-allocate.
  service.handle(simple_task("t2", 10.0, 1ULL << 30), [](net::HttpResponse) {});
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), base + (2ULL << 30));

  // Growth allocates only the delta.
  service.handle(simple_task("t3", 10.0, 3ULL << 30), [](net::HttpResponse) {});
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), base + (3ULL << 30));

  service.shutdown();
  EXPECT_EQ(service.resident_bytes(), 0u);
  EXPECT_EQ(node_.resident_memory(), 0u);
}

TEST_F(ServiceTest, MemoryLimitCausesOomFailure) {
  ServiceConfig config;
  config.workers = 1;
  config.memory_limit_bytes = 2ULL << 30;  // smaller than base + task
  WfBenchService service(sim_, node_, fs_, config);
  net::HttpResponse response;
  service.handle(simple_task("big", 10.0, 4ULL << 30),
                 [&](net::HttpResponse r) { response = std::move(r); });
  sim_.run();
  EXPECT_EQ(response.status, 500);
  EXPECT_EQ(service.stats().oom_failures, 1u);
  // Failed allocation must not leak accounting.
  service.shutdown();
  EXPECT_EQ(node_.resident_memory(), 0u);
}

TEST_F(ServiceTest, BaseFootprintScalesWithWorkers) {
  ServiceConfig one;
  one.workers = 1;
  ServiceConfig ten = one;
  ten.workers = 10;
  const std::uint64_t before = node_.resident_memory();
  {
    WfBenchService a(sim_, node_, fs_, one);
    const std::uint64_t with_one = node_.resident_memory() - before;
    WfBenchService b(sim_, node_, fs_, ten);
    const std::uint64_t with_ten = node_.resident_memory() - before - with_one;
    EXPECT_EQ(with_ten - with_one, 9u * one.memory_per_worker);
  }
  EXPECT_EQ(node_.resident_memory(), before);  // destructors released all
}

TEST_F(ServiceTest, IdleWorkersRegisterSpinLoad) {
  ServiceConfig config;
  config.workers = 100;
  config.idle_load_per_worker = 0.01;
  WfBenchService service(sim_, node_, fs_, config);
  EXPECT_DOUBLE_EQ(node_.spin_load(), 1.0);
  service.shutdown();
  EXPECT_DOUBLE_EQ(node_.spin_load(), 0.0);
}

TEST_F(ServiceTest, PmRefreshLoadAppearsAfterKeep) {
  ServiceConfig config;
  config.workers = 1;
  config.persistent_memory = true;
  config.idle_load_per_worker = 0.0;
  config.pm_refresh_load = 0.05;
  WfBenchService service(sim_, node_, fs_, config);
  EXPECT_DOUBLE_EQ(node_.spin_load(), 0.0);
  service.handle(simple_task("t"), [](net::HttpResponse) {});
  sim_.run();
  EXPECT_DOUBLE_EQ(node_.spin_load(), 0.05);
}

TEST_F(ServiceTest, ShutdownAnswers503ToQueuedAndInflight) {
  ServiceConfig config;
  config.workers = 1;
  WfBenchService service(sim_, node_, fs_, config);
  std::vector<int> statuses;
  for (int i = 0; i < 3; ++i) {
    service.handle(simple_task("t" + std::to_string(i), 1000.0),
                   [&](net::HttpResponse r) { statuses.push_back(r.status); });
  }
  service.shutdown();  // one request is executing, two are queued
  EXPECT_EQ(statuses.size(), 3u);  // 1 in-flight + 2 queued all answered
  for (const int status : statuses) EXPECT_EQ(status, 503);
  sim_.run();  // no stray completions fire afterwards
  EXPECT_EQ(statuses.size(), 3u);
  EXPECT_EQ(service.stats().completed, 0u);
}

TEST_F(ServiceTest, RequestsAfterShutdownAre503) {
  WfBenchService service(sim_, node_, fs_, ServiceConfig{});
  service.shutdown();
  net::HttpResponse response;
  service.handle(simple_task("t"), [&](net::HttpResponse r) { response = std::move(r); });
  EXPECT_EQ(response.status, 503);
  EXPECT_FALSE(service.running());
}

TEST_F(ServiceTest, QuotaGroupThrottlesService) {
  const cluster::QuotaGroupId group = node_.create_quota_group(1.0);
  ServiceConfig config;
  config.workers = 4;
  WfBenchService service(sim_, node_, fs_, config, group);
  int done = 0;
  // 4 tasks x 1.0 demand under a 1-core quota: 4x slowdown -> 40 s.
  for (int i = 0; i < 4; ++i) {
    service.handle(simple_task("t" + std::to_string(i), 10.0, 0),
                   [&](net::HttpResponse) { ++done; });
  }
  const double end = sim::to_seconds(sim_.run());
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(end, 40.0, 1.0);
}

TEST_F(ServiceTest, RejectsNonPositiveWorkerCount) {
  ServiceConfig config;
  config.workers = 0;
  EXPECT_THROW(WfBenchService(sim_, node_, fs_, config), std::invalid_argument);
}

TEST_F(ServiceTest, AllocationSlackGrowsResidency) {
  ServiceConfig config;
  config.workers = 1;
  config.allocation_slack = 0.15;  // NoCR allocator greediness
  WfBenchService service(sim_, node_, fs_, config);
  const std::uint64_t base = service.resident_bytes();
  service.handle(simple_task("t", 1000.0, 1ULL << 30), [](net::HttpResponse) {});
  sim_.step(0);
  const std::uint64_t during = service.resident_bytes() - base;
  EXPECT_EQ(during, static_cast<std::uint64_t>((1ULL << 30) * 1.15));
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), base);  // NoPM still frees everything
}

TEST_F(ServiceTest, AllocationSlackWithPmBalancesAcrossRuns) {
  ServiceConfig config;
  config.workers = 1;
  config.persistent_memory = true;
  config.allocation_slack = 0.15;
  WfBenchService service(sim_, node_, fs_, config);
  const std::uint64_t base = service.resident_bytes();
  // Two identical tasks: the second must not grow the keep (no leak from
  // slack/keep accounting mismatch).
  service.handle(simple_task("t1", 10.0, 1ULL << 30), [](net::HttpResponse) {});
  sim_.run();
  const std::uint64_t after_first = service.resident_bytes();
  service.handle(simple_task("t2", 10.0, 1ULL << 30), [](net::HttpResponse) {});
  sim_.run();
  EXPECT_EQ(service.resident_bytes(), after_first);
  EXPECT_GT(after_first, base);
  service.shutdown();
  EXPECT_EQ(node_.resident_memory(), 0u);
}

// ---- cross-validation: closed-form model vs simulated service ------------------

TEST_F(ServiceTest, SimulationMatchesStressModelWhenUncontended) {
  // One task on an idle node: the simulated runtime must match the
  // closed-form StressEstimate within I/O-latency tolerance.
  ServiceConfig config;
  config.workers = 1;
  WfBenchService service(sim_, node_, fs_, config);
  fs_.stage("in.bin", 100'000'000);  // 100 MB

  TaskParams params;
  params.name = "t";
  params.percent_cpu = 0.8;
  params.cpu_work = 40.0;
  params.memory_bytes = 0;
  params.inputs = {"in.bin"};
  params.outputs = {{"out.bin", 60'000'000}};

  EnvironmentModel env;  // defaults mirror SharedFsConfig/NodeSpec defaults
  env.assumed_input_bytes = 100'000'000;
  const StressEstimate expected = estimate(params, env);

  double measured = -1.0;
  service.handle(params, [&](net::HttpResponse response) {
    const json::Value body = json::parse(response.body);
    measured = body.find("runtimeInSeconds")->as_double();
  });
  sim_.run();
  ASSERT_GE(measured, 0.0);
  EXPECT_NEAR(measured, expected.total_seconds(), expected.total_seconds() * 0.05);
}

TEST_F(ServiceTest, ContentionOnlySlowsComputePhase) {
  // 16 identical pure-compute tasks on 8 cores: exactly 2x the solo time.
  ServiceConfig config;
  config.workers = 16;
  WfBenchService solo_service(sim_, node_, fs_, config);
  double solo = -1.0;
  solo_service.handle(simple_task("solo", 20.0, 0), [&](net::HttpResponse response) {
    solo = json::parse(response.body).find("runtimeInSeconds")->as_double();
  });
  sim_.run();
  solo_service.shutdown();

  WfBenchService crowd_service(sim_, node_, fs_, config);
  std::vector<double> runtimes;
  for (int i = 0; i < 16; ++i) {
    crowd_service.handle(simple_task("c" + std::to_string(i), 20.0, 0),
                         [&](net::HttpResponse response) {
                           runtimes.push_back(json::parse(response.body)
                                                  .find("runtimeInSeconds")
                                                  ->as_double());
                         });
  }
  sim_.run();
  ASSERT_EQ(runtimes.size(), 16u);
  for (const double runtime : runtimes) EXPECT_NEAR(runtime, solo * 2.0, solo * 0.05);
}

// ---- native execution (the real, non-simulated wfbench) -----------------------

class NativeTest : public testing::Test {
 protected:
  NativeTest() {
    workdir_ = std::filesystem::temp_directory_path() /
               ("wfs_native_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(workdir_);
    config_.workdir = workdir_;
    config_.work_unit_seconds = 0.0002;  // keep tests fast
  }
  ~NativeTest() override {
    std::error_code ec;
    std::filesystem::remove_all(workdir_, ec);
  }

  void stage(const std::string& name, std::size_t bytes) {
    std::ofstream out(workdir_ / name, std::ios::binary);
    const std::string chunk(bytes, 'x');
    out.write(chunk.data(), static_cast<std::streamsize>(chunk.size()));
  }

  std::filesystem::path workdir_;
  NativeConfig config_;
};

TEST_F(NativeTest, ExecutesAllThreePhasesForReal) {
  stage("in.txt", 1000);
  TaskParams params;
  params.name = "t";
  params.percent_cpu = 1.0;
  params.cpu_work = 10.0;
  params.memory_bytes = 1 << 20;
  params.inputs = {"in.txt"};
  params.outputs = {{"out.txt", 2048}};
  const NativeOutcome outcome = execute_native(params, config_);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.bytes_read, 1000u);
  EXPECT_EQ(outcome.bytes_written, 2048u);
  EXPECT_TRUE(std::filesystem::exists(workdir_ / "out.txt"));
  EXPECT_EQ(std::filesystem::file_size(workdir_ / "out.txt"), 2048u);
  // ~10 units x 0.2 ms = ~2 ms of busy CPU.
  EXPECT_NEAR(outcome.busy_seconds, 0.002, 0.0015);
  EXPECT_GE(outcome.runtime_seconds, outcome.busy_seconds * 0.5);
}

TEST_F(NativeTest, MissingInputFails) {
  TaskParams params;
  params.name = "t";
  params.cpu_work = 1.0;
  params.inputs = {"never_staged.txt"};
  const NativeOutcome outcome = execute_native(params, config_);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("missing input"), std::string::npos);
}

TEST_F(NativeTest, DutyCycleStretchesWallTime) {
  TaskParams fast;
  fast.name = "fast";
  fast.percent_cpu = 1.0;
  fast.cpu_work = 50.0;
  TaskParams slow = fast;
  slow.name = "slow";
  slow.percent_cpu = 0.25;  // same work at quarter duty -> ~4x wall
  const NativeOutcome full = execute_native(fast, config_);
  const NativeOutcome quarter = execute_native(slow, config_);
  ASSERT_TRUE(full.ok && quarter.ok);
  EXPECT_NEAR(full.busy_seconds, quarter.busy_seconds, 0.005);
  EXPECT_GT(quarter.runtime_seconds, full.runtime_seconds * 1.5);
}

TEST_F(NativeTest, WorkerPoolRunsEverythingOnce) {
  NativeWorkerPool pool(3, config_);
  std::vector<std::future<NativeOutcome>> futures;
  for (int i = 0; i < 10; ++i) {
    TaskParams params;
    params.name = "t" + std::to_string(i);
    params.percent_cpu = 1.0;
    params.cpu_work = 2.0;
    params.outputs = {{"pool_out_" + std::to_string(i) + ".txt", 64}};
    futures.push_back(pool.submit(params));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  pool.drain();
  EXPECT_EQ(pool.completed(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::filesystem::exists(workdir_ /
                                        ("pool_out_" + std::to_string(i) + ".txt")));
  }
}

TEST_F(NativeTest, PoolDestructionWithIdleWorkersIsClean) {
  // Workers blocked on the condition variable must wake and exit.
  { NativeWorkerPool pool(4, config_); }
  SUCCEED();
}

TEST_F(NativeTest, PoolRejectsBadWorkerCount) {
  EXPECT_THROW(NativeWorkerPool(0, config_), std::invalid_argument);
}

}  // namespace
}  // namespace wfs::wfbench
