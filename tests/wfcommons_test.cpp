// Tests for the WfCommons analogue: workflow IR, validation, analysis,
// the seven recipes (with property sweeps over sizes and seeds), the
// generator facade, bench-spec rewriting, serialization and translators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "json/parse.h"
#include "json/write.h"
#include "wfcommons/analysis.h"
#include "wfcommons/bench_spec.h"
#include "wfcommons/generator.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/recipes/recipes.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/translators/hybrid.h"
#include "wfcommons/translators/local_container.h"
#include "wfcommons/translators/nextflow.h"
#include "wfcommons/translators/pegasus.h"
#include "wfcommons/translators/translator.h"
#include "wfcommons/wfchef.h"
#include "wfcommons/wfformat.h"
#include "wfcommons/visualization.h"
#include "wfcommons/wfinstances.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {
namespace {

Workflow diamond() {
  Workflow wf("diamond");
  for (const char* name : {"a", "b", "c", "d"}) {
    Task task;
    task.name = name;
    task.category = name;
    task.files.push_back(
        TaskFile{TaskFile::Link::kOutput, std::string(name) + ".out", 100});
    wf.add_task(std::move(task));
  }
  const auto wire = [&wf](const char* parent, const char* child) {
    wf.connect(parent, child);
    wf.find(child)->files.push_back(
        TaskFile{TaskFile::Link::kInput, std::string(parent) + ".out", 100});
  };
  wire("a", "b");
  wire("a", "c");
  wire("b", "d");
  wire("c", "d");
  return wf;
}

// ---- workflow IR -----------------------------------------------------------

TEST(Workflow, AddAndFind) {
  Workflow wf("w");
  Task t;
  t.name = "x";
  wf.add_task(t);
  EXPECT_NE(wf.find("x"), nullptr);
  EXPECT_EQ(wf.find("y"), nullptr);
  EXPECT_THROW(wf.add_task(t), std::invalid_argument);  // duplicate
}

TEST(Workflow, ConnectMaintainsSymmetry) {
  Workflow wf = diamond();
  EXPECT_EQ(wf.find("a")->children, (std::vector<std::string>{"b", "c"}));
  EXPECT_EQ(wf.find("d")->parents, (std::vector<std::string>{"b", "c"}));
  // Idempotent.
  wf.connect("a", "b");
  EXPECT_EQ(wf.find("a")->children.size(), 2u);
}

TEST(Workflow, ConnectRejectsBadEdges) {
  Workflow wf = diamond();
  EXPECT_THROW(wf.connect("a", "ghost"), std::invalid_argument);
  EXPECT_THROW(wf.connect("ghost", "a"), std::invalid_argument);
  EXPECT_THROW(wf.connect("a", "a"), std::invalid_argument);
}

TEST(Workflow, RootsLeavesEdges) {
  const Workflow wf = diamond();
  ASSERT_EQ(wf.roots().size(), 1u);
  EXPECT_EQ(wf.roots()[0]->name, "a");
  ASSERT_EQ(wf.leaves().size(), 1u);
  EXPECT_EQ(wf.leaves()[0]->name, "d");
  EXPECT_EQ(wf.edge_count(), 4u);
}

TEST(Workflow, ExternalInputs) {
  Workflow wf = diamond();
  wf.find("a")->files.push_back(TaskFile{TaskFile::Link::kInput, "staged.txt", 42});
  const auto externals = wf.external_inputs();
  ASSERT_EQ(externals.size(), 1u);
  EXPECT_EQ(externals[0].name, "staged.txt");
}

TEST(Workflow, TaskFileHelpers) {
  const Workflow wf = diamond();
  const Task* d = wf.find("d");
  EXPECT_EQ(d->inputs().size(), 2u);
  EXPECT_EQ(d->outputs().size(), 1u);
  EXPECT_EQ(d->input_bytes(), 200u);
  EXPECT_EQ(d->output_bytes(), 100u);
}

TEST(Workflow, ValidDiamondPasses) { EXPECT_TRUE(diamond().validate().empty()); }

TEST(Workflow, ValidateDetectsCycle) {
  Workflow wf = diamond();
  // Force d -> a by hand (connect would still allow it; the cycle shows in
  // topological_order).
  wf.find("d")->children.push_back("a");
  wf.find("a")->parents.push_back("d");
  const auto problems = wf.validate();
  EXPECT_FALSE(problems.empty());
  EXPECT_THROW(topological_order(wf), std::invalid_argument);
}

TEST(Workflow, ValidateDetectsAsymmetry) {
  Workflow wf = diamond();
  wf.find("a")->children.push_back("d");  // no matching parent entry
  EXPECT_FALSE(wf.validate().empty());
}

TEST(Workflow, ValidateDetectsDanglingReference) {
  Workflow wf = diamond();
  wf.find("a")->children.push_back("phantom");
  EXPECT_FALSE(wf.validate().empty());
}

TEST(Workflow, ValidateDetectsNonParentDataflow) {
  Workflow wf = diamond();
  // d consumes a file produced by a, but a is not d's parent.
  wf.find("d")->files.push_back(TaskFile{TaskFile::Link::kInput, "a.out", 100});
  const auto problems = wf.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("non-parent"), std::string::npos);
}

TEST(Workflow, ValidateDetectsDoubleProducer) {
  Workflow wf = diamond();
  wf.find("b")->files.push_back(TaskFile{TaskFile::Link::kOutput, "c.out", 1});
  EXPECT_FALSE(wf.validate().empty());
}

TEST(Workflow, TopologicalOrderRespectsEdges) {
  const Workflow wf = diamond();
  const auto order = topological_order(wf);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  const auto index_of = [&](const char* name) {
    for (std::size_t i = 0; i < wf.tasks().size(); ++i) {
      if (wf.tasks()[i].name == name) return position[i];
    }
    return std::size_t{999};
  };
  EXPECT_LT(index_of("a"), index_of("b"));
  EXPECT_LT(index_of("b"), index_of("d"));
  EXPECT_LT(index_of("c"), index_of("d"));
}

// ---- analysis ---------------------------------------------------------------

TEST(Analysis, DiamondLevels) {
  const Workflow wf = diamond();
  const auto by_level = levels(wf);
  ASSERT_EQ(by_level.size(), 3u);
  EXPECT_EQ(by_level[0].size(), 1u);
  EXPECT_EQ(by_level[1].size(), 2u);
  EXPECT_EQ(by_level[2].size(), 1u);
  EXPECT_EQ(phase_histogram(wf), (std::vector<std::size_t>{1, 2, 1}));
}

TEST(Analysis, CategoryHistogram) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 50, 1);
  const auto hist = category_histogram(wf);
  EXPECT_EQ(hist.at("split_fasta"), 1u);
  EXPECT_EQ(hist.at("blastall"), 47u);
  EXPECT_EQ(hist.at("cat"), 1u);
  EXPECT_EQ(hist.at("cat_blast"), 1u);
}

TEST(Analysis, StatsFields) {
  const Workflow wf = diamond();
  const DagStats stats = compute_stats(wf);
  EXPECT_EQ(stats.tasks, 4u);
  EXPECT_EQ(stats.edges, 4u);
  EXPECT_EQ(stats.levels, 3u);
  EXPECT_EQ(stats.max_width, 2u);
  EXPECT_EQ(stats.roots, 1u);
  EXPECT_EQ(stats.leaves, 1u);
  EXPECT_EQ(stats.categories, 4u);
  EXPECT_DOUBLE_EQ(stats.density, 0.5);
}

TEST(Analysis, PaperGrouping) {
  // Paper §V-D: Blast/BWA/Genome/Seismology/Srasearch are group 1 (dense),
  // Cycles and Epigenomics group 2 (layered).
  WorkflowGenerator generator;
  const std::set<std::string> dense = {"blast", "bwa", "genome", "seismology", "srasearch"};
  for (const std::string& name : recipe_names()) {
    const Workflow wf = generator.generate(name, 120, 3);
    const BehaviorGroup group = classify(wf);
    if (dense.contains(name)) {
      EXPECT_EQ(group, BehaviorGroup::kDense) << name;
    } else {
      EXPECT_EQ(group, BehaviorGroup::kLayered) << name;
    }
  }
}

TEST(Analysis, RenderStructureMentionsEveryPhase) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("epigenomics", 60, 1);
  const std::string text = render_structure(wf);
  for (std::size_t i = 0; i < phase_histogram(wf).size(); ++i) {
    EXPECT_NE(text.find("phase"), std::string::npos);
  }
  EXPECT_NE(text.find("map"), std::string::npos);
}

// ---- recipes: property sweep over families x sizes x seeds ------------------

struct RecipeCase {
  std::string recipe;
  std::size_t tasks;
  std::uint64_t seed;
};

class RecipeProperties : public testing::TestWithParam<RecipeCase> {};

TEST_P(RecipeProperties, GeneratesValidSizedDag) {
  const RecipeCase& param = GetParam();
  const auto recipe = make_recipe(param.recipe);
  GenerateOptions options;
  options.num_tasks = param.tasks;
  options.seed = param.seed;
  const Workflow wf = recipe->generate(options);

  // Structural validity (acyclic, symmetric, dataflow-consistent).
  EXPECT_TRUE(wf.validate().empty());

  // Size lands near the request (recipes keep family shape, so allow slack).
  EXPECT_GE(wf.size(), recipe->min_tasks());
  const double target = static_cast<double>(std::max(param.tasks, recipe->min_tasks()));
  EXPECT_GE(static_cast<double>(wf.size()), target * 0.55) << wf.name();
  EXPECT_LE(static_cast<double>(wf.size()), target * 1.45) << wf.name();

  // Every task: unique WfCommons-style name, sane knobs, one output file.
  std::unordered_set<std::string> names;
  for (const Task& task : wf.tasks()) {
    EXPECT_TRUE(names.insert(task.name).second);
    EXPECT_EQ(task.name, task.category + "_" + task.id);
    EXPECT_GT(task.percent_cpu, 0.0);
    EXPECT_LE(task.percent_cpu, 1.0);
    EXPECT_GT(task.cpu_work, 0.0);
    EXPECT_GT(task.memory_bytes, 0u);
    EXPECT_FALSE(task.outputs().empty());
  }

  // Connected enough to be a workflow: single pass from roots reaches all.
  EXPECT_FALSE(wf.roots().empty());
  EXPECT_FALSE(wf.leaves().empty());
}

std::vector<RecipeCase> recipe_sweep() {
  std::vector<RecipeCase> cases;
  for (const std::string& recipe : recipe_names()) {
    for (const std::size_t tasks : {20u, 50u, 250u, 1000u}) {
      for (const std::uint64_t seed : {1u, 7u}) {
        cases.push_back(RecipeCase{recipe, tasks, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RecipeProperties, testing::ValuesIn(recipe_sweep()),
                         [](const testing::TestParamInfo<RecipeCase>& info) {
                           return info.param.recipe + "_" +
                                  std::to_string(info.param.tasks) + "_s" +
                                  std::to_string(info.param.seed);
                         });

TEST(Recipes, DeterministicForSeed) {
  for (const std::string& name : recipe_names()) {
    WorkflowGenerator generator;
    const Workflow a = generator.generate(name, 80, 5);
    const Workflow b = generator.generate(name, 80, 5);
    EXPECT_EQ(write_workflow(a), write_workflow(b)) << name;
  }
}

TEST(Recipes, SeedsChangeDraws) {
  WorkflowGenerator generator;
  const Workflow a = generator.generate("blast", 80, 1);
  const Workflow b = generator.generate("blast", 80, 2);
  EXPECT_NE(write_workflow(a), write_workflow(b));
}

TEST(Recipes, MinTasksRespected) {
  for (const auto& recipe : all_recipes()) {
    GenerateOptions options;
    options.num_tasks = 1;  // below every minimum
    const Workflow wf = recipe->generate(options);
    EXPECT_GE(wf.size(), recipe->min_tasks()) << recipe->name();
    EXPECT_TRUE(wf.validate().empty());
  }
}

TEST(Recipes, CatalogAndAliases) {
  EXPECT_EQ(recipe_names().size(), 7u);
  EXPECT_EQ(make_recipe("BLAST")->name(), "blast");
  EXPECT_EQ(make_recipe("1000genome")->name(), "genome");
  EXPECT_EQ(make_recipe("genomes")->name(), "genome");
  EXPECT_THROW(make_recipe("montage"), std::invalid_argument);
  for (const auto& recipe : all_recipes()) {
    EXPECT_FALSE(recipe->description().empty());
    EXPECT_FALSE(recipe->display_name().empty());
  }
}

TEST(Recipes, InstanceNamingConvention) {
  GenerateOptions options;
  options.num_tasks = 100;
  options.cpu_work = 250.0;
  const Workflow wf = BlastRecipe().generate(options);
  EXPECT_EQ(wf.name(), "BlastRecipe-250-100");  // artifact convention
}

TEST(Recipes, SeismologyIsTwoPhases) {
  WorkflowGenerator generator;
  EXPECT_EQ(phase_histogram(generator.generate("seismology", 100, 1)),
            (std::vector<std::size_t>{99, 1}));
}

TEST(Recipes, EpigenomicsIsDeep) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("epigenomics", 100, 1);
  EXPECT_GE(phase_histogram(wf).size(), 8u);
}

// ---- generator ---------------------------------------------------------------

TEST(Generator, SuiteContainsAllFamilies) {
  WorkflowGenerator generator;
  const auto suite = generator.generate_suite(60, 1);
  ASSERT_EQ(suite.size(), 7u);
  std::set<std::string> names;
  for (const Workflow& wf : suite) {
    names.insert(wf.name());
    EXPECT_TRUE(wf.validate().empty());
  }
  EXPECT_EQ(names.size(), 7u);
}

TEST(Generator, DefaultsApply) {
  GenerateOptions defaults;
  defaults.num_tasks = 30;
  defaults.seed = 9;
  WorkflowGenerator generator(defaults);
  const Workflow wf = generator.generate("blast");
  EXPECT_GE(wf.size(), 25u);
}

// ---- bench spec -----------------------------------------------------------------

TEST(BenchSpec, ScalesWorkAndData) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 30, 1);
  const double work_before = compute_stats(wf).total_cpu_work;
  const auto bytes_before = wf.find(wf.tasks()[1].name)->output_bytes();

  BenchSpec spec;
  spec.cpu_work_scale = 2.0;
  spec.data_scale = 3.0;
  const std::size_t modified = apply_bench_spec(wf, spec);
  EXPECT_EQ(modified, wf.size());
  EXPECT_NEAR(compute_stats(wf).total_cpu_work, work_before * 2.0, 1e-6);
  EXPECT_NEAR(static_cast<double>(wf.find(wf.tasks()[1].name)->output_bytes()),
              static_cast<double>(bytes_before) * 3.0, 2.0);
  EXPECT_TRUE(wf.validate().empty());
}

TEST(BenchSpec, ForcesPercentCpuAndMemory) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("bwa", 20, 1);
  BenchSpec spec;
  spec.percent_cpu = 0.9;
  spec.memory_bytes = 123456;
  apply_bench_spec(wf, spec);
  for (const Task& task : wf.tasks()) {
    EXPECT_DOUBLE_EQ(task.percent_cpu, 0.9);
    EXPECT_EQ(task.memory_bytes, 123456u);
  }
}

TEST(BenchSpec, CategoryFilter) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 30, 1);
  BenchSpec spec;
  spec.percent_cpu = 0.5;
  spec.category_filter = "blastall";
  const std::size_t modified = apply_bench_spec(wf, spec);
  EXPECT_EQ(modified, 27u);
  EXPECT_DOUBLE_EQ(wf.find(wf.tasks()[3].name)->percent_cpu, 0.5);  // a blastall
  EXPECT_NE(wf.find("split_fasta_00000001")->percent_cpu, 0.5);
}

TEST(BenchSpec, RejectsBadValues) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 10, 1);
  BenchSpec spec;
  spec.cpu_work_scale = 0.0;
  EXPECT_THROW(apply_bench_spec(wf, spec), std::invalid_argument);
  spec = BenchSpec{};
  spec.percent_cpu = 1.5;
  EXPECT_THROW(apply_bench_spec(wf, spec), std::invalid_argument);
}

TEST(Analysis, CriticalPathOnDiamond) {
  Workflow wf = diamond();
  // a(10s) -> b(30s) -> d(5s) vs a -> c(20s) -> d: critical = a,b,d = 45s.
  wf.find("a")->cpu_work = 10.0;
  wf.find("b")->cpu_work = 30.0;
  wf.find("c")->cpu_work = 20.0;
  wf.find("d")->cpu_work = 5.0;
  for (Task& t : wf.tasks()) t.percent_cpu = 1.0;
  const CriticalPath path = critical_path(wf);
  ASSERT_EQ(path.tasks.size(), 3u);
  EXPECT_EQ(path.tasks[0]->name, "a");
  EXPECT_EQ(path.tasks[1]->name, "b");
  EXPECT_EQ(path.tasks[2]->name, "d");
  EXPECT_DOUBLE_EQ(path.seconds, 45.0);
}

TEST(Analysis, CriticalPathIsMakespanLowerBound) {
  // Property: on every family, the critical path never exceeds the depth of
  // the DAG in tasks, spans root to leaf, and is a positive lower bound.
  WorkflowGenerator generator;
  for (const std::string& family : recipe_names()) {
    const Workflow wf = generator.generate(family, 100, 2);
    const CriticalPath path = critical_path(wf);
    ASSERT_FALSE(path.tasks.empty()) << family;
    EXPECT_TRUE(path.tasks.front()->parents.empty()) << family;
    EXPECT_TRUE(path.tasks.back()->children.empty()) << family;
    // The chain can never have more hops than the DAG has levels.
    EXPECT_LE(path.tasks.size(), phase_histogram(wf).size()) << family;
    EXPECT_GT(path.seconds, 0.0);
    // Consecutive entries really are parent/child.
    for (std::size_t i = 1; i < path.tasks.size(); ++i) {
      const auto& parents = path.tasks[i]->parents;
      EXPECT_NE(std::find(parents.begin(), parents.end(), path.tasks[i - 1]->name),
                parents.end())
          << family;
    }
  }
}

TEST(Analysis, CriticalPathEmptyWorkflow) {
  const CriticalPath path = critical_path(Workflow("empty"));
  EXPECT_TRUE(path.tasks.empty());
  EXPECT_DOUBLE_EQ(path.seconds, 0.0);
}

// ---- visualization -----------------------------------------------------------

TEST(Visualization, DotContainsEveryCategoryAndValidBraces) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("cycles", 60, 1);
  const std::string dot = to_dot(wf);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const auto& [category, count] : category_histogram(wf)) {
    EXPECT_NE(dot.find(category), std::string::npos) << category;
  }
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

TEST(Visualization, WideLevelsCollapse) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 100, 1);
  DotOptions options;
  options.collapse_threshold = 12;
  const std::string dot = to_dot(wf, options);
  EXPECT_NE(dot.find("blastall x97"), std::string::npos);  // one summary node
  // The 97 individual blastall nodes must NOT be emitted.
  EXPECT_EQ(dot.find("n_blastall_00000004"), std::string::npos);
  // Edges de-duplicate: split -> summary appears once.
  const std::string edge = "n_split_fasta_00000001 -> g_1_n_blastall";
  const std::size_t first = dot.find(edge);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(dot.find(edge, first + 1), std::string::npos);
}

TEST(Visualization, NoCollapseMode) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 20, 1);
  DotOptions options;
  options.collapse_threshold = 0;
  options.edge_labels = true;
  options.left_to_right = true;
  const std::string dot = to_dot(wf, options);
  EXPECT_NE(dot.find("rankdir=LR"), std::string::npos);
  EXPECT_NE(dot.find("n_blastall_00000004"), std::string::npos);
  EXPECT_NE(dot.find("KiB"), std::string::npos);  // edge byte labels
}

// ---- WfChef (derived recipes) -----------------------------------------------

TEST(WfChef, LearnsBlastProfileFromInstance) {
  const FamilyProfile profile =
      learn_profile("blast", {load_instance("blast-chameleon-small")});
  EXPECT_EQ(profile.instances, 1u);
  EXPECT_EQ(profile.levels, 3u);
  ASSERT_NE(profile.find_category("blastall"), nullptr);
  const CategoryStats& blastall = *profile.find_category("blastall");
  EXPECT_TRUE(blastall.scalable);
  EXPECT_EQ(blastall.level, 1u);
  EXPECT_DOUBLE_EQ(blastall.mean_count_per_instance, 4.0);
  EXPECT_NEAR(blastall.percent_cpu_mean, (0.9 + 0.88 + 0.91 + 0.87) / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(blastall.cpu_work_mean, 100.0);
  const CategoryStats& split = *profile.find_category("split_fasta");
  EXPECT_FALSE(split.scalable);
  EXPECT_GT(split.external_input_bytes, 0.0);  // blast_input.fasta
  EXPECT_FALSE(profile.to_string().empty());
}

TEST(WfChef, LearnedWiringMatchesInstance) {
  const FamilyProfile profile =
      learn_profile("blast", {load_instance("blast-chameleon-small")});
  bool found_fan_in = false;
  for (const WiringStats& wiring : profile.wiring) {
    if (wiring.parent_category == "blastall" && wiring.child_category == "cat_blast") {
      EXPECT_DOUBLE_EQ(wiring.children_per_parent, 1.0);
      EXPECT_DOUBLE_EQ(wiring.parents_per_child, 4.0);
      found_fan_in = true;
    }
  }
  EXPECT_TRUE(found_fan_in);
}

TEST(WfChef, RejectsEmptyAndInconsistentCorpora) {
  EXPECT_THROW(learn_profile("blast", {}), std::invalid_argument);
  // Mixing two different families puts categories at conflicting levels or
  // produces disjoint skeletons; validation of the derived profile against
  // a shared category at different levels must throw.
  Workflow a = load_instance("blast-chameleon-small");
  Workflow b = load_instance("blast-chameleon-small");
  // Move cat_blast to a deeper level in b by inserting a chain task.
  Task extra;
  extra.name = "blastall_00000099";
  extra.id = "00000099";
  extra.category = "cat_blast";  // same category, different level
  extra.files.push_back(TaskFile{TaskFile::Link::kOutput, "x99.out", 1});
  b.add_task(extra);
  b.connect("cat_blast_00000006", "blastall_00000099");
  b.find("blastall_00000099")
      ->files.push_back(
          TaskFile{TaskFile::Link::kInput, "cat_blast_00000006_output.txt", 4ULL << 20});
  EXPECT_THROW(learn_profile("blast", {a, b}), std::invalid_argument);
}

class WfChefFamilies : public testing::TestWithParam<std::string> {};

TEST_P(WfChefFamilies, DerivedRecipeGeneratesValidScaledInstances) {
  const auto recipe = chef_from_instances(GetParam());
  for (const std::size_t tasks : {recipe->min_tasks(), std::size_t{60}, std::size_t{300}}) {
    GenerateOptions options;
    options.num_tasks = tasks;
    options.seed = 3;
    const Workflow wf = recipe->generate(options);
    EXPECT_TRUE(wf.validate().empty()) << GetParam() << " at " << tasks;
    EXPECT_GE(wf.size(), recipe->min_tasks());
    // Scaled instances land near the request.
    if (tasks >= 60) {
      EXPECT_GE(static_cast<double>(wf.size()), 0.5 * static_cast<double>(tasks));
      EXPECT_LE(static_cast<double>(wf.size()), 1.5 * static_cast<double>(tasks));
    }
    // The derived instance has the learned level structure.
    EXPECT_EQ(phase_histogram(wf).size(), recipe->profile().levels) << GetParam();
    // Every learned category appears.
    const auto hist = category_histogram(wf);
    for (const CategoryStats& stats : recipe->profile().categories) {
      EXPECT_TRUE(hist.contains(stats.category)) << stats.category;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Catalog, WfChefFamilies,
                         testing::Values("blast", "epigenomics", "seismology", "genome",
                                         "cycles"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(WfChef, DerivedBlastScalesTheWideLevel) {
  const auto recipe = chef_from_instances("blast");
  GenerateOptions options;
  options.num_tasks = 103;
  const Workflow wf = recipe->generate(options);
  const auto hist = category_histogram(wf);
  EXPECT_EQ(hist.at("split_fasta"), 1u);
  EXPECT_EQ(hist.at("cat_blast"), 1u);
  EXPECT_EQ(hist.at("cat"), 1u);
  EXPECT_GE(hist.at("blastall"), 90u);  // the scalable category absorbs the budget
}

TEST(WfChef, UnknownFamilyThrows) {
  EXPECT_THROW(chef_from_instances("montage"), std::invalid_argument);
}

// ---- serialization ---------------------------------------------------------------

class WfFormatRoundTrip : public testing::TestWithParam<std::string> {};

TEST_P(WfFormatRoundTrip, BothArgStylesPreserveStructure) {
  WorkflowGenerator generator;
  Workflow original = generator.generate(GetParam(), 40, 3);
  KnativeTranslator().apply(original);  // api_urls survive round trips

  for (const ArgsStyle style : {ArgsStyle::kList, ArgsStyle::kKeyValue}) {
    const Workflow parsed = parse_workflow(write_workflow(original, style));
    ASSERT_EQ(parsed.size(), original.size());
    EXPECT_EQ(parsed.name(), original.name());
    for (const Task& task : original.tasks()) {
      const Task* copy = parsed.find(task.name);
      ASSERT_NE(copy, nullptr) << task.name;
      EXPECT_EQ(copy->category, task.category);
      EXPECT_EQ(copy->parents, task.parents);
      EXPECT_EQ(copy->children, task.children);
      EXPECT_EQ(copy->files, task.files);
      EXPECT_EQ(copy->api_url, task.api_url);
      EXPECT_NEAR(copy->percent_cpu, task.percent_cpu, 1e-9);
      EXPECT_NEAR(copy->cpu_work, task.cpu_work, 1e-6);
      EXPECT_EQ(copy->memory_bytes, task.memory_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, WfFormatRoundTrip,
                         testing::ValuesIn(recipe_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(WfFormat, KeyValueArgumentsMatchPaperShape) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 10, 1);
  KnativeTranslator().apply(wf);
  const json::Value doc = to_json(wf, ArgsStyle::kKeyValue);
  const json::Value& tasks = doc.as_object().at("tasks");
  const auto& [name, entry] = *tasks.as_object().begin();
  const json::Value& arguments = entry.find("command")->find("arguments")->as_array()[0];
  ASSERT_TRUE(arguments.is_object());
  EXPECT_TRUE(arguments.find("percent-cpu") != nullptr);
  EXPECT_TRUE(arguments.find("cpu-work") != nullptr);
  EXPECT_TRUE(arguments.find("out") != nullptr);
  EXPECT_TRUE(arguments.find("inputs") != nullptr);
  EXPECT_NE(entry.find("command")->find("api_url"), nullptr);
}

TEST(WfFormat, ListArgumentsAreStrings) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 10, 1);
  const json::Value doc = to_json(wf, ArgsStyle::kList);
  const json::Value& tasks = doc.as_object().at("tasks");
  const json::Value& args =
      tasks.as_object().begin()->second.find("command")->as_object().at("arguments");
  for (const json::Value& arg : args.as_array()) EXPECT_TRUE(arg.is_string());
}

TEST(WfFormat, AcceptsBareTopLevelTaskMap) {
  // The paper's excerpt has tasks at the document root, no "tasks" wrapper.
  const char* text = R"({
    "solo_00000001": {
      "name": "solo_00000001",
      "type": "compute",
      "command": {"program": "wfbench.py", "arguments": []},
      "parents": [], "children": [],
      "files": [{"link": "output", "name": "solo.out", "sizeInBytes": 10}],
      "cores": 1, "id": "00000001", "category": "solo"
    }
  })";
  const Workflow wf = parse_workflow(text);
  EXPECT_EQ(wf.size(), 1u);
  EXPECT_EQ(wf.find("solo_00000001")->category, "solo");
}

TEST(WfFormat, RejectsStructurallyBrokenDocuments) {
  EXPECT_THROW(parse_workflow("[1,2,3]"), std::invalid_argument);
  // Asymmetric parents/children must be rejected at parse time.
  const char* bad = R"({
    "a_1": {"command": {"program": "p", "arguments": []}, "parents": [],
             "children": ["b_2"], "files": [], "id": "1", "category": "a"},
    "b_2": {"command": {"program": "p", "arguments": []}, "parents": [],
             "children": [], "files": [], "id": "2", "category": "b"}
  })";
  EXPECT_THROW(parse_workflow(bad), std::invalid_argument);
}

// ---- wfformat v1.5 (upstream schema interop) ---------------------------------

TEST(WfFormatV15, RoundTripPreservesStructureAndKnobs) {
  WorkflowGenerator generator;
  Workflow original = generator.generate("genome", 40, 2);
  KnativeTranslator().apply(original);
  const json::Value document = to_wfformat_v15(original);
  ASSERT_TRUE(is_wfformat_v15(document));
  const Workflow parsed = from_wfformat_v15(document);
  ASSERT_EQ(parsed.size(), original.size());
  EXPECT_EQ(parsed.name(), original.name());
  for (const Task& task : original.tasks()) {
    const Task* copy = parsed.find(task.name);
    ASSERT_NE(copy, nullptr) << task.name;
    EXPECT_EQ(copy->category, task.category);
    EXPECT_EQ(copy->parents, task.parents);
    EXPECT_EQ(copy->children, task.children);
    EXPECT_EQ(copy->inputs().size(), task.inputs().size());
    EXPECT_EQ(copy->outputs().size(), task.outputs().size());
    EXPECT_NEAR(copy->percent_cpu, task.percent_cpu, 1e-9);
    EXPECT_NEAR(copy->cpu_work, task.cpu_work, 1e-6);
    EXPECT_EQ(copy->memory_bytes, task.memory_bytes);
    EXPECT_EQ(copy->api_url, task.api_url);
  }
}

TEST(WfFormatV15, DocumentShapeMatchesUpstream) {
  WorkflowGenerator generator;
  const json::Value doc = to_wfformat_v15(generator.generate("blast", 10, 1));
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("schemaVersion").as_string(), "1.5");
  const json::Object& workflow = root.at("workflow").as_object();
  const json::Object& spec = workflow.at("specification").as_object();
  EXPECT_TRUE(spec.at("tasks").is_array());
  EXPECT_TRUE(spec.at("files").is_array());
  EXPECT_TRUE(workflow.at("execution").as_object().at("tasks").is_array());
  // Task entries reference files by id, not inline objects.
  const json::Object& first = spec.at("tasks").as_array()[1].as_object();
  EXPECT_TRUE(first.at("inputFiles").as_array()[0].is_string());
}

TEST(WfFormatV15, ParseWorkflowAutoDetectsSchema) {
  WorkflowGenerator generator;
  const Workflow original = generator.generate("cycles", 30, 1);
  const std::string v15_text = json::write_pretty(to_wfformat_v15(original));
  const std::string flat_text = write_workflow(original);
  EXPECT_EQ(parse_workflow(v15_text).size(), original.size());
  EXPECT_EQ(parse_workflow(flat_text).size(), original.size());
}

TEST(WfFormatV15, FileSizesResolvedThroughFileTable) {
  const Workflow original = load_instance("blast-chameleon-small");
  const Workflow parsed = from_wfformat_v15(to_wfformat_v15(original));
  const Task* blastall = parsed.find("blastall_00000002");
  ASSERT_NE(blastall, nullptr);
  ASSERT_EQ(blastall->outputs().size(), 1u);
  EXPECT_EQ(blastall->outputs()[0]->size_bytes, 40161u);  // the paper's number
  ASSERT_EQ(blastall->inputs().size(), 1u);
  EXPECT_EQ(blastall->inputs()[0]->size_bytes, 204082u);
}

TEST(WfFormatV15, RejectsBrokenDocuments) {
  EXPECT_THROW(from_wfformat_v15(json::parse("{}")), std::invalid_argument);
  EXPECT_THROW(from_wfformat_v15(json::parse(
                   R"({"workflow": {"specification": {}}})")),
               std::invalid_argument);
  // Task without id.
  EXPECT_THROW(from_wfformat_v15(json::parse(
                   R"({"workflow": {"specification": {"tasks": [{"name":"x"}]}}})")),
               std::invalid_argument);
}

// ---- translators ------------------------------------------------------------------

TEST(Translators, KnativeAssignsApiUrls) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("seismology", 20, 1);
  for (const Task& task : wf.tasks()) EXPECT_TRUE(task.api_url.empty());
  KnativeTranslatorConfig config;
  config.service_url = "http://wfbench.example:80/wfbench";
  KnativeTranslator(config).apply(wf);
  for (const Task& task : wf.tasks()) {
    EXPECT_EQ(task.api_url, "http://wfbench.example:80/wfbench");
  }
}

TEST(Translators, LocalContainerAssignsEndpoint) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("seismology", 20, 1);
  LocalContainerTranslator().apply(wf);
  for (const Task& task : wf.tasks()) {
    EXPECT_EQ(task.api_url, "http://localhost:80/wfbench");
  }
}

TEST(Translators, TranslateDoesNotMutateInput) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 10, 1);
  const json::Value doc = KnativeTranslator().translate(wf);
  for (const Task& task : wf.tasks()) EXPECT_TRUE(task.api_url.empty());
  // But the translated document carries the endpoint.
  const json::Value& tasks = doc.as_object().at("tasks");
  EXPECT_NE(tasks.as_object().begin()->second.find("command")->find("api_url"), nullptr);
}

TEST(Translators, TranslatedTextParsesBack) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("cycles", 30, 1);
  const std::string text = KnativeTranslator().translate_to_text(wf);
  const Workflow parsed = parse_workflow(text);
  EXPECT_EQ(parsed.size(), wf.size());
}

TEST(Translators, Factory) {
  EXPECT_EQ(make_translator("knative")->name(), "knative");
  EXPECT_EQ(make_translator("local")->name(), "local-container");
  EXPECT_EQ(make_translator("LOCAL-CONTAINER")->name(), "local-container");
  EXPECT_EQ(make_translator("pegasus")->name(), "pegasus");
  EXPECT_EQ(make_translator("nextflow")->name(), "nextflow");
  EXPECT_THROW(make_translator("airflow"), std::invalid_argument);
}

TEST(Translators, PegasusDocumentShape) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 12, 1);
  const json::Value doc = PegasusTranslator().translate(wf);
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("pegasus").as_string(), "5.0");
  EXPECT_EQ(root.at("name").as_string(), wf.name());
  const json::Array& jobs = root.at("jobs").as_array();
  EXPECT_EQ(jobs.size(), wf.size());
  // Each job carries argument strings and uses[] with both link kinds.
  const json::Object& job = jobs[1].as_object();  // a blastall
  EXPECT_TRUE(job.at("arguments").is_array());
  bool has_input = false;
  bool has_output = false;
  for (const json::Value& use : job.at("uses").as_array()) {
    const std::string type = use.find("type")->as_string();
    has_input = has_input || type == "input";
    has_output = has_output || type == "output";
  }
  EXPECT_TRUE(has_output);
  // Dependencies cover every parent -> child edge.
  std::size_t edges = 0;
  for (const json::Value& dependency : root.at("jobDependencies").as_array()) {
    edges += dependency.find("children")->as_array().size();
  }
  EXPECT_EQ(edges, wf.edge_count());
  // The replica catalog lists the external inputs.
  EXPECT_EQ(root.at("replicaCatalog").as_object().at("replicas").as_array().size(),
            wf.external_inputs().size());
  (void)has_input;
}

TEST(Translators, PegasusClearsEndpoints) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 10, 1);
  KnativeTranslator().apply(wf);
  PegasusTranslator().apply(wf);
  for (const Task& task : wf.tasks()) EXPECT_TRUE(task.api_url.empty());
}

TEST(Translators, NextflowScriptShape) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 12, 1);
  const std::string script = NextflowTranslator().translate_to_text(wf);
  EXPECT_NE(script.find("nextflow.enable.dsl = 2"), std::string::npos);
  // One process per category.
  for (const auto& [category, count] : category_histogram(wf)) {
    EXPECT_NE(script.find("process " + category + " {"), std::string::npos) << category;
  }
  // One invocation per task inside the workflow block.
  std::size_t invocations = 0;
  std::size_t pos = script.find("workflow {");
  ASSERT_NE(pos, std::string::npos);
  while ((pos = script.find("blastall('blastall_", pos + 1)) != std::string::npos) {
    ++invocations;
  }
  EXPECT_EQ(invocations, category_histogram(wf).at("blastall"));
}

TEST(Translators, NextflowManifest) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("cycles", 30, 1);
  const json::Value doc = NextflowTranslator().translate(wf);
  const json::Object& root = doc.as_object();
  EXPECT_EQ(root.at("manifest").as_object().at("name").as_string(), wf.name());
  EXPECT_EQ(root.at("processes").as_array().size(), category_histogram(wf).size());
}

TEST(Translators, HybridRoutesByCategory) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("blast", 30, 1);
  HybridTranslatorConfig config;
  config.serverless_url = "http://kn:80/wfbench";
  config.local_url = "http://lc:80/wfbench";
  config.category_to_serverless["blastall"] = false;  // wide level -> local
  config.default_serverless = true;
  HybridTranslator(config).apply(wf);
  for (const Task& task : wf.tasks()) {
    if (task.category == "blastall") {
      EXPECT_EQ(task.api_url, "http://lc:80/wfbench") << task.name;
    } else {
      EXPECT_EQ(task.api_url, "http://kn:80/wfbench") << task.name;
    }
  }
}

TEST(Translators, HybridWidthPolicy) {
  WorkflowGenerator generator;
  const Workflow wf = generator.generate("blast", 30, 1);  // blastall width 27
  const HybridTranslatorConfig policy =
      HybridTranslator::policy_by_phase_width(wf, /*width_threshold=*/10);
  EXPECT_FALSE(policy.category_to_serverless.at("blastall"));   // wide -> local
  EXPECT_TRUE(policy.category_to_serverless.at("split_fasta"));  // narrow -> serverless
  EXPECT_TRUE(policy.category_to_serverless.at("cat"));
}

TEST(Translators, HybridOutputStillValidatesAndPlans) {
  WorkflowGenerator generator;
  Workflow wf = generator.generate("cycles", 50, 1);
  HybridTranslator(HybridTranslator::policy_by_phase_width(wf, 8)).apply(wf);
  EXPECT_TRUE(wf.validate().empty());
  for (const Task& task : wf.tasks()) EXPECT_FALSE(task.api_url.empty());
}

}  // namespace
}  // namespace wfs::wfcommons
