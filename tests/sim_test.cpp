// Unit tests for the discrete-event engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/periodic.h"
#include "sim/simulation.h"

namespace wfs::sim {
namespace {

// ---- clock -----------------------------------------------------------------

TEST(Clock, Conversions) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(0.0015), 1500);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond + 500 * kMillisecond), 2.5);
  EXPECT_EQ(from_seconds(to_seconds(123456789)), 123456789);
}

TEST(Clock, RoundsToNearestMicrosecond) {
  EXPECT_EQ(from_seconds(1e-7), 0);
  EXPECT_EQ(from_seconds(6e-7), 1);
}

// ---- event queue -------------------------------------------------------------

TEST(EventQueue, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(30, [&] { order.push_back(3); });
  queue.schedule(10, [&] { order.push_back(1); });
  queue.schedule(20, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForTies) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().fn();
  const std::vector<int> expected = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  bool fired = false;
  const EventId id = queue.schedule(10, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // double cancel
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelMiddleEventOnly) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1, [&] { order.push_back(1); });
  const EventId id = queue.schedule(2, [&] { order.push_back(2); });
  queue.schedule(3, [&] { order.push_back(3); });
  queue.cancel(id);
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelledEntriesAreCompactedEagerly) {
  // Regression: schedule-then-cancel churn against far-future events (retry
  // timers racing completion, stopped periodic tasks) used to leave every
  // cancelled entry in the heap until it surfaced at the top — unbounded
  // growth over a long run. Compaction keeps the heap O(live events).
  EventQueue queue;
  constexpr SimTime kFarFuture = 1'000'000'000;
  // A persistent population of live events the compactor must preserve.
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(queue.schedule(kFarFuture + i, [] {}));
  }
  std::size_t max_heap = 0;
  for (int i = 0; i < 10'000; ++i) {
    const EventId id = queue.schedule(kFarFuture * 2, [] {});
    queue.cancel(id);
    max_heap = std::max(max_heap, queue.heap_size());
  }
  // Pre-fix the heap peaks at ~10'100 entries; post-fix it stays within a
  // small multiple of the live population.
  EXPECT_LE(max_heap, 2 * live.size() + 2);
  EXPECT_EQ(queue.size(), live.size());  // only live callbacks remain
  // The survivors still fire, in order.
  std::size_t fired = 0;
  while (!queue.empty()) {
    queue.pop().fn();
    ++fired;
  }
  EXPECT_EQ(fired, live.size());
}

TEST(EventQueue, CompactionPreservesTieOrder) {
  // Rebuilding the heap must not disturb the FIFO-for-ties contract.
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    queue.schedule(5, [&order, i] { order.push_back(i); });
  }
  // Cancel enough same-time padding events to force several compactions.
  for (int i = 0; i < 100; ++i) queue.cancel(queue.schedule(5, [] {}));
  while (!queue.empty()) queue.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueue, NextTimeAndEmptyErrors) {
  EventQueue queue;
  EXPECT_THROW(queue.next_time(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
  queue.schedule(42, [] {});
  EXPECT_EQ(queue.next_time(), 42);
}

// ---- simulation ----------------------------------------------------------------

TEST(Simulation, RunsToCompletion) {
  Simulation sim;
  std::vector<SimTime> fired;
  sim.schedule_in(5, [&] { fired.push_back(sim.now()); });
  sim.schedule_in(2, [&] { fired.push_back(sim.now()); });
  const SimTime end = sim.run();
  EXPECT_EQ(end, 5);
  EXPECT_EQ(fired, (std::vector<SimTime>{2, 5}));
  EXPECT_EQ(sim.executed_events(), 2u);
}

TEST(Simulation, EventsCanScheduleEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) sim.schedule_in(10, chain);
  };
  sim.schedule_in(0, chain);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 40);
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i * kSecond, [&] { ++fired; });
  }
  sim.run_until(5 * kSecond);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), 5 * kSecond);
  EXPECT_EQ(sim.pending_events(), 5u);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.run_until(7 * kSecond);
  EXPECT_EQ(sim.now(), 7 * kSecond);
}

TEST(Simulation, StepExecutesBoundedEvents) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_in(i, [&] { ++fired; });
  EXPECT_EQ(sim.step(3), 3u);
  EXPECT_EQ(fired, 3);
}

TEST(Simulation, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule_in(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1, [] {}), std::invalid_argument);
}

TEST(Simulation, EventLimitGuardsStorms) {
  Simulation sim;
  sim.set_event_limit(100);
  std::function<void()> storm = [&] { sim.schedule_in(1, storm); };
  sim.schedule_in(0, storm);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulation, ZeroDelayRunsAfterPendingAtSameInstant) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_in(0, [&] {
    order.push_back(1);
    sim.schedule_in(0, [&] { order.push_back(3); });
  });
  sim.schedule_in(0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---- periodic ------------------------------------------------------------------

TEST(Periodic, FiresAtFixedCadence) {
  Simulation sim;
  std::vector<SimTime> fired;
  PeriodicTask task(sim, kSecond, [&](SimTime t) {
    fired.push_back(t);
    if (fired.size() == 3) task.stop();
  });
  task.start(0);
  sim.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{0, kSecond, 2 * kSecond}));
}

TEST(Periodic, StopPreventsFutureFirings) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, kSecond, [&](SimTime) { ++count; });
  task.start();
  sim.schedule_at(2 * kSecond + 1, [&] { task.stop(); });
  sim.run_until(10 * kSecond);
  EXPECT_EQ(count, 3);  // t=0s,1s,2s
  EXPECT_FALSE(task.running());
}

TEST(Periodic, StartIsIdempotent) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, kSecond, [&](SimTime) { ++count; });
  task.start(0);
  task.start(0);  // no double-arm
  sim.run_until(500 * kMillisecond);
  EXPECT_EQ(count, 1);
  task.stop();
}

TEST(Periodic, DelayedFirstFiring) {
  Simulation sim;
  std::vector<SimTime> fired;
  PeriodicTask task(sim, kSecond, [&](SimTime t) { fired.push_back(t); });
  task.start(250 * kMillisecond);
  sim.run_until(2 * kSecond + 300 * kMillisecond);
  task.stop();
  EXPECT_EQ(fired, (std::vector<SimTime>{250 * kMillisecond, 1250 * kMillisecond,
                                         2250 * kMillisecond}));
}

TEST(Periodic, RejectsNonPositivePeriod) {
  Simulation sim;
  EXPECT_THROW(PeriodicTask(sim, 0, [](SimTime) {}), std::invalid_argument);
}

TEST(Periodic, DestructorCancels) {
  Simulation sim;
  int count = 0;
  {
    PeriodicTask task(sim, kSecond, [&](SimTime) { ++count; });
    task.start();
  }
  sim.run_until(5 * kSecond);
  EXPECT_EQ(count, 0);
}

// Regression: a callback that stop()s and then start()s its own task (the
// re-phase idiom) must leave exactly ONE occurrence armed. fire() used to
// re-arm unconditionally after the callback, doubling the firing rate on
// every re-phase and leaking the event start() had armed.
TEST(Periodic, StopThenStartInsideCallbackDoesNotDoubleArm) {
  Simulation sim;
  std::vector<SimTime> fired;
  PeriodicTask task(sim, 10, [&](SimTime t) {
    fired.push_back(t);
    task.stop();
    task.start(10);  // re-phase: next occurrence 10 us from now, nothing else
  });
  task.start(0);
  sim.run_until(50);
  task.stop();
  EXPECT_EQ(fired, (std::vector<SimTime>{0, 10, 20, 30, 40, 50}));
  // The stop() above cancelled the single pending occurrence; a double-arm
  // would leave its leaked twin behind and keep the simulation busy.
  EXPECT_TRUE(sim.idle());
}

// ---- event queue: past-time guard and batched extraction ---------------------

// Regression: schedule() used to accept times before the queue's cursor,
// silently corrupting causal order for direct users (Simulation re-checked
// on its own). Now the queue itself refuses.
TEST(EventQueue, ScheduleBeforeLastPoppedTimeThrows) {
  EventQueue queue;
  queue.schedule(10, [] {});
  queue.pop().fn();
  EXPECT_THROW(queue.schedule(5, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(queue.schedule(10, [] {}));  // the current instant is fine
}

TEST(EventQueue, PopBatchExtractsWholeInstantInFifoOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) queue.schedule(7, [&order, i] { order.push_back(i); });
  queue.schedule(9, [&order] { order.push_back(99); });

  std::vector<EventQueue::BatchItem> batch;
  EXPECT_EQ(queue.pop_batch(batch), 7);
  EXPECT_EQ(batch.size(), 4u);
  for (EventQueue::BatchItem& item : batch) {
    ASSERT_TRUE(queue.claim(item.id));
    item.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(queue.pop_batch(batch), 9);
  EXPECT_EQ(batch.size(), 1u);
}

// A batch-mate scheduled earlier at the same instant may cancel a later one;
// claim() is what keeps that exact single-queue semantic under batching.
TEST(EventQueue, BatchMateCanCancelLaterSameInstantEvent) {
  EventQueue queue;
  bool victim_ran = false;
  EventId victim = 0;
  queue.schedule(5, [&] { queue.cancel(victim); });
  victim = queue.schedule(5, [&] { victim_ran = true; });

  std::vector<EventQueue::BatchItem> batch;
  queue.pop_batch(batch);
  ASSERT_EQ(batch.size(), 2u);
  int claimed = 0;
  for (EventQueue::BatchItem& item : batch) {
    if (!queue.claim(item.id)) continue;
    ++claimed;
    item.fn();
  }
  EXPECT_EQ(claimed, 1);
  EXPECT_FALSE(victim_ran);
  EXPECT_TRUE(queue.empty());
}

}  // namespace
}  // namespace wfs::sim
