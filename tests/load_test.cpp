// Tests for the multi-tenant open-loop traffic subsystem: arrival-process
// determinism, default-off byte-identity of the tenancy knobs, engine/jobs
// determinism of the generator, and quota-based tenant isolation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/campaign.h"
#include "core/report.h"
#include "core/results_io.h"
#include "load/arrival.h"
#include "load/traffic.h"
#include "metrics/aggregate.h"
#include "support/rng.h"

namespace wfs {
namespace {

// ---- arrival processes ------------------------------------------------------

TEST(Arrival, PoissonIsSeedDeterministicWithRoughlyTheRequestedRate) {
  support::Rng a(42);
  support::Rng b(42);
  const std::vector<double> first = load::poisson_arrivals(a, 2.0, 500.0);
  const std::vector<double> second = load::poisson_arrivals(b, 2.0, 500.0);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  ASSERT_FALSE(first.empty());
  EXPECT_GE(first.front(), 0.0);
  EXPECT_LT(first.back(), 500.0);
  // ~1000 expected; 5 sigma ≈ 158.
  EXPECT_NEAR(static_cast<double>(first.size()), 1000.0, 160.0);

  support::Rng c(43);
  EXPECT_NE(load::poisson_arrivals(c, 2.0, 500.0), first);
  support::Rng d(42);
  EXPECT_TRUE(load::poisson_arrivals(d, 0.0, 500.0).empty());
}

TEST(Arrival, BurstyKeepsTheMeanRateButClumps) {
  support::Rng a(7);
  support::Rng b(7);
  load::BurstyShape shape;  // 8x bursts, 10% of the time, 60 s cycles
  const std::vector<double> first = load::mmpp_arrivals(a, 1.0, 2000.0, shape);
  EXPECT_EQ(load::mmpp_arrivals(b, 1.0, 2000.0, shape), first);
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  // Mean preserved: ~2000 arrivals expected (generous band — MMPP variance
  // is far above Poisson's).
  EXPECT_NEAR(static_cast<double>(first.size()), 2000.0, 500.0);

  // Burstiness: the index of dispersion of per-10s counts must exceed a
  // Poisson process's (which has variance/mean == 1).
  std::vector<double> counts(200, 0.0);
  for (const double t : first) counts[static_cast<std::size_t>(t / 10.0)] += 1.0;
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  double variance = 0.0;
  for (const double c : counts) variance += (c - mean) * (c - mean);
  variance /= static_cast<double>(counts.size());
  EXPECT_GT(variance / mean, 2.0);
}

TEST(Arrival, TraceReplayTilesDeterministically) {
  // A recorded window with a front-loaded pattern; replay needs no RNG.
  const std::vector<double> trace{0.0, 1.0, 1.5, 10.0};
  const std::vector<double> first = load::trace_arrivals(trace, 0.8, 10.0);
  EXPECT_EQ(load::trace_arrivals(trace, 0.8, 10.0), first);
  EXPECT_EQ(first.size(), 8u);  // round(0.8 * 10)
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_LT(first.back(), 10.0);

  // Empty trace degenerates to an even grid.
  const std::vector<double> even = load::trace_arrivals({}, 1.0, 4.0);
  EXPECT_EQ(even, (std::vector<double>{0.0, 1.0, 2.0, 3.0}));
}

TEST(Arrival, ParseRoundTrips) {
  EXPECT_EQ(load::parse_arrival_process("poisson"), load::ArrivalProcess::kPoisson);
  EXPECT_EQ(load::parse_arrival_process("bursty"), load::ArrivalProcess::kBursty);
  EXPECT_EQ(load::parse_arrival_process("mmpp"), load::ArrivalProcess::kBursty);
  EXPECT_EQ(load::parse_arrival_process("trace"), load::ArrivalProcess::kTrace);
  EXPECT_THROW((void)load::parse_arrival_process("diurnal"), std::invalid_argument);
  EXPECT_EQ(load::to_string(load::ArrivalProcess::kBursty), "bursty");
}

// ---- fairness index ---------------------------------------------------------

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({5.0, 5.0, 5.0}), 1.0);
  EXPECT_DOUBLE_EQ(metrics::jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25);
  EXPECT_NEAR(metrics::jain_fairness({4.0, 1.0}), 25.0 / 34.0, 1e-12);
}

// ---- default-off byte-identity ---------------------------------------------

TEST(LoadTraffic, CampaignCsvByteIdenticalWithTenancyKnobsOff) {
  // The tenancy knobs follow the PR 5 / PR 7 pattern: explicitly set to
  // their defaults they must reproduce the exact bytes of a spec that never
  // mentions them.
  const auto run_csv = [](std::size_t quota, std::size_t queue_limit, bool fair) {
    core::CampaignSpec spec;
    spec.paradigms = {core::Paradigm::kKn10wNoPM};
    spec.recipes = {"blast"};
    spec.sizes = {20};
    spec.tenant_quota = quota;
    spec.tenant_queue_limit = queue_limit;
    spec.fair_dequeue = fair;
    core::Campaign campaign(std::move(spec));
    campaign.run();
    return campaign.summary_csv();
  };
  const std::string baseline = run_csv(0, 0, false);
  EXPECT_EQ(run_csv(0, 0, false), baseline);
  // A binding quota (1 in-flight request for the whole unlabeled tenant)
  // serialises the run — the knob demonstrably reaches the activator.
  EXPECT_NE(run_csv(1, 0, false), baseline);
}

TEST(LoadTraffic, ResultJsonRoundTripsTenancyKnobs) {
  core::ExperimentResult result;
  result.config.tenant_quota = 8;
  result.config.tenant_queue_limit = 32;
  result.config.fair_dequeue = true;
  const core::ExperimentResult restored = core::parse_result(core::write_result(result));
  EXPECT_EQ(restored.config.tenant_quota, 8u);
  EXPECT_EQ(restored.config.tenant_queue_limit, 32u);
  EXPECT_TRUE(restored.config.fair_dequeue);
}

// ---- the traffic generator --------------------------------------------------

load::TrafficConfig small_traffic() {
  load::TrafficConfig config;
  config.tenants = {{"alice", "blast", 10, 1.0, 1.0}, {"bob", "cycles", 10, 1.0, 1.0}};
  config.offered_load_rps = 0.05;
  config.window_seconds = 120.0;
  config.drain_seconds = 900.0;
  config.cpu_work = 5.0;
  config.seed = 11;
  return config;
}

void expect_same_traffic(const load::TrafficResult& a, const load::TrafficResult& b) {
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
  EXPECT_DOUBLE_EQ(a.goodput_rps, b.goodput_rps);
  EXPECT_DOUBLE_EQ(a.jain_fairness, b.jain_fairness);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    EXPECT_EQ(a.tenants[i].submitted, b.tenants[i].submitted);
    EXPECT_EQ(a.tenants[i].completed, b.tenants[i].completed);
    EXPECT_EQ(a.tenants[i].rejected_requests, b.tenants[i].rejected_requests);
    EXPECT_DOUBLE_EQ(a.tenants[i].mean_makespan_seconds, b.tenants[i].mean_makespan_seconds);
    EXPECT_DOUBLE_EQ(a.tenants[i].p99_makespan_seconds, b.tenants[i].p99_makespan_seconds);
  }
}

TEST(LoadTraffic, RunsTenantsToCompletionAndReports) {
  const load::TrafficResult result = load::run_traffic(small_traffic());
  EXPECT_TRUE(result.drained);
  EXPECT_GT(result.submitted, 0u);
  EXPECT_EQ(result.completed, result.submitted);
  EXPECT_EQ(result.starved_tenants, 0u);
  EXPECT_GT(result.goodput_rps, 0.0);
  EXPECT_NEAR(result.jain_fairness, 1.0, 0.35);
  // Per-tenant labeled metrics materialised: accepted counters + makespan
  // histograms carry tenant= labels.
  const metrics::MetricPoint* accepted = result.metrics.find(
      "activator_tenant_accepted_total", {{"service", "wfbench"}, {"tenant", "alice"}});
  ASSERT_NE(accepted, nullptr);
  EXPECT_GT(accepted->value, 0.0);
  const metrics::MetricFamily* makespans = result.metrics.find("tenant_makespan_seconds");
  ASSERT_NE(makespans, nullptr);
  EXPECT_EQ(makespans->points.size(), 2u);
  // The report renders one row per tenant.
  const std::string report = core::tenancy_summary(result);
  EXPECT_NE(report.find("alice"), std::string::npos);
  EXPECT_NE(report.find("bob"), std::string::npos);
}

TEST(SimDeterminism, TrafficByteIdenticalAcrossSimShards) {
  load::TrafficConfig config = small_traffic();
  config.collect_metrics = false;
  const load::TrafficResult seed = load::run_traffic(config);
  ASSERT_TRUE(seed.drained);
  for (const std::size_t shards : {2u, 4u}) {
    load::TrafficConfig sharded = config;
    sharded.sim_shards = shards;
    expect_same_traffic(load::run_traffic(sharded), seed);
  }
}

TEST(SimDeterminism, TrafficSweepIdenticalAcrossJobs) {
  load::TrafficConfig first = small_traffic();
  first.collect_metrics = false;
  load::TrafficConfig second = first;
  second.arrival = load::ArrivalProcess::kBursty;
  second.seed = 23;
  const std::vector<load::TrafficConfig> configs{first, second};

  const std::vector<load::TrafficResult> sequential = load::run_traffic_sweep(configs, 1);
  const std::vector<load::TrafficResult> pooled = load::run_traffic_sweep(configs, 4);
  ASSERT_EQ(sequential.size(), 2u);
  ASSERT_EQ(pooled.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) expect_same_traffic(pooled[i], sequential[i]);
}

TEST(LoadTraffic, QuotaAndFairDequeueKeepGreedyTenantFromStarvingOthers) {
  // A greedy tenant floods 10x the load of two small tenants into a heavily
  // overloaded window. With quotas + fair dequeue on, the small tenants
  // must keep completing runs.
  load::TrafficConfig config;
  config.tenants = {{"greedy", "blast", 10, 1.0, 10.0},
                    {"small-a", "blast", 10, 1.0, 1.0},
                    {"small-b", "cycles", 10, 1.0, 1.0}};
  config.offered_load_rps = 0.5;  // well past the knee for these workflows
  config.window_seconds = 120.0;
  config.drain_seconds = 600.0;
  config.cpu_work = 5.0;
  config.seed = 5;
  config.collect_metrics = false;
  config.tenant_quota = 8;
  config.tenant_queue_limit = 64;
  config.fair_dequeue = true;
  const load::TrafficResult result = load::run_traffic(config);
  EXPECT_GT(result.submitted, 0u);
  EXPECT_EQ(result.starved_tenants, 0u);
  for (const load::TenantStats& tenant : result.tenants) {
    EXPECT_GT(tenant.completed, 0u) << tenant.name << " was starved";
  }
}

}  // namespace
}  // namespace wfs
