// Tests for the Knative-like platform: autoscaler decisions, activator
// buffering, kube scheduler placement, pod lifecycle, and platform
// integration (scale up on burst, scale-to-zero, cold starts).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "faas/activator.h"
#include "faas/autoscaler.h"
#include "faas/kube_scheduler.h"
#include "faas/platform.h"
#include "faas/pod.h"
#include "json/write.h"
#include "net/router.h"
#include "sim/periodic.h"
#include "sim/simulation.h"
#include "support/rng.h"
#include "storage/shared_fs.h"
#include "wfbench/task_params.h"

namespace wfs::faas {
namespace {

AutoscalerConfig fast_config() {
  AutoscalerConfig config;
  config.tick = 2 * sim::kSecond;
  config.stable_window = 60 * sim::kSecond;
  config.panic_window = 6 * sim::kSecond;
  config.scale_to_zero_grace = 30 * sim::kSecond;
  return config;
}

// ---- autoscaler -------------------------------------------------------------

TEST(Autoscaler, ZeroTrafficZeroDesired) {
  Autoscaler scaler(fast_config(), 7.0, 0, 20);
  scaler.observe(0, 0.0);
  EXPECT_EQ(scaler.decide(0, 0).desired, 0);
}

TEST(Autoscaler, DesiredIsCeilOfConcurrencyOverTarget) {
  Autoscaler scaler(fast_config(), 7.0, 0, 100);
  // Steady 35 concurrency: desired = ceil(35/7) = 5.
  for (sim::SimTime t = 0; t <= 60 * sim::kSecond; t += 2 * sim::kSecond) {
    scaler.observe(t, 35.0);
  }
  EXPECT_EQ(scaler.decide(60 * sim::kSecond, 5).desired, 5);
}

TEST(Autoscaler, MaxScaleClamps) {
  Autoscaler scaler(fast_config(), 1.0, 0, 3);
  scaler.observe(0, 1000.0);
  EXPECT_EQ(scaler.decide(0, 0).desired, 3);
}

TEST(Autoscaler, MinScaleClamps) {
  Autoscaler scaler(fast_config(), 1.0, 2, 10);
  scaler.observe(0, 0.0);
  EXPECT_EQ(scaler.decide(0, 0).desired, 2);
}

TEST(Autoscaler, PanicOnBurstAndNoScaleDownDuringPanic) {
  Autoscaler scaler(fast_config(), 1.0, 0, 100);
  // Burst: 50 concurrent against 5 ready -> panic (50 >= 2 x 5).
  scaler.observe(0, 50.0);
  const Autoscaler::Decision burst = scaler.decide(0, 5);
  EXPECT_TRUE(burst.panic);
  EXPECT_GE(burst.desired, 50);

  // Traffic vanishes, but panic persists for the stable window: the scaler
  // must not drop below the ready count.
  scaler.observe(10 * sim::kSecond, 0.0);
  const Autoscaler::Decision during = scaler.decide(10 * sim::kSecond, 50);
  EXPECT_TRUE(during.panic);
  EXPECT_GE(during.desired, 50);
}

TEST(Autoscaler, PanicExpiresAfterStableWindow) {
  Autoscaler scaler(fast_config(), 1.0, 0, 100);
  scaler.observe(0, 50.0);
  (void)scaler.decide(0, 5);
  EXPECT_TRUE(scaler.in_panic());
  // 61 s later with no traffic the panic clears and desired drops.
  scaler.observe(61 * sim::kSecond, 0.0);
  const Autoscaler::Decision after = scaler.decide(61 * sim::kSecond, 50);
  EXPECT_FALSE(after.panic);
  EXPECT_LT(after.desired, 50);
}

TEST(Autoscaler, ScaleToZeroWaitsForGrace) {
  Autoscaler scaler(fast_config(), 1.0, 0, 10);
  scaler.observe(0, 3.0);
  // 3 ready pods absorb the concurrency of 3: no panic, desired 3.
  EXPECT_EQ(scaler.decide(0, 3).desired, 3);
  // Traffic ends at t=0; within the 30 s grace one pod is retained.
  scaler.observe(10 * sim::kSecond, 0.0);
  scaler.observe(20 * sim::kSecond, 0.0);
  EXPECT_EQ(scaler.decide(20 * sim::kSecond, 1).desired, 1);
  // Old samples age out of the stable window and grace elapses -> zero.
  for (sim::SimTime t = 22 * sim::kSecond; t <= 90 * sim::kSecond; t += 2 * sim::kSecond) {
    scaler.observe(t, 0.0);
  }
  EXPECT_EQ(scaler.decide(90 * sim::kSecond, 1).desired, 0);
}

TEST(Autoscaler, RejectsBadConstruction) {
  EXPECT_THROW(Autoscaler(fast_config(), 0.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(Autoscaler(fast_config(), 1.0, 5, 3), std::invalid_argument);
}

TEST(Autoscaler, SparseObservationStillPanics) {
  // Regression: window_average returned 0.0 for an empty window, so with a
  // sampling cadence coarser than panic_window (6 s) the panic average read
  // "no demand" mid-burst and panic never triggered. The fix falls back to
  // the most recent sample.
  Autoscaler scaler(fast_config(), 1.0, 0, 100);
  scaler.observe(0, 50.0);
  // 10 s later, no new observation: the panic window [4 s, 10 s] is empty.
  EXPECT_DOUBLE_EQ(scaler.panic_average(10 * sim::kSecond), 50.0);
  const Autoscaler::Decision decision = scaler.decide(10 * sim::kSecond, 5);
  EXPECT_TRUE(decision.panic);  // 50 desired >= 2 x 5 ready
  EXPECT_GE(decision.desired, 50);
}

TEST(Autoscaler, FractionalPanicThresholdBoundary) {
  // Regression: the panic-entry comparison used to truncate
  // panic_threshold * ready_pods to int, so with threshold 2.5 and 3 ready
  // pods a desired of 7 entered panic (7 >= int(7.5) = 7) even though the
  // burst is below the threshold (7 < 7.5).
  AutoscalerConfig config = fast_config();
  config.panic_threshold = 2.5;
  Autoscaler below(config, 1.0, 0, 100);
  below.observe(0, 7.0);
  const Autoscaler::Decision calm = below.decide(0, 3);
  EXPECT_FALSE(calm.panic);
  EXPECT_FALSE(below.in_panic());

  // One more unit of desired crosses the true threshold (8 >= 7.5).
  Autoscaler above(config, 1.0, 0, 100);
  above.observe(0, 8.0);
  const Autoscaler::Decision burst = above.decide(0, 3);
  EXPECT_TRUE(burst.panic);
  EXPECT_TRUE(above.in_panic());
}

// ---- activator ---------------------------------------------------------------

TEST(Activator, FifoAndWaitAccounting) {
  Activator activator;
  wfbench::TaskParams params;
  params.name = "a";
  activator.enqueue(params, [](net::HttpResponse) {}, 0);
  params.name = "b";
  activator.enqueue(params, [](net::HttpResponse) {}, sim::kSecond);
  EXPECT_EQ(activator.depth(), 2u);
  EXPECT_EQ(activator.max_depth(), 2u);

  const Activator::Buffered first = activator.pop(5 * sim::kSecond);
  EXPECT_EQ(first.params.name, "a");
  EXPECT_DOUBLE_EQ(activator.total_wait_seconds(), 5.0);
  const Activator::Buffered second = activator.pop(5 * sim::kSecond);
  EXPECT_EQ(second.params.name, "b");
  EXPECT_DOUBLE_EQ(activator.total_wait_seconds(), 9.0);
  EXPECT_TRUE(activator.empty());
  EXPECT_THROW(activator.pop(0), std::logic_error);
}

TEST(Activator, DrainFailsEverything) {
  Activator activator;
  int failures = 0;
  wfbench::TaskParams params;
  params.name = "x";
  for (int i = 0; i < 3; ++i) {
    activator.enqueue(params, [&](net::HttpResponse r) {
      if (!r.ok()) ++failures;
    }, 0);
  }
  activator.drain_with_error(net::HttpResponse::service_unavailable("bye"), 0);
  EXPECT_EQ(failures, 3);
  EXPECT_TRUE(activator.empty());
  EXPECT_EQ(activator.total_buffered(), 3u);
}

TEST(Activator, DrainSurvivesReenqueueingCallback) {
  // Regression: drain_with_error used to invoke callbacks while
  // range-iterating queue_ and then clear() it — a callback that re-enqueues
  // (the WFM retry path does, after retry_after_ms) mutated the deque
  // mid-iteration and its re-enqueued request was wiped by the clear.
  Activator activator;
  int failures = 0;
  wfbench::TaskParams params;
  params.name = "retryable";
  for (int i = 0; i < 3; ++i) {
    activator.enqueue(params, [&](net::HttpResponse r) {
      if (r.ok()) return;
      ++failures;
      // Immediate retry, as a WFM with retry_after_ms = 0 would issue.
      wfbench::TaskParams again;
      again.name = "retry";
      activator.enqueue(again, [](net::HttpResponse) {}, sim::kSecond);
    }, 0);
  }
  activator.drain_with_error(net::HttpResponse::service_unavailable("pod lost"),
                             sim::kSecond);
  // Every original request failed exactly once, and every retry survived the
  // drain instead of being cleared with the old queue.
  EXPECT_EQ(failures, 3);
  EXPECT_EQ(activator.depth(), 3u);
  EXPECT_EQ(activator.total_buffered(), 6u);
}

TEST(Activator, DrainAccountsQueueWaitLikePop) {
  // Regression: requests failed via drain_with_error never contributed to
  // total_wait_seconds_, so the profiler's queue segment undercounted on
  // failed/overloaded runs. Wait accounting must be identical whether a
  // request leaves the queue via pop or via drain.
  wfbench::TaskParams params;
  params.name = "a";

  Activator popped;
  popped.enqueue(params, [](net::HttpResponse) {}, 0);
  popped.enqueue(params, [](net::HttpResponse) {}, sim::kSecond);
  (void)popped.pop(5 * sim::kSecond);
  (void)popped.pop(5 * sim::kSecond);

  Activator drained;
  drained.enqueue(params, [](net::HttpResponse) {}, 0);
  drained.enqueue(params, [](net::HttpResponse) {}, sim::kSecond);
  drained.drain_with_error(net::HttpResponse::service_unavailable("bye"),
                           5 * sim::kSecond);

  EXPECT_DOUBLE_EQ(drained.total_wait_seconds(), popped.total_wait_seconds());
  EXPECT_DOUBLE_EQ(drained.total_wait_seconds(), 9.0);
}

// ---- activator admission control -------------------------------------------

wfbench::TaskParams tenant_task(const std::string& tenant, const std::string& name) {
  wfbench::TaskParams params;
  params.name = name;
  params.tenant = tenant;
  return params;
}

TEST(ActivatorAdmission, QueueBoundRejectsWithRetryAfter) {
  Activator activator;
  AdmissionConfig admission;
  admission.tenant_queue_limit = 2;
  admission.retry_after_ms = 250;
  activator.set_admission(admission);

  std::vector<net::HttpResponse> rejections;
  auto reject_capture = [&](net::HttpResponse r) { rejections.push_back(std::move(r)); };
  activator.enqueue(tenant_task("a", "a1"), reject_capture, 0);
  activator.enqueue(tenant_task("a", "a2"), reject_capture, 0);
  activator.enqueue(tenant_task("a", "a3"), reject_capture, 0);  // over the bound
  activator.enqueue(tenant_task("b", "b1"), reject_capture, 0);  // other tenant: fine

  ASSERT_EQ(rejections.size(), 1u);
  EXPECT_EQ(rejections[0].status, 503);
  EXPECT_EQ(rejections[0].retry_after_ms, 250);
  EXPECT_EQ(activator.depth(), 3u);
  EXPECT_EQ(activator.total_rejected(), 1u);
  EXPECT_EQ(activator.tenants().at("a").rejected, 1u);
  EXPECT_EQ(activator.tenants().at("a").accepted, 2u);
  EXPECT_EQ(activator.tenants().at("b").rejected, 0u);
}

TEST(ActivatorAdmission, InflightQuotaHoldsWorkUntilRelease) {
  Activator activator;
  AdmissionConfig admission;
  admission.tenant_inflight_limit = 1;
  activator.set_admission(admission);

  auto ignore = [](net::HttpResponse) {};
  activator.enqueue(tenant_task("a", "a1"), ignore, 0);
  activator.enqueue(tenant_task("a", "a2"), ignore, 0);
  activator.enqueue(tenant_task("b", "b1"), ignore, 0);

  auto first = activator.try_pop(0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->params.name, "a1");
  // Tenant a is at its quota: the FIFO scan skips a2 and serves b1.
  auto second = activator.try_pop(0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->params.name, "b1");
  // Everyone queued is at quota now — a2 stays buffered.
  EXPECT_FALSE(activator.try_pop(0).has_value());
  EXPECT_EQ(activator.depth(), 1u);

  activator.release("a");
  auto third = activator.try_pop(0);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->params.name, "a2");
  EXPECT_EQ(activator.tenants().at("a").dequeued, 2u);
}

TEST(ActivatorAdmission, FairDequeueInterleavesTenants) {
  Activator activator;
  AdmissionConfig admission;
  admission.fair_dequeue = true;
  activator.set_admission(admission);

  auto ignore = [](net::HttpResponse) {};
  // Tenant a floods first; b's requests arrive behind the burst.
  activator.enqueue(tenant_task("a", "a1"), ignore, 0);
  activator.enqueue(tenant_task("a", "a2"), ignore, 0);
  activator.enqueue(tenant_task("a", "a3"), ignore, 0);
  activator.enqueue(tenant_task("b", "b1"), ignore, 0);
  activator.enqueue(tenant_task("b", "b2"), ignore, 0);

  std::vector<std::string> order;
  while (auto buffered = activator.try_pop(0)) order.push_back(buffered->params.name);
  // Equal weights: strict alternation instead of FIFO's a1,a2,a3,b1,b2.
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "b2", "a3"}));
}

TEST(ActivatorAdmission, FairDequeueHonoursWeights) {
  Activator activator;
  AdmissionConfig admission;
  admission.fair_dequeue = true;
  admission.weights["a"] = 2.0;
  activator.set_admission(admission);

  auto ignore = [](net::HttpResponse) {};
  for (int i = 1; i <= 4; ++i) {
    activator.enqueue(tenant_task("a", "a" + std::to_string(i)), ignore, 0);
  }
  for (int i = 1; i <= 2; ++i) {
    activator.enqueue(tenant_task("b", "b" + std::to_string(i)), ignore, 0);
  }

  std::vector<std::string> order;
  while (auto buffered = activator.try_pop(0)) order.push_back(buffered->params.name);
  // Weight 2 tenant is served twice per weight-1 service: a,b,a,a,b,a.
  EXPECT_EQ(order, (std::vector<std::string>{"a1", "b1", "a2", "a3", "b2", "a4"}));
}

// ---- kube scheduler -------------------------------------------------------------

TEST(KubeScheduler, SpreadsAcrossNodes) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  KubeScheduler scheduler(cluster);
  cluster::Node* first = scheduler.place(2.0, 1ULL << 30);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->ledger().try_reserve(2.0, 1ULL << 30));
  cluster::Node* second = scheduler.place(2.0, 1ULL << 30);
  ASSERT_NE(second, nullptr);
  // LeastAllocated: the second pod must land on the other node.
  EXPECT_NE(first->name(), second->name());
}

TEST(KubeScheduler, RefusesWhenNothingFits) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  KubeScheduler scheduler(cluster);
  EXPECT_EQ(scheduler.place(1000.0, 0), nullptr);           // cpu
  EXPECT_EQ(scheduler.place(1.0, 1024ULL << 30), nullptr);  // memory
  EXPECT_EQ(scheduler.failures(), 2u);
}

TEST(KubeScheduler, MostAllocatedBinPacks) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  KubeScheduler scheduler(cluster, KubeScheduler::Strategy::kMostAllocated);
  cluster::Node* first = scheduler.place(2.0, 1ULL << 30);
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->ledger().try_reserve(2.0, 1ULL << 30));
  // Bin-packing keeps stacking onto the same node until it is full.
  for (int i = 0; i < 10; ++i) {
    cluster::Node* next = scheduler.place(2.0, 1ULL << 30);
    ASSERT_NE(next, nullptr);
    EXPECT_EQ(next->name(), first->name()) << "pod " << i;
    ASSERT_TRUE(next->ledger().try_reserve(2.0, 1ULL << 30));
  }
}

TEST(KubeScheduler, BinPackSpillsWhenFull) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  KubeScheduler scheduler(cluster, KubeScheduler::Strategy::kMostAllocated);
  // Fill node 0's CPU entirely, then the next placement must spill over.
  ASSERT_TRUE(cluster.node(0).ledger().try_reserve(95.0, 0));
  cluster::Node* node = scheduler.place(2.0, 1ULL << 30);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->name(), cluster.node(1).name());
}

TEST(KubeScheduler, FillsClusterThenFails) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  KubeScheduler scheduler(cluster);
  int placed = 0;
  while (true) {
    cluster::Node* node = scheduler.place(10.0, 1ULL << 30);
    if (node == nullptr) break;
    ASSERT_TRUE(node->ledger().try_reserve(10.0, 1ULL << 30));
    ++placed;
  }
  EXPECT_EQ(placed, 18);  // 2 nodes x floor(96/10)
}

// ---- pod ------------------------------------------------------------------------

class PodTest : public testing::Test {
 protected:
  PodTest()
      : cluster_(cluster::Cluster::paper_testbed(sim_)), fs_(sim_) {
    spec_.authority = "wfbench.test:80";
    spec_.container.workers = 2;
    spec_.cpu_request = 2.0;
    spec_.memory_request = 1ULL << 30;
    spec_.cold_start = sim::from_seconds(2.5);
  }

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  storage::SharedFilesystem fs_;
  KnativeServiceSpec spec_;
};

TEST_F(PodTest, ColdStartDelaysReadiness) {
  bool ready = false;
  Pod pod(sim_, "p1", spec_, cluster_.node(0), fs_, [&](Pod&) { ready = true; });
  EXPECT_EQ(pod.state(), PodState::kStarting);
  EXPECT_EQ(pod.service(), nullptr);
  sim_.run_until(sim::from_seconds(2.0));
  EXPECT_FALSE(ready);
  sim_.run_until(sim::from_seconds(3.0));
  EXPECT_TRUE(ready);
  EXPECT_TRUE(pod.ready());
  EXPECT_EQ(pod.ready_at(), sim::from_seconds(2.5));
  EXPECT_NE(pod.service(), nullptr);
}

TEST_F(PodTest, ReservesAndReleasesNodeResources) {
  const double free_before = cluster_.node(0).ledger().free_cpus();
  {
    Pod pod(sim_, "p1", spec_, cluster_.node(0), fs_, nullptr);
    EXPECT_DOUBLE_EQ(cluster_.node(0).ledger().free_cpus(), free_before - 2.0);
    sim_.run();
    pod.terminate();
    EXPECT_DOUBLE_EQ(cluster_.node(0).ledger().free_cpus(), free_before);
  }
}

TEST_F(PodTest, TerminateBeforeReadyCancelsColdStart) {
  bool ready = false;
  Pod pod(sim_, "p1", spec_, cluster_.node(0), fs_, [&](Pod&) { ready = true; });
  pod.terminate();
  sim_.run();
  EXPECT_FALSE(ready);
  EXPECT_EQ(pod.state(), PodState::kTerminated);
  EXPECT_EQ(cluster_.node(0).resident_memory(), 0u);
}

TEST_F(PodTest, TerminateReleasesContainerMemory) {
  Pod pod(sim_, "p1", spec_, cluster_.node(0), fs_, nullptr);
  sim_.run();
  EXPECT_GT(cluster_.node(0).resident_memory(), 0u);  // container footprint
  pod.terminate();
  EXPECT_EQ(cluster_.node(0).resident_memory(), 0u);
}

TEST_F(PodTest, CapacityTracksConcurrency) {
  Pod pod(sim_, "p1", spec_, cluster_.node(0), fs_, nullptr);
  EXPECT_FALSE(pod.has_capacity());  // not ready yet
  sim_.run();
  EXPECT_TRUE(pod.has_capacity());
  wfbench::TaskParams params;
  params.name = "t";
  params.cpu_work = 1000.0;
  pod.service()->handle(params, [](net::HttpResponse) {});
  params.name = "t2";
  pod.service()->handle(params, [](net::HttpResponse) {});
  EXPECT_EQ(pod.inflight(), 2u);
  EXPECT_FALSE(pod.has_capacity());  // workers=2 == concurrency limit
  pod.terminate();
}

// ---- platform integration ----------------------------------------------------------

class PlatformTest : public testing::Test {
 protected:
  PlatformTest()
      : cluster_(cluster::Cluster::paper_testbed(sim_)), fs_(sim_), router_(sim_) {
    spec_.authority = "wfbench.kn:80";
    spec_.container.workers = 10;
    spec_.cpu_request = 2.0;
    spec_.cpu_limit = 2.0;
    spec_.memory_request = 1ULL << 30;
    spec_.min_scale = 0;
    spec_.max_scale = 10;
    spec_.autoscaler = fast_config();
  }

  net::HttpRequest request_for(const std::string& name, double work = 5.0) {
    wfbench::TaskParams params;
    params.name = name;
    params.percent_cpu = 1.0;
    params.cpu_work = work;
    net::HttpRequest request;
    request.url = net::parse_url("http://wfbench.kn:80/wfbench");
    request.body = json::write_compact(wfbench::to_json(params));
    return request;
  }

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  storage::SharedFilesystem fs_;
  net::Router router_;
  KnativeServiceSpec spec_;
};

TEST_F(PlatformTest, ScaleFromZeroServesRequest) {
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  EXPECT_EQ(platform.ready_pods(), 0);

  int status = 0;
  sim::SimTime replied_at = -1;
  router_.send(request_for("t1"), [&](net::HttpResponse response) {
    status = response.status;
    replied_at = sim_.now();
  });
  sim_.run_until(60 * sim::kSecond);

  EXPECT_EQ(status, 200);
  // Cold start: autoscaler tick (2 s) + cold start (2.5 s) + work (5 s).
  EXPECT_GE(replied_at, sim::from_seconds(9.0));
  EXPECT_EQ(platform.stats().pods_created, 1u);
  EXPECT_EQ(platform.stats().completed, 1u);
  EXPECT_GT(platform.activator().total_wait_seconds(), 0.0);
  platform.shutdown();
}

TEST_F(PlatformTest, BurstScalesOutManyPods) {
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    router_.send(request_for("t" + std::to_string(i), 50.0),
                 [&](net::HttpResponse r) { completed += r.ok() ? 1 : 0; });
  }
  sim_.run_until(10 * sim::kMinute);
  EXPECT_EQ(completed, 100);
  EXPECT_GT(platform.stats().max_ready_pods, 3u);
  EXPECT_LE(platform.stats().max_ready_pods, 10u);  // max_scale respected
  platform.shutdown();
}

TEST_F(PlatformTest, ScaleToZeroReleasesAllMemory) {
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  router_.send(request_for("t1"), [](net::HttpResponse) {});
  sim_.run_until(20 * sim::kSecond);
  EXPECT_GT(cluster_.resident_memory(), 0u);  // pod alive within grace
  sim_.run_until(5 * sim::kMinute);
  EXPECT_EQ(platform.ready_pods(), 0);  // scaled to zero
  EXPECT_EQ(cluster_.resident_memory(), 0u);
  EXPECT_GE(platform.stats().pods_terminated, 1u);
  platform.shutdown();
}

TEST_F(PlatformTest, MinScaleKeepsPodsWarm) {
  spec_.min_scale = 2;
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  sim_.run_until(5 * sim::kMinute);
  EXPECT_EQ(platform.ready_pods(), 2);  // never below min, even idle
  platform.shutdown();
  EXPECT_EQ(cluster_.resident_memory(), 0u);
}

TEST_F(PlatformTest, ColdStartSecondsAccumulatePerPodCreation) {
  spec_.min_scale = 2;
  spec_.cold_start = sim::from_seconds(2.5);
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  EXPECT_DOUBLE_EQ(platform.stats().cold_start_seconds, 0.0);  // still booting
  sim_.run_until(10 * sim::kSecond);
  // Two min-scale pods, 2.5 s each.
  EXPECT_EQ(platform.stats().pods_created, 2u);
  EXPECT_DOUBLE_EQ(platform.stats().cold_start_seconds, 5.0);
  platform.shutdown();
}

TEST_F(PlatformTest, BadRequestBodyIs400) {
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  net::HttpRequest request;
  request.url = net::parse_url("http://wfbench.kn:80/wfbench");
  request.body = "not json";
  int status = 0;
  router_.send(std::move(request), [&](net::HttpResponse r) { status = r.status; });
  sim_.run_until(sim::kSecond);
  EXPECT_EQ(status, 400);
  EXPECT_EQ(platform.stats().bad_requests, 1u);
  platform.shutdown();
}

TEST_F(PlatformTest, ShutdownFailsBufferedRequests) {
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  int status = 0;
  router_.send(request_for("t1"), [&](net::HttpResponse r) { status = r.status; });
  sim_.run_until(500 * sim::kMillisecond);  // request buffered, no pod yet
  platform.shutdown();
  sim_.run();
  EXPECT_EQ(status, 503);
  EXPECT_EQ(cluster_.resident_memory(), 0u);
}

TEST_F(PlatformTest, UnschedulablePodsCountFailures) {
  spec_.cpu_request = 300.0;  // cannot fit on any node
  spec_.min_scale = 0;
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  router_.send(request_for("t1"), [](net::HttpResponse) {});
  sim_.run_until(30 * sim::kSecond);
  EXPECT_GT(platform.stats().scheduling_failures, 0u);
  EXPECT_EQ(platform.ready_pods(), 0);
  platform.shutdown();
}

TEST_F(PlatformTest, ContainerConcurrencyOverridesWorkerCount) {
  // container_concurrency < workers: the activator admits fewer requests
  // per pod than the worker pool could hold (Knative's concurrency knob).
  spec_.container.workers = 10;
  spec_.container_concurrency = 3;
  spec_.min_scale = 1;
  spec_.max_scale = 1;
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  sim_.run_until(5 * sim::kSecond);
  for (int i = 0; i < 8; ++i) {
    router_.send(request_for("t" + std::to_string(i), 1000.0), [](net::HttpResponse) {});
  }
  sim_.run_until(6 * sim::kSecond);
  // Only 3 admitted to the pod; the rest buffered at the activator.
  EXPECT_EQ(platform.inflight(), 8u);
  EXPECT_EQ(platform.activator_depth(), 5u);
  platform.shutdown();
}

TEST_F(PlatformTest, BinPackedPodsLandOnOneNode) {
  spec_.scheduling = KubeScheduler::Strategy::kMostAllocated;
  spec_.min_scale = 4;
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  sim_.run_until(10 * sim::kSecond);
  // All four warm pods on one node: the other node carries no reservation.
  const bool node0_empty = cluster_.node(0).ledger().reserved_cpus() == 0.0;
  const bool node1_empty = cluster_.node(1).ledger().reserved_cpus() == 0.0;
  EXPECT_NE(node0_empty, node1_empty);
  platform.shutdown();
}

class PlatformStorm : public PlatformTest, public testing::WithParamInterface<int> {};

TEST_P(PlatformStorm, EveryRequestIsAnsweredAndInvariantsHold) {
  // Property test: a randomized arrival pattern (bursts, lulls, mixed task
  // sizes) must end with every request answered exactly once, pods within
  // [0, max_scale], and all node resources returned after shutdown.
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));

  const int total_requests = 150;
  int answered = 0;
  int ok_count = 0;
  sim::SimTime at = 0;
  for (int i = 0; i < total_requests; ++i) {
    // Bursty arrivals: 70% immediately, 30% after a lull.
    at += rng.chance(0.3) ? sim::from_seconds(rng.uniform_real(0.0, 20.0)) : 0;
    const double work = rng.uniform_real(1.0, 30.0);
    sim_.schedule_at(at, [this, i, work, &answered, &ok_count] {
      router_.send(request_for("storm" + std::to_string(i), work),
                   [&answered, &ok_count](net::HttpResponse response) {
                     ++answered;
                     ok_count += response.ok() ? 1 : 0;
                   });
    });
  }

  // Invariant sampling while the storm runs.
  sim::PeriodicTask invariant_check(sim_, sim::kSecond, [&](sim::SimTime) {
    EXPECT_LE(platform.total_pods(), spec_.max_scale + 0);
    EXPECT_GE(platform.ready_pods(), 0);
    for (std::size_t n = 0; n < cluster_.size(); ++n) {
      EXPECT_GE(cluster_.node(n).ledger().free_cpus(), -1e-9);
    }
  });

  invariant_check.start();
  sim_.run_until(sim::kHour);
  invariant_check.stop();
  EXPECT_EQ(answered, total_requests);
  EXPECT_EQ(ok_count, total_requests);  // nothing should fail in-bounds
  EXPECT_EQ(platform.stats().requests, static_cast<std::uint64_t>(total_requests));
  EXPECT_EQ(platform.stats().completed + platform.stats().failed,
            static_cast<std::uint64_t>(total_requests));
  platform.shutdown();
  EXPECT_EQ(cluster_.resident_memory(), 0u);
  for (std::size_t n = 0; n < cluster_.size(); ++n) {
    EXPECT_DOUBLE_EQ(cluster_.node(n).ledger().reserved_cpus(), 0.0);
    EXPECT_EQ(cluster_.node(n).ledger().reserved_memory(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlatformStorm, testing::Range(1, 6));

TEST_F(PlatformTest, WholeMachinePodSpec) {
  // The coarse-grained Kn1000wPM shape: one giant pod, min=max=1.
  spec_.container.workers = 1000;
  spec_.cpu_request = 94.0;
  spec_.cpu_limit = 0.0;
  spec_.memory_request = 120ULL << 30;
  spec_.min_scale = 1;
  spec_.max_scale = 1;
  KnativePlatform platform(sim_, cluster_, fs_, router_, spec_);
  platform.deploy();
  sim_.run_until(10 * sim::kSecond);
  EXPECT_EQ(platform.ready_pods(), 1);
  int completed = 0;
  for (int i = 0; i < 500; ++i) {
    router_.send(request_for("t" + std::to_string(i), 10.0),
                 [&](net::HttpResponse r) { completed += r.ok() ? 1 : 0; });
  }
  sim_.run_until(30 * sim::kMinute);
  EXPECT_EQ(completed, 500);
  EXPECT_EQ(platform.stats().pods_created, 1u);  // no churn
  platform.shutdown();
}

}  // namespace
}  // namespace wfs::faas
