// Tests for the obs module: the shared TraceRecorder, its Chrome trace
// export, and the end-to-end tracing pipeline through an experiment
// (task attempts + pod lifecycle + autoscaler decisions + HTTP hops in one
// file, summary stats reconciled against the always-on counters).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "core/experiment.h"
#include "json/parse.h"
#include "obs/trace_recorder.h"

namespace wfs::obs {
namespace {

TEST(TraceRecorder, DisabledByDefaultAndEmitsNothing) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  const TraceRecorder::Pid pid = recorder.process("wfm");
  const TraceRecorder::Tid tid = recorder.lane(pid, "lane");
  recorder.complete(pid, tid, "span", "test", 0, 10);
  recorder.instant(pid, tid, "mark", "test", 5);
  recorder.counter(pid, "gauge", 5, 1.0);
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.events().empty());
}

TEST(TraceRecorder, RegistriesDedupeByName) {
  TraceRecorder recorder;
  const TraceRecorder::Pid a = recorder.process("svc");
  const TraceRecorder::Pid b = recorder.process("net");
  EXPECT_EQ(recorder.process("svc"), a);
  EXPECT_NE(a, b);
  // Lanes dedupe per process; the same name under two processes is two
  // lanes, and tids never collide across processes.
  const TraceRecorder::Tid lane_a = recorder.lane(a, "pod-1");
  const TraceRecorder::Tid lane_b = recorder.lane(b, "pod-1");
  EXPECT_EQ(recorder.lane(a, "pod-1"), lane_a);
  EXPECT_NE(lane_a, lane_b);
}

TEST(TraceRecorder, GoldenChromeTraceJson) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  const TraceRecorder::Pid pid = recorder.process("wfm");
  const TraceRecorder::Tid tid = recorder.lane(pid, "lane");
  recorder.complete(pid, tid, "span", "test", 10, 15);
  const std::string expected =
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"name":"process_name","ph":"M","pid":1,"args":{"name":"wfm"}},)"
      R"({"name":"thread_name","ph":"M","pid":1,"tid":1,"args":{"name":"lane"}},)"
      R"({"name":"span","cat":"test","ph":"X","ts":10,"dur":5,"pid":1,"tid":1}]})";
  EXPECT_EQ(recorder.chrome_trace_json(), expected);
}

TEST(TraceRecorder, ExportCoversEveryPhaseShape) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  const TraceRecorder::Pid pid = recorder.process("svc");
  const TraceRecorder::Tid tid = recorder.lane(pid, "pod");
  json::Object args;
  args.set("status", 200);
  recorder.complete(pid, tid, "span", "http", 100, 250, std::move(args));
  recorder.instant(pid, tid, "mark", "pod-scheduled", 100);
  recorder.counter(pid, "ready_pods", 300, 3.0);

  const json::Value document = json::parse(recorder.chrome_trace_json());
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 2 metadata records (process + thread name) + 3 events.
  ASSERT_EQ(events->as_array().size(), 5u);
  for (const json::Value& event : events->as_array()) {
    const json::Value* ph = event.find("ph");
    ASSERT_NE(ph, nullptr);
    const std::string phase = ph->string_or("");
    EXPECT_TRUE(phase == "M" || phase == "X" || phase == "i" || phase == "C") << phase;
    if (phase == "X") {
      EXPECT_NE(event.find("dur"), nullptr);
      EXPECT_EQ(event.find("ts")->int_or(-1), 100);
      EXPECT_EQ(event.find("dur")->int_or(-1), 150);
    }
    if (phase == "i") {
      EXPECT_EQ(event.find("s")->string_or(""), "t");
    }
    if (phase == "C") {
      EXPECT_DOUBLE_EQ(event.find("args")->find("value")->double_or(0.0), 3.0);
    }
  }
}

TEST(TraceRecorder, ClearResetsRegistriesAndEvents) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  const TraceRecorder::Pid pid = recorder.process("svc");
  recorder.complete(pid, recorder.lane(pid, "l"), "s", "c", 0, 1);
  EXPECT_EQ(recorder.size(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_EQ(recorder.process("other"), 1u);  // pids restart
}

// ---- end-to-end: one traced serverless experiment ---------------------------

class TracedExperiment : public testing::Test {
 protected:
  static const core::ExperimentResult& result() {
    static const core::ExperimentResult instance = [] {
      core::ExperimentConfig config;
      config.paradigm = core::Paradigm::kKn10wNoPM;
      config.recipe = "blast";
      config.num_tasks = 50;
      config.trace_path = trace_path();
      return core::run_experiment(config);
    }();
    return instance;
  }

  // Unique per test: ctest runs every discovered test in its own process,
  // concurrently — a shared filename would race.
  static std::string trace_path() {
    const testing::TestInfo* info = testing::UnitTest::GetInstance()->current_test_info();
    return testing::TempDir() + "wfs_trace_" + (info != nullptr ? info->name() : "shared") +
           ".json";
  }

  static const json::Value& trace() {
    static const json::Value document = [] {
      (void)result();  // ensure the experiment ran and wrote the file
      std::ifstream in(trace_path());
      EXPECT_TRUE(in.good());
      std::ostringstream buffer;
      buffer << in.rdbuf();
      return json::parse(buffer.str());
    }();
    return document;
  }

  /// All events of one category.
  static std::vector<const json::Value*> events_of(const std::string& category) {
    std::vector<const json::Value*> matched;
    const json::Value* events = trace().find("traceEvents");
    if (events == nullptr || !events->is_array()) return matched;
    for (const json::Value& event : events->as_array()) {
      const json::Value* cat = event.find("cat");
      if (cat != nullptr && cat->string_or("") == category) matched.push_back(&event);
    }
    return matched;
  }
};

TEST_F(TracedExperiment, RunsCleanAndWritesValidChromeTrace) {
  ASSERT_TRUE(result().ok()) << result().failure_reason;
  const json::Value* events = trace().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->as_array().size(), 100u);
  for (const json::Value& event : events->as_array()) {
    const std::string phase = event.find("ph")->string_or("");
    EXPECT_TRUE(phase == "M" || phase == "X" || phase == "i" || phase == "C") << phase;
    EXPECT_NE(event.find("pid"), nullptr);
  }
}

TEST_F(TracedExperiment, TaskAttemptSpansCoverEveryTask) {
  ASSERT_TRUE(result().ok());
  const auto attempts = events_of("attempt");
  // One attempt span per task invocation (retries would add more).
  EXPECT_GE(attempts.size(), result().run.tasks_total);
  std::set<std::string> names;
  for (const json::Value* event : attempts) {
    names.insert(event->find("name")->string_or(""));
    EXPECT_NE(event->find("args")->find("status"), nullptr);
  }
  for (const core::TaskOutcome& task : result().run.tasks) {
    EXPECT_TRUE(names.contains(task.name)) << task.name;
  }
  // The run span and the header/tail markers ride on the run lane.
  EXPECT_EQ(events_of("run").size(), 1u);
  EXPECT_EQ(events_of("marker").size(), 2u);
}

TEST_F(TracedExperiment, PodLifecycleAndAutoscalerEventsPresent) {
  ASSERT_TRUE(result().ok());
  EXPECT_FALSE(events_of("pod-scheduled").empty());
  EXPECT_FALSE(events_of("cold-start").empty());
  EXPECT_FALSE(events_of("serving").empty());
  EXPECT_FALSE(events_of("pod-terminated").empty());
  const auto decisions = events_of("autoscaler");
  ASSERT_FALSE(decisions.empty());
  for (const json::Value* event : decisions) {
    const json::Value* args = event->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->find("stable_avg"), nullptr);
    EXPECT_NE(args->find("panic_avg"), nullptr);
    EXPECT_NE(args->find("desired"), nullptr);
  }
  EXPECT_FALSE(events_of("http").empty());
}

TEST_F(TracedExperiment, ColdStartSpansReconcileWithSummaryStats) {
  ASSERT_TRUE(result().ok());
  const auto spans = events_of("cold-start");
  ASSERT_FALSE(spans.empty());
  // Every pod that reached Ready has exactly one cold-start span; pods
  // terminated mid-boot (e.g. at shutdown) count in cold_starts but never
  // accrue cold-start time.
  EXPECT_LE(spans.size(), result().cold_starts);
  double total_seconds = 0.0;
  for (const json::Value* span : spans) {
    total_seconds += static_cast<double>(span->find("dur")->int_or(0)) / 1e6;
  }
  EXPECT_NEAR(total_seconds, result().cold_start_seconds, 1e-6);
  EXPECT_GT(result().cold_start_seconds, 0.0);
}

TEST_F(TracedExperiment, CriticalPathLaneHighlightsTheBottleneckChain) {
  ASSERT_TRUE(result().ok());
  const auto nodes = events_of("critical-path");
  ASSERT_EQ(nodes.size(), result().run.profile.path.size());
  ASSERT_FALSE(nodes.empty());
  double covered_seconds = 0.0;
  for (const json::Value* node : nodes) {
    const json::Value* args = node->find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->find("dominant"), nullptr);
    EXPECT_NE(args->find("cold-start"), nullptr);
    EXPECT_NE(args->find("compute"), nullptr);
    covered_seconds += static_cast<double>(node->find("dur")->int_or(0)) / 1e6;
  }
  // The lane's spans tile the path contiguously: together they cover
  // everything up to the last task's finish (the tail gap to the makespan
  // has no span — it is pure run overhead).
  const auto& path = result().run.profile.path;
  EXPECT_NEAR(covered_seconds, path.back().end_seconds - path.front().start_seconds,
              1e-5);
}

TEST_F(TracedExperiment, RunWaitTotalsReconcileWithPerTaskOutcomes) {
  ASSERT_TRUE(result().ok());
  double input_wait = 0.0;
  double retry_wait = 0.0;
  for (const core::TaskOutcome& task : result().run.tasks) {
    input_wait += task.input_wait_seconds;
    retry_wait += task.retry_wait_seconds;
  }
  EXPECT_NEAR(result().run.input_wait_seconds, input_wait, 1e-9);
  EXPECT_NEAR(result().run.retry_wait_seconds, retry_wait, 1e-9);
}

TEST(TracingDisabled, ExperimentRecordsSummaryStatsWithoutTraceFile) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 50;  // trace_path empty: tracing off
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  // The overhead counters are always-on — campaign CSVs stay populated
  // even when no trace is recorded.
  EXPECT_GT(result.cold_start_seconds, 0.0);
  EXPECT_GE(result.run.input_wait_seconds, 0.0);
}

}  // namespace
}  // namespace wfs::obs
