// Tests for the core module: execution plans, Table II paradigms, the
// serverless workflow manager, and the report helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/dag.h"
#include "core/experiment.h"
#include "core/paradigm.h"
#include "core/report.h"
#include "core/results_io.h"
#include "core/trace.h"
#include "core/workflow_manager.h"
#include "json/parse.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "wfbench/task_params.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/translators/knative.h"

namespace wfs::core {
namespace {

wfcommons::Workflow translated(const std::string& recipe, std::size_t tasks,
                               const std::string& url = "http://svc:80/wfbench") {
  wfcommons::WorkflowGenerator generator;
  wfcommons::Workflow wf = generator.generate(recipe, tasks, 1);
  wfcommons::KnativeTranslatorConfig config;
  config.service_url = url;
  wfcommons::KnativeTranslator(config).apply(wf);
  return wf;
}

// ---- execution plan -----------------------------------------------------------

TEST(ExecutionPlan, PhasesMatchAnalysisLevels) {
  const wfcommons::Workflow wf = translated("blast", 30);
  const ExecutionPlan plan = build_plan(wf, "/shared");
  const auto hist = wfcommons::phase_histogram(wf);
  ASSERT_EQ(plan.level_count(), hist.size());
  for (std::size_t i = 0; i < hist.size(); ++i) {
    EXPECT_EQ(plan.level_size(i), hist[i]);
    EXPECT_EQ(plan.tasks_in_level(i).size(), hist[i]);
  }
  EXPECT_EQ(plan.task_count(), wf.size());
  EXPECT_EQ(plan.widest_phase(), 27u);
}

TEST(ExecutionPlan, TaskParamsCarryWfbenchKnobs) {
  const wfcommons::Workflow wf = translated("blast", 10);
  const ExecutionPlan plan = build_plan(wf, "/data/run1");
  const TaskId id = plan.flat_id(1, 0);  // a blastall
  const wfbench::TaskParams params = plan.task_params(id);
  const wfcommons::Task* source = wf.find(plan.name(id));
  ASSERT_NE(source, nullptr);
  EXPECT_DOUBLE_EQ(params.percent_cpu, source->percent_cpu);
  EXPECT_DOUBLE_EQ(params.cpu_work, source->cpu_work);
  EXPECT_EQ(params.memory_bytes, source->memory_bytes);
  EXPECT_EQ(params.workdir, "/data/run1");
  EXPECT_EQ(params.inputs.size(), source->inputs().size());
  EXPECT_EQ(params.outputs.size(), source->outputs().size());
  EXPECT_EQ(plan.api_url(id), "http://svc:80/wfbench");
}

TEST(ExecutionPlan, ExternalInputsListed) {
  const wfcommons::Workflow wf = translated("blast", 10);
  const ExecutionPlan plan = build_plan(wf, "/shared");
  ASSERT_EQ(plan.external_inputs().size(), 1u);
  EXPECT_EQ(plan.external_inputs()[0].name, "blast_input.fasta");
}

TEST(ExecutionPlan, DependencyEdgesMirrorWorkflow) {
  const wfcommons::Workflow wf = translated("epigenomics", 40);
  const ExecutionPlan plan = build_plan(wf, "/shared");

  const auto indegrees = plan.indegrees();
  ASSERT_EQ(indegrees.size(), plan.task_count());

  std::size_t edges = 0;
  std::size_t roots = 0;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    for (std::size_t i = 0; i < plan.level_size(level); ++i) {
      const TaskId id = plan.flat_id(level, i);
      const auto parents = plan.parents(id);
      EXPECT_EQ(plan.level_of(id), level);
      EXPECT_EQ(parents.size(), indegrees[id]);
      if (parents.empty()) ++roots;
      edges += parents.size();
      // Parent edges always point to an earlier level, and every edge is
      // mirrored in the parent's child list.
      for (const TaskId parent : parents) {
        EXPECT_LT(plan.level_of(parent), level);
        const auto siblings = plan.children(parent);
        EXPECT_NE(std::find(siblings.begin(), siblings.end(), id), siblings.end());
      }
    }
  }
  EXPECT_EQ(edges, wf.edge_count());
  EXPECT_EQ(roots, wf.roots().size());
}

TEST(ExecutionPlan, RejectsUntranslatedWorkflow) {
  wfcommons::WorkflowGenerator generator;
  const wfcommons::Workflow wf = generator.generate("blast", 10, 1);  // no api_url
  EXPECT_THROW(build_plan(wf, "/shared"), std::invalid_argument);
}

// ---- paradigms ------------------------------------------------------------------

TEST(Paradigm, TableTwoComplete) {
  EXPECT_EQ(all_paradigms().size(), 9u);
  EXPECT_EQ(fine_grained_paradigms().size(), 7u);
  EXPECT_EQ(coarse_grained_paradigms().size(), 2u);
}

TEST(Paradigm, NamesRoundTrip) {
  for (const Paradigm paradigm : all_paradigms()) {
    EXPECT_EQ(parse_paradigm(to_string(paradigm)), paradigm);
  }
  EXPECT_EQ(parse_paradigm("kn10wnopm"), Paradigm::kKn10wNoPM);
  EXPECT_THROW(parse_paradigm("Kn5wPM"), std::invalid_argument);
}

TEST(Paradigm, InfoFlagsConsistent) {
  EXPECT_TRUE(paradigm_info(Paradigm::kKn10wNoPM).serverless);
  EXPECT_FALSE(paradigm_info(Paradigm::kKn10wNoPM).persistent_memory);
  EXPECT_FALSE(paradigm_info(Paradigm::kLC10wNoPMNoCR).cpu_requirement);
  EXPECT_TRUE(paradigm_info(Paradigm::kLC1000wPM).coarse_grained);
  EXPECT_TRUE(paradigm_info(Paradigm::kKn1wPM).persistent_memory);
}

TEST(Paradigm, KnativeSpecsMatchLabels) {
  const auto spec1 = knative_spec_for(Paradigm::kKn1wPM);
  EXPECT_EQ(spec1.container.workers, 1);
  EXPECT_TRUE(spec1.container.persistent_memory);
  const auto spec10 = knative_spec_for(Paradigm::kKn10wNoPM);
  EXPECT_EQ(spec10.container.workers, 10);
  EXPECT_FALSE(spec10.container.persistent_memory);
  EXPECT_GT(spec10.max_scale, 1);
  const auto coarse = knative_spec_for(Paradigm::kKn1000wPM);
  EXPECT_EQ(coarse.container.workers, 1000);
  EXPECT_EQ(coarse.min_scale, 2);
  EXPECT_EQ(coarse.max_scale, 2);
  EXPECT_GT(coarse.cpu_request, 90.0);
  EXPECT_THROW(knative_spec_for(Paradigm::kLC1wPM), std::invalid_argument);
}

TEST(Paradigm, LocalConfigsMatchLabels) {
  const auto lc1 = local_config_for(Paradigm::kLC1wPM);
  EXPECT_EQ(lc1.container.service.workers, 96);  // 1 worker per CPU
  EXPECT_TRUE(lc1.container.service.persistent_memory);
  EXPECT_GT(lc1.container.cpus, 0.0);
  const auto lc10 = local_config_for(Paradigm::kLC10wNoPM);
  EXPECT_EQ(lc10.container.service.workers, 960);
  const auto nocr = local_config_for(Paradigm::kLC10wNoPMNoCR);
  EXPECT_DOUBLE_EQ(nocr.container.cpus, 0.0);
  EXPECT_EQ(nocr.container.memory_limit, 0u);
  const auto coarse = local_config_for(Paradigm::kLC1000wPM);
  EXPECT_EQ(coarse.container.service.workers, 1000);
  EXPECT_THROW(local_config_for(Paradigm::kKn1wPM), std::invalid_argument);
}

// ---- workflow manager (against a scripted fake service) --------------------------

/// Binds a fake wfbench endpoint on "svc:80" that records request order,
/// asserts inputs are present, writes the declared outputs to the shared
/// drive, then responds 200. When `seconds_per_cpu_work` > 0 the service
/// time scales with the task's cpu_work (for imbalance experiments);
/// otherwise every request takes `service_time`.
void bind_fake_wfbench(sim::Simulation& sim, storage::SharedFilesystem& fs,
                       net::Router& router, std::vector<std::string>* requests,
                       sim::SimTime service_time = 100 * sim::kMillisecond,
                       double seconds_per_cpu_work = 0.0) {
  router.bind("svc:80", [&sim, &fs, requests, service_time, seconds_per_cpu_work](
                            const net::HttpRequest& request,
                            std::shared_ptr<net::Responder> responder) {
    const wfbench::TaskParams params =
        wfbench::task_params_from_json(json::parse(request.body));
    if (requests != nullptr) requests->push_back(params.name);
    for (const std::string& input : params.inputs) {
      EXPECT_TRUE(fs.exists(input)) << params.name << " invoked before input " << input;
    }
    const sim::SimTime busy = seconds_per_cpu_work > 0.0
                                  ? sim::from_seconds(params.cpu_work * seconds_per_cpu_work)
                                  : service_time;
    sim.schedule_in(busy, [&fs, params, responder] {
      if (params.outputs.empty()) {
        responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
        return;
      }
      auto remaining = std::make_shared<std::size_t>(params.outputs.size());
      for (const auto& [file, size] : params.outputs) {
        fs.write(file, size, [remaining, responder] {
          if (--*remaining == 0) {
            responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
          }
        });
      }
    });
  });
}

/// One isolated run against the fake service: fresh simulation, drive and
/// router per call, so scheduling modes can be compared without shared
/// state.
WorkflowRunResult run_isolated(const wfcommons::Workflow& wf, const WfmConfig& config,
                               double seconds_per_cpu_work = 0.0) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);
  bind_fake_wfbench(sim, fs, router, nullptr, 100 * sim::kMillisecond,
                    seconds_per_cpu_work);
  WorkflowManager wfm(sim, router, fs);
  WorkflowRunResult result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); }, config);
  sim.run();
  return result;
}

class WfmTest : public testing::Test {
 protected:
  WfmTest() : fs_(sim_), router_(sim_) {}

  void bind_fake_service(sim::SimTime service_time = 100 * sim::kMillisecond) {
    bind_fake_wfbench(sim_, fs_, router_, &requests_, service_time);
  }

  sim::Simulation sim_;
  storage::SharedFilesystem fs_;
  net::Router router_;
  std::vector<std::string> requests_;
};

TEST_F(WfmTest, ExecutesPhasesInOrderWithHeaderAndTail) {
  bind_fake_service();
  WorkflowManager wfm(sim_, router_, fs_, WfmConfig{});
  const wfcommons::Workflow wf = translated("blast", 12);

  WorkflowRunResult result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.tasks_total, wf.size());
  EXPECT_EQ(result.tasks_failed, 0u);
  EXPECT_EQ(result.phases.size(), 3u);

  // Header first, tail last, phases strictly ordered in between.
  ASSERT_EQ(requests_.size(), wf.size() + 2);
  EXPECT_NE(requests_.front().find("header"), std::string::npos);
  EXPECT_NE(requests_.back().find("tail"), std::string::npos);
  EXPECT_EQ(requests_[1], "split_fasta_00000001");
  // Merges (phase 2) come after every blastall (phase 1).
  const auto merge_pos =
      std::find_if(requests_.begin(), requests_.end(), [](const std::string& name) {
        return name.starts_with("cat");
      });
  for (auto it = requests_.begin() + 2; it != merge_pos; ++it) {
    EXPECT_TRUE(it->starts_with("blastall")) << *it;
  }
}

TEST_F(WfmTest, PhaseDelayIsApplied) {
  bind_fake_service(0);
  WfmConfig config;
  config.phase_delay = 5 * sim::kSecond;
  config.add_header_tail = false;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  // 3 phases with >= 5 s between each (plus the trailing delay before the
  // completion check) -> makespan well above 10 s even with instant tasks.
  EXPECT_TRUE(result.ok());
  EXPECT_GE(result.makespan_seconds, 10.0);
}

TEST_F(WfmTest, WaitsForInFlightOutputsBeforeNextPhase) {
  bind_fake_service();
  WfmConfig config;
  config.add_header_tail = false;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("epigenomics", 40), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  // The fake service asserts (inside bind_fake_service) that every input
  // existed at invocation time; a failure there means sequencing broke.
  EXPECT_TRUE(result.ok());
}

TEST_F(WfmTest, MissingInputsTimeOutAsTaskFailures) {
  bind_fake_service();
  WfmConfig config;
  config.add_header_tail = false;
  config.stage_external_inputs = false;  // inputs never appear
  config.max_input_polls = 3;
  config.input_poll_interval = 100 * sim::kMillisecond;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.ok());
  EXPECT_GE(result.input_wait_timeouts, 1u);
  // split_fasta fails (staged input missing) and produces nothing, so all
  // downstream tasks fail too.
  EXPECT_EQ(result.tasks_failed, result.tasks_total);
}

TEST_F(WfmTest, ServiceErrorsAreRecordedPerTask) {
  router_.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> r) {
    r->respond(net::HttpResponse::server_error("boom"));
  });
  WfmConfig config;
  config.add_header_tail = false;
  config.check_inputs = false;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("seismology", 8), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.tasks_failed, result.tasks_total);
  for (const TaskOutcome& task : result.tasks) {
    EXPECT_EQ(task.http_status, 500);
    EXPECT_EQ(task.error, "boom");
  }
}

TEST_F(WfmTest, ConcurrentRunsShareOneManager) {
  bind_fake_service();
  WorkflowManager wfm(sim_, router_, fs_, WfmConfig{});
  std::vector<WorkflowRunResult> results;
  const RunHandle first =
      wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { results.push_back(std::move(r)); });
  const RunHandle second =
      wfm.run(translated("seismology", 8), [&](WorkflowRunResult r) { results.push_back(std::move(r)); });
  EXPECT_EQ(wfm.active_runs(), 2u);
  EXPECT_NE(first.id(), second.id());
  EXPECT_FALSE(first.done());
  EXPECT_FALSE(second.done());

  sim_.run();

  EXPECT_EQ(wfm.active_runs(), 0u);
  EXPECT_TRUE(first.done());
  EXPECT_TRUE(second.done());
  ASSERT_EQ(results.size(), 2u);
  for (const WorkflowRunResult& result : results) {
    EXPECT_TRUE(result.ok()) << result.workflow_name;
  }
  // The run table kept the interleaved runs apart.
  EXPECT_NE(results[0].run_id, results[1].run_id);
  EXPECT_NE(results[0].workflow_name, results[1].workflow_name);
  EXPECT_EQ(results[0].tasks_total + results[1].tasks_total, 18u);
}

TEST_F(WfmTest, RunHandleCancelAbortsTheRun) {
  bind_fake_service();
  WorkflowManager wfm(sim_, router_, fs_, WfmConfig{});
  WorkflowRunResult result;
  bool completed_fired = false;
  RunHandle handle = wfm.run(translated("blast", 10), [&](WorkflowRunResult r) {
    completed_fired = true;
    result = std::move(r);
  });
  sim_.run_until(2 * sim::kSecond);  // mid-run: phase 0 done, blastalls pending

  ASSERT_FALSE(handle.done());
  EXPECT_TRUE(handle.cancel());
  EXPECT_TRUE(handle.done());
  EXPECT_TRUE(completed_fired);
  EXPECT_TRUE(result.cancelled);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.ok());
  EXPECT_LT(result.tasks.size(), result.tasks_total);
  EXPECT_EQ(wfm.active_runs(), 0u);
  EXPECT_FALSE(handle.cancel());  // idempotent: already done

  // Draining the remaining events must not resurrect the cancelled run.
  sim_.run();
  EXPECT_TRUE(result.cancelled);
}

TEST_F(WfmTest, PerRunConfigOverride) {
  bind_fake_service(0);
  WfmConfig slow;  // the manager default: a run would take >= 40 s
  slow.phase_delay = 20 * sim::kSecond;
  slow.add_header_tail = false;
  WorkflowManager wfm(sim_, router_, fs_, slow);

  WfmConfig fast = slow;
  fast.phase_delay = 0;
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); },
          fast);
  sim_.run();

  EXPECT_TRUE(result.ok());
  EXPECT_LT(result.makespan_seconds, 5.0);  // the override, not the default, applied
  EXPECT_EQ(wfm.config().phase_delay, 20 * sim::kSecond);  // default untouched
}

TEST_F(WfmTest, RetryHonorsRetryAfterHint) {
  // First attempt of every task gets a 503 carrying a 100 ms Retry-After
  // hint; the configured backoff is a prohibitive 50 s. If the hint drives
  // the retry clock the run finishes in seconds.
  std::map<std::string, int> attempts;
  router_.bind("svc:80", [this, &attempts](const net::HttpRequest& request,
                                           std::shared_ptr<net::Responder> responder) {
    const wfbench::TaskParams params =
        wfbench::task_params_from_json(json::parse(request.body));
    if (++attempts[params.name] == 1) {
      responder->respond(net::HttpResponse::service_unavailable("scaling down", 100));
      return;
    }
    auto remaining = std::make_shared<std::size_t>(params.outputs.size());
    if (params.outputs.empty()) {
      responder->respond(net::HttpResponse::make_ok());
      return;
    }
    for (const auto& [file, size] : params.outputs) {
      fs_.write(file, size, [remaining, responder] {
        if (--*remaining == 0) responder->respond(net::HttpResponse::make_ok());
      });
    }
  });

  WfmConfig config;
  config.add_header_tail = false;
  config.task_retries = 1;
  config.retry_backoff = 50 * sim::kSecond;
  config.phase_delay = 0;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.ok());
  EXPECT_GT(result.task_retries, 0u);
  EXPECT_LT(result.makespan_seconds, 10.0);  // 50 s backoff would blow past this
}

TEST_F(WfmTest, RetriesRecoverFromTransientFailures) {
  // A service that 503s the FIRST attempt of every task and succeeds on the
  // retry; with task_retries = 1 the run must complete cleanly.
  std::map<std::string, int> attempts;
  router_.bind("svc:80", [this, &attempts](const net::HttpRequest& request,
                                           std::shared_ptr<net::Responder> responder) {
    const wfbench::TaskParams params =
        wfbench::task_params_from_json(json::parse(request.body));
    if (++attempts[params.name] == 1 && !params.name.ends_with("header") &&
        !params.name.ends_with("tail")) {
      responder->respond(net::HttpResponse::service_unavailable("flaky"));
      return;
    }
    auto finish = [this, params, responder] {
      auto remaining = std::make_shared<std::size_t>(params.outputs.size());
      if (params.outputs.empty()) {
        responder->respond(net::HttpResponse::make_ok());
        return;
      }
      for (const auto& [file, size] : params.outputs) {
        fs_.write(file, size, [remaining, responder] {
          if (--*remaining == 0) responder->respond(net::HttpResponse::make_ok());
        });
      }
    };
    sim_.schedule_in(10 * sim::kMillisecond, finish);
  });

  WfmConfig config;
  config.task_retries = 1;
  config.retry_backoff = 100 * sim::kMillisecond;
  WorkflowManager wfm(sim_, router_, fs_, config);
  const wfcommons::Workflow wf = translated("blast", 12);
  WorkflowRunResult result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.task_retries, wf.size());  // exactly one retry per task
  for (const TaskOutcome& task : result.tasks) EXPECT_EQ(task.http_status, 200);
}

TEST_F(WfmTest, RetryBudgetExhaustionStillFailsTask) {
  router_.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> r) {
    r->respond(net::HttpResponse::service_unavailable("always down"));
  });
  WfmConfig config;
  config.add_header_tail = false;
  config.check_inputs = false;
  config.task_retries = 2;
  config.retry_backoff = 100 * sim::kMillisecond;
  WorkflowManager wfm(sim_, router_, fs_, config);
  const wfcommons::Workflow wf = translated("seismology", 5);
  WorkflowRunResult result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.tasks_failed, result.tasks_total);
  EXPECT_EQ(result.task_retries, result.tasks_total * 2);  // budget fully spent
}

TEST_F(WfmTest, RetryTimingCoversAllAttempts) {
  // Regression: started_seconds/wall_seconds used to be reset on every
  // attempt, so a retried task reported only its final round trip — the 2 s
  // backoff vanished from the timeline. The outcome must anchor on the
  // FIRST attempt and span every retry.
  int attempts_seen = 0;
  router_.bind("svc:80", [&attempts_seen](const net::HttpRequest&,
                                          std::shared_ptr<net::Responder> responder) {
    if (++attempts_seen == 1) {
      responder->respond(net::HttpResponse::service_unavailable("flaky"));
      return;
    }
    responder->respond(net::HttpResponse::make_ok());
  });

  PlannedTask task;
  task.name = "solo";
  task.api_url = "http://svc:80/wfbench";
  task.params.name = "solo";
  // The legacy row-of-structs shim must keep seed semantics for one PR.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  ExecutionPlan plan = plan_from_phases("retry_timing", {{task}});
#pragma GCC diagnostic pop

  WfmConfig config;
  config.add_header_tail = false;
  config.check_inputs = false;
  config.task_retries = 1;
  config.retry_backoff = 2 * sim::kSecond;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(std::move(plan), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.tasks.size(), 1u);
  const TaskOutcome& outcome = result.tasks[0];
  EXPECT_EQ(outcome.attempts, 2);
  EXPECT_LT(outcome.started_seconds, 1.0);           // first attempt, not the retry
  EXPECT_GE(outcome.wall_seconds, 2.0);              // covers backoff + both round trips
  EXPECT_DOUBLE_EQ(outcome.retry_wait_seconds, 2.0); // the configured backoff
  EXPECT_DOUBLE_EQ(result.retry_wait_seconds, 2.0);  // rolled up on the run
}

TEST_F(WfmTest, MarkersSentWhenLevelZeroEmpty) {
  // Regression: send_marker took its endpoint from phases.front().front(),
  // so a hand-built plan with an empty level 0 dropped header and tail.
  // Any non-empty level must provide the endpoint.
  bind_fake_service(0);
  PlannedTask task;
  task.name = "solo";
  task.api_url = "http://svc:80/wfbench";
  task.params.name = "solo";
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // Empty level 0, the task on level 1.
  ExecutionPlan plan = plan_from_phases("gapped", {{}, {task}});
#pragma GCC diagnostic pop

  WorkflowManager wfm(sim_, router_, fs_, WfmConfig{});
  WorkflowRunResult result;
  wfm.run(std::move(plan), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.ok());
  ASSERT_EQ(requests_.size(), 3u);  // header + task + tail
  EXPECT_EQ(requests_.front(), "gapped_header");
  EXPECT_EQ(requests_[1], "solo");
  EXPECT_EQ(requests_.back(), "gapped_tail");
}

TEST_F(WfmTest, UpstreamFailureFailsFast) {
  // Every invocation 500s: the root task fails outright and its children's
  // inputs never appear. With fail-fast (the default) the children are
  // failed immediately with an upstream-failure outcome instead of burning
  // the full 600 x 0.5 s input-poll budget.
  router_.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> r) {
    r->respond(net::HttpResponse::server_error("boom"));
  });
  WfmConfig config;
  config.add_header_tail = false;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.tasks_failed, result.tasks_total);
  EXPECT_GE(result.upstream_failures, 1u);
  EXPECT_EQ(result.input_wait_timeouts, 0u);
  EXPECT_LT(result.makespan_seconds, 30.0);  // poll-out would take >= 300 s
  bool saw_upstream_error = false;
  for (const TaskOutcome& task : result.tasks) {
    if (task.error.find("upstream") != std::string::npos) saw_upstream_error = true;
  }
  EXPECT_TRUE(saw_upstream_error);
}

TEST_F(WfmTest, UpstreamFailureFallsBackToPollingWhenDisabled) {
  // Flag off: the children keep the pure poll path and time out, exactly
  // the pre-fix behaviour (for genuinely-late files).
  router_.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> r) {
    r->respond(net::HttpResponse::server_error("boom"));
  });
  WfmConfig config;
  config.add_header_tail = false;
  config.fail_fast_on_upstream_failure = false;
  config.max_input_polls = 3;
  config.input_poll_interval = 100 * sim::kMillisecond;
  WorkflowManager wfm(sim_, router_, fs_, config);
  WorkflowRunResult result;
  wfm.run(translated("blast", 10), [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();

  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.tasks_failed, result.tasks_total);
  EXPECT_EQ(result.upstream_failures, 0u);
  EXPECT_GE(result.input_wait_timeouts, 1u);
}

TEST_F(WfmTest, HeaderTailDisabled) {
  bind_fake_service();
  WfmConfig config;
  config.add_header_tail = false;
  WorkflowManager wfm(sim_, router_, fs_, config);
  const wfcommons::Workflow wf = translated("blast", 10);
  WorkflowRunResult result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
  sim_.run();
  EXPECT_EQ(requests_.size(), wf.size());
}

// ---- scheduling modes -------------------------------------------------------------

/// Hand-built DAG with one slow straggler next to a fast chain:
///
///   root -> a1 -> a2 -> a3 -> sink     (fast chain, cpu_work 10 each)
///   root -> b ----------------> sink   (straggler, cpu_work 500)
///
/// Under the level barrier, a2 (level 2) cannot start until b (level 1)
/// finished; dependency-driven scheduling overlaps the chain with b.
wfcommons::Workflow imbalanced_workflow() {
  wfcommons::Workflow wf("imbalanced");
  auto add = [&wf](const std::string& name, double cpu_work,
                   const std::vector<std::string>& input_files) {
    wfcommons::Task task;
    task.name = name;
    task.category = name;
    task.cpu_work = cpu_work;
    task.memory_bytes = 1 << 20;
    for (const std::string& input : input_files) {
      task.files.push_back({wfcommons::TaskFile::Link::kInput, input, 1024});
    }
    task.files.push_back({wfcommons::TaskFile::Link::kOutput, name + ".out", 1024});
    task.api_url = "http://svc:80/wfbench";
    wf.add_task(std::move(task));
  };
  add("root", 10, {});
  add("a1", 10, {"root.out"});
  add("a2", 10, {"a1.out"});
  add("a3", 10, {"a2.out"});
  add("b", 500, {"root.out"});
  add("sink", 10, {"a3.out", "b.out"});
  wf.connect("root", "a1");
  wf.connect("a1", "a2");
  wf.connect("a2", "a3");
  wf.connect("root", "b");
  wf.connect("a3", "sink");
  wf.connect("b", "sink");
  EXPECT_TRUE(wf.validate().empty());
  return wf;
}

TEST(SchedulingModes, ModesAgreeOnEveryRecipe) {
  for (const std::string& recipe : wfcommons::recipe_names()) {
    const wfcommons::Workflow wf = translated(recipe, 40);

    WfmConfig barrier;
    WfmConfig depdriven;
    depdriven.scheduling = SchedulingMode::kDependencyDriven;
    const WorkflowRunResult a = run_isolated(wf, barrier);
    const WorkflowRunResult b = run_isolated(wf, depdriven);

    EXPECT_TRUE(a.ok()) << recipe;
    EXPECT_TRUE(b.ok()) << recipe;
    EXPECT_EQ(a.tasks_total, b.tasks_total) << recipe;
    EXPECT_EQ(a.phases.size(), b.phases.size()) << recipe;

    // Identical task sets with identical per-task success and level
    // attribution, whatever the dispatch order.
    std::map<std::string, std::pair<bool, std::size_t>> outcomes_a;
    for (const TaskOutcome& task : a.tasks) {
      outcomes_a[task.name] = {task.ok, task.phase};
    }
    ASSERT_EQ(outcomes_a.size(), a.tasks_total) << recipe;
    for (const TaskOutcome& task : b.tasks) {
      const auto it = outcomes_a.find(task.name);
      ASSERT_NE(it, outcomes_a.end()) << recipe << ": " << task.name;
      EXPECT_EQ(it->second.first, task.ok) << recipe << ": " << task.name;
      EXPECT_EQ(it->second.second, task.phase) << recipe << ": " << task.name;
    }
    // Removing the barrier never slows a run down.
    EXPECT_LE(b.makespan_seconds, a.makespan_seconds + 1e-9) << recipe;
  }
}

TEST(SchedulingModes, DependencyDrivenBeatsBarrierOnImbalancedDag) {
  const wfcommons::Workflow wf = imbalanced_workflow();
  // No inter-phase delay and no header/tail: the speedup below comes purely
  // from overlapping the fast chain with the straggler, not from skipping
  // the paper's 1 s settle delays.
  WfmConfig barrier;
  barrier.phase_delay = 0;
  barrier.add_header_tail = false;
  WfmConfig depdriven = barrier;
  depdriven.scheduling = SchedulingMode::kDependencyDriven;

  constexpr double kSecondsPerCpuWork = 0.01;  // b runs 5 s, chain tasks 0.1 s
  const WorkflowRunResult slow = run_isolated(wf, barrier, kSecondsPerCpuWork);
  const WorkflowRunResult fast = run_isolated(wf, depdriven, kSecondsPerCpuWork);

  ASSERT_TRUE(slow.ok());
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(slow.tasks_total, fast.tasks_total);
  EXPECT_LT(fast.makespan_seconds, slow.makespan_seconds);
  // The barrier serialises b before the chain's tail: >= b + a2 + a3 + sink.
  // Dependency-driven hides the whole chain behind b: ~ root + b + sink.
  EXPECT_GT(slow.makespan_seconds - fast.makespan_seconds, 0.15);
}

TEST(SchedulingModes, NamesRoundTrip) {
  EXPECT_EQ(parse_scheduling_mode("barrier"), SchedulingMode::kPhaseBarrier);
  EXPECT_EQ(parse_scheduling_mode("phase-barrier"), SchedulingMode::kPhaseBarrier);
  EXPECT_EQ(parse_scheduling_mode("depdriven"), SchedulingMode::kDependencyDriven);
  EXPECT_EQ(parse_scheduling_mode("dependency-driven"), SchedulingMode::kDependencyDriven);
  EXPECT_EQ(parse_scheduling_mode(to_string(SchedulingMode::kPhaseBarrier)),
            SchedulingMode::kPhaseBarrier);
  EXPECT_EQ(parse_scheduling_mode(to_string(SchedulingMode::kDependencyDriven)),
            SchedulingMode::kDependencyDriven);
  EXPECT_THROW(parse_scheduling_mode("lockstep"), std::invalid_argument);
}

// ---- tracing ----------------------------------------------------------------------

TEST(Trace, GanttLanesCoverEveryPhaseAndCategory) {
  ExperimentConfig config;
  config.recipe = "blast";
  config.num_tasks = 30;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.ok());
  const std::string gantt = render_gantt(result.run);
  EXPECT_NE(gantt.find("P0 split_fasta"), std::string::npos);
  EXPECT_NE(gantt.find("P1 blastall"), std::string::npos);
  EXPECT_NE(gantt.find("P2 cat_blast"), std::string::npos);
  EXPECT_NE(gantt.find("x27"), std::string::npos);  // lane counts
  EXPECT_NE(gantt.find('#'), std::string::npos);    // bars rendered
}

TEST(Trace, PerTaskModeRespectsRowCap) {
  ExperimentConfig config;
  config.recipe = "seismology";
  config.num_tasks = 50;
  const ExperimentResult result = run_experiment(config);
  GanttOptions options;
  options.by_category = false;
  options.max_rows = 5;
  const std::string gantt = render_gantt(result.run, options);
  EXPECT_NE(gantt.find("more tasks"), std::string::npos);
}

TEST(Trace, ChromeTraceIsValidJsonWithOneEventPerTask) {
  ExperimentConfig config;
  config.recipe = "cycles";
  config.num_tasks = 25;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.ok());
  const json::Value doc = json::parse(chrome_trace_json(result.run));
  const json::Array& events = doc.as_object().at("traceEvents").as_array();
  // 1 metadata event + 1 complete event per task.
  EXPECT_EQ(events.size(), result.run.tasks_total + 1);
  std::size_t complete_events = 0;
  for (const json::Value& event : events) {
    if (event.find("ph")->as_string() != "X") continue;
    ++complete_events;
    EXPECT_GE(event.find("ts")->as_int(), 0);
    EXPECT_GT(event.find("dur")->as_int(), 0);
    EXPECT_LE(static_cast<double>(event.find("ts")->as_int() + event.find("dur")->as_int()),
              result.makespan_seconds * 1e6 + 1e6);
  }
  EXPECT_EQ(complete_events, result.run.tasks_total);
}

TEST(Trace, StartTimesRespectPhaseOrder) {
  ExperimentConfig config;
  config.recipe = "epigenomics";
  config.num_tasks = 40;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.ok());
  // Every task of phase p+1 starts after every task of phase p finished
  // dispatching (the WFM's lockstep execution).
  std::map<std::size_t, double> phase_min_start;
  std::map<std::size_t, double> phase_max_start;
  for (const TaskOutcome& task : result.run.tasks) {
    auto [it, inserted] = phase_min_start.try_emplace(task.phase, task.started_seconds);
    if (!inserted) it->second = std::min(it->second, task.started_seconds);
    phase_max_start[task.phase] =
        std::max(phase_max_start[task.phase], task.started_seconds);
  }
  for (const auto& [phase, min_start] : phase_min_start) {
    if (phase == 0) continue;
    EXPECT_GE(min_start, phase_max_start.at(phase - 1)) << "phase " << phase;
  }
}

// ---- results persistence -----------------------------------------------------------

TEST(ResultsIo, RoundTripPreservesEverything) {
  ExperimentConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.recipe = "seismology";
  config.num_tasks = 40;
  config.seed = 7;
  const ExperimentResult original = run_experiment(config);
  ASSERT_TRUE(original.ok());

  const ExperimentResult restored = parse_result(write_result(original));
  EXPECT_EQ(restored.paradigm_name, original.paradigm_name);
  EXPECT_EQ(restored.config.paradigm, original.config.paradigm);
  EXPECT_EQ(restored.config.recipe, original.config.recipe);
  EXPECT_EQ(restored.config.num_tasks, original.config.num_tasks);
  EXPECT_EQ(restored.config.seed, original.config.seed);
  EXPECT_EQ(restored.workflow_name, original.workflow_name);
  EXPECT_EQ(restored.completed, original.completed);
  EXPECT_DOUBLE_EQ(restored.makespan_seconds, original.makespan_seconds);
  EXPECT_EQ(restored.run.tasks_total, original.run.tasks_total);
  EXPECT_NEAR(restored.cpu_percent.time_weighted_mean,
              original.cpu_percent.time_weighted_mean, 1e-9);
  EXPECT_NEAR(restored.energy_joules, original.energy_joules, 1e-6);
  EXPECT_EQ(restored.cold_starts, original.cold_starts);
  ASSERT_EQ(restored.cpu_series.size(), original.cpu_series.size());
  for (std::size_t i = 0; i < restored.cpu_series.size(); ++i) {
    EXPECT_EQ(restored.cpu_series[i].time, original.cpu_series[i].time);
    EXPECT_DOUBLE_EQ(restored.cpu_series[i].value, original.cpu_series[i].value);
  }
}

TEST(ResultsIo, SaveAndLoadFile) {
  ExperimentConfig config;
  config.recipe = "blast";
  config.num_tasks = 20;
  const ExperimentResult result = run_experiment(config);
  const std::string path = testing::TempDir() + "/wfs_result.json";
  ASSERT_TRUE(save_result(result, path));
  const ExperimentResult loaded = load_result(path);
  EXPECT_EQ(loaded.workflow_name, result.workflow_name);
  EXPECT_DOUBLE_EQ(loaded.makespan_seconds, result.makespan_seconds);
}

TEST(ResultsIo, RejectsGarbage) {
  EXPECT_THROW(parse_result("[]"), std::invalid_argument);
  EXPECT_THROW(parse_result(R"({"schema":"other"})"), std::invalid_argument);
  EXPECT_THROW(load_result("/nonexistent/path.json"), std::invalid_argument);
}

TEST(ResultsIo, AblationLabelsSurviveRoundTrip) {
  ExperimentResult result;
  result.paradigm_name = "cold=2.5s";  // not a Table II name
  result.workflow_name = "BlastRecipe-100-200";
  result.completed = true;
  const ExperimentResult restored = parse_result(write_result(result));
  EXPECT_EQ(restored.paradigm_name, "cold=2.5s");
}

// ---- report ----------------------------------------------------------------------

ExperimentResult fake_result(const std::string& paradigm, double time, double cpu, double mem,
                             double power) {
  ExperimentResult result;
  result.paradigm_name = paradigm;
  result.workflow_name = "BlastRecipe-100-50";
  result.config.num_tasks = 50;
  result.completed = true;
  result.makespan_seconds = time;
  result.cpu_percent.time_weighted_mean = cpu;
  result.memory_gib.time_weighted_mean = mem;
  result.power_watts.time_weighted_mean = power;
  result.energy_joules = power * time;
  return result;
}

TEST(Report, DeltasMatchHandComputation) {
  const ExperimentResult serverless = fake_result("Kn10wNoPM", 200.0, 10.0, 30.0, 250.0);
  const ExperimentResult baseline = fake_result("LC10wNoPM", 100.0, 40.0, 120.0, 300.0);
  const MetricDeltas deltas = compare(serverless, baseline);
  EXPECT_DOUBLE_EQ(deltas.execution_time_pct, 100.0);
  EXPECT_DOUBLE_EQ(deltas.cpu_pct, -75.0);
  EXPECT_DOUBLE_EQ(deltas.memory_pct, -75.0);
  EXPECT_NEAR(deltas.power_pct, -16.67, 0.01);
}

TEST(Report, ZeroBaselineIsSafe) {
  const ExperimentResult a = fake_result("A", 1, 1, 1, 1);
  const ExperimentResult b = fake_result("B", 0, 0, 0, 0);
  const MetricDeltas deltas = compare(a, b);
  EXPECT_DOUBLE_EQ(deltas.cpu_pct, 0.0);
}

TEST(Report, TableContainsRows) {
  const std::string table =
      result_table({fake_result("Kn10wNoPM", 1, 2, 3, 4), fake_result("LC10wNoPM", 5, 6, 7, 8)});
  EXPECT_NE(table.find("paradigm"), std::string::npos);
  EXPECT_NE(table.find("Kn10wNoPM"), std::string::npos);
  EXPECT_NE(table.find("LC10wNoPM"), std::string::npos);
  EXPECT_NE(table.find("ok"), std::string::npos);
}

TEST(Report, FailedRunsMarked) {
  ExperimentResult failed = fake_result("Kn1wPM", 1, 1, 1, 1);
  failed.completed = false;
  failed.failure_reason = "did not conclude";
  EXPECT_NE(result_row(failed).find("FAILED"), std::string::npos);
}

TEST(Report, DeltaRowRendersSigns) {
  MetricDeltas deltas;
  deltas.cpu_pct = -78.11;
  deltas.memory_pct = -73.92;
  deltas.execution_time_pct = 12.0;
  const std::string row = delta_row("serverless vs baseline", deltas);
  EXPECT_NE(row.find("-78.1"), std::string::npos);
  EXPECT_NE(row.find("-73.9"), std::string::npos);
  EXPECT_NE(row.find("+12.0"), std::string::npos);
}

}  // namespace
}  // namespace wfs::core
