// Unit tests for the shared filesystem and the simulated HTTP layer.
#include <gtest/gtest.h>

#include "net/http.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/object_store.h"
#include "storage/shared_fs.h"

namespace wfs {
namespace {

// ---- shared filesystem -------------------------------------------------------

TEST(SharedFs, StageMakesFileVisibleImmediately) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim);
  EXPECT_FALSE(fs.exists("input.txt"));
  fs.stage("input.txt", 1234);
  EXPECT_TRUE(fs.exists("input.txt"));
  ASSERT_NE(fs.stat("input.txt"), nullptr);
  EXPECT_EQ(fs.stat("input.txt")->size_bytes, 1234u);
  EXPECT_EQ(fs.stat("missing"), nullptr);
}

TEST(SharedFs, WriteBecomesVisibleOnlyAfterTransfer) {
  sim::Simulation sim;
  storage::SharedFsConfig config;
  config.write_bandwidth_bps = 1e6;  // 1 MB/s
  config.op_latency = 0;
  storage::SharedFilesystem fs(sim, config);
  bool done = false;
  fs.write("out.txt", 1'000'000, [&] { done = true; });
  EXPECT_FALSE(fs.exists("out.txt"));  // the WFM's availability check relies on this
  sim.run_until(sim::from_seconds(0.5));
  EXPECT_FALSE(fs.exists("out.txt"));
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_TRUE(fs.exists("out.txt"));
  EXPECT_NEAR(sim::to_seconds(sim.now()), 1.0, 1e-3);
  EXPECT_EQ(fs.bytes_written(), 1'000'000u);
}

TEST(SharedFs, ReadMissingFileCostsOpLatency) {
  // Regression: the miss path used to invoke done(false) synchronously and
  // for free, so polling the shared drive for absent files cost no simulated
  // time and re-entered the caller mid-dispatch.
  sim::Simulation sim;
  storage::SharedFsConfig config;
  config.op_latency = 2 * sim::kMillisecond;
  storage::SharedFilesystem fs(sim, config);
  bool called = false;
  bool ok = true;
  fs.read("nope.txt", [&](bool read_ok) {
    called = true;
    ok = read_ok;
  });
  EXPECT_FALSE(called);  // never re-enters the caller synchronously
  EXPECT_EQ(fs.failed_reads(), 1u);
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(sim.now(), 2 * sim::kMillisecond);  // the metadata round trip
}

TEST(Storage, MissPathCostsLatencyOnBothBackends) {
  // Both backends charge their per-operation latency for a failed lookup —
  // the shared drive its op_latency, the object store its request_latency —
  // so WFM input polling is never free on either.
  {
    sim::Simulation sim;
    storage::SharedFsConfig config;
    config.op_latency = 3 * sim::kMillisecond;
    storage::SharedFilesystem fs(sim, config);
    bool called = false;
    fs.read("ghost", [&](bool read_ok) {
      called = true;
      EXPECT_FALSE(read_ok);
    });
    EXPECT_FALSE(called);
    sim.run();
    EXPECT_TRUE(called);
    EXPECT_EQ(sim.now(), 3 * sim::kMillisecond);
  }
  {
    sim::Simulation sim;
    storage::ObjectStoreConfig config;
    config.request_latency = 15 * sim::kMillisecond;
    storage::ObjectStore store(sim, config);
    bool called = false;
    store.read("ghost", [&](bool read_ok) {
      called = true;
      EXPECT_FALSE(read_ok);
    });
    EXPECT_FALSE(called);
    sim.run();
    EXPECT_TRUE(called);
    EXPECT_EQ(sim.now(), 15 * sim::kMillisecond);
  }
}

TEST(SharedFs, ReadTransfersTakeTime) {
  sim::Simulation sim;
  storage::SharedFsConfig config;
  config.read_bandwidth_bps = 2e6;
  config.op_latency = sim::kMillisecond;
  storage::SharedFilesystem fs(sim, config);
  fs.stage("data.bin", 2'000'000);
  bool ok = false;
  fs.read("data.bin", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_NEAR(sim::to_seconds(sim.now()), 1.001, 1e-3);
  EXPECT_EQ(fs.bytes_read(), 2'000'000u);
}

TEST(SharedFs, CongestionSlowsTransfers) {
  sim::Simulation sim;
  storage::SharedFsConfig config;
  config.write_bandwidth_bps = 1e6;
  config.op_latency = 0;
  config.congestion_threshold = 2;
  storage::SharedFilesystem fs(sim, config);
  // Uncontended baseline.
  sim::Simulation sim2;
  storage::SharedFilesystem fs2(sim2, config);
  fs2.write("solo.txt", 1'000'000, [] {});
  const double solo = sim::to_seconds(sim2.run());

  int done = 0;
  for (int i = 0; i < 8; ++i) {
    fs.write("f" + std::to_string(i), 1'000'000, [&] { ++done; });
  }
  const double congested = sim::to_seconds(sim.run());
  EXPECT_EQ(done, 8);
  EXPECT_GT(congested, solo * 2.0);  // 8 writes over a 2-op pipe
}

TEST(SharedFs, RemoveAndClear) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim);
  fs.stage("a", 1);
  fs.stage("b", 2);
  EXPECT_EQ(fs.total_bytes(), 3u);
  EXPECT_TRUE(fs.remove("a"));
  EXPECT_FALSE(fs.remove("a"));
  fs.clear();
  EXPECT_EQ(fs.file_count(), 0u);
}

// ---- object store ----------------------------------------------------------

TEST(ObjectStore, ReadWriteRoundTrip) {
  sim::Simulation sim;
  storage::ObjectStore store(sim);
  bool written = false;
  store.write("bucket/key.bin", 1000, [&] { written = true; });
  EXPECT_FALSE(store.exists("bucket/key.bin"));  // visible only after PUT completes
  sim.run();
  EXPECT_TRUE(written);
  EXPECT_TRUE(store.exists("bucket/key.bin"));
  bool ok = false;
  store.read("bucket/key.bin", [&](bool read_ok) { ok = read_ok; });
  sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(store.bytes_read(), 1000u);
  EXPECT_EQ(store.bytes_written(), 1000u);
  EXPECT_EQ(store.get_requests(), 1u);
  EXPECT_EQ(store.put_requests(), 1u);
}

TEST(ObjectStore, MissingObjectCostsARoundTrip) {
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 15 * sim::kMillisecond;
  storage::ObjectStore store(sim, config);
  bool called = false;
  bool ok = true;
  store.read("ghost", [&](bool read_ok) {
    called = true;
    ok = read_ok;
  });
  EXPECT_FALSE(called);  // the 404 is asynchronous, like every storage op
  sim.run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(ok);
  EXPECT_EQ(sim.now(), 15 * sim::kMillisecond);
  EXPECT_EQ(store.failed_reads(), 1u);
}

TEST(ObjectStore, PerRequestLatencyDominatesSmallObjects) {
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 15 * sim::kMillisecond;
  storage::ObjectStore store(sim, config);
  store.stage("tiny", 10);
  store.read("tiny", [](bool) {});
  sim.run();
  EXPECT_GE(sim.now(), 15 * sim::kMillisecond);
  EXPECT_LT(sim.now(), 16 * sim::kMillisecond);
}

TEST(ObjectStore, NoCongestionCollapseByDefault) {
  // 64 concurrent 1 MB writes finish in (latency + 1MB/300MBps) — the
  // frontend fleet absorbs the fan-out, unlike the NFS model.
  sim::Simulation sim;
  storage::ObjectStore store(sim);
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    store.write("obj" + std::to_string(i), 1'000'000, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 64);
  EXPECT_LT(sim::to_seconds(sim.now()), 0.05);
}

TEST(ObjectStore, AggregateCeilingShares) {
  sim::Simulation sim;
  storage::ObjectStoreConfig config;
  config.request_latency = 0;
  config.per_object_write_bps = 300e6;
  config.aggregate_bps = 300e6;  // total pipe = one object's worth
  storage::ObjectStore store(sim, config);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    store.write("obj" + std::to_string(i), 300'000'000, [&] { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 4);
  EXPECT_GT(sim::to_seconds(sim.now()), 3.0);  // ~4 s serialised
}

TEST(ObjectStore, IsADataStore) {
  sim::Simulation sim;
  storage::ObjectStore object_store(sim);
  storage::SharedFilesystem shared(sim);
  // Both backends drive the same interface (what the WFM/service consume).
  for (storage::DataStore* store : {static_cast<storage::DataStore*>(&object_store),
                                    static_cast<storage::DataStore*>(&shared)}) {
    store->stage("x", 5);
    EXPECT_TRUE(store->exists("x"));
  }
}

// ---- URLs ---------------------------------------------------------------------

TEST(Url, ParsesFullForm) {
  const net::Url url = net::parse_url("http://wfbench.knative.10.0.0.1.sslip.io:8080/wfbench");
  EXPECT_EQ(url.scheme, "http");
  EXPECT_EQ(url.host, "wfbench.knative.10.0.0.1.sslip.io");
  EXPECT_EQ(url.port, 8080);
  EXPECT_EQ(url.path, "/wfbench");
  EXPECT_EQ(url.authority(), "wfbench.knative.10.0.0.1.sslip.io:8080");
}

TEST(Url, DefaultPortsAndPath) {
  EXPECT_EQ(net::parse_url("http://localhost").port, 80);
  EXPECT_EQ(net::parse_url("https://localhost").port, 443);
  EXPECT_EQ(net::parse_url("http://localhost").path, "/");
}

TEST(Url, RoundTrip) {
  const net::Url url = net::parse_url("http://host:1234/a/b");
  EXPECT_EQ(url.to_string(), "http://host:1234/a/b");
}

TEST(Url, RejectsMalformed) {
  EXPECT_THROW(net::parse_url("no-scheme"), std::invalid_argument);
  EXPECT_THROW(net::parse_url("http://"), std::invalid_argument);
  EXPECT_THROW(net::parse_url("http://:80/x"), std::invalid_argument);
  EXPECT_THROW(net::parse_url("http://host:abc/x"), std::invalid_argument);
  EXPECT_THROW(net::parse_url("http://host:99999/x"), std::invalid_argument);
}

// ---- router -------------------------------------------------------------------

net::HttpRequest make_request(const std::string& url, std::string body = "{}") {
  net::HttpRequest request;
  request.url = net::parse_url(url);
  request.body = std::move(body);
  return request;
}

TEST(Router, DeliversRequestAndResponse) {
  sim::Simulation sim;
  net::Router router(sim);
  std::string seen_body;
  router.bind("svc:80", [&](const net::HttpRequest& request,
                            std::shared_ptr<net::Responder> responder) {
    seen_body = request.body;
    responder->respond(net::HttpResponse::make_ok("pong"));
  });
  std::string reply;
  router.send(make_request("http://svc:80/x", "ping"),
              [&](net::HttpResponse response) { reply = response.body; });
  sim.run();
  EXPECT_EQ(seen_body, "ping");
  EXPECT_EQ(reply, "pong");
  EXPECT_GT(sim.now(), 0);  // network latency elapsed
  EXPECT_EQ(router.requests_sent(), 1u);
  EXPECT_EQ(router.responses_delivered(), 1u);
}

TEST(Router, UnboundAuthorityIs404) {
  sim::Simulation sim;
  net::Router router(sim);
  int status = 0;
  router.send(make_request("http://ghost:80/x"),
              [&](net::HttpResponse response) { status = response.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST(Router, UnbindStopsRouting) {
  sim::Simulation sim;
  net::Router router(sim);
  router.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> responder) {
    responder->respond(net::HttpResponse::make_ok());
  });
  EXPECT_TRUE(router.bound("svc:80"));
  router.unbind("svc:80");
  EXPECT_FALSE(router.bound("svc:80"));
  int status = 0;
  router.send(make_request("http://svc:80/x"),
              [&](net::HttpResponse response) { status = response.status; });
  sim.run();
  EXPECT_EQ(status, 404);
}

TEST(Router, DeferredResponse) {
  sim::Simulation sim;
  net::Router router(sim);
  router.bind("svc:80", [&sim](const net::HttpRequest&,
                               std::shared_ptr<net::Responder> responder) {
    // Answer 5 simulated seconds later — the activator pattern.
    sim.schedule_in(5 * sim::kSecond,
                    [responder] { responder->respond(net::HttpResponse::make_ok()); });
  });
  sim::SimTime replied_at = -1;
  router.send(make_request("http://svc:80/x"),
              [&](net::HttpResponse) { replied_at = sim.now(); });
  sim.run();
  EXPECT_GE(replied_at, 5 * sim::kSecond);
}

TEST(Router, DoubleRespondIsIgnored) {
  sim::Simulation sim;
  net::Router router(sim);
  router.bind("svc:80", [](const net::HttpRequest&, std::shared_ptr<net::Responder> responder) {
    responder->respond(net::HttpResponse::make_ok("first"));
    responder->respond(net::HttpResponse::make_ok("second"));
  });
  int replies = 0;
  std::string body;
  router.send(make_request("http://svc:80/x"), [&](net::HttpResponse response) {
    ++replies;
    body = response.body;
  });
  sim.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(body, "first");
}

TEST(Router, LatencyIsDeterministicPerSeed) {
  const auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim;
    net::Router router(sim, net::NetworkConfig{}, seed);
    router.bind("svc:80",
                [](const net::HttpRequest&, std::shared_ptr<net::Responder> responder) {
                  responder->respond(net::HttpResponse::make_ok());
                });
    sim::SimTime replied = -1;
    router.send(make_request("http://svc:80/x"), [&](net::HttpResponse) { replied = sim.now(); });
    sim.run();
    return replied;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

TEST(HttpResponse, StatusHelpers) {
  EXPECT_TRUE(net::HttpResponse::make_ok().ok());
  EXPECT_FALSE(net::HttpResponse::not_found().ok());
  EXPECT_FALSE(net::HttpResponse::bad_request("x").ok());
  EXPECT_FALSE(net::HttpResponse::service_unavailable("x").ok());
  EXPECT_EQ(net::HttpResponse::server_error("x").status, 500);
}

TEST(HttpResponse, MakeFactoryAndRetryAfter) {
  const net::HttpResponse plain = net::HttpResponse::make(204, "");
  EXPECT_EQ(plain.status, 204);
  EXPECT_TRUE(plain.ok());
  EXPECT_EQ(plain.retry_after_ms, 0);  // no hint by default

  const net::HttpResponse hinted = net::HttpResponse::make(503, "busy", 250);
  EXPECT_EQ(hinted.status, 503);
  EXPECT_EQ(hinted.body, "busy");
  EXPECT_EQ(hinted.retry_after_ms, 250);

  // The 503 helper forwards the hint; other helpers never set one.
  EXPECT_EQ(net::HttpResponse::service_unavailable("x", 1000).retry_after_ms, 1000);
  EXPECT_EQ(net::HttpResponse::service_unavailable("x").retry_after_ms, 0);
  EXPECT_EQ(net::HttpResponse::server_error("x").retry_after_ms, 0);
}

}  // namespace
}  // namespace wfs
