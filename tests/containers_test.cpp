// Tests for the Docker-like local-container runtime (the paper's baseline).
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "containers/container.h"
#include "containers/runtime.h"
#include "json/write.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "wfbench/task_params.h"

namespace wfs::containers {
namespace {

class ContainerTest : public testing::Test {
 protected:
  ContainerTest() : cluster_(cluster::Cluster::paper_testbed(sim_)), fs_(sim_), router_(sim_) {}

  static ContainerSpec small_spec() {
    ContainerSpec spec;
    spec.service.workers = 4;
    spec.start_delay = sim::kSecond;
    return spec;
  }

  net::HttpRequest request_for(const std::string& name, double work = 5.0) {
    wfbench::TaskParams params;
    params.name = name;
    params.percent_cpu = 1.0;
    params.cpu_work = work;
    net::HttpRequest request;
    request.url = net::parse_url("http://localhost:80/wfbench");
    request.body = json::write_compact(wfbench::to_json(params));
    return request;
  }

  sim::Simulation sim_;
  cluster::Cluster cluster_;
  storage::SharedFilesystem fs_;
  net::Router router_;
};

TEST_F(ContainerTest, BootDelayBeforeServing) {
  bool ready = false;
  LocalContainer container(sim_, cluster_.node(0), fs_, small_spec(), [&] { ready = true; });
  EXPECT_FALSE(container.running());
  sim_.run_until(sim::kSecond + 1);
  EXPECT_TRUE(ready);
  EXPECT_TRUE(container.running());
  container.stop();
  EXPECT_FALSE(container.running());
}

TEST_F(ContainerTest, CpuQuotaThrottles) {
  ContainerSpec spec = small_spec();
  spec.cpus = 1.0;  // docker run --cpus=1
  LocalContainer container(sim_, cluster_.node(0), fs_, spec, nullptr);
  sim_.run_until(2 * sim::kSecond);
  int done = 0;
  wfbench::TaskParams params;
  params.percent_cpu = 1.0;
  params.cpu_work = 10.0;
  for (int i = 0; i < 4; ++i) {
    params.name = "t" + std::to_string(i);
    container.service()->handle(params, [&](net::HttpResponse) { ++done; });
  }
  const double end = sim::to_seconds(sim_.run());
  EXPECT_EQ(done, 4);
  // 40 units through a 1-core quota: ~40 s (plus the 2 s boot offset).
  EXPECT_NEAR(end, 42.0, 1.0);
}

TEST_F(ContainerTest, NoCrContainerIsUncapped) {
  ContainerSpec spec = small_spec();
  spec.cpus = 0.0;  // NoCR
  LocalContainer container(sim_, cluster_.node(0), fs_, spec, nullptr);
  sim_.run_until(2 * sim::kSecond);
  int done = 0;
  wfbench::TaskParams params;
  params.percent_cpu = 1.0;
  params.cpu_work = 10.0;
  for (int i = 0; i < 4; ++i) {
    params.name = "t" + std::to_string(i);
    container.service()->handle(params, [&](net::HttpResponse) { ++done; });
  }
  const double end = sim::to_seconds(sim_.run());
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(end, 12.0, 1.0);  // full parallelism
}

TEST_F(ContainerTest, StopBeforeBootIsClean) {
  LocalContainer container(sim_, cluster_.node(0), fs_, small_spec(), nullptr);
  container.stop();
  sim_.run();
  EXPECT_FALSE(container.running());
  EXPECT_EQ(cluster_.node(0).resident_memory(), 0u);
}

TEST_F(ContainerTest, MemoryLimitFlowsIntoService) {
  ContainerSpec spec = small_spec();
  spec.memory_limit = 1ULL << 30;
  LocalContainer container(sim_, cluster_.node(0), fs_, spec, nullptr);
  sim_.run_until(2 * sim::kSecond);
  wfbench::TaskParams params;
  params.name = "big";
  params.cpu_work = 1.0;
  params.memory_bytes = 4ULL << 30;
  int status = 0;
  container.service()->handle(params, [&](net::HttpResponse r) { status = r.status; });
  sim_.run();
  EXPECT_EQ(status, 500);  // OOMKill analogue
  EXPECT_EQ(container.service()->stats().oom_failures, 1u);
}

// ---- runtime -----------------------------------------------------------------

TEST_F(ContainerTest, RuntimeStartsOneContainerPerNode) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  EXPECT_EQ(runtime.container_count(), 2u);
  EXPECT_NE(runtime.container(0).node().name(), runtime.container(1).node().name());
  runtime.shutdown();
  EXPECT_EQ(cluster_.resident_memory(), 0u);
}

TEST_F(ContainerTest, RuntimeServesOverHttp) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  int status = 0;
  router_.send(request_for("t1"), [&](net::HttpResponse r) { status = r.status; });
  sim_.run_until(sim::kMinute);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(runtime.stats().completed, 1u);
  runtime.shutdown();
}

TEST_F(ContainerTest, RuntimeBalancesAcrossContainers) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  config.container.service.workers = 2;
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  sim_.run_until(2 * sim::kSecond);
  for (int i = 0; i < 4; ++i) {
    router_.send(request_for("t" + std::to_string(i), 1000.0), [](net::HttpResponse) {});
  }
  sim_.run_until(3 * sim::kSecond);
  // Least-loaded dispatch: 2 requests per container, none queued.
  EXPECT_EQ(runtime.container(0).inflight(), 2u);
  EXPECT_EQ(runtime.container(1).inflight(), 2u);
  EXPECT_EQ(runtime.backlog(), 0u);
  runtime.shutdown();
}

TEST_F(ContainerTest, RuntimeQueuesWhenAllWorkersBusy) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  config.container.service.workers = 1;
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  sim_.run_until(2 * sim::kSecond);
  int completed = 0;
  for (int i = 0; i < 6; ++i) {
    router_.send(request_for("t" + std::to_string(i), 10.0),
                 [&](net::HttpResponse r) { completed += r.ok() ? 1 : 0; });
  }
  sim_.run_until(3 * sim::kSecond);
  EXPECT_GT(runtime.backlog(), 0u);  // 6 requests, 2 workers total
  sim_.run_until(5 * sim::kMinute);
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(runtime.stats().max_backlog, 4u);
  runtime.shutdown();
}

TEST_F(ContainerTest, RuntimeShutdownFailsBacklog) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  config.container.service.workers = 1;
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  sim_.run_until(2 * sim::kSecond);
  std::vector<int> statuses;
  for (int i = 0; i < 4; ++i) {
    router_.send(request_for("t" + std::to_string(i), 1000.0),
                 [&](net::HttpResponse r) { statuses.push_back(r.status); });
  }
  sim_.run_until(3 * sim::kSecond);
  runtime.shutdown();
  sim_.run();
  ASSERT_EQ(statuses.size(), 4u);
  for (const int status : statuses) EXPECT_EQ(status, 503);
}

TEST_F(ContainerTest, RuntimeBadRequestIs400) {
  LocalRuntimeConfig config;
  config.container = small_spec();
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  net::HttpRequest request;
  request.url = net::parse_url("http://localhost:80/wfbench");
  request.body = "{broken";
  int status = 0;
  router_.send(std::move(request), [&](net::HttpResponse r) { status = r.status; });
  sim_.run_until(sim::kSecond);
  EXPECT_EQ(status, 400);
  EXPECT_EQ(runtime.stats().bad_requests, 1u);
  runtime.shutdown();
}

TEST_F(ContainerTest, ResidentFootprintHeldWholeLifetime) {
  // The baseline's defining property: memory stays resident while idle.
  LocalRuntimeConfig config;
  config.container = small_spec();
  config.container.service.workers = 96;
  LocalContainerRuntime runtime(sim_, cluster_, fs_, router_, config);
  runtime.start();
  sim_.run_until(2 * sim::kSecond);
  const std::uint64_t resident = cluster_.resident_memory();
  EXPECT_GT(resident, 9ULL << 30);  // 2 x (150 MiB + 96 x 50 MiB)
  sim_.run_until(10 * sim::kMinute);  // ten idle minutes later...
  EXPECT_EQ(cluster_.resident_memory(), resident);  // ...nothing released
  runtime.shutdown();
  EXPECT_EQ(cluster_.resident_memory(), 0u);
}

}  // namespace
}  // namespace wfs::containers
