// Unit + property tests for the JSON substrate.
#include <gtest/gtest.h>

#include "json/parse.h"
#include "json/value.h"
#include "json/write.h"
#include "support/rng.h"

namespace wfs::json {
namespace {

// ---- Value -----------------------------------------------------------------

TEST(JsonValue, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(nullptr).is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(7).is_int());
  EXPECT_TRUE(Value(7.5).is_double());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value(Array{}).is_array());
  EXPECT_TRUE(Value(Object{}).is_object());
}

TEST(JsonValue, NumericAccessors) {
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(42).as_double(), 42.0);
  EXPECT_DOUBLE_EQ(Value(2.5).as_double(), 2.5);
  EXPECT_THROW(Value("x").as_double(), std::bad_variant_access);
}

TEST(JsonValue, LenientGetters) {
  EXPECT_EQ(Value(42).int_or(-1), 42);
  EXPECT_EQ(Value(2.9).int_or(-1), 2);     // truncation, like the paper's sizes
  EXPECT_EQ(Value("x").int_or(-1), -1);
  EXPECT_DOUBLE_EQ(Value("x").double_or(1.5), 1.5);
  EXPECT_EQ(Value(5).string_or("d"), "d");
  EXPECT_EQ(Value("v").string_or("d"), "v");
  EXPECT_TRUE(Value("x").bool_or(true));
}

TEST(JsonObject, InsertionOrderPreserved) {
  Object obj;
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  std::vector<std::string> keys;
  for (const auto& [k, v] : obj) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<std::string>{"zebra", "alpha", "mid"}));
}

TEST(JsonObject, OverwriteKeepsPosition) {
  Object obj;
  obj.set("a", 1);
  obj.set("b", 2);
  obj.set("a", 99);
  EXPECT_EQ(obj.size(), 2u);
  EXPECT_EQ(obj.begin()->first, "a");
  EXPECT_EQ(obj.at("a").as_int(), 99);
}

TEST(JsonObject, FindAtErase) {
  Object obj;
  obj.set("k", "v");
  EXPECT_NE(obj.find("k"), nullptr);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_THROW(obj.at("missing"), std::out_of_range);
  EXPECT_TRUE(obj.erase("k"));
  EXPECT_FALSE(obj.erase("k"));
  EXPECT_TRUE(obj.empty());
}

TEST(JsonValue, EqualityMixedNumerics) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_EQ(Value(3.5), Value(3.5));
  EXPECT_FALSE(Value(3) == Value(4));
  EXPECT_FALSE(Value("3") == Value(3));
}

TEST(JsonValue, ObjectEqualityIgnoresOrder) {
  Object a;
  a.set("x", 1);
  a.set("y", 2);
  Object b;
  b.set("y", 2);
  b.set("x", 1);
  EXPECT_EQ(Value(std::move(a)), Value(std::move(b)));
}

// ---- parse -----------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-1.5E-2").as_double(), -0.015);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntegerVsDoubleDistinction) {
  EXPECT_TRUE(parse("40161").is_int());  // file sizes must stay exact
  EXPECT_TRUE(parse("40161.0").is_double());
  EXPECT_TRUE(parse("1e2").is_double());
}

TEST(JsonParse, HugeIntegerDegradesToDouble) {
  const Value v = parse("123456789012345678901234567890");
  EXPECT_TRUE(v.is_double());
}

TEST(JsonParse, NestedStructure) {
  const Value v = parse(R"({"a": [1, {"b": "c"}], "d": {"e": null}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_array()[1].find("b")->as_string(), "c");
  EXPECT_TRUE(v.find("d")->find("e")->is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse(R"("a\\b")").as_string(), "a\\b");
  EXPECT_EQ(parse(R"("a\nb\tc")").as_string(), "a\nb\tc");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
  EXPECT_EQ(parse(R"("é")").as_string(), "\xC3\xA9");           // é
  EXPECT_EQ(parse(R"("中")").as_string(), "\xE4\xB8\xAD");       // 中
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xF0\x9F\x98\x80");  // 😀
}

TEST(JsonParse, WhitespaceTolerant) {
  EXPECT_EQ(parse(" \n\t{ \"a\" : 1 } \r\n").find("a")->as_int(), 1);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("[]").as_array().empty());
  EXPECT_TRUE(parse("{}").as_object().empty());
}

struct BadInput {
  const char* text;
  const char* why;
};

class JsonParseRejects : public testing::TestWithParam<BadInput> {};

TEST_P(JsonParseRejects, Throws) {
  EXPECT_THROW(parse(GetParam().text), ParseError) << GetParam().why;
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, JsonParseRejects,
    testing::Values(
        BadInput{"", "empty input"},
        BadInput{"{", "unterminated object"},
        BadInput{"[1,", "unterminated array"},
        BadInput{"[1,]", "trailing comma"},
        BadInput{"{\"a\":}", "missing value"},
        BadInput{"{a:1}", "unquoted key"},
        BadInput{"\"abc", "unterminated string"},
        BadInput{"01", "leading zero"},
        BadInput{"1.", "missing fraction digits"},
        BadInput{"1e", "missing exponent digits"},
        BadInput{"+1", "leading plus"},
        BadInput{"nul", "bad literal"},
        BadInput{"tru", "bad literal true"},
        BadInput{"{} {}", "trailing content"},
        BadInput{"\"\\x\"", "bad escape"},
        BadInput{"\"\\u12\"", "short unicode escape"},
        BadInput{"\"\\ud800\"", "unpaired high surrogate"},
        BadInput{"\"\\udc00\"", "unpaired low surrogate"},
        BadInput{"\"\x01\"", "raw control char"},
        BadInput{"nan", "nan is not JSON"}));

TEST(JsonParse, ReportsLineAndColumn) {
  try {
    parse("{\n  \"a\": bad\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_GT(e.column(), 1u);
  }
}

TEST(JsonParse, DepthLimit) {
  std::string deep;
  for (int i = 0; i < 300; ++i) deep += "[";
  EXPECT_THROW(parse(deep, 256), ParseError);
  // A shallow doc passes with the same limit.
  EXPECT_NO_THROW(parse("[[[[1]]]]", 256));
}

TEST(JsonParse, TryParse) {
  Value out;
  std::string error;
  EXPECT_TRUE(try_parse("{\"a\":1}", out, error));
  EXPECT_FALSE(try_parse("{bad", out, error));
  EXPECT_FALSE(error.empty());
}

// ---- write -----------------------------------------------------------------

TEST(JsonWrite, CompactLayout) {
  Object obj;
  obj.set("a", 1);
  Array arr;
  arr.emplace_back(2);
  arr.emplace_back("x");
  obj.set("b", std::move(arr));
  EXPECT_EQ(write_compact(Value(std::move(obj))), R"({"a":1,"b":[2,"x"]})");
}

TEST(JsonWrite, PrettyLayout) {
  Object obj;
  obj.set("a", 1);
  const std::string text = write_pretty(Value(std::move(obj)));
  EXPECT_EQ(text, "{\n  \"a\": 1\n}\n");
}

TEST(JsonWrite, EscapesControlCharacters) {
  EXPECT_EQ(write_compact(Value("a\nb")), R"("a\nb")");
  EXPECT_EQ(write_compact(Value(std::string(1, '\x01'))), "\"\\u0001\"");
  EXPECT_EQ(write_compact(Value("quote\"back\\slash")), R"("quote\"back\\slash")");
}

TEST(JsonWrite, NonFiniteBecomesNull) {
  EXPECT_EQ(write_compact(Value(std::numeric_limits<double>::quiet_NaN())), "null");
  EXPECT_EQ(write_compact(Value(std::numeric_limits<double>::infinity())), "null");
}

TEST(JsonWrite, EmptyContainers) {
  EXPECT_EQ(write_compact(Value(Array{})), "[]");
  EXPECT_EQ(write_compact(Value(Object{})), "{}");
}

// ---- round-trip property ---------------------------------------------------

Value random_value(support::Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth > 3 ? 4 : 6));
  switch (kind) {
    case 0: return Value(nullptr);
    case 1: return Value(rng.chance(0.5));
    case 2: return Value(rng.uniform_int(-1'000'000'000, 1'000'000'000));
    case 3: return Value(rng.uniform_real(-1e6, 1e6));
    case 4: {
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 12));
      for (int i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
      }
      return Value(std::move(s));
    }
    case 5: {
      Array arr;
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) arr.push_back(random_value(rng, depth + 1));
      return Value(std::move(arr));
    }
    default: {
      Object obj;
      const int len = static_cast<int>(rng.uniform_int(0, 4));
      for (int i = 0; i < len; ++i) {
        obj.set("k" + std::to_string(i), random_value(rng, depth + 1));
      }
      return Value(std::move(obj));
    }
  }
}

class JsonRoundTrip : public testing::TestWithParam<int> {};

TEST_P(JsonRoundTrip, CompactAndPrettyPreserveValue) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const Value original = random_value(rng, 0);
  EXPECT_EQ(parse(write_compact(original)), original);
  EXPECT_EQ(parse(write_pretty(original)), original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTrip, testing::Range(0, 25));

TEST(JsonRoundTrip, PaperExcerptShape) {
  // The exact structure of the paper's §III-A translated-task excerpt.
  const char* text = R"({
    "blastall_00000002": {
      "name": "blastall_00000002",
      "type": "compute",
      "command": {
        "program": "wfbench.py",
        "arguments": [{
          "name": "blastall_00000002",
          "percent-cpu": 0.9,
          "cpu-work": 100,
          "out": {"blastall_00000002_output.txt": 40161},
          "inputs": ["split_fasta_00000001_output.txt"]
        }],
        "api_url": "http://wfbench.knative-functions.00.000.000.000.sslip.io/wfbench"
      },
      "parents": ["split_fasta_00000001"],
      "children": ["cat_blast_00000042", "cat_00000043"],
      "runtimeInSeconds": 0,
      "cores": 1,
      "id": "00000002",
      "category": "blastall"
    }
  })";
  const Value doc = parse(text);
  const Value& task = doc.as_object().at("blastall_00000002");
  EXPECT_DOUBLE_EQ(
      task.find("command")->find("arguments")->as_array()[0].find("percent-cpu")->as_double(),
      0.9);
  EXPECT_EQ(parse(write_compact(doc)), doc);
}

}  // namespace
}  // namespace wfs::json
