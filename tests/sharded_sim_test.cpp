// Tests for the conservative-lookahead sharded engine (sim/sharded.h) and
// the determinism contract behind it: experiment results are byte-identical
// whatever sim_shards is set to, for any worker count.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.h"
#include "core/fleet.h"
#include "metrics/registry.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "wfcommons/recipes/recipe.h"

namespace wfs::sim {
namespace {

// ---- engine semantics --------------------------------------------------------

TEST(ShardedSim, SingleShardMatchesSimulationOrder) {
  // The same event program, one-queue engine vs one-shard engine: identical
  // execution order — the sharded engine degenerates to the classic loop.
  const auto program = [](Context& sim, std::vector<int>& order) {
    sim.schedule_in(20, [&order] { order.push_back(3); });
    sim.schedule_in(10, [&sim, &order] {
      order.push_back(1);
      sim.schedule_in(0, [&order] { order.push_back(2); });
    });
    sim.schedule_in(20, [&order] { order.push_back(4); });
  };

  Simulation plain;
  std::vector<int> plain_order;
  program(plain, plain_order);
  plain.run();

  ShardedSimulation sharded(1);
  std::vector<int> sharded_order;
  program(sharded.shard(0), sharded_order);
  sharded.run();

  EXPECT_EQ(sharded_order, plain_order);
  EXPECT_EQ(sharded.now(), plain.now());
  EXPECT_EQ(sharded.executed_events(), 4u);
}

TEST(ShardedSim, StopPredicateExecutesDeadlineCrossingEvent) {
  // The classic driver `while (!done && now < deadline) step(1)` executes
  // the event that crosses the deadline (the predicate sees the previous
  // event's time). The sharded stop predicate must behave identically.
  ShardedSimulation engine(1);
  Context& sim = engine.shard(0);
  std::vector<SimTime> ran;
  sim.schedule_in(10, [&] { ran.push_back(10); });
  sim.schedule_in(60, [&] { ran.push_back(60); });
  sim.schedule_in(70, [&] { ran.push_back(70); });
  engine.run([&engine] { return engine.now() >= 50; });
  EXPECT_EQ(ran, (std::vector<SimTime>{10, 60}));
  EXPECT_EQ(engine.now(), 60);
  EXPECT_FALSE(engine.idle());  // the 70 event is still pending
}

TEST(ShardedSim, RunUntilAdvancesClockWhenIdle) {
  ShardedSimulation engine(2);
  engine.shard(0).schedule_in(5, [] {});
  engine.run_until(100);
  EXPECT_EQ(engine.now(), 100);
  EXPECT_TRUE(engine.idle());
}

TEST(ShardedSim, RunUntilLeavesLaterEventsPending) {
  ShardedSimulation engine(2);
  int ran = 0;
  engine.shard(0).schedule_in(5, [&ran] { ++ran; });
  engine.shard(1).schedule_in(200, [&ran] { ++ran; });
  engine.run_until(100);
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(engine.idle());
  engine.run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.now(), 200);
}

TEST(ShardedSim, CrossShardPostBelowHorizonThrows) {
  ShardedConfig config;
  config.lookahead = 50;
  config.workers = 1;
  ShardedSimulation engine(2, config);
  ShardedSimulation::Shard& shard0 = engine.shard(0);
  shard0.schedule_in(0, [&shard0] {
    // Window horizon is 0 + 50; a delivery at t=10 would land inside it.
    shard0.post(1, 10, [] {});
  });
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(ShardedSim, CrossShardPostAtHorizonIsDelivered) {
  ShardedConfig config;
  config.lookahead = 50;
  config.workers = 1;
  ShardedSimulation engine(2, config);
  ShardedSimulation::Shard& shard0 = engine.shard(0);
  bool delivered = false;
  shard0.schedule_in(0, [&shard0, &delivered] {
    shard0.post(1, 50, [&delivered] { delivered = true; });
  });
  engine.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(engine.shard(1).now(), 50);
  EXPECT_EQ(engine.stats(0).posts_sent, 1u);
}

// Ping-pong across two shards: the per-shard execution sequences must be
// identical whatever the worker count — the determinism half of the
// conservative-synchronization argument.
TEST(ShardedSim, PingPongIsDeterministicForAnyWorkerCount) {
  constexpr SimTime kHop = 25;
  constexpr int kHops = 40;

  const auto run_with_workers = [&](std::size_t workers) {
    ShardedConfig config;
    config.lookahead = kHop;
    config.workers = workers;
    ShardedSimulation engine(2, config);
    // Per-shard logs: each is appended to only by its own shard's events,
    // so parallel windows never race on them.
    std::vector<std::vector<SimTime>> log(2);
    std::function<void(std::size_t, int)> hop = [&](std::size_t me, int n) {
      log[me].push_back(engine.shard(me).now());
      if (n >= kHops) return;
      const std::size_t other = 1 - me;
      engine.shard(me).post(other, engine.shard(me).now() + kHop,
                            [&hop, other, n] { hop(other, n + 1); });
    };
    engine.shard(0).schedule_in(0, [&hop] { hop(0, 0); });
    // Keep both shards occupied so windows genuinely overlap.
    engine.shard(1).schedule_in(0, [&log, &engine] {
      log[1].push_back(engine.shard(1).now());
    });
    engine.run();
    return std::make_pair(std::move(log), engine.executed_events());
  };

  const auto [serial_log, serial_events] = run_with_workers(1);
  const auto [parallel_log, parallel_events] = run_with_workers(2);
  EXPECT_EQ(serial_log, parallel_log);
  EXPECT_EQ(serial_events, parallel_events);
  // One kick-off event per shard plus one posted event per hop.
  EXPECT_EQ(serial_events, static_cast<std::uint64_t>(kHops) + 2);
}

TEST(ShardedSim, LookaheadStallsAreCounted) {
  ShardedConfig config;
  config.lookahead = 10;
  ShardedSimulation engine(2, config);
  engine.shard(0).schedule_in(0, [] {});
  engine.shard(1).schedule_in(1000, [] {});
  engine.run();
  // Window [0,10) runs shard 0 while shard 1 (next event at 1000) stalls.
  EXPECT_GE(engine.sync_stalls(), 1u);
  EXPECT_GE(engine.stats(1).stall_windows, 1u);
  EXPECT_EQ(engine.windows(), 2u);
}

TEST(ShardedSim, EventLimitGuardsStorms) {
  ShardedConfig config;
  config.event_limit = 100;
  ShardedSimulation engine(1, config);
  ShardedSimulation::Shard& shard = engine.shard(0);
  std::function<void()> storm = [&] { shard.schedule_in(1, storm); };
  shard.schedule_in(0, storm);
  EXPECT_THROW(engine.run(), std::runtime_error);
}

TEST(ShardedSim, SetLookaheadValidates) {
  ShardedSimulation engine(2);
  EXPECT_THROW(engine.set_lookahead(0), std::invalid_argument);
  engine.set_lookahead(123);
  EXPECT_EQ(engine.lookahead(), 123);
}

TEST(ShardedSim, RegistersWindowMetrics) {
  metrics::MetricsRegistry registry;
  ShardedConfig config;
  config.lookahead = 10;
  ShardedSimulation engine(2, config);
  engine.set_metrics(&registry);
  engine.shard(0).schedule_in(0, [] {});
  engine.shard(1).schedule_in(5, [] {});
  engine.run();
  const metrics::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_NE(snapshot.find("sim_windows_total"), nullptr);
  ASSERT_NE(snapshot.find("sim_window_occupancy"), nullptr);
  ASSERT_NE(snapshot.find("sim_shard_events_total"), nullptr);
  EXPECT_GE(engine.windows(), 1u);
}

}  // namespace
}  // namespace wfs::sim

// ---- determinism suite -------------------------------------------------------
//
// The tentpole's central promise: campaign CSVs are byte-identical at every
// shard count, across all seven workflow families and both scheduling
// modes. A seed-vs-sharded mismatch anywhere in the event pipeline (queue
// ordering, deadline handling, RNG consumption) shows up here as a diff.

namespace wfs::core {
namespace {

std::string campaign_csv(std::size_t sim_shards) {
  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM};
  spec.recipes = wfcommons::recipe_names();  // all seven families
  spec.sizes = {20};
  spec.schedulings = {SchedulingMode::kPhaseBarrier, SchedulingMode::kDependencyDriven};
  spec.jobs = 1;
  spec.collect_metrics = false;  // CSV identity is about the run, not meters
  spec.sim_shards = sim_shards;
  Campaign campaign(spec);
  campaign.run();
  return campaign.summary_csv();
}

TEST(SimDeterminism, CampaignCsvByteIdenticalAcrossShardCounts) {
  const std::string sequential = campaign_csv(1);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(campaign_csv(2), sequential) << "2 shards diverged from the seed engine";
  EXPECT_EQ(campaign_csv(4), sequential) << "4 shards diverged from the seed engine";
}

TEST(SimDeterminism, FleetResultsIdenticalAcrossShardCounts) {
  const auto run_with_shards = [](std::size_t sim_shards) {
    FleetConfig config;
    config.items = {{"blast", 30, 1}, {"cycles", 30, 2}};
    config.concurrent = true;
    config.sim_shards = sim_shards;
    return run_fleet(config);
  };
  const FleetResult seed = run_with_shards(1);
  const FleetResult sharded = run_with_shards(4);
  ASSERT_TRUE(seed.completed);
  ASSERT_TRUE(sharded.completed);
  EXPECT_EQ(sharded.wall_seconds, seed.wall_seconds);
  EXPECT_EQ(sharded.energy_joules, seed.energy_joules);
  EXPECT_EQ(sharded.cold_starts, seed.cold_starts);
  ASSERT_EQ(sharded.runs.size(), seed.runs.size());
  for (std::size_t i = 0; i < seed.runs.size(); ++i) {
    EXPECT_EQ(sharded.runs[i].makespan_seconds, seed.runs[i].makespan_seconds) << i;
    EXPECT_EQ(sharded.runs[i].tasks_failed, seed.runs[i].tasks_failed) << i;
  }
}

}  // namespace
}  // namespace wfs::core
