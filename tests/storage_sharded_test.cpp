// Sharded, replicated data plane: consistent-hash placement, write fan-out,
// read failover, node failure + background repair, and the end-to-end
// experiment / campaign / determinism wiring (DESIGN.md, "Distributed data
// plane").
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "core/results_io.h"
#include "metrics/registry.h"
#include "sim/simulation.h"
#include "storage/cached_store.h"
#include "storage/sharded_store.h"

namespace wfs {
namespace {

storage::ShardedStoreConfig fast_config(std::size_t nodes, std::size_t rf) {
  storage::ShardedStoreConfig config;
  config.num_nodes = nodes;
  config.replication_factor = rf;
  config.op_latency = 5 * sim::kMillisecond;
  config.repair_delay = 10 * sim::kMillisecond;
  return config;
}

// ---- consistent hashing -----------------------------------------------------

TEST(ShardedStoreRing, PlacementIsSpreadAndStableAcrossInstances) {
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  storage::ShardedObjectStore a(sim_a, fast_config(4, 2));
  storage::ShardedObjectStore b(sim_b, fast_config(4, 2));

  std::vector<std::size_t> per_node(4, 0);
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    // Placement is a pure function of the name and node set: two
    // independent instances agree exactly (the property that makes
    // committed baselines platform-stable).
    EXPECT_EQ(a.primary_of(name), b.primary_of(name));
    EXPECT_EQ(a.replicas_of(name), b.replicas_of(name));
    const std::vector<std::size_t> replicas = a.replicas_of(name);
    ASSERT_EQ(replicas.size(), 2u);
    EXPECT_NE(replicas[0], replicas[1]);  // distinct nodes
    ++per_node[replicas[0]];
  }
  // Virtual nodes smooth the arcs: every node owns a non-trivial share of
  // the primary role (a perfectly even split would be 250 each).
  for (std::size_t node = 0; node < 4; ++node) {
    EXPECT_GT(per_node[node], 100u) << "node " << node << " owns too little";
  }
}

TEST(ShardedStoreRing, AddingANodeRemapsOnlyItsArc) {
  // The consistent-hashing contract: growing N nodes to N+1 moves roughly
  // 1/(N+1) of the keyspace — not the ~N/(N+1) a mod-N scheme would.
  sim::Simulation sim_a;
  sim::Simulation sim_b;
  storage::ShardedObjectStore four(sim_a, fast_config(4, 1));
  storage::ShardedObjectStore five(sim_b, fast_config(5, 1));

  constexpr int kKeys = 2000;
  int remapped = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    if (four.primary_of(name) != five.primary_of(name)) ++remapped;
  }
  const double fraction = static_cast<double>(remapped) / kKeys;
  EXPECT_GT(fraction, 0.10);  // the new node did take ownership of an arc
  EXPECT_LT(fraction, 0.35);  // ...but only its arc, not the whole keyspace
  // Every remapped key moved TO the new node (nothing shuffled between
  // survivors).
  for (int i = 0; i < kKeys; ++i) {
    const std::string name = "obj-" + std::to_string(i);
    if (four.primary_of(name) != five.primary_of(name)) {
      EXPECT_EQ(five.primary_of(name), 4u) << name;
    }
  }
}

// ---- replication ------------------------------------------------------------

TEST(ShardedStoreReplication, WriteFansOutToEveryReplicaAndAcksAtTheSlowest) {
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 3));
  bool done = false;
  store.write("obj", 1'000'000, [&] {
    done = true;
    EXPECT_TRUE(store.exists("obj"));  // visible exactly at the ack
  });
  EXPECT_FALSE(store.exists("obj"));  // invisible while legs are in flight
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(store.replicas_of("obj").size(), 3u);
  EXPECT_EQ(store.under_replicated(), 0u);
  // Logical traffic counts the object once, not once per replica.
  EXPECT_EQ(store.bytes_written(), 1'000'000u);
}

TEST(ShardedStoreReplication, ReadsSucceedWithOneNodeDownAtRf2) {
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 2));
  for (int i = 0; i < 50; ++i) {
    store.stage("obj-" + std::to_string(i), 10'000);
  }
  ASSERT_TRUE(store.kill_node(0));
  // Immediately after the kill — before repair has run — every object must
  // still be readable from its surviving replica.
  int ok_reads = 0;
  for (int i = 0; i < 50; ++i) {
    store.read("obj-" + std::to_string(i), [&](bool ok) { ok_reads += ok ? 1 : 0; });
  }
  sim.run();
  EXPECT_EQ(ok_reads, 50);
  EXPECT_EQ(store.lost_objects(), 0u);
}

TEST(ShardedStoreReplication, FailoverReadPaysTheLinkHop) {
  sim::Simulation sim;
  storage::ShardedStoreConfig config = fast_config(4, 2);
  config.per_object_read_bps = 1e12;  // make latency terms dominate
  config.repair_delay = 3600 * sim::kSecond;  // keep repair out of this test
  storage::ShardedObjectStore store(sim, config);
  store.stage("obj", 1000);
  const std::vector<std::size_t> replicas = store.replicas_of("obj");
  ASSERT_EQ(replicas.size(), 2u);

  sim::SimTime primary_read = 0;
  store.read("obj", [&](bool ok) {
    ASSERT_TRUE(ok);
    primary_read = sim.now();
  });
  sim.run();
  // Ring-first replica: RPC latency plus the (ceil'd, ~1 us) transfer tick.
  EXPECT_GE(primary_read, config.op_latency);
  EXPECT_LT(primary_read, config.op_latency + config.link_latency);

  ASSERT_TRUE(store.kill_node(replicas[0]));
  const sim::SimTime failover_started = sim.now();
  sim::SimTime failover_read = 0;
  store.read("obj", [&](bool ok) {
    ASSERT_TRUE(ok);
    failover_read = sim.now() - failover_started;
  });
  sim.run();
  // One position further down the preference walk = exactly one link hop
  // on top of the primary-path read.
  EXPECT_EQ(failover_read - primary_read, config.link_latency);
}

// ---- failure + repair -------------------------------------------------------

TEST(ShardedStoreRepair, ReReplicatesEverythingAfterAKill) {
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 2));
  metrics::MetricsRegistry registry;
  store.set_metrics(&registry);
  constexpr int kObjects = 40;
  for (int i = 0; i < kObjects; ++i) {
    store.stage("obj-" + std::to_string(i), 100'000);
  }
  ASSERT_EQ(store.under_replicated(), 0u);

  ASSERT_TRUE(store.kill_node(1));
  const std::size_t degraded = store.under_replicated();
  EXPECT_GT(degraded, 0u);  // node 1 held replicas of roughly half the set

  sim.run();  // the repair loop drains and disarms; run() terminates
  EXPECT_EQ(store.under_replicated(), 0u);  // invariant: repair settles fully
  EXPECT_EQ(store.repaired_objects(), degraded);
  EXPECT_EQ(store.repaired_bytes(), degraded * 100'000u);
  EXPECT_EQ(store.lost_objects(), 0u);
  // Every object's copies all sit on live nodes.
  for (int i = 0; i < kObjects; ++i) {
    for (const std::size_t node : store.replicas_of("obj-" + std::to_string(i))) {
      EXPECT_TRUE(store.node_alive(node));
    }
  }
  const metrics::MetricsSnapshot snapshot = registry.snapshot();
  const metrics::MetricPoint* repairs =
      snapshot.find("storage_repair_objects_total", {});
  ASSERT_NE(repairs, nullptr);
  EXPECT_DOUBLE_EQ(repairs->value, static_cast<double>(degraded));
}

TEST(ShardedStoreRepair, SurvivesASecondKillAndLosesNothingAtRf2) {
  // Kill one node, let repair settle, kill another: RF 2 tolerates any
  // sequence of single failures with a repair window between them.
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 2));
  for (int i = 0; i < 30; ++i) store.stage("obj-" + std::to_string(i), 50'000);

  ASSERT_TRUE(store.kill_node(0));
  sim.run();  // settle
  ASSERT_EQ(store.under_replicated(), 0u);
  ASSERT_TRUE(store.kill_node(2));
  sim.run();  // settle again
  EXPECT_EQ(store.under_replicated(), 0u);
  EXPECT_EQ(store.lost_objects(), 0u);
  EXPECT_EQ(store.live_nodes(), 2u);
  int ok_reads = 0;
  for (int i = 0; i < 30; ++i) {
    store.read("obj-" + std::to_string(i), [&](bool ok) { ok_reads += ok ? 1 : 0; });
  }
  sim.run();
  EXPECT_EQ(ok_reads, 30);
}

TEST(ShardedStoreRepair, Rf1LosesTheKilledNodesObjects) {
  // The contrast case the durability ablation shows: without replication a
  // storage-node kill is data loss, honestly reported.
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 1));
  for (int i = 0; i < 40; ++i) store.stage("obj-" + std::to_string(i), 1000);
  const std::size_t on_node0 = store.node_object_count(0);
  ASSERT_GT(on_node0, 0u);
  ASSERT_TRUE(store.kill_node(0));
  sim.run();
  EXPECT_EQ(store.lost_objects(), on_node0);
  EXPECT_EQ(store.object_count(), 40u - on_node0);
}

TEST(ShardedStoreRepair, RemoveDuringRepairTransferDoesNotResurrect) {
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 2));
  store.stage("obj", 500'000'000);  // big enough that the copy takes a while
  ASSERT_TRUE(store.kill_node(store.replicas_of("obj").front()));
  ASSERT_EQ(store.under_replicated(), 1u);
  // Let the repair sweep start its transfer, then remove the object while
  // the copy is on the wire.
  sim.run_until(12 * sim::kMillisecond);  // past repair_delay = 10 ms
  (void)store.remove("obj");
  sim.run();
  EXPECT_FALSE(store.exists("obj"));
  EXPECT_EQ(store.under_replicated(), 0u);
  EXPECT_EQ(store.repaired_objects(), 0u);  // the stale copy did not count
}

TEST(ShardedStoreRepair, ClearRevivesNodesAndCancelsPendingRepairs) {
  sim::Simulation sim;
  storage::ShardedObjectStore store(sim, fast_config(4, 2));
  for (int i = 0; i < 10; ++i) store.stage("obj-" + std::to_string(i), 1000);
  ASSERT_TRUE(store.kill_node(0));
  store.clear();  // mid repair-delay
  sim.run();
  EXPECT_EQ(store.live_nodes(), 4u);
  EXPECT_EQ(store.object_count(), 0u);
  EXPECT_EQ(store.repaired_objects(), 0u);
  EXPECT_EQ(store.node_kills(), 0u);
  EXPECT_EQ(store.inflight_ops(), 0u);
}

// ---- lookahead bound --------------------------------------------------------

TEST(ShardedStoreContract, MinOpLatencyCoversTheLinkPath) {
  sim::Simulation sim;
  storage::ShardedStoreConfig config = fast_config(4, 2);
  config.op_latency = 5 * sim::kMillisecond;
  config.link_latency = 500;
  storage::ShardedObjectStore store(sim, config);
  // Repair legs and failover hops ride the link, so the bound must be the
  // cheaper of the two paths — not just the client RPC.
  EXPECT_EQ(store.min_op_latency(), 500);
}

// ---- experiment / campaign wiring -------------------------------------------

TEST(ExperimentSharded, ShardedStoreCarriesAWorkflowEndToEnd) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 40;
  config.storage_nodes = 4;
  config.replication_factor = 2;
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_GT(result.storage_bytes_read, 0u);
  EXPECT_GT(result.storage_bytes_written, 0u);
  EXPECT_EQ(result.storage_node_kills, 0u);
  EXPECT_EQ(result.storage_under_replicated, 0u);
}

TEST(ExperimentSharded, KillingAStorageNodeMidRunIsSurvivableAtRf2) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "seismology";
  config.num_tasks = 40;
  config.storage_nodes = 4;
  config.replication_factor = 2;
  config.storage_kill_at_seconds = 5.0;  // mid-run
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_EQ(result.storage_node_kills, 1u);
  EXPECT_EQ(result.storage_lost_objects, 0u);
}

TEST(ExperimentSharded, P2pTransfersCutBackingReads) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 40;
  config.storage_nodes = 4;
  config.replication_factor = 2;
  config.data_cache_mb_per_node = 256;
  // Placement deliberately NOT cache-aware: consumers land away from the
  // producer's node, so every inter-task read is a remote miss — exactly
  // the traffic the p2p path exists to absorb.
  const core::ExperimentResult cached = core::run_experiment(config);
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.p2p_transfers, 0u);  // knob off: no peer pulls

  config.p2p_transfer = true;
  const core::ExperimentResult p2p = core::run_experiment(config);
  ASSERT_TRUE(p2p.ok());
  EXPECT_GT(p2p.p2p_transfers, 0u);
  EXPECT_GT(p2p.p2p_bytes_saved, 0u);
  // Every peer pull is a backing-store read that never happened.
  EXPECT_LT(p2p.storage_bytes_read, cached.storage_bytes_read);
}

TEST(ExperimentSharded, ResultJsonRoundTripsShardedCounters) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "cycles";
  config.num_tasks = 30;
  config.storage_nodes = 4;
  config.replication_factor = 2;
  config.data_cache_mb_per_node = 128;
  config.p2p_transfer = true;
  config.storage_kill_at_seconds = 5.0;
  const core::ExperimentResult original = core::run_experiment(config);
  ASSERT_TRUE(original.completed);

  const core::ExperimentResult restored =
      core::parse_result(core::write_result(original));
  EXPECT_EQ(restored.config.storage_nodes, 4u);
  EXPECT_EQ(restored.config.replication_factor, 2u);
  EXPECT_TRUE(restored.config.p2p_transfer);
  EXPECT_EQ(restored.p2p_transfers, original.p2p_transfers);
  EXPECT_EQ(restored.p2p_bytes_saved, original.p2p_bytes_saved);
  EXPECT_EQ(restored.storage_repair_objects, original.storage_repair_objects);
  EXPECT_EQ(restored.storage_repair_bytes, original.storage_repair_bytes);
  EXPECT_EQ(restored.storage_node_kills, original.storage_node_kills);
  EXPECT_EQ(restored.storage_under_replicated, original.storage_under_replicated);
  EXPECT_EQ(restored.storage_lost_objects, original.storage_lost_objects);
}

TEST(CampaignSharded, SummaryCsvIsByteIdenticalWhenTheKnobsAreOff) {
  // PR 5 / PR 7 pattern: the new knobs default off, and a spec that sets
  // them to their defaults must reproduce the exact same bytes as one that
  // never mentions them.
  const auto run_csv = [](std::size_t nodes, bool p2p) {
    core::CampaignSpec spec;
    spec.paradigms = {core::Paradigm::kKn10wNoPM};
    spec.recipes = {"blast"};
    spec.sizes = {20};
    spec.storage_nodes = nodes;
    spec.p2p_transfer = p2p;
    if (p2p) spec.data_cache_mb_per_node = 256;
    core::Campaign campaign(std::move(spec));
    campaign.run();
    return campaign.summary_csv();
  };
  const std::string baseline = run_csv(0, false);
  EXPECT_EQ(run_csv(0, false), baseline);  // defaults are deterministic
  EXPECT_NE(run_csv(4, false), baseline);  // the sharded tier changes timing
  EXPECT_NE(baseline.find("p2p_bytes_saved,storage_repair_bytes"), std::string::npos);
}

// ---- determinism ------------------------------------------------------------

TEST(SimDeterminism, ShardedStoreCampaignByteIdenticalAcrossSimShards) {
  // The min_op_latency declarations (store RPC/link, cache hit/p2p) feed
  // the sharded engine's lookahead; campaigns over the full data plane must
  // stay byte-identical at every shard count.
  const auto run_csv = [](std::size_t sim_shards) {
    core::CampaignSpec spec;
    spec.paradigms = {core::Paradigm::kKn10wNoPM};
    spec.recipes = {"blast", "seismology"};
    spec.sizes = {20};
    spec.storage_nodes = 4;
    spec.replication_factor = 2;
    spec.data_cache_mb_per_node = 256;
    spec.p2p_transfer = true;
    spec.jobs = 1;
    spec.collect_metrics = false;
    spec.sim_shards = sim_shards;
    core::Campaign campaign(std::move(spec));
    campaign.run();
    return campaign.summary_csv();
  };
  const std::string sequential = run_csv(1);
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(run_csv(2), sequential) << "2 shards diverged from the seed engine";
  EXPECT_EQ(run_csv(4), sequential) << "4 shards diverged from the seed engine";
}

TEST(SimDeterminism, ShardedStoreFleetIdenticalAcrossSimShards) {
  const auto run_with_shards = [](std::size_t sim_shards) {
    core::FleetConfig config;
    config.items = {{"blast", 30, 1}, {"cycles", 30, 2}};
    config.concurrent = true;
    config.sim_shards = sim_shards;
    config.storage_nodes = 4;
    config.replication_factor = 2;
    config.data_cache_mb_per_node = 256;
    config.p2p_transfer = true;
    return core::run_fleet(config);
  };
  const core::FleetResult seed = run_with_shards(1);
  const core::FleetResult sharded = run_with_shards(4);
  ASSERT_TRUE(seed.completed);
  ASSERT_TRUE(sharded.completed);
  EXPECT_EQ(sharded.wall_seconds, seed.wall_seconds);
  EXPECT_EQ(sharded.cache_hits, seed.cache_hits);
  EXPECT_EQ(sharded.p2p_transfers, seed.p2p_transfers);
}

}  // namespace
}  // namespace wfs
