// Unit tests for src/support: format shim, strings, rng, units, cli, log,
// thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>

#include "support/cli.h"
#include "support/format.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/strings.h"
#include "support/thread_pool.h"
#include "support/units.h"

namespace wfs::support {
namespace {

// ---- format ----------------------------------------------------------------

TEST(Format, PlainSubstitution) {
  EXPECT_EQ(format("hello {}", "world"), "hello world");
  EXPECT_EQ(format("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("no args"), "no args");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(format("{{}}"), "{}");
  EXPECT_EQ(format("{{{}}}", 7), "{7}");
}

TEST(Format, IntegerTypes) {
  EXPECT_EQ(format("{}", std::int64_t{-42}), "-42");
  EXPECT_EQ(format("{}", std::uint64_t{42}), "42");
  EXPECT_EQ(format("{:x}", 255), "ff");
  EXPECT_EQ(format("{:X}", 255), "FF");
  EXPECT_EQ(format("{:04x}", 15), "000f");
  EXPECT_EQ(format("{:b}", 5), "101");
}

TEST(Format, Int64Min) {
  EXPECT_EQ(format("{}", std::numeric_limits<std::int64_t>::min()),
            "-9223372036854775808");
}

TEST(Format, DoublePrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.5), "2");  // banker's rounding via snprintf
  EXPECT_EQ(format("{:.3e}", 1234.5), "1.234e+03");
  EXPECT_EQ(format("{:.3g}", 1234.5), "1.23e+03");
}

TEST(Format, DoubleDefaultIsRoundTrip) {
  EXPECT_EQ(format("{}", 0.5), "0.5");
  EXPECT_EQ(format("{}", 2.0), "2");
}

TEST(Format, RuntimePrecision) {
  EXPECT_EQ(format("{:.{}f}", 3.14159, 3), "3.142");
  EXPECT_EQ(format("{:.{}f}", 1.0, 0), "1");
}

TEST(Format, WidthAndAlignment) {
  EXPECT_EQ(format("{:>6}", 42), "    42");
  EXPECT_EQ(format("{:<6}|", 42), "42    |");
  EXPECT_EQ(format("{:^6}|", "ab"), "  ab  |");
  EXPECT_EQ(format("{:<6}|", "ab"), "ab    |");
  EXPECT_EQ(format("{:06}", 42), "000042");
  EXPECT_EQ(format("{:06}", -42), "-00042");
  EXPECT_EQ(format("{:*>5}", 7), "****7");
}

TEST(Format, SignFlag) {
  EXPECT_EQ(format("{:+.1f}", 3.0), "+3.0");
  EXPECT_EQ(format("{:+.1f}", -3.0), "-3.0");
  EXPECT_EQ(format("{:+7.1f}", 12.25), "  +12.2");
}

TEST(Format, BoolAndChar) {
  EXPECT_EQ(format("{}", true), "true");
  EXPECT_EQ(format("{}", false), "false");
  EXPECT_EQ(format("{:d}", true), "1");
  EXPECT_EQ(format("{}", 'x'), "x");
}

TEST(Format, Strings) {
  const std::string s = "abc";
  EXPECT_EQ(format("{}", s), "abc");
  EXPECT_EQ(format("{}", std::string_view("view")), "view");
  EXPECT_EQ(format("{:.2}", "abcdef"), "ab");  // string precision truncates
}

TEST(Format, ErrorsThrow) {
  EXPECT_THROW(format("{}"), format_error);            // too few args
  EXPECT_THROW(format("{"), format_error);             // unmatched brace
  EXPECT_THROW((void)format("}"), format_error);       // stray close
  EXPECT_THROW(format("{0}", 1), format_error);        // positional unsupported
  EXPECT_THROW(format("{:ZZ}", 1), format_error);      // junk spec
}

// ---- strings ---------------------------------------------------------------

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"one"}, ","), "one");
}

TEST(Strings, SplitJoinRoundTrip) {
  const std::string text = "x,y,,z";
  EXPECT_EQ(join(split(text, ','), ","), text);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t\n abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("blastall_0001", "blastall"));
  EXPECT_FALSE(starts_with("bla", "blastall"));
  EXPECT_TRUE(ends_with("output.txt", ".txt"));
  EXPECT_FALSE(ends_with("txt", "output.txt"));
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("Kn10wNoPM"), "kn10wnopm");
  EXPECT_EQ(to_lower(""), "");
}

TEST(Strings, PadId) {
  EXPECT_EQ(pad_id(2, 8), "00000002");  // the WfCommons convention
  EXPECT_EQ(pad_id(12345678, 8), "12345678");
  EXPECT_EQ(pad_id(123456789, 8), "123456789");  // wider than field
  EXPECT_EQ(pad_id(0, 3), "000");
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(40161), "39.22 KiB");
  EXPECT_EQ(human_bytes(3ULL << 30), "3.00 GiB");
}

TEST(Strings, HumanDuration) {
  EXPECT_EQ(human_duration(6.3), "6.3s");
  EXPECT_EQ(human_duration(65.0), "1m05s");
  EXPECT_EQ(human_duration(3723.0), "1h02m03s");
  EXPECT_EQ(human_duration(-6.3), "-6.3s");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformRealBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform_real(0.25, 0.75);
    EXPECT_GE(v, 0.25);
    EXPECT_LT(v, 0.75);
  }
}

TEST(Rng, TruncatedNormalStaysInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.truncated_normal(100.0, 50.0, 80.0, 120.0);
    EXPECT_GE(v, 80.0);
    EXPECT_LE(v, 120.0);
  }
}

TEST(Rng, TruncatedNormalZeroStddevClamps) {
  Rng rng(11);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(5.0, 0.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(50.0, 0.0, 0.0, 10.0), 10.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(5);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 1u);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, ForkIndependence) {
  Rng parent(42);
  Rng child = parent.fork();
  // Child stream should not be identical to the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.uniform_int(0, 1 << 30) == child.uniform_int(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

// ---- units -----------------------------------------------------------------

TEST(Units, ParseBytes) {
  EXPECT_EQ(parse_bytes("1500"), 1500u);
  EXPECT_EQ(parse_bytes("2k"), 2000u);
  EXPECT_EQ(parse_bytes("3M"), 3000000u);
  EXPECT_EQ(parse_bytes("1Ki"), 1024u);
  EXPECT_EQ(parse_bytes("2Mi"), 2u * 1024 * 1024);
  EXPECT_EQ(parse_bytes("1Gi"), 1024ull * 1024 * 1024);
  EXPECT_EQ(parse_bytes("1.5Ki"), 1536u);
}

TEST(Units, ParseBytesErrors) {
  EXPECT_THROW(parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("10Q"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("-5"), std::invalid_argument);
}

TEST(Units, ParseCpus) {
  EXPECT_DOUBLE_EQ(parse_cpus("2"), 2.0);
  EXPECT_DOUBLE_EQ(parse_cpus("500m"), 0.5);
  EXPECT_DOUBLE_EQ(parse_cpus("0.25"), 0.25);
  EXPECT_THROW(parse_cpus("2x"), std::invalid_argument);
}

// ---- cli -------------------------------------------------------------------

TEST(Cli, DefaultsAndOverrides) {
  CliParser cli("prog", "test");
  cli.add_flag("tasks", "50", "size");
  cli.add_flag("recipe", "blast", "family");
  cli.add_switch("verbose", "debug");
  const char* argv[] = {"prog", "--tasks", "100", "--verbose"};
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(cli.get_int("tasks"), 100);
  EXPECT_EQ(cli.get("recipe"), "blast");
  EXPECT_TRUE(cli.get_switch("verbose"));
}

TEST(Cli, EqualsSyntax) {
  CliParser cli("prog", "test");
  cli.add_flag("seed", "1", "seed");
  const char* argv[] = {"prog", "--seed=42"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("seed"), 42);
}

TEST(Cli, UnknownFlagFails) {
  CliParser cli("prog", "test");
  std::ostringstream sink;
  // parse() prints usage to stderr; we only assert the return value.
  const char* argv[] = {"prog", "--nope", "1"};
  testing::internal::CaptureStderr();
  EXPECT_FALSE(cli.parse(3, argv));
  (void)testing::internal::GetCapturedStderr();
}

TEST(Cli, MissingValueFails) {
  CliParser cli("prog", "test");
  cli.add_flag("tasks", "50", "size");
  const char* argv[] = {"prog", "--tasks"};
  testing::internal::CaptureStderr();
  EXPECT_FALSE(cli.parse(2, argv));
  (void)testing::internal::GetCapturedStderr();
}

TEST(Cli, PositionalCollected) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "workflow.json", "knative"};
  ASSERT_TRUE(cli.parse(3, argv));
  EXPECT_EQ(cli.positional(), (std::vector<std::string>{"workflow.json", "knative"}));
}

TEST(Cli, TypedGetterErrors) {
  CliParser cli("prog", "test");
  cli.add_flag("tasks", "abc", "size");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get_int("tasks"), std::invalid_argument);
  EXPECT_THROW(cli.get("unknown"), std::out_of_range);
}

// ---- log -------------------------------------------------------------------

TEST(Log, LevelsFilter) {
  std::ostringstream sink;
  Logger::set_sink(&sink);
  Logger::set_level(LogLevel::kWarn);
  WFS_LOG_INFO("test", "hidden {}", 1);
  WFS_LOG_WARN("test", "visible {}", 2);
  Logger::set_sink(nullptr);
  Logger::set_level(LogLevel::kWarn);
  EXPECT_EQ(sink.str(), "[warn] test: visible 2\n");
}

TEST(Log, ParseLevel) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
}

TEST(Log, ToStringRoundTrip) {
  for (const LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                               LogLevel::kWarn, LogLevel::kError}) {
    EXPECT_EQ(parse_log_level(to_string(level)), level);
  }
}

TEST(Log, WritesAreSerializedAcrossThreads) {
  // The logger is the one shared sink campaign workers all touch; lines from
  // concurrent writers must come out whole, never interleaved.
  std::ostringstream sink;
  Logger::set_sink(&sink);
  Logger::set_level(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.submit([t] {
        for (int i = 0; i < kLines; ++i) WFS_LOG_INFO("worker", "t{} line {}", t, i);
      });
    }
    pool.wait_idle();
  }
  Logger::set_sink(nullptr);
  Logger::set_level(LogLevel::kWarn);
  std::istringstream lines(sink.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.rfind("[info] worker: t", 0), 0u) << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPool, RunsEveryJobExactlyOnce) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleBlocksUntilInFlightJobsFinish) {
  std::atomic<bool> done{false};
  ThreadPool pool(2);
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());  // wait_idle saw the job through, not just dequeued
}

TEST(ThreadPool, DestructorDrainsQueuedJobs) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(count.load(), 64);
}

// Pins the shutdown contract: every job submit() accepted runs — including
// one that lands in the queue while the destructor is already stopping the
// workers. A worker that has observed stop_ with an empty queue exits for
// good, so without the destructor's inline drain a straggler submitted at
// that instant would sit in the queue forever.
TEST(ThreadPool, LateSubmitDuringShutdownStillRuns) {
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> ran{0};
    {
      ThreadPool pool(2);
      pool.submit([&ran, &pool] {
        // By the time this runs the destructor may have set stop_ and the
        // second worker may already be gone; the follow-up must run anyway.
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    ASSERT_EQ(ran.load(), 2) << "round " << round;
  }
}

TEST(ThreadPool, DefaultWorkersIsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_workers(), 1u);
  ThreadPool pool;  // 0 = default width must construct fine
  EXPECT_GE(pool.worker_count(), 1u);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(3);
  pool.wait_idle();  // no work yet: returns immediately
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace wfs::support
