// Columnar ExecutionPlan suites (ctest label: plan).
//
// Three concerns:
//  * CSR round-trip — the columnar adjacency mirrors the workflow IR
//    exactly (symmetry, root indegrees, level monotonicity) for all seven
//    recipe families;
//  * representation equivalence — a WFM run driven by the columnar plan
//    produces a byte-identical result document (and hence byte-identical
//    campaign CSVs, which are pure functions of run results) to one driven
//    by a plan converted from the seed's row-of-structs representation,
//    for every family under both scheduling modes;
//  * the O(1) stored counts and the deprecated compatibility shim.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dag.h"
#include "core/workflow_manager.h"
#include "json/parse.h"
#include "json/write.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "support/format.h"
#include "wfbench/task_params.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/translators/knative.h"

namespace wfs::core {
namespace {

wfcommons::Workflow translated(const std::string& recipe, std::size_t tasks,
                               double scale_factor = 1.0) {
  wfcommons::GenerateOptions options;
  options.num_tasks = tasks;
  options.scale_factor = scale_factor;
  options.seed = 1;
  wfcommons::Workflow wf = wfcommons::make_recipe(recipe)->generate(options);
  wfcommons::KnativeTranslatorConfig config;
  config.service_url = "http://svc:80/wfbench";
  wfcommons::KnativeTranslator(config).apply(wf);
  return wf;
}

/// Rebuilds the plan the way the seed's build_plan did — row-of-structs
/// PlannedTask records grouped by level — then converts through the
/// deprecated shim. The equivalence suite runs this against the columnar
/// build_plan output.
ExecutionPlan seed_representation_plan(const wfcommons::Workflow& wf,
                                       const std::string& workdir) {
  std::vector<std::vector<PlannedTask>> phases;
  std::unordered_map<std::string, std::size_t> flat_ids;
  std::size_t next_id = 0;
  const auto level_decomposition = wfcommons::levels(wf);
  for (std::size_t level = 0; level < level_decomposition.size(); ++level) {
    std::vector<PlannedTask> phase;
    for (const wfcommons::Task* task : level_decomposition[level]) {
      phase.push_back(PlannedTask{task->name, task->api_url,
                                  to_task_params(*task, workdir), level, {}, {}});
      flat_ids.emplace(task->name, next_id++);
    }
    phases.push_back(std::move(phase));
  }
  for (const auto& level : level_decomposition) {
    for (const wfcommons::Task* task : level) {
      const std::size_t id = flat_ids.at(task->name);
      std::size_t offset = id;
      std::size_t l = 0;
      while (offset >= phases[l].size()) {
        offset -= phases[l].size();
        ++l;
      }
      PlannedTask& planned = phases[l][offset];
      for (const std::string& parent : task->parents) {
        planned.parents.push_back(flat_ids.at(parent));
      }
      for (const std::string& child : task->children) {
        planned.children.push_back(flat_ids.at(child));
      }
    }
  }
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  return plan_from_phases(wf.name(), phases, wf.external_inputs());
#pragma GCC diagnostic pop
}

/// Fake wfbench endpoint: checks inputs, writes outputs, service time scales
/// with cpu_work so the simulated schedule is sensitive to per-task knobs.
void bind_fake_wfbench(sim::Simulation& sim, storage::SharedFilesystem& fs,
                       net::Router& router) {
  router.bind("svc:80", [&sim, &fs](const net::HttpRequest& request,
                                    std::shared_ptr<net::Responder> responder) {
    const wfbench::TaskParams params =
        wfbench::task_params_from_json(json::parse(request.body));
    for (const std::string& input : params.inputs) {
      EXPECT_TRUE(fs.exists(input)) << params.name << " invoked before input " << input;
    }
    const sim::SimTime busy = sim::from_seconds(0.001 * params.cpu_work);
    sim.schedule_in(busy, [&fs, params, responder] {
      if (params.outputs.empty()) {
        responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
        return;
      }
      auto remaining = std::make_shared<std::size_t>(params.outputs.size());
      for (const auto& [file, size] : params.outputs) {
        fs.write(file, size, [remaining, responder] {
          if (--*remaining == 0) {
            responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
          }
        });
      }
    });
  });
}

/// One isolated run of a pre-built plan: fresh simulation, drive and router
/// per call, so two representations execute in identical environments.
WorkflowRunResult run_isolated(ExecutionPlan plan, const WfmConfig& config) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);
  bind_fake_wfbench(sim, fs, router);
  WorkflowManager wfm(sim, router, fs);
  WorkflowRunResult result;
  wfm.run(std::move(plan), [&](WorkflowRunResult r) { result = std::move(r); }, config);
  sim.run();
  return result;
}

/// Canonical result document: every field of the run including the ordered
/// per-task schedule. Byte-identical documents imply identical campaign
/// CSVs (summary rows are derived from exactly these fields).
std::string result_document(const WorkflowRunResult& result) {
  json::Object doc;
  doc.set("workflow", result.workflow_name);
  doc.set("scheduling", std::string(to_string(result.scheduling)));
  doc.set("completed", result.completed);
  doc.set("tasks_total", result.tasks_total);
  doc.set("tasks_failed", result.tasks_failed);
  doc.set("task_retries", result.task_retries);
  doc.set("input_wait_timeouts", result.input_wait_timeouts);
  doc.set("upstream_failures", result.upstream_failures);
  doc.set("input_wait_seconds", result.input_wait_seconds);
  doc.set("retry_wait_seconds", result.retry_wait_seconds);
  doc.set("makespan_seconds", result.makespan_seconds);
  json::Array phases;
  for (const PhaseOutcome& phase : result.phases) {
    json::Object p;
    p.set("index", phase.index);
    p.set("tasks", phase.tasks);
    p.set("failed", phase.failed);
    p.set("wall_seconds", phase.wall_seconds);
    phases.push_back(json::Value(std::move(p)));
  }
  doc.set("phases", std::move(phases));
  json::Array tasks;
  for (const TaskOutcome& task : result.tasks) {
    json::Object t;
    t.set("name", task.name);
    t.set("ok", task.ok);
    t.set("status", task.http_status);
    t.set("started", task.started_seconds);
    t.set("runtime", task.runtime_seconds);
    t.set("wall", task.wall_seconds);
    t.set("phase", task.phase);
    t.set("attempts", task.attempts);
    t.set("input_wait", task.input_wait_seconds);
    t.set("retry_wait", task.retry_wait_seconds);
    t.set("error", task.error);
    tasks.push_back(json::Value(std::move(t)));
  }
  doc.set("tasks", std::move(tasks));
  return json::write_compact(json::Value(std::move(doc)));
}

// ---- CSR round-trip ---------------------------------------------------------

TEST(PlanCsr, RoundTripsEveryRecipe) {
  for (const std::string& recipe : wfcommons::recipe_names()) {
    const wfcommons::Workflow wf = translated(recipe, 40);
    const ExecutionPlan plan = build_plan(wf, "/shared");
    const auto indegrees = plan.indegrees();
    ASSERT_EQ(plan.task_count(), wf.size()) << recipe;
    ASSERT_EQ(indegrees.size(), plan.task_count()) << recipe;

    std::size_t edges = 0;
    for (TaskId id = 0; id < plan.task_count(); ++id) {
      const auto parents = plan.parents(id);
      EXPECT_EQ(indegrees[id], parents.size()) << recipe;
      if (parents.empty()) {
        // Roots have indegree 0 and sit on level 0 in every family.
        EXPECT_EQ(plan.level_of(id), 0u) << recipe;
      }
      edges += parents.size();
      for (const TaskId parent : parents) {
        // Level monotonicity along edges.
        EXPECT_LT(plan.level_of(parent), plan.level_of(id)) << recipe;
        // Parent/child symmetry: the reverse CSR direction holds the edge.
        const auto children = plan.children(parent);
        EXPECT_NE(std::find(children.begin(), children.end(), id), children.end())
            << recipe;
      }
      for (const TaskId child : plan.children(id)) {
        const auto back = plan.parents(child);
        EXPECT_NE(std::find(back.begin(), back.end(), id), back.end()) << recipe;
      }
    }
    EXPECT_EQ(edges, plan.edge_count()) << recipe;
    EXPECT_EQ(edges, wf.edge_count()) << recipe;

    // The level index tiles the id space contiguously.
    TaskId next = 0;
    for (std::size_t level = 0; level < plan.level_count(); ++level) {
      const auto range = plan.tasks_in_level(level);
      EXPECT_EQ(range.begin_id(), next) << recipe;
      for (const TaskId id : range) EXPECT_EQ(plan.level_of(id), level) << recipe;
      next = range.end_id();
    }
    EXPECT_EQ(next, plan.task_count()) << recipe;
  }
}

TEST(PlanCsr, NamesAndUrlsAreInterned) {
  const wfcommons::Workflow wf = translated("blast", 30);
  const ExecutionPlan plan = build_plan(wf, "/shared");
  for (TaskId id = 0; id < plan.task_count(); ++id) {
    EXPECT_NE(wf.find(plan.name(id)), nullptr);
    EXPECT_EQ(plan.api_url(id), "http://svc:80/wfbench");
    EXPECT_EQ(plan.workdir(id), "/shared");
  }
  // All api_url views alias ONE arena copy.
  EXPECT_EQ(plan.api_url(0).data(), plan.api_url(plan.task_count() - 1).data());
}

// ---- O(1) stored counts (satellite: widest_phase/task_count regression) -----

TEST(PlanCounts, StoredCountsMatchBuildPlanOutput) {
  const wfcommons::Workflow wf = translated("blast", 30);
  const ExecutionPlan plan = build_plan(wf, "/shared");
  // Pinned against the known blast-30 shape (3 levels: split/blastall/cat).
  EXPECT_EQ(plan.task_count(), wf.size());
  EXPECT_EQ(plan.widest_phase(), 27u);
  EXPECT_EQ(plan.level_count(), 3u);

  // Stored counts equal what a scan over the level index yields.
  std::size_t total = 0;
  std::size_t widest = 0;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    total += plan.level_size(level);
    widest = std::max(widest, plan.level_size(level));
  }
  EXPECT_EQ(plan.task_count(), total);
  EXPECT_EQ(plan.widest_phase(), widest);
}

TEST(PlanCounts, IndegreesReturnsTheStoredColumn) {
  const wfcommons::Workflow wf = translated("epigenomics", 40);
  const ExecutionPlan plan = build_plan(wf, "/shared");
  // A view, not a recomputed copy: repeated calls alias the same storage.
  EXPECT_EQ(plan.indegrees().data(), plan.indegrees().data());
  const auto indegrees = plan.indegrees();
  for (TaskId id = 0; id < plan.task_count(); ++id) {
    EXPECT_EQ(indegrees[id], plan.parents(id).size());
  }
}

// ---- deprecated shim --------------------------------------------------------

TEST(PlanShim, PreservesStructureAndTrailingEmptyLevels) {
  PlannedTask a;
  a.name = "a";
  a.api_url = "http://svc:80/wfbench";
  a.params.name = "a";
  a.level = 0;
  a.children = {1};
  PlannedTask b;
  b.name = "b";
  b.api_url = "http://svc:80/wfbench";
  b.params.name = "b";
  b.params.inputs = {"a_output.txt"};
  b.level = 1;
  b.parents = {0};
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  const ExecutionPlan plan = plan_from_phases("shim", {{a}, {b}, {}});
#pragma GCC diagnostic pop
  EXPECT_EQ(plan.task_count(), 2u);
  EXPECT_EQ(plan.level_count(), 3u);  // the trailing empty level survives
  EXPECT_EQ(plan.level_size(2), 0u);
  EXPECT_EQ(plan.name(0), "a");
  EXPECT_EQ(plan.name(1), "b");
  ASSERT_EQ(plan.parents(1).size(), 1u);
  EXPECT_EQ(plan.parents(1)[0], 0u);
  ASSERT_EQ(plan.children(0).size(), 1u);
  EXPECT_EQ(plan.children(0)[0], 1u);
  EXPECT_EQ(plan.indegrees()[0], 0u);
  EXPECT_EQ(plan.indegrees()[1], 1u);
  EXPECT_EQ(plan.input_count(1), 1u);
  EXPECT_EQ(plan.input_name(1, 0), "a_output.txt");
}

// ---- representation equivalence ---------------------------------------------

TEST(PlanEquivalence, ColumnarMatchesSeedRepresentationEveryRecipeBothModes) {
  for (const std::string& recipe : wfcommons::recipe_names()) {
    const wfcommons::Workflow wf = translated(recipe, 40);
    for (const SchedulingMode mode :
         {SchedulingMode::kPhaseBarrier, SchedulingMode::kDependencyDriven}) {
      WfmConfig config;
      config.scheduling = mode;
      const WorkflowRunResult columnar =
          run_isolated(build_plan(wf, config.workdir), config);
      const WorkflowRunResult seed =
          run_isolated(seed_representation_plan(wf, config.workdir), config);
      EXPECT_TRUE(columnar.ok()) << recipe << "/" << to_string(mode);
      // Byte-identical documents: identical per-task schedules, phase
      // attribution and roll-ups => identical campaign CSV rows.
      EXPECT_EQ(result_document(columnar), result_document(seed))
          << recipe << "/" << to_string(mode);
    }
  }
}

TEST(PlanEquivalence, TaskParamsMaterialiseIdentically) {
  const wfcommons::Workflow wf = translated("genome", 60);
  const ExecutionPlan plan = build_plan(wf, "/shared/wfbench");
  for (TaskId id = 0; id < plan.task_count(); ++id) {
    const wfcommons::Task* source = wf.find(plan.name(id));
    ASSERT_NE(source, nullptr);
    const wfbench::TaskParams expected = to_task_params(*source, "/shared/wfbench");
    const wfbench::TaskParams actual = plan.task_params(id);
    EXPECT_EQ(json::write_compact(wfbench::to_json(actual)),
              json::write_compact(wfbench::to_json(expected)))
        << plan.name(id);
  }
}

// ---- mega-scale generation --------------------------------------------------

TEST(PlanScale, ScaleFactorMultipliesInstanceSize) {
  const wfcommons::Workflow base = translated("seismology", 50);
  const wfcommons::Workflow scaled = translated("seismology", 50, 20.0);
  EXPECT_GE(scaled.size(), base.size() * 18);  // ~20x, family shape preserved
  const ExecutionPlan plan = build_plan(scaled, "/shared");
  EXPECT_EQ(plan.task_count(), scaled.size());
  EXPECT_GT(plan.widest_phase(), base.size());
  // The columnar footprint stays lean: well under 1 KiB per task even with
  // per-task file lists.
  EXPECT_LT(plan.memory_footprint_bytes() / plan.task_count(), 1024u);
}

}  // namespace
}  // namespace wfs::core
