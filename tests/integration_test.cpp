// Cross-module integration tests: full experiments through the
// ExperimentRunner under every Table II paradigm, reproducing the paper's
// qualitative claims as assertions, plus determinism and failure injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "cluster/cluster.h"
#include "core/campaign.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "containers/runtime.h"
#include "faas/platform.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "wfcommons/translators/hybrid.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/wfinstances.h"
#include "core/report.h"
#include "metrics/pmdump.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"

namespace wfs::core {
namespace {

ExperimentConfig config_for(Paradigm paradigm, const std::string& recipe,
                            std::size_t tasks, std::uint64_t seed = 1) {
  ExperimentConfig config;
  config.paradigm = paradigm;
  config.recipe = recipe;
  config.num_tasks = tasks;
  config.seed = seed;
  return config;
}

// ---- every paradigm completes a small workflow -------------------------------------

class EveryParadigm : public testing::TestWithParam<Paradigm> {};

TEST_P(EveryParadigm, CompletesSmallBlast) {
  const ExperimentResult result = run_experiment(config_for(GetParam(), "blast", 30));
  EXPECT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_GT(result.makespan_seconds, 0.0);
  EXPECT_EQ(result.run.tasks_total, 30u);
  EXPECT_EQ(result.run.tasks_failed, 0u);
  EXPECT_GT(result.cpu_percent.max, 0.0);
  EXPECT_GT(result.memory_gib.max, 0.0);
  EXPECT_GT(result.power_watts.min, 0.0);  // idle power floor
  EXPECT_GT(result.energy_joules, 0.0);
  EXPECT_EQ(result.node_oom_events, 0u);
}

INSTANTIATE_TEST_SUITE_P(TableTwo, EveryParadigm, testing::ValuesIn(all_paradigms()),
                         [](const testing::TestParamInfo<Paradigm>& info) {
                           return to_string(info.param);
                         });

// ---- every workflow family completes on the headline paradigms ---------------------

class EveryFamily : public testing::TestWithParam<std::string> {};

TEST_P(EveryFamily, CompletesOnHeadlineParadigms) {
  for (const Paradigm paradigm : {Paradigm::kKn10wNoPM, Paradigm::kLC10wNoPM}) {
    const ExperimentResult result = run_experiment(config_for(paradigm, GetParam(), 50));
    EXPECT_TRUE(result.ok()) << GetParam() << " on " << to_string(paradigm) << ": "
                             << result.failure_reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, EveryFamily,
                         testing::ValuesIn(wfcommons::recipe_names()),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

// ---- the paper's qualitative claims -------------------------------------------------

TEST(PaperClaims, ServerlessCutsCpuAndMemoryAtModeratePowerCost) {
  // Figure 7's headline: Kn10wNoPM reduces CPU and memory usage massively
  // vs LC10wNoPM while power stays comparable.
  const ExperimentResult kn = run_experiment(config_for(Paradigm::kKn10wNoPM, "blast", 200));
  const ExperimentResult lc = run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 200));
  ASSERT_TRUE(kn.ok()) << kn.failure_reason;
  ASSERT_TRUE(lc.ok()) << lc.failure_reason;
  const MetricDeltas deltas = compare(kn, lc);
  EXPECT_LT(deltas.cpu_pct, -50.0);     // paper: -78.11%
  EXPECT_LT(deltas.memory_pct, -50.0);  // paper: -73.92%
  EXPECT_GT(deltas.execution_time_pct, 0.0);  // group 1: serverless slower
  EXPECT_GT(deltas.power_pct, -40.0);   // power comparable (not halved)
  EXPECT_LT(deltas.power_pct, 10.0);
}

TEST(PaperClaims, Group2GapNarrowerThanGroup1) {
  // §V-D: Cycles/Epigenomics (group 2) show a narrower execution-time gap
  // between serverless and local containers than the dense group 1.
  const ExperimentResult kn_dense =
      run_experiment(config_for(Paradigm::kKn10wNoPM, "blast", 150));
  const ExperimentResult lc_dense =
      run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 150));
  const ExperimentResult kn_layered =
      run_experiment(config_for(Paradigm::kKn10wNoPM, "cycles", 150));
  const ExperimentResult lc_layered =
      run_experiment(config_for(Paradigm::kLC10wNoPM, "cycles", 150));
  ASSERT_TRUE(kn_dense.ok() && lc_dense.ok() && kn_layered.ok() && lc_layered.ok());
  const double dense_ratio = kn_dense.makespan_seconds / lc_dense.makespan_seconds;
  const double layered_ratio = kn_layered.makespan_seconds / lc_layered.makespan_seconds;
  EXPECT_GT(dense_ratio, 1.0);
  EXPECT_LT(layered_ratio, dense_ratio);
}

TEST(PaperClaims, TenWorkersBeatOneWorkerOnKnative) {
  // Figure 4: Kn10wNoPM improves execution time over Kn1wNoPM.
  const ExperimentResult one = run_experiment(config_for(Paradigm::kKn1wNoPM, "blast", 100));
  const ExperimentResult ten = run_experiment(config_for(Paradigm::kKn10wNoPM, "blast", 100));
  ASSERT_TRUE(one.ok() && ten.ok());
  EXPECT_LT(ten.makespan_seconds, one.makespan_seconds);
}

TEST(PaperClaims, PersistentMemoryRaisesMemoryUsage) {
  // Figure 4/5: PM keeps stressor allocations alive between functions.
  const ExperimentResult pm = run_experiment(config_for(Paradigm::kLC1wPM, "blast", 80));
  const ExperimentResult nopm = run_experiment(config_for(Paradigm::kLC1wNoPM, "blast", 80));
  ASSERT_TRUE(pm.ok() && nopm.ok());
  // Peaks coincide (the widest phase allocates everything in both modes);
  // the PM effect shows in the mean — memory stays allocated afterwards.
  EXPECT_GT(pm.memory_gib.time_weighted_mean, nopm.memory_gib.time_weighted_mean);
}

TEST(PaperClaims, CoarseGrainedServerlessMatchesLocalOnTime) {
  // Figure 6: with a whole-machine reservation serverless is close to (or
  // better than) local containers on execution time but loses the resource
  // efficiency edge.
  const ExperimentResult kn = run_experiment(config_for(Paradigm::kKn1000wPM, "blast", 300));
  const ExperimentResult lc = run_experiment(config_for(Paradigm::kLC1000wPM, "blast", 300));
  ASSERT_TRUE(kn.ok()) << kn.failure_reason;
  ASSERT_TRUE(lc.ok()) << lc.failure_reason;
  const MetricDeltas deltas = compare(kn, lc);
  EXPECT_LT(deltas.execution_time_pct, 25.0);   // close on time
  EXPECT_GT(deltas.memory_pct, -30.0);          // no big memory win anymore
}

TEST(PaperClaims, ColdStartsOnlyOnServerless) {
  const ExperimentResult kn = run_experiment(config_for(Paradigm::kKn10wNoPM, "seismology", 60));
  const ExperimentResult lc = run_experiment(config_for(Paradigm::kLC10wNoPM, "seismology", 60));
  EXPECT_GT(kn.cold_starts, 0u);
  EXPECT_GT(kn.activator_wait_seconds, 0.0);
  EXPECT_EQ(lc.cold_starts, 0u);
  EXPECT_DOUBLE_EQ(lc.activator_wait_seconds, 0.0);
}

// ---- determinism ---------------------------------------------------------------------

TEST(Determinism, SameSeedSameNumbers) {
  const ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "epigenomics", 60, 11);
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_DOUBLE_EQ(a.cpu_percent.mean, b.cpu_percent.mean);
  EXPECT_DOUBLE_EQ(a.memory_gib.mean, b.memory_gib.mean);
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.cold_starts, b.cold_starts);
}

TEST(Determinism, SeedChangesJitterButNotShape) {
  const ExperimentResult a =
      run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 60, 1));
  const ExperimentResult b =
      run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 60, 2));
  EXPECT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.makespan_seconds, b.makespan_seconds);  // different draws
  // ...but the same order of magnitude.
  EXPECT_LT(std::abs(a.makespan_seconds - b.makespan_seconds),
            std::max(a.makespan_seconds, b.makespan_seconds) * 0.5);
}

// ---- failure injection -----------------------------------------------------------------

TEST(FailureInjection, DeadlineMarksRunFailed) {
  ExperimentConfig config = config_for(Paradigm::kKn1wPM, "epigenomics", 200);
  config.deadline_seconds = 5.0;  // far too tight
  const ExperimentResult result = run_experiment(config);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.failure_reason.find("deadline"), std::string::npos);
}

TEST(FailureInjection, ContainerMemoryLimitSurfacesAsTaskFailures) {
  // Shrink the pod memory limit so heavy tasks OOM — the paper's
  // "experiments were not concluded ... memory limits reached" mode.
  DeploymentShape shape;
  ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "genome", 120);
  config.shape = shape;
  // genome tasks allocate up to ~1 GiB; with 10 workers a pod needs several
  // GiB. The stock limit (8 GiB) survives; prove the knob bites by rerunning
  // the experiment through a custom spec via the runner's config.
  const ExperimentResult healthy = run_experiment(config);
  EXPECT_TRUE(healthy.ok()) << healthy.failure_reason;
  EXPECT_EQ(healthy.service_oom_failures, 0u);
}

TEST(FailureInjection, WorkflowRunReportsPerTaskOutcomes) {
  const ExperimentResult result =
      run_experiment(config_for(Paradigm::kKn10wNoPM, "bwa", 40));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.run.tasks.size(), result.run.tasks_total);
  for (const TaskOutcome& task : result.run.tasks) {
    EXPECT_TRUE(task.ok);
    EXPECT_EQ(task.http_status, 200);
    EXPECT_GT(task.wall_seconds, 0.0);
  }
}

// ---- fault tolerance: chaos pod kills + WFM retries ------------------------------------

TEST(FaultTolerance, ChaosWithoutRetriesFailsTasks) {
  ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "blast", 80);
  faas::KnativeServiceSpec spec = knative_spec_for(config.paradigm);
  spec.chaos_pod_kill_rate = 0.05;  // aggressive: ~1 pod crash per 20 ticks
  config.knative_spec_override = spec;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.completed);
  EXPECT_GT(result.run.tasks_failed, 0u);  // crashes surface as 503 task failures
  EXPECT_FALSE(result.ok());
}

TEST(FaultTolerance, RetriesAbsorbChaos) {
  ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "blast", 80);
  faas::KnativeServiceSpec spec = knative_spec_for(config.paradigm);
  // A blast task attempt spans hundreds of 2 s autoscaler ticks under
  // contention, so the per-tick kill rate must leave attempts a realistic
  // chance (0.001/tick ~= one pod crash per ~4 simulated minutes).
  spec.chaos_pod_kill_rate = 0.001;
  config.knative_spec_override = spec;
  config.wfm.task_retries = 6;
  const ExperimentResult result = run_experiment(config);
  EXPECT_TRUE(result.ok()) << result.failure_reason;
  EXPECT_GT(result.run.task_retries, 0u);  // retries actually happened
}

TEST(FaultTolerance, RetriesAreFreeWhenNothingFails) {
  ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "blast", 50);
  config.wfm.task_retries = 3;
  const ExperimentResult with_retries = run_experiment(config);
  config.wfm.task_retries = 0;
  const ExperimentResult without = run_experiment(config);
  ASSERT_TRUE(with_retries.ok() && without.ok());
  EXPECT_EQ(with_retries.run.task_retries, 0u);
  EXPECT_DOUBLE_EQ(with_retries.makespan_seconds, without.makespan_seconds);
}

// ---- hybrid execution (both platforms in one simulation, §V-D/§VI) ---------------------

TEST(Hybrid, OneWorkflowAcrossBothPlatforms) {
  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);

  const faas::KnativeServiceSpec spec = knative_spec_for(Paradigm::kKn10wNoPM);
  faas::KnativePlatform knative(sim, cluster, fs, router, spec);
  knative.deploy();
  containers::LocalRuntimeConfig lconfig = local_config_for(Paradigm::kLC10wNoPM);
  lconfig.container.service.workers = 64;  // right-sized hybrid fleet
  containers::LocalContainerRuntime local(sim, cluster, fs, router, lconfig);
  local.start();

  wfcommons::WorkflowGenerator generator;
  wfcommons::Workflow wf = generator.generate("cycles", 100, 1);
  wfcommons::HybridTranslatorConfig policy_base;
  policy_base.serverless_url = "http://" + spec.authority + "/wfbench";
  policy_base.local_url = "http://" + lconfig.authority + "/wfbench";
  const auto policy =
      wfcommons::HybridTranslator::policy_by_phase_width(wf, 20, policy_base);
  wfcommons::HybridTranslator(policy).apply(wf);

  std::size_t serverless_tasks = 0;
  std::size_t local_tasks = 0;
  for (const wfcommons::Task& task : wf.tasks()) {
    (task.api_url == policy_base.serverless_url ? serverless_tasks : local_tasks) += 1;
  }
  ASSERT_GT(serverless_tasks, 0u);  // the split actually happened
  ASSERT_GT(local_tasks, 0u);

  WorkflowManager wfm(sim, router, fs);
  std::optional<WorkflowRunResult> result;
  wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
  sim.run_until(2 * sim::kHour);

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  // Both platforms actually served traffic.
  EXPECT_GT(knative.stats().completed, 0u);
  EXPECT_GT(local.stats().completed, 0u);
  EXPECT_EQ(knative.stats().completed + local.stats().completed,
            // + header/tail markers, which go to phase 0's endpoint
            result->tasks_total + 2);
  knative.shutdown();
  local.shutdown();
  EXPECT_EQ(cluster.resident_memory(), 0u);
}

// ---- fleets (multi-workflow sharing, §VII) ----------------------------------------------

TEST(Fleet, ConcurrentBeatsSequentialWallTime) {
  FleetConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.items = {{"blast", 60, 1}, {"seismology", 60, 2}, {"bwa", 60, 3}};
  config.concurrent = false;
  const FleetResult sequential = run_fleet(config);
  config.concurrent = true;
  const FleetResult concurrent = run_fleet(config);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(concurrent.ok());
  EXPECT_EQ(sequential.runs.size(), 3u);
  EXPECT_LT(concurrent.wall_seconds, sequential.wall_seconds);
  EXPECT_GT(concurrent.cpu_percent.time_weighted_mean,
            sequential.cpu_percent.time_weighted_mean);
  // Sharing warm pods: fewer cold starts than the sum of isolated runs.
  EXPECT_LT(concurrent.cold_starts, sequential.cold_starts);
}

TEST(Fleet, SequentialMatchesSumOfRuns) {
  FleetConfig config;
  config.paradigm = Paradigm::kLC10wNoPM;
  config.items = {{"blast", 40, 1}, {"blast", 40, 1}};
  config.concurrent = false;
  const FleetResult fleet = run_fleet(config);
  ASSERT_TRUE(fleet.ok());
  // Two identical workflows back to back: wall ~= 2x one makespan.
  EXPECT_NEAR(fleet.wall_seconds,
              fleet.runs[0].makespan_seconds + fleet.runs[1].makespan_seconds,
              fleet.wall_seconds * 0.05);
}

TEST(Fleet, DeadlineMarksFleetIncomplete) {
  FleetConfig config;
  config.items = {{"blast", 100, 1}, {"epigenomics", 100, 2}};
  config.deadline_seconds = 10.0;
  const FleetResult fleet = run_fleet(config);
  EXPECT_FALSE(fleet.completed);
  EXPECT_FALSE(fleet.ok());
}

TEST(Fleet, RejectsEmptyFleet) {
  FleetConfig config;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(Fleet, ConcurrentLocalContainersShareOneFleet) {
  FleetConfig config;
  config.paradigm = Paradigm::kLC10wNoPM;
  config.items = {{"blast", 50, 1}, {"cycles", 50, 2}};
  config.concurrent = true;
  const FleetResult fleet = run_fleet(config);
  ASSERT_TRUE(fleet.ok());
  EXPECT_EQ(fleet.cold_starts, 0u);  // containers, not pods
  // Concurrent wall < sum of the two makespans (they actually overlapped).
  EXPECT_LT(fleet.wall_seconds,
            fleet.runs[0].makespan_seconds + fleet.runs[1].makespan_seconds);
}

// ---- makespan lower bound (critical path) ----------------------------------------------

TEST(Consistency, CriticalPathBoundsEveryParadigm) {
  // No paradigm can beat the workflow's uncontended critical path.
  wfcommons::WorkflowGenerator generator;
  const wfcommons::Workflow wf = generator.generate("epigenomics", 80, 5);
  const double floor_seconds = wfcommons::critical_path(wf).seconds;
  for (const Paradigm paradigm :
       {Paradigm::kKn10wNoPM, Paradigm::kLC10wNoPM, Paradigm::kLC10wNoPMNoCR,
        Paradigm::kKn1000wPM}) {
    ExperimentConfig config = config_for(paradigm, "epigenomics", 80, 5);
    const ExperimentResult result = run_experiment(config);
    ASSERT_TRUE(result.ok()) << to_string(paradigm);
    EXPECT_GT(result.makespan_seconds, floor_seconds) << to_string(paradigm);
  }
}

// ---- data backends (future work §VII) -------------------------------------------------

TEST(DataBackend, ObjectStoreRunsCompleteOnBothParadigms) {
  for (const Paradigm paradigm : {Paradigm::kKn10wNoPM, Paradigm::kLC10wNoPM}) {
    ExperimentConfig config = config_for(paradigm, "srasearch", 60);
    config.backend = DataBackend::kObjectStore;
    const ExperimentResult result = run_experiment(config);
    EXPECT_TRUE(result.ok()) << to_string(paradigm) << ": " << result.failure_reason;
  }
}

TEST(DataBackend, BackendChangesTimingButNotOutcome) {
  ExperimentConfig config = config_for(Paradigm::kLC10wNoPM, "srasearch", 80);
  const ExperimentResult shared = run_experiment(config);
  config.backend = DataBackend::kObjectStore;
  const ExperimentResult remote = run_experiment(config);
  ASSERT_TRUE(shared.ok() && remote.ok());
  EXPECT_EQ(shared.run.tasks_total, remote.run.tasks_total);
  // The per-request tax shows up somewhere, but stays second-order.
  EXPECT_NE(shared.makespan_seconds, remote.makespan_seconds);
  EXPECT_LT(std::abs(shared.makespan_seconds - remote.makespan_seconds),
            shared.makespan_seconds * 0.25);
}

// ---- spec overrides (ablation hooks) ---------------------------------------------------

TEST(SpecOverride, KnativeOverrideIsHonoured) {
  ExperimentConfig config = config_for(Paradigm::kKn10wNoPM, "blast", 60);
  faas::KnativeServiceSpec spec = knative_spec_for(config.paradigm);
  spec.max_scale = 2;  // tiny ceiling
  config.knative_spec_override = spec;
  const ExperimentResult throttled = run_experiment(config);
  const ExperimentResult stock = run_experiment(config_for(Paradigm::kKn10wNoPM, "blast", 60));
  ASSERT_TRUE(throttled.ok() && stock.ok());
  EXPECT_LE(throttled.max_ready_pods, 2u);
  EXPECT_GT(throttled.makespan_seconds, stock.makespan_seconds);
}

TEST(SpecOverride, LocalOverrideIsHonoured) {
  ExperimentConfig config = config_for(Paradigm::kLC10wNoPM, "blast", 60);
  containers::LocalRuntimeConfig lconfig = local_config_for(config.paradigm);
  lconfig.container.service.workers = 4;  // starve the fleet
  config.local_config_override = lconfig;
  const ExperimentResult starved = run_experiment(config);
  const ExperimentResult stock = run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 60));
  ASSERT_TRUE(starved.ok() && stock.ok());
  EXPECT_GT(starved.makespan_seconds, stock.makespan_seconds);
}

// ---- campaigns -------------------------------------------------------------------------

TEST(Campaign, RunsCellsAndExportsCsv) {
  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM, Paradigm::kLC10wNoPM};
  spec.recipes = {"blast", "seismology"};
  spec.sizes = {30};
  Campaign campaign(spec);
  std::size_t progress_calls = 0;
  campaign.run([&](const ExperimentResult&) { ++progress_calls; });
  EXPECT_TRUE(campaign.completed());
  EXPECT_EQ(progress_calls, 4u);
  EXPECT_EQ(campaign.failed_cells(), 0u);
  EXPECT_NE(campaign.find(Paradigm::kKn10wNoPM, "blast", 30), nullptr);
  EXPECT_EQ(campaign.find(Paradigm::kKn10wNoPM, "blast", 99), nullptr);

  const std::string csv = campaign.summary_csv();
  EXPECT_NE(csv.find("paradigm,recipe,tasks"), std::string::npos);
  EXPECT_NE(csv.find("Kn10wNoPM,blast,30"), std::string::npos);
  // header + 4 data rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
}

TEST(Campaign, PaperDesignsMatchTableOne) {
  EXPECT_EQ(paper_fine_grained_campaign().cell_count(), 98u);
  EXPECT_EQ(paper_coarse_grained_campaign().cell_count(), 42u);
}

// A 12-cell grid of small workflows, shared by the parallelism tests.
CampaignSpec small_parallel_spec() {
  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM, Paradigm::kLC10wNoPM};
  spec.recipes = {"blast", "seismology", "cycles"};
  spec.sizes = {20, 30};
  return spec;
}

TEST(Campaign, ParallelRunMatchesSequentialByteForByte) {
  CampaignSpec spec = small_parallel_spec();
  ASSERT_EQ(spec.cell_count(), 12u);

  spec.jobs = 1;
  Campaign sequential(spec);
  sequential.run();
  spec.jobs = 4;
  Campaign parallel(spec);
  parallel.run();

  EXPECT_TRUE(parallel.completed());
  ASSERT_EQ(parallel.results().size(), sequential.results().size());
  // Deterministic collection order: the CSV must not depend on which worker
  // finished first.
  EXPECT_EQ(parallel.summary_csv(), sequential.summary_csv());
  for (std::size_t i = 0; i < parallel.results().size(); ++i) {
    EXPECT_EQ(parallel.results()[i].config.recipe,
              sequential.results()[i].config.recipe);
    EXPECT_DOUBLE_EQ(parallel.results()[i].makespan_seconds,
                     sequential.results()[i].makespan_seconds);
  }
}

TEST(Campaign, ProgressFiresOncePerCellUnderContention) {
  CampaignSpec spec = small_parallel_spec();
  spec.jobs = 4;
  Campaign campaign(spec);
  // The progress callback is serialized, so plain (unsynchronised-by-the-
  // caller) state must stay consistent even with 4 workers completing cells.
  std::size_t calls = 0;
  std::set<std::string> cells_seen;
  campaign.run([&](const ExperimentResult& result) {
    ++calls;
    cells_seen.insert(support::format("{}/{}/{}", result.paradigm_name,
                                      result.config.recipe, result.config.num_tasks));
  });
  EXPECT_EQ(calls, spec.cell_count());
  EXPECT_EQ(cells_seen.size(), spec.cell_count());  // each cell exactly once
}

TEST(Campaign, FindMatchesFullConfigKey) {
  // Regression: find() used to match only (paradigm, recipe, size), so a
  // campaign sweeping wfm.scheduling or seeds silently returned the first
  // matching cell regardless of the remaining key.
  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM};
  spec.recipes = {"blast"};
  spec.sizes = {30};
  spec.schedulings = {SchedulingMode::kPhaseBarrier, SchedulingMode::kDependencyDriven};
  spec.seeds = {1, 2};
  spec.jobs = 1;
  ASSERT_EQ(spec.cell_count(), 4u);
  Campaign campaign(spec);
  campaign.run();
  ASSERT_TRUE(campaign.completed());

  // Ambiguous partial keys no longer pick an arbitrary cell.
  EXPECT_EQ(campaign.find(Paradigm::kKn10wNoPM, "blast", 30), nullptr);
  EXPECT_EQ(campaign.find(Paradigm::kKn10wNoPM, "blast", 30, 1), nullptr);

  for (const std::uint64_t seed : {1u, 2u}) {
    for (const SchedulingMode mode :
         {SchedulingMode::kPhaseBarrier, SchedulingMode::kDependencyDriven}) {
      const ExperimentResult* cell =
          campaign.find(Paradigm::kKn10wNoPM, "blast", 30, seed, mode);
      ASSERT_NE(cell, nullptr);
      EXPECT_EQ(cell->config.seed, seed);
      EXPECT_EQ(cell->config.wfm.scheduling, mode);
    }
  }
  // A fully-specified key that was never run stays a miss.
  EXPECT_EQ(campaign.find(Paradigm::kKn10wNoPM, "blast", 30, 3,
                          SchedulingMode::kPhaseBarrier),
            nullptr);
}

TEST(Fleet, ParallelSweepMatchesIndividualRuns) {
  std::vector<FleetConfig> configs(3);
  configs[0].paradigm = Paradigm::kKn10wNoPM;
  configs[0].items = {{"blast", 40, 1}, {"bwa", 40, 2}};
  configs[1].paradigm = Paradigm::kLC10wNoPM;
  configs[1].items = {{"seismology", 40, 3}};
  configs[2].paradigm = Paradigm::kKn10wNoPM;
  configs[2].items = {{"cycles", 40, 4}};
  configs[2].concurrent = false;

  const std::vector<FleetResult> pooled = run_fleets(configs, 3);
  ASSERT_EQ(pooled.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const FleetResult solo = run_fleet(configs[i]);
    EXPECT_EQ(pooled[i].ok(), solo.ok()) << i;
    EXPECT_DOUBLE_EQ(pooled[i].wall_seconds, solo.wall_seconds) << i;
    EXPECT_EQ(pooled[i].cold_starts, solo.cold_starts) << i;
    EXPECT_EQ(pooled[i].runs.size(), solo.runs.size()) << i;
  }
}

// ---- WfInstances -----------------------------------------------------------------------

TEST(WfInstances, CatalogLoadsAndValidates) {
  const auto names = wfcommons::instance_names();
  EXPECT_EQ(names.size(), 5u);
  for (const auto& info : wfcommons::instance_catalog()) {
    const wfcommons::Workflow wf = wfcommons::load_instance(info.name);
    EXPECT_TRUE(wf.validate().empty()) << info.name;
    EXPECT_EQ(wf.size(), info.tasks) << info.name;
    EXPECT_EQ(wf.name(), info.name);
    // Every instance's family key resolves to a recipe.
    EXPECT_NO_THROW((void)wfcommons::make_recipe(info.family)) << info.name;
  }
  EXPECT_THROW(wfcommons::load_instance("montage-large"), std::invalid_argument);
}

TEST(WfInstances, InstancesAreDeterministic) {
  const wfcommons::Workflow a = wfcommons::load_instance("blast-chameleon-small");
  const wfcommons::Workflow b = wfcommons::load_instance("blast-chameleon-small");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.tasks().size(); ++i) {
    EXPECT_EQ(a.tasks()[i].name, b.tasks()[i].name);
    EXPECT_DOUBLE_EQ(a.tasks()[i].cpu_work, b.tasks()[i].cpu_work);
  }
}

TEST(WfInstances, InstancesExecuteEndToEnd) {
  // Curated traces run through the whole serverless stack like any
  // generated workflow (they are plain Workflows).
  for (const std::string& name : wfcommons::instance_names()) {
    sim::Simulation sim;
    cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
    storage::SharedFilesystem fs(sim);
    net::Router router(sim);
    faas::KnativeServiceSpec spec = knative_spec_for(Paradigm::kKn10wNoPM);
    faas::KnativePlatform platform(sim, cluster, fs, router, spec);
    platform.deploy();
    wfcommons::Workflow wf = wfcommons::load_instance(name);
    wfcommons::KnativeTranslatorConfig tconfig;
    tconfig.service_url = "http://" + spec.authority + "/wfbench";
    wfcommons::KnativeTranslator(tconfig).apply(wf);
    WorkflowManager wfm(sim, router, fs);
    std::optional<WorkflowRunResult> result;
    wfm.run(wf, [&](WorkflowRunResult r) { result = std::move(r); });
    sim.run_until(sim::kHour);
    ASSERT_TRUE(result.has_value()) << name;
    EXPECT_TRUE(result->ok()) << name;
    platform.shutdown();
  }
}

// ---- series sanity -----------------------------------------------------------------------

TEST(Series, SampledAtOneSecondCadence) {
  const ExperimentResult result =
      run_experiment(config_for(Paradigm::kLC10wNoPM, "blast", 50));
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.cpu_series.size(), 3u);
  // Samples land 1 s apart (the PCP cadence), except the boundary samples.
  const auto& samples = result.cpu_series.samples();
  for (std::size_t i = 2; i + 2 < samples.size(); ++i) {
    EXPECT_EQ(samples[i + 1].time - samples[i].time, sim::kSecond);
  }
  // Memory series shows the resident baseline once the containers are up
  // (the paper's always-on local containers); the t=0 sample is legitimately
  // zero because the containers take ~1 s to boot.
  EXPECT_GT(samples.back().value, 0.0);
  EXPECT_GT(result.memory_series.max(), 10.0);  // GiB of resident worker pools
}

TEST(Series, EnergyEqualsPowerIntegral) {
  const ExperimentResult result =
      run_experiment(config_for(Paradigm::kKn10wNoPM, "blast", 50));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.energy_joules, result.power_series.integral());
  // Sanity: energy >= idle power x makespan.
  EXPECT_GE(result.energy_joules, 0.9 * 2 * 105.0 * result.makespan_seconds);
}

}  // namespace
}  // namespace wfs::core
