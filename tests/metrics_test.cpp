// Unit tests for the telemetry substrate (time series, sampler, pmdump CSV,
// aggregation, ASCII charts).
#include <gtest/gtest.h>

#include "metrics/aggregate.h"
#include "metrics/ascii_chart.h"
#include "metrics/pmdump.h"
#include "metrics/sampler.h"
#include "metrics/time_series.h"
#include "sim/simulation.h"
#include "support/strings.h"

namespace wfs::metrics {
namespace {

TimeSeries make_series(std::initializer_list<std::pair<double, double>> points) {
  TimeSeries series;
  for (const auto& [t, v] : points) series.push(sim::from_seconds(t), v);
  return series;
}

// ---- time series ---------------------------------------------------------------

TEST(TimeSeries, BasicStats) {
  const TimeSeries s = make_series({{0, 1.0}, {1, 3.0}, {2, 5.0}});
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(TimeSeries, EmptySeriesIsSafe) {
  const TimeSeries s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.integral(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(TimeSeries, RejectsNonMonotonicTime) {
  TimeSeries s;
  s.push(10, 1.0);
  EXPECT_THROW(s.push(5, 2.0), std::invalid_argument);
  EXPECT_NO_THROW(s.push(10, 3.0));  // equal timestamps allowed
}

TEST(TimeSeries, Percentiles) {
  TimeSeries s;
  for (int i = 1; i <= 100; ++i) s.push(i, static_cast<double>(i));
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(95), 95.05, 1e-9);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(TimeSeries, IntegralTrapezoid) {
  // Power 100 W for 10 s then 200 W for 10 s (linear ramp between samples).
  const TimeSeries s = make_series({{0, 100}, {10, 100}, {20, 200}});
  EXPECT_DOUBLE_EQ(s.integral(), 100 * 10 + 150 * 10);  // joules
}

TEST(TimeSeries, TimeWeightedMeanHandlesIrregularSampling) {
  // 0 for 1 s, then 10 for 9 s: arithmetic mean = 20/3, weighted ~ 9.5/10.
  const TimeSeries s = make_series({{0, 0.0}, {1, 0.0}, {10, 10.0}});
  EXPECT_NEAR(s.time_weighted_mean(), (0.0 * 1 + 5.0 * 9) / 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(make_series({{0, 4}, {1, 4}}).time_weighted_mean(), 4.0);
}

TEST(TimeSeries, WindowedPercentileSplitsTheSpan) {
  // 40 s span, values 1..40 at 1 Hz: four 10 s windows, one p99 sample each
  // (time at the window's end, value from the samples inside it).
  TimeSeries s;
  for (int i = 1; i <= 40; ++i) s.push(sim::from_seconds(i), static_cast<double>(i));
  const TimeSeries windowed = windowed_percentile(s, 4, 100.0);
  ASSERT_EQ(windowed.size(), 4u);
  EXPECT_DOUBLE_EQ(windowed[0].value, 10.0);
  EXPECT_DOUBLE_EQ(windowed[1].value, 20.0);
  EXPECT_DOUBLE_EQ(windowed[2].value, 30.0);
  EXPECT_DOUBLE_EQ(windowed[3].value, 40.0);
  EXPECT_EQ(windowed[3].time, sim::from_seconds(40));
  EXPECT_THROW(windowed_percentile(s, 4, 101.0), std::invalid_argument);
}

TEST(TimeSeries, WindowedPercentileCollapsesDegenerateInputs) {
  // Fewer than 2 samples, a zero span, or a single window: one whole-series
  // sample.
  const TimeSeries single = make_series({{5, 7.0}});
  EXPECT_EQ(windowed_percentile(single, 4, 99.0).size(), 1u);
  const TimeSeries flat = make_series({{3, 1.0}, {3, 9.0}});
  const TimeSeries collapsed = windowed_percentile(flat, 4, 100.0);
  ASSERT_EQ(collapsed.size(), 1u);
  EXPECT_DOUBLE_EQ(collapsed[0].value, 9.0);
  EXPECT_EQ(windowed_percentile(make_series({{0, 1.0}, {10, 2.0}}), 1, 50.0).size(), 1u);
  EXPECT_TRUE(windowed_percentile(TimeSeries{}, 4, 99.0).empty());
}

// ---- aggregation ----------------------------------------------------------------

TEST(Aggregate, SummaryFields) {
  const Summary s = summarize(make_series({{0, 2.0}, {1, 4.0}, {2, 6.0}}));
  EXPECT_EQ(s.samples, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.p50, 4.0);
  EXPECT_DOUBLE_EQ(s.integral, 8.0);
  EXPECT_FALSE(to_string(s).empty());
}

TEST(Aggregate, EmptySummary) {
  const Summary s = summarize(TimeSeries{});
  EXPECT_EQ(s.samples, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Aggregate, P99TracksTailOfTheSeries) {
  TimeSeries series;
  for (int i = 1; i <= 100; ++i) series.push(i, static_cast<double>(i));
  const Summary s = summarize(series);
  EXPECT_DOUBLE_EQ(s.p99, series.percentile(99.0));
  EXPECT_GT(s.p99, s.p95);
  EXPECT_LE(s.p99, s.max);
}

TEST(Aggregate, ToStringIncludesTailAndIntegral) {
  const Summary s = summarize(make_series({{0, 2.0}, {1, 4.0}, {2, 6.0}}));
  const std::string text = to_string(s);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p95="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("integral="), std::string::npos);
}

// ---- sampler --------------------------------------------------------------------

TEST(Sampler, SamplesAtCadence) {
  sim::Simulation sim;
  Sampler sampler(sim, sim::kSecond);
  double gauge = 0.0;
  sampler.add_probe("gauge", [&] { return gauge; });
  sampler.start();
  sim.schedule_at(2 * sim::kSecond + 1, [&] { gauge = 7.0; });
  sim.run_until(5 * sim::kSecond);
  sampler.stop();
  const TimeSeries& series = sampler.series("gauge");
  ASSERT_EQ(series.size(), 6u);  // t = 0..5 s
  EXPECT_DOUBLE_EQ(series[2].value, 0.0);
  EXPECT_DOUBLE_EQ(series[3].value, 7.0);
}

TEST(Sampler, SampleNowAvoidsDuplicates) {
  sim::Simulation sim;
  Sampler sampler(sim, sim::kSecond);
  sampler.add_probe("g", [] { return 1.0; });
  sampler.sample_now();
  sampler.sample_now();  // same instant: dropped
  EXPECT_EQ(sampler.series("g").size(), 1u);
}

TEST(Sampler, UnknownSeriesThrows) {
  sim::Simulation sim;
  Sampler sampler(sim);
  EXPECT_THROW(sampler.series("nope"), std::out_of_range);
  EXPECT_FALSE(sampler.has_series("nope"));
}

TEST(Sampler, AddProbeOverwriteResetsTheSeries) {
  sim::Simulation sim;
  Sampler sampler(sim, sim::kSecond);
  sampler.add_probe("cpu", [] { return 100.0; });
  sampler.sample_now();
  ASSERT_EQ(sampler.series("cpu").size(), 1u);
  // Re-registering the name swaps the probe AND drops the stale samples —
  // keeping them would splice two different quantities into one series.
  sampler.add_probe("cpu", [] { return 5.0; });
  EXPECT_EQ(sampler.series("cpu").size(), 0u);
  sim.schedule_at(sim::kSecond, [] {});
  sim.run_until(sim::kSecond);
  sampler.sample_now();
  ASSERT_EQ(sampler.series("cpu").size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.series("cpu")[0].value, 5.0);
}

TEST(Sampler, ProbeNamesSortedDeterministically) {
  sim::Simulation sim;
  Sampler sampler(sim);
  sampler.add_probe("zeta", [] { return 0.0; });
  sampler.add_probe("alpha", [] { return 0.0; });
  EXPECT_EQ(sampler.probe_names(), (std::vector<std::string>{"alpha", "zeta"}));
}

// ---- pmdump ---------------------------------------------------------------------

TEST(Pmdump, CsvLayout) {
  sim::Simulation sim;
  Sampler sampler(sim, sim::kSecond);
  sampler.add_probe("cpu", [&sim] { return sim::to_seconds(sim.now()) * 10.0; });
  sampler.add_probe("mem", [] { return 2.5; });
  sampler.start();
  sim.run_until(2 * sim::kSecond);
  sampler.stop();

  const std::string csv = pmdump_csv(sampler, {"cpu", "mem"});
  const auto lines = support::split(csv, '\n');
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "time,cpu,mem");
  EXPECT_EQ(lines[1], "0.000,0,2.5");
  EXPECT_EQ(lines[2], "1.000,10,2.5");
  EXPECT_EQ(lines[3], "2.000,20,2.5");
}

TEST(Pmdump, CustomSeparator) {
  sim::Simulation sim;
  Sampler sampler(sim);
  sampler.add_probe("x", [] { return 1.0; });
  sampler.sample_now();
  PmdumpOptions options;
  options.separator = ';';
  const std::string csv = pmdump_csv(sampler, {"x"}, options);
  EXPECT_NE(csv.find("time;x"), std::string::npos);
}

TEST(Pmdump, AllProbes) {
  sim::Simulation sim;
  Sampler sampler(sim);
  sampler.add_probe("b", [] { return 1.0; });
  sampler.add_probe("a", [] { return 2.0; });
  sampler.sample_now();
  const std::string csv = pmdump_csv_all(sampler);
  EXPECT_EQ(support::split(csv, '\n')[0], "time,a,b");
}

TEST(Pmdump, UnknownSeriesThrows) {
  sim::Simulation sim;
  Sampler sampler(sim);
  EXPECT_THROW(pmdump_csv(sampler, {"ghost"}), std::out_of_range);
}

// ---- ascii charts ----------------------------------------------------------------

TEST(AsciiChart, BarChartScalesToMax) {
  BarChartOptions options;
  options.width = 10;
  options.unit = "s";
  const std::string chart = bar_chart({{"short", 5.0}, {"long", 10.0}}, options);
  const auto lines = support::split(chart, '\n');
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("|#####     |"), std::string::npos);
  EXPECT_NE(lines[1].find("|##########|"), std::string::npos);
  EXPECT_NE(lines[0].find("5.00 s"), std::string::npos);
}

TEST(AsciiChart, ZeroMaxProducesEmptyBars) {
  BarChartOptions options;
  options.width = 4;
  const std::string chart = bar_chart({{"z", 0.0}}, options);
  EXPECT_NE(chart.find("|    |"), std::string::npos);
}

TEST(AsciiChart, GroupedBarsValidateShape) {
  GroupedBars data;
  data.series_names = {"Kn", "LC"};
  data.row_labels = {"blast"};
  data.values = {{1.0, 2.0}};
  EXPECT_NO_THROW(grouped_bar_chart(data));
  data.values = {{1.0}};
  EXPECT_THROW(grouped_bar_chart(data), std::invalid_argument);
  data.values = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_THROW(grouped_bar_chart(data), std::invalid_argument);
}

TEST(AsciiChart, SparklineWidthAndRange) {
  TimeSeries series;
  for (int i = 0; i < 100; ++i) series.push(i, static_cast<double>(i % 10));
  const std::string line = sparkline(series, 32);
  EXPECT_EQ(line.size(), 32u);
  EXPECT_TRUE(sparkline(TimeSeries{}, 32).empty());
  EXPECT_TRUE(sparkline(series, 0).empty());
}

TEST(AsciiChart, SparklineFlatSeriesIsLowLevel) {
  TimeSeries series;
  for (int i = 0; i < 10; ++i) series.push(i, 5.0);
  const std::string line = sparkline(series, 10);
  for (const char c : line) EXPECT_EQ(c, ' ');
}

}  // namespace
}  // namespace wfs::metrics
