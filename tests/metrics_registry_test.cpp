// Tests for the always-on metrics registry: instruments, snapshots,
// Prometheus exposition, JSON persistence, merge/delta algebra, thread
// safety on a support::ThreadPool, and the end-to-end experiment wiring
// (every instrumented component shows up in a run's exposition).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/experiment.h"
#include "core/report.h"
#include "core/results_io.h"
#include "metrics/registry.h"
#include "support/thread_pool.h"

namespace wfs::metrics {
namespace {

// ---- instruments ------------------------------------------------------------------

TEST(Counter, IncrementsMonotonically) {
  Counter counter;
  EXPECT_DOUBLE_EQ(counter.value(), 0.0);
  counter.inc();
  counter.inc(2.5);
  EXPECT_DOUBLE_EQ(counter.value(), 3.5);
}

TEST(Gauge, SetAndAdd) {
  Gauge gauge;
  gauge.set(7.0);
  gauge.add(-2.0);
  EXPECT_DOUBLE_EQ(gauge.value(), 5.0);
}

TEST(HistogramSpec, DefaultBoundsAreLogSpaced) {
  const std::vector<double> bounds = HistogramSpec{}.bounds();
  ASSERT_EQ(bounds.size(), 30u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], 2.0, 1e-9);
  }
}

TEST(Histogram, ObservationsLandInTheRightBuckets) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);    // <= 1
  histogram.observe(1.0);    // <= 1 (bounds are inclusive upper edges)
  histogram.observe(5.0);    // <= 10
  histogram.observe(50.0);   // <= 100
  histogram.observe(500.0);  // overflow
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 556.5);
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
}

// ---- registry ---------------------------------------------------------------------

TEST(Registry, HandlesAreStableAndSharedAcrossLabelOrder) {
  MetricsRegistry registry;
  Counter& a = registry.counter("requests_total", "requests",
                                {{"authority", "svc"}, {"status", "200"}});
  // Same labels in a different order name the same child.
  Counter& b = registry.counter("requests_total", "requests",
                                {{"status", "200"}, {"authority", "svc"}});
  EXPECT_EQ(&a, &b);
  // Registering more children must not invalidate earlier handles.
  for (int i = 0; i < 100; ++i) {
    registry.counter("requests_total", "requests",
                     {{"authority", "svc"}, {"status", std::to_string(300 + i)}});
  }
  a.inc();
  EXPECT_DOUBLE_EQ(b.value(), 1.0);
}

TEST(Registry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("widget_total", "widgets");
  EXPECT_THROW(registry.gauge("widget_total", "widgets"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("widget_total", "widgets"), std::invalid_argument);
}

TEST(Registry, SnapshotIsDeterministicallyOrdered) {
  MetricsRegistry registry;
  registry.counter("zeta_total", "z");
  registry.gauge("alpha_depth", "a");
  registry.counter("mid_total", "m", {{"b", "2"}});
  registry.counter("mid_total", "m", {{"a", "1"}});
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.families.size(), 3u);
  EXPECT_EQ(snapshot.families[0].name, "alpha_depth");
  EXPECT_EQ(snapshot.families[1].name, "mid_total");
  EXPECT_EQ(snapshot.families[2].name, "zeta_total");
  // Children sorted by canonical label text.
  ASSERT_EQ(snapshot.families[1].points.size(), 2u);
  EXPECT_EQ(snapshot.families[1].points[0].labels, (LabelSet{{"a", "1"}}));
  EXPECT_EQ(snapshot.families[1].points[1].labels, (LabelSet{{"b", "2"}}));
}

TEST(Registry, SnapshotFindMatchesUnsortedLabels) {
  MetricsRegistry registry;
  registry.counter("ops_total", "ops", {{"backend", "fs"}, {"op", "read"}}).inc(3.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricPoint* point =
      snapshot.find("ops_total", {{"op", "read"}, {"backend", "fs"}});
  ASSERT_NE(point, nullptr);
  EXPECT_DOUBLE_EQ(point->value, 3.0);
  EXPECT_EQ(snapshot.find("ops_total", {{"op", "write"}}), nullptr);
  EXPECT_EQ(snapshot.find("missing_total"), nullptr);
}

// ---- exposition -------------------------------------------------------------------

TEST(Exposition, CounterAndGaugeFormat) {
  MetricsRegistry registry;
  registry.counter("http_requests_total", "served requests",
                   {{"authority", "svc.example"}, {"status", "200"}})
      .inc(42.0);
  registry.gauge("ready_pods", "pods ready").set(3.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# HELP http_requests_total served requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE http_requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("http_requests_total{authority=\"svc.example\",status=\"200\"} 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ready_pods gauge\n"), std::string::npos);
  EXPECT_NE(text.find("ready_pods 3\n"), std::string::npos);
}

TEST(Exposition, HistogramEmitsCumulativeBuckets) {
  MetricsRegistry registry;
  HistogramSpec spec;
  spec.first_bound = 1.0;
  spec.growth = 10.0;
  spec.bucket_count = 2;  // bounds 1, 10
  Histogram& histogram = registry.histogram("latency_seconds", "latency", {}, spec);
  histogram.observe(0.5);
  histogram.observe(5.0);
  histogram.observe(50.0);
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 55.5\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);
}

TEST(Exposition, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.counter("odd_total", "odd", {{"path", "a\\b\"c\nd"}}).inc();
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("odd_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"), std::string::npos);
}

// ---- JSON persistence -------------------------------------------------------------

TEST(SnapshotJson, RoundTripPreservesEverything) {
  MetricsRegistry registry;
  registry.counter("ops_total", "ops", {{"backend", "fs"}}).inc(7.0);
  registry.gauge("depth", "queue depth").set(2.0);
  registry.histogram("lat_seconds", "latency").observe(0.004);
  const MetricsSnapshot original = registry.snapshot();
  const MetricsSnapshot restored = snapshot_from_json(snapshot_to_json(original));
  // Byte-identical expositions prove the snapshots match in full.
  EXPECT_EQ(prometheus_text(restored), prometheus_text(original));
}

TEST(SnapshotJson, RejectsUnknownKind) {
  json::Object family;
  family.set("name", "x");
  family.set("help", "");
  family.set("kind", "tachometer");
  family.set("points", json::Array{});
  json::Array families;
  families.push_back(json::Value(std::move(family)));
  json::Object document;
  document.set("families", json::Value(std::move(families)));
  EXPECT_THROW(snapshot_from_json(json::Value(std::move(document))), std::invalid_argument);
}

// ---- merge / delta ----------------------------------------------------------------

MetricsSnapshot cell_snapshot(double requests, double depth, double observation) {
  MetricsRegistry registry;
  registry.counter("requests_total", "requests", {{"status", "200"}}).inc(requests);
  registry.gauge("queue_depth", "depth").set(depth);
  registry.histogram("lat_seconds", "latency").observe(observation);
  return registry.snapshot();
}

TEST(Merge, CountersAddGaugesMaxBucketsAdd) {
  MetricsSnapshot merged;
  merge_into(merged, cell_snapshot(3.0, 5.0, 0.002));
  merge_into(merged, cell_snapshot(4.0, 2.0, 0.002));
  const MetricPoint* requests = merged.find("requests_total", {{"status", "200"}});
  ASSERT_NE(requests, nullptr);
  EXPECT_DOUBLE_EQ(requests->value, 7.0);
  const MetricPoint* depth = merged.find("queue_depth", {});
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 5.0);  // max, not sum
  const MetricPoint* latency = merged.find("lat_seconds", {});
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->histogram.count, 2u);
  const std::uint64_t bucket_total =
      std::accumulate(latency->histogram.buckets.begin(),
                      latency->histogram.buckets.end(), std::uint64_t{0});
  EXPECT_EQ(bucket_total, 2u);
}

TEST(Merge, KindMismatchThrows) {
  MetricsRegistry counters;
  counters.counter("x", "x");
  MetricsRegistry gauges;
  gauges.gauge("x", "x");
  MetricsSnapshot merged = counters.snapshot();
  EXPECT_THROW(merge_into(merged, gauges.snapshot()), std::invalid_argument);
}

TEST(Merge, BucketLayoutMismatchThrows) {
  MetricsRegistry a;
  a.histogram("h", "h");
  MetricsRegistry b;
  HistogramSpec spec;
  spec.bucket_count = 4;
  b.histogram("h", "h", {}, spec);
  MetricsSnapshot merged = a.snapshot();
  EXPECT_THROW(merge_into(merged, b.snapshot()), std::invalid_argument);
}

TEST(Delta, CountersSubtractGaugesReportLater) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("ops_total", "ops");
  Gauge& gauge = registry.gauge("depth", "depth");
  Histogram& histogram = registry.histogram("lat_seconds", "latency");
  counter.inc(5.0);
  gauge.set(9.0);
  histogram.observe(0.01);
  const MetricsSnapshot before = registry.snapshot();
  counter.inc(2.0);
  gauge.set(4.0);
  histogram.observe(0.01);
  const MetricsSnapshot after = registry.snapshot();
  const MetricsSnapshot diff = delta(before, after);
  EXPECT_DOUBLE_EQ(diff.find("ops_total", {})->value, 2.0);
  EXPECT_DOUBLE_EQ(diff.find("depth", {})->value, 4.0);
  EXPECT_EQ(diff.find("lat_seconds", {})->histogram.count, 1u);
}

// ---- quantiles --------------------------------------------------------------------

TEST(Quantile, EdgeCases) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h", "h");
  histogram.observe(0.01);
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot& h = snapshot.find("h", {})->histogram;
  EXPECT_THROW(histogram_quantile(h, -0.1), std::invalid_argument);
  EXPECT_THROW(histogram_quantile(h, 1.5), std::invalid_argument);
}

TEST(Quantile, P99MatchesRawWithinOneBucketWidth) {
  // Deterministic pseudo-random latencies spread over ~4 decades.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<double> raw;
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat_seconds", "latency");
  for (int i = 0; i < 20000; ++i) {
    const double unit = static_cast<double>(next() % 1000000) / 1000000.0;
    const double value = 1e-3 * std::pow(10.0, 4.0 * unit);  // 1ms .. 10s
    raw.push_back(value);
    histogram.observe(value);
  }
  std::sort(raw.begin(), raw.end());
  const double exact_p99 = raw[static_cast<std::size_t>(0.99 * raw.size())];

  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot& h = snapshot.find("lat_seconds", {})->histogram;
  const double estimate = histogram_quantile(h, 0.99);

  // The estimate must land in (or adjacent to) the bucket holding the true
  // p99: error bounded by that bucket's width.
  const auto upper = std::lower_bound(h.bounds.begin(), h.bounds.end(), exact_p99);
  ASSERT_NE(upper, h.bounds.end());
  const double bucket_upper = *upper;
  const double bucket_lower = upper == h.bounds.begin() ? 0.0 : *(upper - 1);
  EXPECT_NEAR(estimate, exact_p99, bucket_upper - bucket_lower);
}

// ---- concurrency ------------------------------------------------------------------

TEST(Concurrency, SharedRegistryOnThreadPoolIsExactAndDeterministic) {
  // Two "campaign cells" hammer one shared registry from pool workers —
  // integer increments and dyadic (exactly-representable) observations so
  // every partial sum is exact whatever order the workers interleave in —
  // then the merged snapshot of a repeat run must be byte-identical.
  // (Non-dyadic values like 0.002 would make the atomic double sum depend
  // on addition order by an ulp, a real flake under tsan scheduling.)
  auto run_cells = [] {
    MetricsRegistry registry;
    constexpr int kJobsPerCell = 16;
    constexpr int kIncsPerJob = 5000;
    {
      support::ThreadPool pool(4);
      for (const char* cell : {"cell_a", "cell_b"}) {
        Counter& counter =
            registry.counter("cell_ops_total", "ops", {{"cell", cell}});
        Histogram& histogram =
            registry.histogram("cell_lat_seconds", "latency", {{"cell", cell}});
        for (int job = 0; job < kJobsPerCell; ++job) {
          pool.submit([&counter, &histogram] {
            for (int i = 0; i < kIncsPerJob; ++i) {
              counter.inc();
              histogram.observe(0.001953125 * ((i % 4) + 1));  // k / 2^9
            }
          });
        }
      }
      pool.wait_idle();
    }
    return registry.snapshot();
  };

  const MetricsSnapshot first = run_cells();
  const MetricsSnapshot second = run_cells();
  for (const char* cell : {"cell_a", "cell_b"}) {
    const MetricPoint* ops = first.find("cell_ops_total", {{"cell", cell}});
    ASSERT_NE(ops, nullptr) << cell;
    EXPECT_DOUBLE_EQ(ops->value, 16.0 * 5000.0) << cell;
    const MetricPoint* latency = first.find("cell_lat_seconds", {{"cell", cell}});
    ASSERT_NE(latency, nullptr) << cell;
    EXPECT_EQ(latency->histogram.count, 16u * 5000u) << cell;
  }
  EXPECT_EQ(prometheus_text(first), prometheus_text(second));
}

TEST(Concurrency, ThreadPoolSelfInstrumentationCounts) {
  MetricsRegistry registry;
  support::ThreadPool pool(2);
  pool.set_metrics(&registry);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 32);
  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricPoint* jobs = snapshot.find("pool_jobs_total", {});
  ASSERT_NE(jobs, nullptr);
  EXPECT_DOUBLE_EQ(jobs->value, 32.0);
  const MetricPoint* depth = snapshot.find("pool_queue_depth", {});
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 0.0);  // drained
}

}  // namespace
}  // namespace wfs::metrics

namespace wfs::core {
namespace {

// ---- experiment wiring ------------------------------------------------------------

TEST(ExperimentMetrics, ServerlessRunExposesEveryInstrumentedComponent) {
  ExperimentConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 30;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result.metrics.empty());

  const std::string text = metrics::prometheus_text(result.metrics);
  // Router: per-authority, per-status request counters + latency histogram.
  EXPECT_NE(text.find("http_requests_total{authority="), std::string::npos);
  EXPECT_NE(text.find("status=\"200\""), std::string::npos);
  EXPECT_NE(text.find("http_request_duration_seconds_bucket"), std::string::npos);
  // FaaS platform: cold starts + pod lifecycle + autoscaler.
  EXPECT_NE(text.find("cold_start_seconds_bucket"), std::string::npos);
  EXPECT_NE(text.find("pods_created_total"), std::string::npos);
  EXPECT_NE(text.find("autoscaler_scale_ups_total"), std::string::npos);
  // Storage backend.
  EXPECT_NE(text.find("storage_ops_total{backend=\"shared_fs\",op=\"read\"}"),
            std::string::npos);
  EXPECT_NE(text.find("storage_bytes_total"), std::string::npos);
  // WFM families are registered eagerly, so zero-valued retries still show.
  EXPECT_NE(text.find("wfm_task_attempts_total"), std::string::npos);
  EXPECT_NE(text.find("wfm_task_retries_total"), std::string::npos);

  // Sanity: the cold-start histogram agrees with the platform's own count.
  const metrics::MetricFamily* cold = result.metrics.find("cold_start_seconds");
  ASSERT_NE(cold, nullptr);
  std::uint64_t cold_count = 0;
  for (const metrics::MetricPoint& point : cold->points) {
    cold_count += point.histogram.count;
  }
  EXPECT_EQ(cold_count, static_cast<std::uint64_t>(result.cold_starts));
  // And the attempts counter covers every task at least once.
  const metrics::MetricPoint* attempts = result.metrics.find("wfm_task_attempts_total", {});
  ASSERT_NE(attempts, nullptr);
  EXPECT_GE(attempts->value, static_cast<double>(result.run.tasks_total));
}

TEST(ExperimentMetrics, CollectMetricsOffYieldsEmptySnapshot) {
  ExperimentConfig config;
  config.recipe = "blast";
  config.num_tasks = 20;
  config.collect_metrics = false;
  const ExperimentResult result = run_experiment(config);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.metrics.empty());
}

TEST(ExperimentMetrics, SnapshotSurvivesResultsIoRoundTrip) {
  ExperimentConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.recipe = "seismology";
  config.num_tasks = 30;
  const ExperimentResult original = run_experiment(config);
  ASSERT_FALSE(original.metrics.empty());
  const ExperimentResult restored = parse_result(write_result(original));
  EXPECT_EQ(metrics::prometheus_text(restored.metrics),
            metrics::prometheus_text(original.metrics));
}

TEST(ExperimentMetrics, SummaryCsvIsIdenticalWithMetricsOnAndOff) {
  auto run_campaign = [](bool collect) {
    CampaignSpec spec;
    spec.paradigms = {Paradigm::kKn10wNoPM};
    spec.recipes = {"blast"};
    spec.sizes = {20};
    spec.collect_metrics = collect;
    Campaign campaign(std::move(spec));
    campaign.run();
    return campaign.summary_csv();
  };
  EXPECT_EQ(run_campaign(true), run_campaign(false));
}

TEST(ExperimentMetrics, SummaryP99SurvivesResultsIoAndReachesTheCsv) {
  ExperimentConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 30;
  const ExperimentResult original = run_experiment(config);
  ASSERT_TRUE(original.ok());
  EXPECT_GE(original.cpu_percent.p99, original.cpu_percent.p50);
  const ExperimentResult restored = parse_result(write_result(original));
  EXPECT_DOUBLE_EQ(restored.cpu_percent.p99, original.cpu_percent.p99);
  EXPECT_DOUBLE_EQ(restored.cpu_percent.p50, original.cpu_percent.p50);

  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM};
  spec.recipes = {"blast"};
  spec.sizes = {30};
  Campaign campaign(std::move(spec));
  campaign.run();
  const std::string csv = campaign.summary_csv();
  EXPECT_NE(csv.find("cpu_pct_p50,cpu_pct_p99"), std::string::npos);
}

TEST(ExperimentMetrics, CampaignMergesCellSnapshots) {
  CampaignSpec spec;
  spec.paradigms = {Paradigm::kKn10wNoPM};
  spec.recipes = {"blast"};
  spec.sizes = {20};
  spec.seeds = {1, 2};
  Campaign campaign(std::move(spec));
  const std::vector<ExperimentResult>& results = campaign.run();
  ASSERT_EQ(results.size(), 2u);
  const metrics::MetricsSnapshot merged = campaign.merged_metrics();
  ASSERT_FALSE(merged.empty());
  const metrics::MetricPoint* merged_attempts =
      merged.find("wfm_task_attempts_total", {});
  ASSERT_NE(merged_attempts, nullptr);
  double expected = 0.0;
  for (const ExperimentResult& result : results) {
    const metrics::MetricPoint* attempts =
        result.metrics.find("wfm_task_attempts_total", {});
    ASSERT_NE(attempts, nullptr);
    expected += attempts->value;
  }
  EXPECT_DOUBLE_EQ(merged_attempts->value, expected);
}

TEST(ExperimentMetrics, MetricsReportRendersHistogramsAndScalars) {
  ExperimentConfig config;
  config.paradigm = Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 30;
  const ExperimentResult result = run_experiment(config);
  ASSERT_FALSE(result.metrics.empty());
  const std::string report = metrics_report(result.metrics);
  EXPECT_NE(report.find("== metrics =="), std::string::npos);
  EXPECT_NE(report.find("http_requests_total"), std::string::npos);
  EXPECT_NE(report.find("p99="), std::string::npos);
  EXPECT_EQ(metrics_report(metrics::MetricsSnapshot{}), "");
}

}  // namespace
}  // namespace wfs::core
