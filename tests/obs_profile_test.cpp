// Run profiler: observed critical-path extraction and makespan attribution
// (obs/profile.h, obs/critical_path.h) plus its end-to-end wiring — results
// JSON, campaign CSV gating, the trace recorder's thread safety under
// concurrent runs.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/campaign.h"
#include "core/dag.h"
#include "core/experiment.h"
#include "core/results_io.h"
#include "core/workflow_manager.h"
#include "json/parse.h"
#include "json/value.h"
#include "net/router.h"
#include "obs/critical_path.h"
#include "obs/profile.h"
#include "obs/trace_recorder.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "wfbench/task_params.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/recipes/recipe.h"
#include "wfcommons/translators/knative.h"

namespace wfs::obs {
namespace {

wfcommons::Workflow translated(const std::string& recipe, std::size_t tasks) {
  wfcommons::WorkflowGenerator generator;
  wfcommons::Workflow wf = generator.generate(recipe, tasks, 1);
  wfcommons::KnativeTranslatorConfig config;
  config.service_url = "http://svc:80/wfbench";
  wfcommons::KnativeTranslator(config).apply(wf);
  return wf;
}

/// Minimal scripted wfbench endpoint: waits `service_time`, writes the
/// declared outputs, responds 200. No gtest assertions inside — the
/// concurrency test runs it off the main thread.
void bind_fake_wfbench(sim::Simulation& sim, storage::SharedFilesystem& fs,
                       net::Router& router,
                       sim::SimTime service_time = 100 * sim::kMillisecond) {
  router.bind("svc:80", [&sim, &fs, service_time](const net::HttpRequest& request,
                                                  std::shared_ptr<net::Responder> responder) {
    const wfbench::TaskParams params =
        wfbench::task_params_from_json(json::parse(request.body));
    sim.schedule_in(service_time, [&fs, params, responder] {
      if (params.outputs.empty()) {
        responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
        return;
      }
      auto remaining = std::make_shared<std::size_t>(params.outputs.size());
      for (const auto& [file, size] : params.outputs) {
        fs.write(file, size, [remaining, responder] {
          if (--*remaining == 0) {
            responder->respond(net::HttpResponse::make_ok(R"({"runtimeInSeconds":0.1})"));
          }
        });
      }
    });
  });
}

core::WorkflowRunResult run_against_fake(const wfcommons::Workflow& wf,
                                         obs::TraceRecorder* recorder = nullptr) {
  sim::Simulation sim;
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);
  bind_fake_wfbench(sim, fs, router);
  core::WorkflowManager wfm(sim, router, fs);
  if (recorder != nullptr) wfm.set_trace(recorder);
  core::WorkflowRunResult result;
  wfm.run(wf, [&](core::WorkflowRunResult r) { result = std::move(r); });
  sim.run();
  return result;
}

// ---- segment taxonomy -------------------------------------------------------

TEST(Segment, NamesRoundTrip) {
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    const auto segment = static_cast<Segment>(i);
    EXPECT_EQ(parse_segment(to_string(segment)), segment);
  }
  EXPECT_STREQ(to_string(Segment::kColdStart), "cold-start");
  EXPECT_THROW(parse_segment("boot"), std::invalid_argument);
}

TEST(SegmentBreakdown, TotalAndDominant) {
  SegmentBreakdown breakdown;
  breakdown[Segment::kQueue] = 2.0;
  breakdown[Segment::kCompute] = 5.0;
  breakdown[Segment::kTransfer] = 1.0;
  EXPECT_DOUBLE_EQ(breakdown.total(), 8.0);
  EXPECT_EQ(breakdown.dominant(), Segment::kCompute);
  SegmentBreakdown other;
  other[Segment::kQueue] = 4.0;
  breakdown += other;
  EXPECT_DOUBLE_EQ(breakdown[Segment::kQueue], 6.0);
  EXPECT_EQ(breakdown.dominant(), Segment::kQueue);
}

// ---- attribution on a hand-built chain --------------------------------------

std::vector<TaskTiming> synthetic_chain() {
  // A [0, 10]: 2 s platform queue of which 1 s overlapped a pod boot, 3 s
  // transfer, 4 s compute — 1 s of the wall unexplained (overhead).
  TaskTiming a;
  a.name = "a";
  a.task_id = 0;
  a.gated_by = -1;
  a.released = 0.0;
  a.dispatched = 0.0;
  a.first_sent = 0.0;
  a.finished = 10.0;
  a.queue_seconds = 2.0;
  a.cold_start_seconds = 1.0;
  a.transfer_seconds = 3.0;
  a.compute_seconds = 4.0;
  a.attempts = 1;
  a.ok = true;
  // B [10, 20], gated by A: 1 s WFM dispatch delay, then a fully-explained
  // 9 s attempt of pure compute.
  TaskTiming b;
  b.name = "b";
  b.task_id = 1;
  b.gated_by = 0;
  b.released = 10.0;
  b.dispatched = 11.0;
  b.first_sent = 11.0;
  b.finished = 20.0;
  b.compute_seconds = 9.0;
  b.attempts = 1;
  b.ok = true;
  return {a, b};
}

TEST(ObservedCriticalPath, FollowsGateEdgesFromTheTail) {
  const std::vector<CriticalPathNode> path = observed_critical_path(synthetic_chain());
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0].name, "a");
  EXPECT_EQ(path[1].name, "b");
  EXPECT_DOUBLE_EQ(path[0].start_seconds, 0.0);
  EXPECT_DOUBLE_EQ(path[0].end_seconds, 10.0);
  EXPECT_DOUBLE_EQ(path[1].start_seconds, 10.0);
  EXPECT_DOUBLE_EQ(path[1].end_seconds, 20.0);
}

TEST(BuildProfile, AttributesEveryKnownSecondAndClosesTheResidual) {
  const RunProfile profile = build_profile(synthetic_chain(), 20.5);
  ASSERT_TRUE(profile.valid);
  EXPECT_DOUBLE_EQ(profile.makespan_seconds, 20.5);
  EXPECT_DOUBLE_EQ(profile.cp_length_seconds, 20.5);
  // A: cold-start is the 1 s of queue that overlapped the boot; B adds the
  // 1 s dispatch gap to queue. The 0.5 s tail gap closes into overhead.
  EXPECT_DOUBLE_EQ(profile.critical[Segment::kColdStart], 1.0);
  EXPECT_DOUBLE_EQ(profile.critical[Segment::kQueue], 2.0);
  EXPECT_DOUBLE_EQ(profile.critical[Segment::kTransfer], 3.0);
  EXPECT_DOUBLE_EQ(profile.critical[Segment::kCompute], 13.0);
  EXPECT_DOUBLE_EQ(profile.critical[Segment::kOverhead], 1.5);
  EXPECT_NEAR(profile.critical.total(), profile.makespan_seconds, 1e-9);
  EXPECT_EQ(profile.dominant(), Segment::kCompute);
  // Whole-run totals track every task, sorted by finish for the series.
  EXPECT_EQ(profile.task_wall_series.size(), 2u);
  EXPECT_EQ(profile.queue_series.size(), 2u);
}

// ---- real runs --------------------------------------------------------------

TEST(RunProfiler, SumsToMakespanOnARealRun) {
  const core::WorkflowRunResult result = run_against_fake(translated("blast", 30));
  ASSERT_TRUE(result.ok());
  const RunProfile& profile = result.profile;
  ASSERT_TRUE(profile.valid);
  EXPECT_NEAR(profile.critical.total(), result.makespan_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(profile.cp_length_seconds, result.makespan_seconds);
  // The path tiles [0, last finish] contiguously from the run's start.
  ASSERT_FALSE(profile.path.empty());
  EXPECT_DOUBLE_EQ(profile.path.front().start_seconds, 0.0);
  for (std::size_t i = 1; i < profile.path.size(); ++i) {
    EXPECT_DOUBLE_EQ(profile.path[i].start_seconds, profile.path[i - 1].end_seconds);
  }
  // The header marker gates the first release, so it leads the path.
  EXPECT_NE(profile.path.front().name.find("header"), std::string::npos);
}

TEST(RunProfiler, StaticPlanPathMatchesWfcommonsAnalysis) {
  for (const std::string& recipe : wfcommons::recipe_names()) {
    const wfcommons::Workflow wf = translated(recipe, 60);
    const core::ExecutionPlan plan = core::build_plan(wf, "/shared");
    EXPECT_NEAR(core::static_critical_path_seconds(plan),
                wfcommons::critical_path(wf).seconds, 1e-9)
        << recipe;
  }
}

TEST(RunProfiler, ObservedAtLeastStaticOnEveryRecipe) {
  for (const std::string& recipe : wfcommons::recipe_names()) {
    core::ExperimentConfig config;
    config.recipe = recipe;
    config.num_tasks = 50;
    config.collect_metrics = false;
    const core::ExperimentResult result = core::run_experiment(config);
    ASSERT_TRUE(result.ok()) << recipe << ": " << result.failure_reason;
    const RunProfile& profile = result.run.profile;
    ASSERT_TRUE(profile.valid) << recipe;
    EXPECT_GT(profile.static_cp_seconds, 0.0) << recipe;
    // The static DAG chain ignores queueing, cold starts and transfers, so
    // it lower-bounds what the run actually observed.
    EXPECT_GE(profile.cp_length_seconds + 1e-9, profile.static_cp_seconds) << recipe;
  }
}

// The paper's serverless tax, found by the profiler: a cold-start-dominated
// cell must blame cold starts, a data-bound cell must blame transfer.
TEST(RunProfiler, ColdStartDominatedCellBlamesColdStarts) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn10wNoPM;
  config.recipe = "blast";
  config.num_tasks = 100;
  config.cpu_work = 1.0;
  faas::KnativeServiceSpec spec = core::knative_spec_for(config.paradigm);
  spec.cold_start = sim::from_seconds(10.0);
  config.knative_spec_override = spec;
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const RunProfile& profile = result.run.profile;
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.dominant(), Segment::kColdStart);
  EXPECT_NEAR(profile.critical.total(), profile.makespan_seconds, 1e-6);
}

TEST(RunProfiler, TransferDominatedCellBlamesTransfer) {
  core::ExperimentConfig config;
  config.paradigm = core::Paradigm::kKn1wNoPM;
  config.recipe = "genome";
  config.num_tasks = 100;
  config.cpu_work = 1.0;
  config.data_scale = 100.0;  // shared drive, cache off: the paper data path
  faas::KnativeServiceSpec spec = core::knative_spec_for(config.paradigm);
  spec.cold_start = sim::SimTime{0};
  config.knative_spec_override = spec;
  const core::ExperimentResult result = core::run_experiment(config);
  ASSERT_TRUE(result.ok()) << result.failure_reason;
  const RunProfile& profile = result.run.profile;
  ASSERT_TRUE(profile.valid);
  EXPECT_EQ(profile.dominant(), Segment::kTransfer);
  EXPECT_NEAR(profile.critical.total(), profile.makespan_seconds, 1e-6);
}

// ---- serialization ----------------------------------------------------------

TEST(ProfileJson, RoundTripsEveryField) {
  RunProfile profile = build_profile(synthetic_chain(), 20.5);
  profile.static_cp_seconds = 13.0;
  const RunProfile back = profile_from_json(profile_to_json(profile));
  ASSERT_TRUE(back.valid);
  EXPECT_DOUBLE_EQ(back.makespan_seconds, profile.makespan_seconds);
  EXPECT_DOUBLE_EQ(back.cp_length_seconds, profile.cp_length_seconds);
  EXPECT_DOUBLE_EQ(back.static_cp_seconds, profile.static_cp_seconds);
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    const auto segment = static_cast<Segment>(i);
    EXPECT_DOUBLE_EQ(back.critical[segment], profile.critical[segment]);
    EXPECT_DOUBLE_EQ(back.total[segment], profile.total[segment]);
  }
  ASSERT_EQ(back.path.size(), profile.path.size());
  for (std::size_t i = 0; i < profile.path.size(); ++i) {
    EXPECT_EQ(back.path[i].name, profile.path[i].name);
    EXPECT_EQ(back.path[i].task_id, profile.path[i].task_id);
    EXPECT_DOUBLE_EQ(back.path[i].start_seconds, profile.path[i].start_seconds);
    EXPECT_DOUBLE_EQ(back.path[i].end_seconds, profile.path[i].end_seconds);
    EXPECT_EQ(back.path[i].dominant(), profile.path[i].dominant());
  }
  ASSERT_EQ(back.task_wall_series.size(), profile.task_wall_series.size());
  for (std::size_t i = 0; i < profile.task_wall_series.size(); ++i) {
    EXPECT_EQ(back.task_wall_series[i].time, profile.task_wall_series[i].time);
    EXPECT_DOUBLE_EQ(back.task_wall_series[i].value, profile.task_wall_series[i].value);
  }
  EXPECT_EQ(back.queue_series.size(), profile.queue_series.size());
  EXPECT_EQ(back.transfer_series.size(), profile.transfer_series.size());
}

TEST(ResultsIo, ProfileKeyRoundTripsAndIsOmittedWhenInvalid) {
  core::ExperimentResult result;
  result.workflow_name = "wf";
  result.run.profile = build_profile(synthetic_chain(), 20.5);
  const json::Value document = core::result_to_json(result);
  ASSERT_NE(document.find("profile"), nullptr);
  const core::ExperimentResult back = core::result_from_json(document);
  ASSERT_TRUE(back.run.profile.valid);
  EXPECT_DOUBLE_EQ(back.run.profile.makespan_seconds, 20.5);
  EXPECT_DOUBLE_EQ(back.run.profile.critical[Segment::kCompute],
                   result.run.profile.critical[Segment::kCompute]);

  // Runs without a valid profile (e.g. deadline hits) keep the document
  // free of the key, exactly as before the profiler existed.
  core::ExperimentResult bare;
  bare.workflow_name = "wf";
  EXPECT_EQ(core::result_to_json(bare).find("profile"), nullptr);
}

TEST(Campaign, CsvColumnsAreGatedOnTheProfileFlag) {
  core::CampaignSpec spec;
  spec.paradigms = {core::Paradigm::kKn10wNoPM};
  spec.recipes = {"blast"};
  spec.sizes = {50};
  spec.jobs = 1;
  spec.collect_metrics = false;
  core::Campaign off(spec);
  off.run();
  spec.profile = true;
  core::Campaign on(spec);
  on.run();

  const std::string csv_off = off.summary_csv();
  const std::string csv_on = on.summary_csv();
  // Off: the exact pre-profiler header, byte for byte.
  EXPECT_EQ(csv_off.substr(0, csv_off.find('\n')),
            "paradigm,recipe,tasks,seed,scheduling,status,makespan_s,cpu_pct_mean,"
            "cpu_pct_p50,cpu_pct_p99,cpu_pct_max,mem_gib_mean,mem_gib_max,power_w_mean,"
            "energy_kj,cold_starts,max_ready_pods,scheduling_failures,node_oom_events,"
            "service_oom_failures,tasks_failed,cold_start_s,retry_wait_s,input_wait_s,"
            "activator_wait_s,cache_hit_rate,shared_drive_bytes_saved,p2p_bytes_saved,"
            "storage_repair_bytes");
  EXPECT_EQ(csv_off.find("cp_length_seconds"), std::string::npos);
  // On: the same rows with the attribution columns appended.
  EXPECT_NE(csv_on.find(",cp_length_seconds,cp_coldstart_pct,cp_queue_pct,"
                        "cp_transfer_pct,cp_compute_pct"),
            std::string::npos);
  std::istringstream off_lines(csv_off);
  std::istringstream on_lines(csv_on);
  std::string off_line;
  std::string on_line;
  while (std::getline(off_lines, off_line)) {
    ASSERT_TRUE(static_cast<bool>(std::getline(on_lines, on_line)));
    EXPECT_TRUE(on_line.starts_with(off_line)) << on_line;
    EXPECT_GT(on_line.size(), off_line.size());
  }
}

// ---- trace recorder under concurrent runs -----------------------------------

// Two simulations tracing into ONE recorder from two threads — the campaign
// `--jobs N` shape. TSan (build-tsan preset) turns any recorder race into a
// hard failure; without it this still exercises the locked paths.
TEST(TraceRecorderConcurrency, TwoRunsCanShareOneRecorder) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  auto worker = [&recorder] {
    wfcommons::Workflow wf = translated("blast", 20);
    (void)run_against_fake(wf, &recorder);
  };
  std::thread first(worker);
  std::thread second(worker);
  first.join();
  second.join();
  EXPECT_GT(recorder.size(), 0u);
  const json::Value document = json::parse(recorder.chrome_trace_json());
  const json::Value* events = document.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Both runs landed their spans (same names dedupe to one process entry,
  // but each run closes exactly one "run" span).
  std::size_t run_spans = 0;
  for (const json::Value& event : events->as_array()) {
    const json::Value* cat = event.find("cat");
    if (cat != nullptr && cat->string_or("") == "run") ++run_spans;
  }
  EXPECT_EQ(run_spans, 2u);
}

}  // namespace
}  // namespace wfs::obs
