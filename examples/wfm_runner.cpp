// wfm_runner — the C++ twin of the artifact's WFM entry point:
//
//   python3 serverless-workflow-wfbench.py -r <workflow>.json <name> <cpus> <paradigm>
//
// Reads a translated workflow document from disk (produce one with
// `paradigm_explorer --translate knative > wf.json`), deploys the chosen
// computational paradigm on the simulated testbed, executes the workflow
// through the serverless workflow manager, and prints the result row plus a
// per-phase Gantt. The file's own api_urls are rewritten to the deployed
// platform's endpoint so any translated document runs on any paradigm —
// the paper's portability claim.
//
// Usage: ./build/examples/wfm_runner <workflow.json> [--paradigm Kn10wNoPM]
//                                    [--scheduling phase-barrier|dependency-driven]
//                                    [--trace out.json] [--metrics-out run.prom]
//                                    [--profile]
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "core/paradigm.h"
#include "core/report.h"
#include "core/trace.h"
#include "core/workflow_manager.h"
#include "faas/platform.h"
#include "metrics/registry.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "obs/trace_recorder.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/wfformat.h"

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("wfm_runner", "execute a translated workflow JSON file");
  cli.add_flag("paradigm", "Kn10wNoPM", "Table II paradigm to deploy");
  cli.add_flag("scheduling", "phase-barrier",
               "WFM dispatch mode: phase-barrier or dependency-driven");
  cli.add_flag("trace", "", "write a Chrome trace (chrome://tracing) to this file");
  cli.add_flag("metrics-out", "", "write a Prometheus text exposition (.prom) to this file");
  cli.add_switch("profile", "print the critical-path makespan attribution");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "usage: wfm_runner <workflow.json> [--paradigm Kn10wNoPM]"
                 " [--scheduling phase-barrier|dependency-driven] [--trace out.json]"
                 " [--metrics-out run.prom] [--profile]\n";
    return 1;
  }

  std::ifstream in(cli.positional().front());
  if (!in) {
    std::cerr << "cannot open " << cli.positional().front() << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  wfcommons::Workflow workflow;
  try {
    workflow = wfcommons::parse_workflow(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "invalid workflow document: " << e.what() << "\n";
    return 1;
  }
  std::cout << support::format("loaded {} ({} tasks)\n", workflow.name(), workflow.size());

  const core::Paradigm paradigm = core::parse_paradigm(cli.get("paradigm"));
  const core::ParadigmInfo& info = core::paradigm_info(paradigm);
  core::WfmConfig wfm_config;
  try {
    wfm_config.scheduling = core::parse_scheduling_mode(cli.get("scheduling"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  sim::Simulation sim;
  // Declared before the platform so pods can emit terminate spans during
  // platform teardown.
  obs::TraceRecorder recorder;
  recorder.set_enabled(!cli.get("trace").empty());
  // Metrics are always on here (cheap, and the runner exists to show the
  // run): the registry outlives the platform so teardown still counts.
  metrics::MetricsRegistry registry;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  fs.set_metrics(&registry);
  net::Router router(sim);
  router.set_trace(&recorder);
  router.set_metrics(&registry);

  std::unique_ptr<faas::KnativePlatform> knative;
  std::unique_ptr<containers::LocalContainerRuntime> local;
  std::string endpoint;
  if (info.serverless) {
    faas::KnativeServiceSpec spec = core::knative_spec_for(paradigm);
    knative = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    knative->set_trace(&recorder);
    knative->set_metrics(&registry);
    knative->deploy();
    endpoint = "http://" + spec.authority + "/wfbench";
  } else {
    containers::LocalRuntimeConfig config = core::local_config_for(paradigm);
    local = std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router,
                                                                config);
    local->start();
    endpoint = "http://" + config.authority + "/wfbench";
  }
  for (wfcommons::Task& task : workflow.tasks()) task.api_url = endpoint;

  metrics::Sampler sampler(sim);
  sampler.add_probe("cpu", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.sample_now();
  sampler.start();

  core::WorkflowManager wfm(sim, router, fs, wfm_config);
  wfm.set_trace(&recorder);
  wfm.set_metrics(&registry);
  std::optional<core::WorkflowRunResult> result;
  const core::RunHandle handle = wfm.run(workflow, [&](core::WorkflowRunResult r) {
    result = std::move(r);
    sampler.stop();
  });
  sim.run_until(4 * sim::kHour);

  if (!handle.done() || !result.has_value()) {
    std::cerr << "run did not conclude\n";
    return 1;
  }
  std::cout << support::format(
      "{} on {} ({}): {} — {:.1f}s, {} of {} functions failed, mean cpu {:.2f}%\n",
      workflow.name(), info.name, core::to_string(result->scheduling),
      result->ok() ? "ok" : "FAILED", result->makespan_seconds,
      result->tasks_failed, result->tasks_total,
      sampler.series("cpu").time_weighted_mean());
  std::cout << "\n" << core::render_gantt(*result);
  std::cout << support::format(
      "overheads: retry wait {:.2f}s ({} retries), input wait {:.2f}s, "
      "upstream failures {}",
      result->retry_wait_seconds, result->task_retries, result->input_wait_seconds,
      result->upstream_failures);
  if (knative) {
    std::cout << support::format(
        ", {} cold starts ({:.2f}s), activator queue {:.2f}s",
        knative->stats().pods_created, knative->stats().cold_start_seconds,
        knative->activator().total_wait_seconds());
  }
  std::cout << "\n";
  if (cli.get_switch("profile")) {
    std::cout << "\n" << core::profile_summary(result->profile);
  }
  if (knative) knative->shutdown();
  if (local) local->shutdown();
  // Save after shutdown so pod "serving" spans (closed on terminate) land in
  // the trace file.
  if (recorder.enabled()) {
    if (recorder.save(cli.get("trace"))) {
      std::cout << support::format(
          "trace written to {} — open with chrome://tracing or https://ui.perfetto.dev\n",
          cli.get("trace"));
    } else {
      std::cerr << "failed to write trace to " << cli.get("trace") << "\n";
    }
  }
  // Snapshot after shutdown so terminations count; the same snapshot feeds
  // the terminal report and the optional .prom export.
  const metrics::MetricsSnapshot snapshot = registry.snapshot();
  std::cout << "\n" << core::metrics_report(snapshot);
  if (!cli.get("metrics-out").empty()) {
    std::ofstream prom(cli.get("metrics-out"));
    if (prom) {
      prom << metrics::prometheus_text(snapshot);
      std::cout << support::format("metrics exposition written to {}\n",
                                   cli.get("metrics-out"));
    } else {
      std::cerr << "failed to write metrics to " << cli.get("metrics-out") << "\n";
    }
  }
  return result->ok() ? 0 : 1;
}
