// wfm_runner — the C++ twin of the artifact's WFM entry point:
//
//   python3 serverless-workflow-wfbench.py -r <workflow>.json <name> <cpus> <paradigm>
//
// Reads a translated workflow document from disk (produce one with
// `paradigm_explorer --translate knative > wf.json`), deploys the chosen
// computational paradigm on the simulated testbed, executes the workflow
// through the serverless workflow manager, and prints the result row plus a
// per-phase Gantt. The file's own api_urls are rewritten to the deployed
// platform's endpoint so any translated document runs on any paradigm —
// the paper's portability claim.
//
// Usage: ./build/examples/wfm_runner <workflow.json> [--paradigm Kn10wNoPM]
//                                    [--scheduling phase-barrier|dependency-driven]
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "core/paradigm.h"
#include "core/report.h"
#include "core/trace.h"
#include "core/workflow_manager.h"
#include "faas/platform.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "storage/shared_fs.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/wfformat.h"

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("wfm_runner", "execute a translated workflow JSON file");
  cli.add_flag("paradigm", "Kn10wNoPM", "Table II paradigm to deploy");
  cli.add_flag("scheduling", "phase-barrier",
               "WFM dispatch mode: phase-barrier or dependency-driven");
  if (!cli.parse(argc, argv)) return 1;
  if (cli.positional().empty()) {
    std::cerr << "usage: wfm_runner <workflow.json> [--paradigm Kn10wNoPM]"
                 " [--scheduling phase-barrier|dependency-driven]\n";
    return 1;
  }

  std::ifstream in(cli.positional().front());
  if (!in) {
    std::cerr << "cannot open " << cli.positional().front() << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  wfcommons::Workflow workflow;
  try {
    workflow = wfcommons::parse_workflow(buffer.str());
  } catch (const std::exception& e) {
    std::cerr << "invalid workflow document: " << e.what() << "\n";
    return 1;
  }
  std::cout << support::format("loaded {} ({} tasks)\n", workflow.name(), workflow.size());

  const core::Paradigm paradigm = core::parse_paradigm(cli.get("paradigm"));
  const core::ParadigmInfo& info = core::paradigm_info(paradigm);
  core::WfmConfig wfm_config;
  try {
    wfm_config.scheduling = core::parse_scheduling_mode(cli.get("scheduling"));
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }

  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);

  std::unique_ptr<faas::KnativePlatform> knative;
  std::unique_ptr<containers::LocalContainerRuntime> local;
  std::string endpoint;
  if (info.serverless) {
    faas::KnativeServiceSpec spec = core::knative_spec_for(paradigm);
    knative = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    knative->deploy();
    endpoint = "http://" + spec.authority + "/wfbench";
  } else {
    containers::LocalRuntimeConfig config = core::local_config_for(paradigm);
    local = std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router,
                                                                config);
    local->start();
    endpoint = "http://" + config.authority + "/wfbench";
  }
  for (wfcommons::Task& task : workflow.tasks()) task.api_url = endpoint;

  metrics::Sampler sampler(sim);
  sampler.add_probe("cpu", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.sample_now();
  sampler.start();

  core::WorkflowManager wfm(sim, router, fs, wfm_config);
  std::optional<core::WorkflowRunResult> result;
  const core::RunHandle handle = wfm.run(workflow, [&](core::WorkflowRunResult r) {
    result = std::move(r);
    sampler.stop();
  });
  sim.run_until(4 * sim::kHour);

  if (!handle.done() || !result.has_value()) {
    std::cerr << "run did not conclude\n";
    return 1;
  }
  std::cout << support::format(
      "{} on {} ({}): {} — {:.1f}s, {} of {} functions failed, mean cpu {:.2f}%\n",
      workflow.name(), info.name, core::to_string(result->scheduling),
      result->ok() ? "ok" : "FAILED", result->makespan_seconds,
      result->tasks_failed, result->tasks_total,
      sampler.series("cpu").time_weighted_mean());
  std::cout << "\n" << core::render_gantt(*result);
  if (knative) knative->shutdown();
  if (local) local->shutdown();
  return result->ok() ? 0 : 1;
}
