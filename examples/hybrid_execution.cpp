// Hybrid execution — the paper's §V-D/§VI conjecture, working end to end:
// ONE workflow executed across BOTH computational paradigms at once.
//
// Both the Knative platform and the local-container runtime are deployed in
// the same simulation; the HybridTranslator assigns each task's api_url by
// policy (wide, dense function categories go to the bare-metal containers
// that can absorb them; everything else runs serverless). The unmodified
// workflow manager then drives the whole DAG — it dispatches purely by each
// task's endpoint.
//
// Usage: ./build/examples/hybrid_execution [--recipe cycles] [--tasks 150]
//        [--width-threshold 40]
#include <iostream>
#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "core/paradigm.h"
#include "core/workflow_manager.h"
#include "faas/platform.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/hybrid.h"

namespace {

struct HybridRun {
  wfs::core::WorkflowRunResult run;
  double mean_cpu_pct = 0.0;
  double mean_mem_gib = 0.0;
  std::uint64_t cold_starts = 0;
  std::size_t serverless_tasks = 0;
  std::size_t local_tasks = 0;
};

HybridRun execute(const wfs::wfcommons::Workflow& base, std::size_t width_threshold) {
  using namespace wfs;

  sim::Simulation sim;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  net::Router router(sim);

  const faas::KnativeServiceSpec spec = core::knative_spec_for(core::Paradigm::kKn10wNoPM);
  const containers::LocalRuntimeConfig lconfig =
      core::local_config_for(core::Paradigm::kLC10wNoPM);

  // Placement policy: categories whose widest phase reaches the threshold
  // go to the local containers.
  wfcommons::HybridTranslatorConfig policy_base;
  policy_base.serverless_url = "http://" + spec.authority + "/wfbench";
  policy_base.local_url = "http://" + lconfig.authority + "/wfbench";
  wfcommons::Workflow workflow = base;
  const wfcommons::HybridTranslatorConfig policy =
      wfcommons::HybridTranslator::policy_by_phase_width(workflow, width_threshold,
                                                         policy_base);
  wfcommons::HybridTranslator(policy).apply(workflow);

  HybridRun out;
  for (const wfcommons::Task& task : workflow.tasks()) {
    if (task.api_url == policy.serverless_url) {
      ++out.serverless_tasks;
    } else {
      ++out.local_tasks;
    }
  }

  // Deploy only the fleets the placement actually uses — resident worker
  // pools are the baseline's dominant cost, so an unused fleet would wash
  // out the comparison.
  std::unique_ptr<faas::KnativePlatform> knative_ptr;
  if (out.serverless_tasks > 0) {
    knative_ptr = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    knative_ptr->deploy();
  }
  std::unique_ptr<containers::LocalContainerRuntime> local_ptr;
  if (out.local_tasks > 0) {
    containers::LocalRuntimeConfig fleet = lconfig;
    if (out.serverless_tasks > 0) {
      // Hybrid mode: right-size the bare-metal fleet to the peak
      // concurrency the local-routed categories actually reach, instead of
      // the baseline's blanket 10-workers-per-CPU pools — sizing the
      // serverful part to its sub-workflow is the point of the conjecture.
      std::size_t local_peak = 0;
      for (const auto& level : wfcommons::levels(workflow)) {
        std::size_t here = 0;
        for (const wfcommons::Task* task : level) {
          if (task->api_url == policy.local_url) ++here;
        }
        local_peak = std::max(local_peak, here);
      }
      fleet.container.service.workers =
          std::max<int>(8, static_cast<int>((local_peak + 1) / 2));  // per node
    }
    local_ptr =
        std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router, fleet);
    local_ptr->start();
  }

  metrics::Sampler sampler(sim);
  sampler.add_probe("cpu", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.add_probe("mem", [&cluster] {
    return static_cast<double>(cluster.resident_memory()) / (1024.0 * 1024.0 * 1024.0);
  });
  sampler.sample_now();
  sampler.start();

  core::WorkflowManager wfm(sim, router, fs);
  std::optional<core::WorkflowRunResult> result;
  wfm.run(workflow, [&](core::WorkflowRunResult r) {
    result = std::move(r);
    sampler.sample_now();
    sampler.stop();
  });
  sim.run_until(4 * sim::kHour);

  if (result.has_value()) out.run = std::move(*result);
  out.mean_cpu_pct = sampler.series("cpu").time_weighted_mean();
  out.mean_mem_gib = sampler.series("mem").time_weighted_mean();
  if (knative_ptr) {
    out.cold_starts = knative_ptr->stats().pods_created;
    knative_ptr->shutdown();
  }
  if (local_ptr) local_ptr->shutdown();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("hybrid_execution",
                         "one workflow across both paradigms simultaneously");
  cli.add_flag("recipe", "cycles", "workflow family");
  cli.add_flag("tasks", "150", "workflow size");
  cli.add_flag("seed", "1", "generation seed");
  cli.add_flag("width-threshold", "40",
               "categories reaching this phase width run on local containers");
  if (!cli.parse(argc, argv)) return 1;

  wfcommons::WorkflowGenerator generator;
  const wfcommons::Workflow workflow = generator.generate(
      cli.get("recipe"), static_cast<std::size_t>(cli.get_int("tasks")),
      static_cast<std::uint64_t>(cli.get_int("seed")));
  std::cout << wfcommons::render_structure(workflow) << "\n";

  // Three placements: everything serverless (threshold -> never local),
  // everything local (threshold 0 -> always local), and the hybrid policy.
  const auto threshold = static_cast<std::size_t>(cli.get_int("width-threshold"));
  const HybridRun all_serverless = execute(workflow, SIZE_MAX);
  const HybridRun all_local = execute(workflow, 1);
  const HybridRun hybrid = execute(workflow, threshold);

  const auto print = [](const char* label, const HybridRun& run) {
    std::cout << support::format(
        "{:<16} {} ok, makespan {:>7.1f}s, mean cpu {:>6.2f}%, mean mem {:>7.2f} GiB, "
        "{} serverless / {} local tasks, {} cold starts\n",
        label, run.run.ok() ? "   " : "NOT", run.run.makespan_seconds, run.mean_cpu_pct,
        run.mean_mem_gib, run.serverless_tasks, run.local_tasks, run.cold_starts);
  };
  print("all-serverless", all_serverless);
  print("all-local", all_local);
  print("hybrid", hybrid);

  std::cout << "\nThe hybrid keeps the wide, saturating categories on bare metal and the\n"
               "long thin phases on serverless — close to all-local speed at a fraction\n"
               "of its resident resources (the paper's §VI proposal).\n";
  return 0;
}
