// Native wfbench — the library as a REAL benchmark tool, no simulation:
// run a curated WfInstance on the host with an actual worker-thread pool,
// burning real CPU at each task's duty cycle, holding real allocations and
// writing real files to a scratch "shared drive" directory.
//
// This is the C++ twin of the paper's wfbench.py executable and doubles as
// a sanity check of the simulator's cost model: the printed per-task busy
// seconds follow cpu-work x work-unit just like the simulated service.
//
// Usage: ./build/examples/native_wfbench [--instance blast-chameleon-small]
//        [--workers 4] [--work-unit-ms 1] [--workdir /tmp/wfbench-native]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/dag.h"
#include "support/cli.h"
#include "support/strings.h"
#include "support/format.h"
#include "wfbench/native.h"
#include "wfcommons/analysis.h"
#include "wfcommons/wfinstances.h"

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("native_wfbench", "execute a WfInstance for real on this machine");
  cli.add_flag("instance", "blast-chameleon-small", "curated WfInstance name");
  cli.add_flag("workers", "4", "worker threads (the gunicorn --workers knob)");
  cli.add_flag("work-unit-ms", "1", "milliseconds of busy CPU per cpu-work unit");
  cli.add_flag("workdir", "", "scratch directory (default: a temp dir)");
  if (!cli.parse(argc, argv)) return 1;

  const wfcommons::Workflow workflow = wfcommons::load_instance(cli.get("instance"));
  std::cout << wfcommons::render_structure(workflow) << "\n";

  std::filesystem::path workdir = cli.get("workdir").empty()
                                      ? std::filesystem::temp_directory_path() /
                                            "wfbench-native"
                                      : std::filesystem::path(cli.get("workdir"));
  std::filesystem::create_directories(workdir);

  // Stage the external inputs as real files of their declared sizes.
  for (const wfcommons::TaskFile& file : workflow.external_inputs()) {
    std::ofstream out(workdir / file.name, std::ios::binary | std::ios::trunc);
    const std::vector<char> chunk(64 * 1024, 'x');
    std::uint64_t remaining = file.size_bytes;
    while (remaining > 0) {
      const auto n = std::min<std::uint64_t>(remaining, chunk.size());
      out.write(chunk.data(), static_cast<std::streamsize>(n));
      remaining -= n;
    }
    std::cout << support::format("staged {} ({})\n", file.name,
                                 support::human_bytes(file.size_bytes));
  }

  wfbench::NativeConfig config;
  config.work_unit_seconds = cli.get_double("work-unit-ms") / 1000.0;
  config.workdir = workdir;
  wfbench::NativeWorkerPool pool(static_cast<int>(cli.get_int("workers")), config);

  // Phase-by-phase execution, exactly like the serverless WFM: every
  // function of a level submitted at once, wait for all, continue.
  const auto t0 = std::chrono::steady_clock::now();
  double total_busy = 0.0;
  std::size_t failed = 0;
  const auto by_level = wfcommons::levels(workflow);
  for (std::size_t level = 0; level < by_level.size(); ++level) {
    std::vector<std::pair<std::string, std::future<wfbench::NativeOutcome>>> inflight;
    for (const wfcommons::Task* task : by_level[level]) {
      inflight.emplace_back(task->name,
                            pool.submit(core::to_task_params(*task, workdir.string())));
    }
    std::cout << support::format("phase {} ({} functions):\n", level, inflight.size());
    for (auto& [name, future] : inflight) {
      const wfbench::NativeOutcome outcome = future.get();
      total_busy += outcome.busy_seconds;
      failed += outcome.ok ? 0 : 1;
      std::cout << support::format(
          "  {:<44} {} wall {:.3f}s busy {:.3f}s read {} wrote {}\n", name,
          outcome.ok ? "ok    " : "FAILED", outcome.runtime_seconds, outcome.busy_seconds,
          support::human_bytes(outcome.bytes_read),
          support::human_bytes(outcome.bytes_written));
      if (!outcome.ok) std::cout << "    error: " << outcome.error << "\n";
    }
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << support::format(
      "\n{}: {} tasks, {} failed, wall {:.3f}s, total busy cpu {:.3f}s, outputs in {}\n",
      workflow.name(), workflow.size(), failed, wall, total_busy, workdir.string());
  return failed == 0 ? 0 : 1;
}
