// Paradigm explorer — the framework's full surface from one CLI:
// generate any family at any size, translate it for any target (knative,
// local, pegasus, nextflow), execute it under any Table II paradigm on
// either data backend, and export the PCP-style CSV + the translated
// workflow document to disk.
//
// Examples:
//   ./build/examples/paradigm_explorer --recipe cycles --tasks 120 --csv run.csv
//   ./build/examples/paradigm_explorer --recipe bwa --paradigm LC1wPM --structure
//   ./build/examples/paradigm_explorer --recipe blast --translate nextflow
//   ./build/examples/paradigm_explorer --recipe genome --backend objectstore
#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "core/results_io.h"
#include "core/trace.h"
#include "metrics/ascii_chart.h"
#include "metrics/pmdump.h"
#include "support/cli.h"
#include "support/format.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/translator.h"
#include "wfcommons/visualization.h"

namespace {

// Renders one result's series to stdout and optionally a pmdumptext CSV.
void export_csv(const wfs::core::ExperimentResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot open " << path << " for writing\n";
    return;
  }
  out << "time,cpu_pct,mem_gib,power_w,pods\n";
  const auto& cpu = result.cpu_series.samples();
  for (std::size_t i = 0; i < cpu.size(); ++i) {
    out << wfs::sim::to_seconds(cpu[i].time) << ',' << cpu[i].value << ','
        << result.memory_series[i].value << ',' << result.power_series[i].value << ','
        << result.pods_series[i].value << '\n';
  }
  std::cout << "wrote " << cpu.size() << " samples to " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("paradigm_explorer", "run any (family, size, paradigm) cell");
  cli.add_flag("recipe", "blast", "workflow family");
  cli.add_flag("tasks", "100", "workflow size");
  cli.add_flag("scale-factor", "1",
               "multiplier on --tasks for mega-scale instances (e.g. 1000 turns "
               "a 100-task family into a 10^5-task ensemble)");
  cli.add_flag("seed", "1", "generation seed");
  cli.add_flag("paradigm", "Kn10wNoPM", "Table II paradigm name");
  cli.add_flag("backend", "shared", "data backend: shared | objectstore");
  cli.add_flag("cpu-work", "100", "wfbench cpu-work base");
  cli.add_flag("csv", "", "write the sampled metrics to this CSV file");
  cli.add_flag("trace", "", "write a Chrome trace-event JSON of the run to this file");
  cli.add_flag("save", "", "persist the full result document (JSON) to this file");
  cli.add_switch("gantt", "print a per-phase Gantt of the run");
  cli.add_flag("translate", "",
               "only translate and print (knative | local | pegasus | nextflow)");
  cli.add_flag("dot", "", "write a Graphviz DOT of the workflow DAG to this file");
  cli.add_switch("structure", "print the workflow structure before running");
  if (!cli.parse(argc, argv)) return 1;

  const std::string recipe = cli.get("recipe");
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks"));
  const double scale_factor = cli.get_double("scale-factor");
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Translation-only mode: the WfCommons-extension story on its own.
  if (!cli.get("translate").empty()) {
    wfcommons::GenerateOptions options;
    options.num_tasks = tasks;
    options.scale_factor = scale_factor;
    options.seed = seed;
    options.cpu_work = cli.get_double("cpu-work");
    const wfcommons::Workflow wf = wfcommons::make_recipe(recipe)->generate(options);
    const auto translator = wfcommons::make_translator(cli.get("translate"));
    std::cout << translator->translate_to_text(wf);
    return 0;
  }

  core::ExperimentConfig config;
  config.recipe = recipe;
  config.num_tasks =
      static_cast<std::size_t>(static_cast<double>(tasks) * std::max(scale_factor, 1.0));
  config.seed = seed;
  config.cpu_work = cli.get_double("cpu-work");
  config.paradigm = core::parse_paradigm(cli.get("paradigm"));
  if (cli.get("backend") == "objectstore") {
    config.backend = core::DataBackend::kObjectStore;
  } else if (cli.get("backend") != "shared") {
    std::cerr << "unknown backend: " << cli.get("backend") << "\n";
    return 1;
  }

  if (cli.get_switch("structure") || !cli.get("dot").empty()) {
    wfcommons::WorkflowGenerator generator;
    const wfcommons::Workflow wf = generator.generate(recipe, tasks, seed);
    if (cli.get_switch("structure")) std::cout << wfcommons::render_structure(wf) << "\n";
    if (!cli.get("dot").empty()) {
      std::ofstream dot(cli.get("dot"));
      dot << wfcommons::to_dot(wf);
      std::cout << "wrote DAG to " << cli.get("dot") << "\n";
    }
  }

  const core::ExperimentResult result = core::run_experiment(config);
  std::cout << core::result_table({result});
  if (!result.ok()) std::cout << "failure: " << result.failure_reason << "\n";
  std::cout << "\ncpu%   " << metrics::sparkline(result.cpu_series) << "\n";
  std::cout << "memory " << metrics::sparkline(result.memory_series) << "\n";
  std::cout << "power  " << metrics::sparkline(result.power_series) << "\n";
  std::cout << "pods   " << metrics::sparkline(result.pods_series) << "\n";
  if (result.cold_starts > 0) {
    std::cout << support::format(
        "\n{} cold starts, {} peak ready pods, {:.1f}s total activator wait\n",
        result.cold_starts, result.max_ready_pods, result.activator_wait_seconds);
  }

  if (cli.get_switch("gantt")) std::cout << "\n" << core::render_gantt(result.run);
  if (!cli.get("csv").empty()) export_csv(result, cli.get("csv"));
  if (!cli.get("trace").empty()) {
    std::ofstream out(cli.get("trace"));
    out << core::chrome_trace_json(result.run);
    std::cout << "wrote Chrome trace to " << cli.get("trace") << "\n";
  }
  if (!cli.get("save").empty()) {
    if (core::save_result(result, cli.get("save"))) {
      std::cout << "saved result document to " << cli.get("save") << "\n";
    }
  }
  return 0;
}
