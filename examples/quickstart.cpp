// Quickstart: the paper's pipeline end to end in ~40 lines of API.
//
//   1. Generate a small Blast workflow with the WfCommons-style generator.
//   2. Translate it for Knative (the paper's Translator contribution).
//   3. Execute it with the serverless workflow manager on the simulated
//      2-node testbed, under the paper's preferred Kn10wNoPM paradigm.
//   4. Compare against the bare-metal local-container baseline.
//
// Build & run:  ./build/examples/quickstart [--recipe blast] [--tasks 50]
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "metrics/ascii_chart.h"
#include "support/cli.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("quickstart", "run one workflow on serverless and local containers");
  cli.add_flag("recipe", "blast", "workflow family (blast, bwa, cycles, epigenomics, ...)");
  cli.add_flag("tasks", "50", "target number of tasks");
  cli.add_flag("seed", "1", "generation seed");
  if (!cli.parse(argc, argv)) return 1;

  const std::string recipe = cli.get("recipe");
  const auto tasks = static_cast<std::size_t>(cli.get_int("tasks"));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // Show what we are about to execute (Figure 3 style characterisation).
  wfcommons::WorkflowGenerator generator;
  const wfcommons::Workflow preview = generator.generate(recipe, tasks, seed);
  std::cout << wfcommons::render_structure(preview) << "\n";

  core::ExperimentConfig config;
  config.recipe = recipe;
  config.num_tasks = tasks;
  config.seed = seed;

  config.paradigm = core::Paradigm::kKn10wNoPM;
  const core::ExperimentResult serverless = core::run_experiment(config);

  config.paradigm = core::Paradigm::kLC10wNoPM;
  const core::ExperimentResult baseline = core::run_experiment(config);

  std::cout << core::result_table({serverless, baseline}) << "\n";
  std::cout << core::delta_row("serverless vs local containers",
                               core::compare(serverless, baseline));

  std::cout << "\ncpu%   (serverless) " << metrics::sparkline(serverless.cpu_series) << "\n";
  std::cout << "cpu%   (local)      " << metrics::sparkline(baseline.cpu_series) << "\n";
  std::cout << "memory (serverless) " << metrics::sparkline(serverless.memory_series) << "\n";
  std::cout << "memory (local)      " << metrics::sparkline(baseline.memory_series) << "\n";
  return 0;
}
