// Genomics scenario — the paper's motivating domain ("genomics data
// processing", §I): run the two genomics-heavy families (Epigenomics and
// 1000-Genome) at three scales on the best serverless setup and the
// baseline, and report where serverless pays off.
//
// Usage: ./build/examples/genomics_pipeline [--sizes 50,100,200] [--seed 1]
#include <iostream>

#include "core/experiment.h"
#include "core/report.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/strings.h"
#include "wfcommons/analysis.h"
#include "wfcommons/generator.h"

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("genomics_pipeline",
                         "epigenomics + 1000-genome across scales, serverless vs baseline");
  cli.add_flag("sizes", "50,100,200", "comma-separated workflow sizes");
  cli.add_flag("seed", "1", "generation seed");
  if (!cli.parse(argc, argv)) return 1;

  std::vector<std::size_t> sizes;
  for (const std::string& token : support::split(cli.get("sizes"), ',')) {
    sizes.push_back(std::strtoull(token.c_str(), nullptr, 10));
  }
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  wfcommons::WorkflowGenerator generator;
  std::vector<core::ExperimentResult> all;
  for (const std::string recipe : {"epigenomics", "genome"}) {
    std::cout << wfcommons::render_structure(generator.generate(recipe, sizes.back(), seed))
              << "\n";
    for (const std::size_t size : sizes) {
      for (const core::Paradigm paradigm :
           {core::Paradigm::kKn10wNoPM, core::Paradigm::kLC10wNoPM}) {
        core::ExperimentConfig config;
        config.paradigm = paradigm;
        config.recipe = recipe;
        config.num_tasks = size;
        config.seed = seed;
        all.push_back(core::run_experiment(config));
      }
    }
  }
  std::cout << core::result_table(all) << "\n";

  // Pairwise serverless-vs-baseline summary per (family, size).
  std::cout << "serverless vs local containers:\n";
  for (std::size_t i = 0; i + 1 < all.size(); i += 2) {
    const core::ExperimentResult& kn = all[i];
    const core::ExperimentResult& lc = all[i + 1];
    if (!kn.ok() || !lc.ok()) continue;
    std::cout << core::delta_row(
        support::format("{} ({} tasks)", kn.config.recipe, kn.config.num_tasks),
        core::compare(kn, lc));
  }
  std::cout << "\nGenomics pipelines are the paper's group-2 shape: many phases, "
               "modest widths.\nServerless matches their execution time closely while "
               "releasing resources between\nphases — the strongest case for FaaS "
               "scientific workflows.\n";
  return 0;
}
