// run_all_wfbench — the C++ twin of the artifact's run_all_wfbench.sh /
// run_all_wfbench_local.sh drivers: execute the paper's complete Table I
// design (or one of its halves) as a Campaign and leave the same artifacts
// behind — a summary CSV plus one JSON result document per cell under a
// results directory, ready for downstream analysis.
//
// Usage:
//   ./build/examples/run_all_wfbench                     # all 140 cells
//   ./build/examples/run_all_wfbench --design fine       # the 98 fine cells
//   ./build/examples/run_all_wfbench --design coarse     # the 42 coarse cells
//   ./build/examples/run_all_wfbench --results-dir out/  # where to write
//   ./build/examples/run_all_wfbench --jobs 8            # pool width (0 = all cores)
//
// Cells run on a thread pool (--jobs workers); the summary CSV is in
// deterministic cell order either way, only the per-cell progress rows and
// JSON files arrive in completion order.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/campaign.h"
#include "core/report.h"
#include "core/results_io.h"
#include "support/cli.h"
#include "support/format.h"

namespace {

void run_design(const char* label, wfs::core::CampaignSpec spec,
                const std::filesystem::path& results_dir) {
  using namespace wfs;
  std::cout << support::format("running the {} design: {} cells ({} jobs)\n", label,
                               spec.cell_count(),
                               spec.jobs == 0 ? std::string("auto")
                                              : support::format("{}", spec.jobs));
  std::cout << core::result_header();
  core::Campaign campaign(std::move(spec));
  campaign.run([&](const core::ExperimentResult& result) {
    std::cout << core::result_row(result) << std::flush;
    const std::string file = support::format("{}-{}-{}.json", result.paradigm_name,
                                             result.config.recipe, result.config.num_tasks);
    core::save_result(result, (results_dir / file).string());
  });

  const std::filesystem::path csv = results_dir / (std::string(label) + "-summary.csv");
  std::ofstream out(csv);
  out << campaign.summary_csv();
  std::cout << support::format("\n{}: {} of {} cells ok; summary at {}\n\n", label,
                               campaign.results().size() - campaign.failed_cells(),
                               campaign.results().size(), csv.string());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wfs;

  support::CliParser cli("run_all_wfbench", "run the paper's Table I experiment design");
  cli.add_flag("design", "all", "all | fine | coarse");
  cli.add_flag("results-dir", "results", "output directory for CSV + JSON documents");
  cli.add_flag("seed", "1", "generation seed");
  cli.add_flag("jobs", "0", "parallel experiment workers (0 = all cores, 1 = sequential)");
  if (!cli.parse(argc, argv)) return 1;

  const std::filesystem::path results_dir = cli.get("results-dir");
  std::filesystem::create_directories(results_dir);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto jobs = static_cast<std::size_t>(cli.get_int("jobs"));
  const std::string design = cli.get("design");

  if (design == "fine" || design == "all") {
    core::CampaignSpec spec = core::paper_fine_grained_campaign();
    spec.seed = seed;
    spec.jobs = jobs;
    run_design("fine-grained", std::move(spec), results_dir);
  }
  if (design == "coarse" || design == "all") {
    core::CampaignSpec spec = core::paper_coarse_grained_campaign();
    spec.seed = seed;
    spec.jobs = jobs;
    run_design("coarse-grained", std::move(spec), results_dir);
  }
  if (design != "fine" && design != "coarse" && design != "all") {
    std::cerr << "unknown design: " << design << "\n";
    return 1;
  }
  return 0;
}
