#include "net/router.h"

#include <utility>

#include "metrics/registry.h"

namespace wfs::net {

void Responder::respond(HttpResponse response) {
  if (responded_) return;
  responded_ = true;
  send_(std::move(response));
}

Router::Router(sim::Context& sim, NetworkConfig config, std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {}

void Router::bind(const std::string& authority, Handler handler) {
  handlers_[authority] = std::move(handler);
}

void Router::unbind(const std::string& authority) { handlers_.erase(authority); }

bool Router::bound(const std::string& authority) const noexcept {
  return handlers_.contains(authority);
}

sim::SimTime Router::sample_latency() {
  sim::SimTime latency = config_.base_latency;
  if (config_.jitter > 0) latency += rng_.uniform_int(0, config_.jitter);
  return latency;
}

void Router::set_trace(obs::TraceRecorder* trace) {
  if (trace == nullptr || !trace->enabled()) {
    trace_ = nullptr;
    return;
  }
  trace_ = trace;
  trace_pid_ = trace_->process("net");
}

obs::TraceRecorder::Tid Router::authority_lane(const std::string& authority) {
  return trace_->lane(trace_pid_, authority);
}

void Router::set_metrics(metrics::MetricsRegistry* registry) {
  metrics_ = registry;
  authority_metrics_.clear();
}

Router::AuthorityMetrics& Router::authority_metrics(const std::string& authority) {
  auto [it, inserted] = authority_metrics_.try_emplace(authority);
  if (inserted) {
    it->second.latency = &metrics_->histogram(
        "http_request_duration_seconds",
        "Full request round trip (send to response delivered), seconds",
        {{"authority", authority}});
  }
  return it->second;
}

void Router::count_response(AuthorityMetrics& slot, const std::string& authority, int status) {
  // Status codes per authority are few; a sorted probe-by-scan beats the
  // registry's mutex + map on every response.
  for (auto& [known_status, counter] : slot.by_status) {
    if (known_status == status) {
      counter->inc();
      return;
    }
  }
  metrics::Counter& counter = metrics_->counter(
      "http_requests_total", "HTTP round trips completed, by authority and status",
      {{"authority", authority}, {"status", std::to_string(status)}});
  slot.by_status.emplace_back(status, &counter);
  counter.inc();
}

void Router::send(HttpRequest request, std::function<void(HttpResponse)> on_response) {
  ++requests_sent_;
  if (metrics_ != nullptr) {
    const sim::SimTime sent_at = sim_.now();
    const std::string authority = request.url.authority();
    on_response = [this, sent_at, authority,
                   inner = std::move(on_response)](HttpResponse response) {
      AuthorityMetrics& slot = authority_metrics(authority);
      slot.latency->observe(sim::to_seconds(sim_.now() - sent_at));
      count_response(slot, authority, response.status);
      inner(std::move(response));
    };
  }
  if (trace_ != nullptr) {
    // Wrap the caller's callback so the full round trip (send -> response
    // delivered, both network hops plus service time) shows up as one span.
    const sim::SimTime sent_at = sim_.now();
    const obs::TraceRecorder::Tid lane = authority_lane(request.url.authority());
    const std::string label = request.method + " " + request.url.path;
    on_response = [this, sent_at, lane, label,
                   inner = std::move(on_response)](HttpResponse response) {
      json::Object args;
      args.set("status", static_cast<std::int64_t>(response.status));
      trace_->complete(trace_pid_, lane, label, "http", sent_at, sim_.now(),
                       std::move(args));
      inner(std::move(response));
    };
  }
  const sim::SimTime to_server = sample_latency();
  sim_.schedule_in(to_server, [this, request = std::move(request),
                               on_response = std::move(on_response)]() mutable {
    const auto it = handlers_.find(request.url.authority());
    // Response channel: adds return latency, then delivers to the caller.
    auto deliver = [this, on_response = std::move(on_response)](HttpResponse response) mutable {
      const sim::SimTime to_client = sample_latency();
      sim_.schedule_in(to_client,
                       [this, response = std::move(response),
                        on_response = std::move(on_response)]() mutable {
                         ++responses_delivered_;
                         on_response(std::move(response));
                       });
    };
    if (it == handlers_.end()) {
      deliver(HttpResponse::not_found("no service bound to " + request.url.authority()));
      return;
    }
    auto responder = std::make_shared<Responder>(std::move(deliver));
    it->second(request, std::move(responder));
  });
}

}  // namespace wfs::net
