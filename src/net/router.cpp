#include "net/router.h"

#include <utility>

namespace wfs::net {

void Responder::respond(HttpResponse response) {
  if (responded_) return;
  responded_ = true;
  send_(std::move(response));
}

Router::Router(sim::Simulation& sim, NetworkConfig config, std::uint64_t seed)
    : sim_(sim), config_(config), rng_(seed) {}

void Router::bind(const std::string& authority, Handler handler) {
  handlers_[authority] = std::move(handler);
}

void Router::unbind(const std::string& authority) { handlers_.erase(authority); }

bool Router::bound(const std::string& authority) const noexcept {
  return handlers_.contains(authority);
}

sim::SimTime Router::sample_latency() {
  sim::SimTime latency = config_.base_latency;
  if (config_.jitter > 0) latency += rng_.uniform_int(0, config_.jitter);
  return latency;
}

void Router::set_trace(obs::TraceRecorder* trace) {
  if (trace == nullptr || !trace->enabled()) {
    trace_ = nullptr;
    return;
  }
  trace_ = trace;
  trace_pid_ = trace_->process("net");
}

obs::TraceRecorder::Tid Router::authority_lane(const std::string& authority) {
  return trace_->lane(trace_pid_, authority);
}

void Router::send(HttpRequest request, std::function<void(HttpResponse)> on_response) {
  ++requests_sent_;
  if (trace_ != nullptr) {
    // Wrap the caller's callback so the full round trip (send -> response
    // delivered, both network hops plus service time) shows up as one span.
    const sim::SimTime sent_at = sim_.now();
    const obs::TraceRecorder::Tid lane = authority_lane(request.url.authority());
    const std::string label = request.method + " " + request.url.path;
    on_response = [this, sent_at, lane, label,
                   inner = std::move(on_response)](HttpResponse response) {
      json::Object args;
      args.set("status", static_cast<std::int64_t>(response.status));
      trace_->complete(trace_pid_, lane, label, "http", sent_at, sim_.now(),
                       std::move(args));
      inner(std::move(response));
    };
  }
  const sim::SimTime to_server = sample_latency();
  sim_.schedule_in(to_server, [this, request = std::move(request),
                               on_response = std::move(on_response)]() mutable {
    const auto it = handlers_.find(request.url.authority());
    // Response channel: adds return latency, then delivers to the caller.
    auto deliver = [this, on_response = std::move(on_response)](HttpResponse response) mutable {
      const sim::SimTime to_client = sample_latency();
      sim_.schedule_in(to_client,
                       [this, response = std::move(response),
                        on_response = std::move(on_response)]() mutable {
                         ++responses_delivered_;
                         on_response(std::move(response));
                       });
    };
    if (it == handlers_.end()) {
      deliver(HttpResponse::not_found("no service bound to " + request.url.authority()));
      return;
    }
    auto responder = std::make_shared<Responder>(std::move(deliver));
    it->second(request, std::move(responder));
  });
}

}  // namespace wfs::net
