#include "net/http.h"

#include <charconv>
#include "support/format.h"
#include <stdexcept>

namespace wfs::net {

std::string Url::to_string() const {
  return wfs::support::format("{}://{}:{}{}", scheme, host, port, path);
}

std::string Url::authority() const { return wfs::support::format("{}:{}", host, port); }

Url parse_url(std::string_view text) {
  Url url;
  const std::size_t scheme_end = text.find("://");
  if (scheme_end == std::string_view::npos) {
    throw std::invalid_argument("url missing scheme: " + std::string(text));
  }
  url.scheme = std::string(text.substr(0, scheme_end));
  text.remove_prefix(scheme_end + 3);

  const std::size_t path_start = text.find('/');
  std::string_view authority = text.substr(0, path_start);
  if (path_start != std::string_view::npos) {
    url.path = std::string(text.substr(path_start));
  } else {
    url.path = "/";
  }
  if (authority.empty()) {
    throw std::invalid_argument("url missing host");
  }
  const std::size_t colon = authority.rfind(':');
  if (colon != std::string_view::npos) {
    url.host = std::string(authority.substr(0, colon));
    const std::string_view port_text = authority.substr(colon + 1);
    int port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc() || ptr != port_text.data() + port_text.size() || port <= 0 ||
        port > 65535) {
      throw std::invalid_argument("invalid port in url: " + std::string(port_text));
    }
    url.port = port;
  } else {
    url.host = std::string(authority);
    url.port = url.scheme == "https" ? 443 : 80;
  }
  if (url.host.empty()) throw std::invalid_argument("url missing host");
  return url;
}

}  // namespace wfs::net
