// Simulated HTTP routing: an in-simulation service mesh.
//
// Services (the Knative activator, local containers) register handlers by
// authority ("host:port"); clients post requests that arrive after a small
// network latency and get responses back the same way. Handlers respond
// asynchronously through a Responder so a service can queue the request
// (activator behaviour) and answer much later.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/http.h"
#include "obs/trace_recorder.h"
#include "sim/context.h"
#include "support/rng.h"

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace wfs::metrics

namespace wfs::net {

/// One-shot response channel handed to a request handler.
class Responder {
 public:
  using Send = std::function<void(HttpResponse)>;
  explicit Responder(Send send) : send_(std::move(send)) {}

  /// Sends the response; subsequent calls are ignored (a handler must
  /// answer exactly once, but double answers should not corrupt state).
  void respond(HttpResponse response);

  [[nodiscard]] bool responded() const noexcept { return responded_; }

 private:
  Send send_;
  bool responded_ = false;
};

using Handler = std::function<void(const HttpRequest&, std::shared_ptr<Responder>)>;

struct NetworkConfig {
  sim::SimTime base_latency = 500;    // 0.5 ms one way
  sim::SimTime jitter = 200;          // uniform extra in [0, jitter]
};

class Router {
 public:
  Router(sim::Context& sim, NetworkConfig config = {}, std::uint64_t seed = 42);

  /// Registers/overwrites the handler for an authority ("host:port").
  void bind(const std::string& authority, Handler handler);
  void unbind(const std::string& authority);
  [[nodiscard]] bool bound(const std::string& authority) const noexcept;

  /// Attaches a shared trace recorder: every request/response round trip is
  /// emitted as an "http" span on a per-authority lane of the "net" process.
  /// nullptr (or a disabled recorder) turns tracing off.
  void set_trace(obs::TraceRecorder* trace);

  /// Attaches a metrics registry: every round trip increments
  /// `http_requests_total{authority,status}` and observes the full
  /// send-to-delivery latency in `http_request_duration_seconds{authority}`.
  /// Handles are resolved once per authority/status and cached, so the hot
  /// path never touches the registry mutex. nullptr turns metrics off.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// Sends a request; `on_response` fires after simulated network latency
  /// each way. Unbound authorities yield 404 (connection refused analogue).
  void send(HttpRequest request, std::function<void(HttpResponse)> on_response);

  /// Minimum one-way hop latency (jitter only adds): the network's
  /// contribution to a sharded simulation's conservative lookahead.
  [[nodiscard]] sim::SimTime min_latency() const noexcept { return config_.base_latency; }

  [[nodiscard]] std::uint64_t requests_sent() const noexcept { return requests_sent_; }
  [[nodiscard]] std::uint64_t responses_delivered() const noexcept {
    return responses_delivered_;
  }

 private:
  struct AuthorityMetrics {
    metrics::Histogram* latency = nullptr;
    std::vector<std::pair<int, metrics::Counter*>> by_status;
  };

  [[nodiscard]] sim::SimTime sample_latency();
  [[nodiscard]] obs::TraceRecorder::Tid authority_lane(const std::string& authority);
  AuthorityMetrics& authority_metrics(const std::string& authority);
  void count_response(AuthorityMetrics& slot, const std::string& authority, int status);

  sim::Context& sim_;
  NetworkConfig config_;
  support::Rng rng_;
  std::unordered_map<std::string, Handler> handlers_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t responses_delivered_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceRecorder::Pid trace_pid_ = 0;
  metrics::MetricsRegistry* metrics_ = nullptr;
  std::unordered_map<std::string, AuthorityMetrics> authority_metrics_;
};

}  // namespace wfs::net
