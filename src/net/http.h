// Simulated HTTP messages and URL handling.
//
// The paper's WFM invokes every function through `curl <url>/wfbench -X POST
// -d '{json}'`; this module reproduces that interaction shape: JSON-bodied
// POSTs routed by URL with small simulated network latency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wfs::net {

struct Url {
  std::string scheme = "http";
  std::string host;
  int port = 80;
  std::string path = "/";

  /// Serializes back to "scheme://host:port/path".
  [[nodiscard]] std::string to_string() const;

  /// "host:port" — the routing key used by the Router.
  [[nodiscard]] std::string authority() const;
};

/// Parses "http://host[:port][/path]". Throws std::invalid_argument on
/// malformed input (missing scheme or host).
[[nodiscard]] Url parse_url(std::string_view text);

struct HttpRequest {
  std::string method = "POST";
  Url url;
  std::string content_type = "application/json";
  std::string body;
};

/// Server-Timing analogue: where the request's wall time went on the serving
/// side. The service stamps transfer/compute (and in-process queueing); the
/// platform in front of it adds buffering and the cold-start overlap. The
/// run profiler (obs/profile.h) consumes these to attribute makespan.
struct ServerTiming {
  double queue_seconds = 0.0;       // buffered before a worker/pod accepted it
  double cold_start_seconds = 0.0;  // part of the buffering spent booting a pod
  double transfer_seconds = 0.0;    // data-plane reads + writes
  double compute_seconds = 0.0;     // stress (cpu/memory) phase

  ServerTiming& operator+=(const ServerTiming& other) noexcept {
    queue_seconds += other.queue_seconds;
    cold_start_seconds += other.cold_start_seconds;
    transfer_seconds += other.transfer_seconds;
    compute_seconds += other.compute_seconds;
    return *this;
  }
};

struct HttpResponse {
  int status = 200;
  std::string body;
  /// Retry-After analogue: when > 0, the server hints that the client should
  /// wait this long before re-sending (platforms attach it to transient
  /// 503s so the WFM's retry path can back off precisely instead of using
  /// its fixed retry_backoff).
  int retry_after_ms = 0;
  /// Filled by the serving side on both success and failure responses.
  ServerTiming timing;

  [[nodiscard]] bool ok() const noexcept { return status >= 200 && status < 300; }

  /// General-purpose factory; prefer it over brace-initialisation so call
  /// sites survive field additions.
  static HttpResponse make(int status, std::string body, int retry_after_ms = 0) {
    HttpResponse response;
    response.status = status;
    response.body = std::move(body);
    response.retry_after_ms = retry_after_ms;
    return response;
  }
  static HttpResponse make_ok(std::string body = "{}") { return make(200, std::move(body)); }
  static HttpResponse not_found(std::string reason = "not found") {
    return make(404, std::move(reason));
  }
  static HttpResponse bad_request(std::string reason) { return make(400, std::move(reason)); }
  static HttpResponse service_unavailable(std::string reason, int retry_after_ms = 0) {
    return make(503, std::move(reason), retry_after_ms);
  }
  static HttpResponse server_error(std::string reason) { return make(500, std::move(reason)); }
};

}  // namespace wfs::net
