// Simulated HTTP messages and URL handling.
//
// The paper's WFM invokes every function through `curl <url>/wfbench -X POST
// -d '{json}'`; this module reproduces that interaction shape: JSON-bodied
// POSTs routed by URL with small simulated network latency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace wfs::net {

struct Url {
  std::string scheme = "http";
  std::string host;
  int port = 80;
  std::string path = "/";

  /// Serializes back to "scheme://host:port/path".
  [[nodiscard]] std::string to_string() const;

  /// "host:port" — the routing key used by the Router.
  [[nodiscard]] std::string authority() const;
};

/// Parses "http://host[:port][/path]". Throws std::invalid_argument on
/// malformed input (missing scheme or host).
[[nodiscard]] Url parse_url(std::string_view text);

struct HttpRequest {
  std::string method = "POST";
  Url url;
  std::string content_type = "application/json";
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string body;

  [[nodiscard]] bool ok() const noexcept { return status >= 200 && status < 300; }

  static HttpResponse make_ok(std::string body = "{}") { return {200, std::move(body)}; }
  static HttpResponse not_found(std::string reason = "not found") {
    return {404, std::move(reason)};
  }
  static HttpResponse bad_request(std::string reason) { return {400, std::move(reason)}; }
  static HttpResponse service_unavailable(std::string reason) { return {503, std::move(reason)}; }
  static HttpResponse server_error(std::string reason) { return {500, std::move(reason)}; }
};

}  // namespace wfs::net
