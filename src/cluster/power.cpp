#include "cluster/power.h"

#include <algorithm>

namespace wfs::cluster {

double PowerModel::watts(double compute_fraction, double spin_fraction) const noexcept {
  const double compute = std::clamp(compute_fraction, 0.0, 1.0);
  // Spin can only use cores compute is not using.
  const double spin = std::clamp(spin_fraction, 0.0, 1.0 - compute);
  const double dynamic_range = max_watts - idle_watts;
  return idle_watts + dynamic_range * (compute + spin_power_weight * spin);
}

}  // namespace wfs::cluster
