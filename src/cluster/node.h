// A simulated compute node.
//
// A node owns four interacting pieces of state:
//   * a ResourceLedger of scheduler commitments (requests);
//   * a processor-sharing CPU engine executing "work items" (wfbench CPU
//     stress phases) with optional cgroup-like quota groups, recomputing
//     rates and completion events whenever the active set changes;
//   * background loads — resident worker-pool polling and persistent-memory
//     stressor refresh, which occupy CPU on the usage metric at low power;
//   * a memory residency counter with OOM detection against physical RAM.
//
// Everything is driven by one sim::Simulation; a Node is single-threaded.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "cluster/power.h"
#include "cluster/resource_ledger.h"
#include "sim/context.h"

namespace wfs::cluster {

using WorkId = std::uint64_t;
using QuotaGroupId = std::uint64_t;
using LoadId = std::uint64_t;

/// Unlimited quota group usable by any caller that has no cgroup.
inline constexpr QuotaGroupId kNoQuotaGroup = 0;

struct NodeSpec {
  std::string name = "node";
  double cores = 96.0;                          // 2x EPYC 7443: 96 hw threads
  std::uint64_t memory_bytes = 256ULL << 30;    // master node: 256 GB
  double core_speed = 1.0;                      // wfbench work units per second per core
  PowerModel power{};
};

class Node {
 public:
  Node(sim::Context& sim, NodeSpec spec);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const NodeSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] ResourceLedger& ledger() noexcept { return ledger_; }
  [[nodiscard]] const ResourceLedger& ledger() const noexcept { return ledger_; }

  // -- cgroup-like CPU quota groups ---------------------------------------
  /// Creates a group whose member work items' aggregate rate is capped at
  /// `cpu_limit` cores (<= 0 means unlimited).
  QuotaGroupId create_quota_group(double cpu_limit);
  void destroy_quota_group(QuotaGroupId group);

  // -- compute work (processor sharing) ------------------------------------
  /// Submits `work_units` of CPU work demanding `demand_cores` (the wfbench
  /// percent-cpu knob; may exceed 1.0 for multi-threaded stress).
  /// `on_complete` fires exactly once when the work finishes. The work is
  /// slowed proportionally when the node (or quota group) is oversubscribed.
  WorkId submit_work(double demand_cores, double work_units, QuotaGroupId group,
                     std::function<void()> on_complete);

  /// Cancels in-flight work; its completion callback never runs.
  void cancel_work(WorkId id);

  // -- background load ------------------------------------------------------
  /// Registers a constant load of `cores` (e.g. 0.005/worker for gunicorn
  /// polling; PM stressor page-refresh). `spin` loads are discounted by the
  /// power model; non-spin background load is billed like compute.
  LoadId add_background_load(double cores, bool spin);
  void remove_background_load(LoadId id);

  // -- memory residency -----------------------------------------------------
  /// Adds resident bytes (image footprint, vm-bytes stressor allocations).
  /// Returns false — and counts an OOM event — when physical memory is
  /// exceeded; the accounting still proceeds so usage curves stay truthful.
  bool add_memory(std::uint64_t bytes);
  void remove_memory(std::uint64_t bytes);

  // -- instantaneous metrics --------------------------------------------------
  /// Cores currently burning work units (processor-sharing aware).
  [[nodiscard]] double compute_load() const noexcept;
  /// Cores occupied by spin-class background load.
  [[nodiscard]] double spin_load() const noexcept;
  /// Cores occupied by compute-class background load.
  [[nodiscard]] double background_compute_load() const noexcept { return background_compute_; }
  /// Busy fraction in [0,1] — what PCP's kernel.all.cpu metrics would show.
  [[nodiscard]] double cpu_fraction() const noexcept;
  [[nodiscard]] std::uint64_t resident_memory() const noexcept { return resident_memory_; }
  [[nodiscard]] std::uint64_t peak_memory() const noexcept { return peak_memory_; }
  [[nodiscard]] double power_watts() const noexcept;
  [[nodiscard]] std::uint64_t oom_events() const noexcept { return oom_events_; }
  [[nodiscard]] std::size_t active_work_items() const noexcept { return work_.size(); }

  /// Total work units completed on this node (for conservation checks).
  [[nodiscard]] double completed_work_units() const noexcept { return completed_units_; }

 private:
  struct WorkItem {
    double demand_cores;
    double remaining_units;
    double rate_units_per_s = 0.0;  // current processor-sharing rate
    QuotaGroupId group;
    std::function<void()> on_complete;
    sim::EventId completion_event = 0;
  };

  struct QuotaGroup {
    double cpu_limit;  // <= 0: unlimited
  };

  struct BackgroundLoad {
    double cores;
    bool spin;
  };

  /// Advances remaining work to `now`, recomputes processor-sharing rates
  /// for all items and reschedules their completion events.
  void rebalance();
  void advance_to_now();
  void complete_work(WorkId id);

  sim::Context& sim_;
  NodeSpec spec_;
  ResourceLedger ledger_;

  std::unordered_map<WorkId, WorkItem> work_;
  std::unordered_map<QuotaGroupId, QuotaGroup> groups_;
  std::unordered_map<LoadId, BackgroundLoad> background_;
  double background_spin_ = 0.0;
  double background_compute_ = 0.0;

  sim::SimTime last_advance_ = 0;
  std::uint64_t resident_memory_ = 0;
  std::uint64_t peak_memory_ = 0;
  std::uint64_t oom_events_ = 0;
  double completed_units_ = 0.0;

  WorkId next_work_id_ = 1;
  QuotaGroupId next_group_id_ = 1;
  LoadId next_load_id_ = 1;
};

}  // namespace wfs::cluster
