// RAPL-like package power model.
//
// The paper measures per-package power through PCP's denki.rapl.rate
// endpoints. We model a package as: idle draw plus a draw proportional to
// compute utilisation, plus a heavily discounted draw for "spin" load
// (resident-but-idle service workers polling, persistent-memory stressors
// touching pages) — low-IPC activity that occupies cores on the CPU-usage
// metric but moves package power very little. This split is what lets the
// reproduction show the paper's headline shape: large CPU%/memory deltas
// between paradigms at near-equal power.
#pragma once

namespace wfs::cluster {

struct PowerModel {
  double idle_watts = 105.0;      // 2x EPYC 7443 package idle, whole node
  double max_watts = 400.0;       // node fully busy on compute work
  double spin_power_weight = 0.15;  // fraction of compute power a spinning core draws

  /// Instantaneous node power given utilisation fractions in [0, 1].
  /// compute_fraction: cores running wfbench work units.
  /// spin_fraction: cores occupied by low-IPC resident overheads.
  [[nodiscard]] double watts(double compute_fraction, double spin_fraction) const noexcept;
};

}  // namespace wfs::cluster
