// A collection of nodes — the paper's 2-node EPYC testbed by default.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "cluster/node.h"

namespace wfs::cluster {

class Cluster {
 public:
  Cluster(sim::Context& sim, std::vector<NodeSpec> specs);

  /// The paper's testbed: master (96 hw threads, 256 GB) + worker
  /// (96 hw threads, 192 GB), 1 work-unit/s cores.
  static Cluster paper_testbed(sim::Context& sim);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] Node& node(std::size_t index) { return *nodes_.at(index); }
  [[nodiscard]] const Node& node(std::size_t index) const { return *nodes_.at(index); }

  /// Returns nullptr when no node has that name.
  [[nodiscard]] Node* find(std::string_view name) noexcept;

  // Cluster-wide instantaneous metrics (sums / capacity-weighted fractions).
  [[nodiscard]] double total_cores() const noexcept;
  [[nodiscard]] std::uint64_t total_memory() const noexcept;
  [[nodiscard]] double compute_load() const noexcept;
  [[nodiscard]] double cpu_fraction() const noexcept;
  [[nodiscard]] std::uint64_t resident_memory() const noexcept;
  [[nodiscard]] double power_watts() const noexcept;
  [[nodiscard]] std::uint64_t oom_events() const noexcept;

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace wfs::cluster
