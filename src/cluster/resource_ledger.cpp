#include "cluster/resource_ledger.h"

#include <algorithm>

namespace wfs::cluster {

bool ResourceLedger::try_reserve(double cpus, std::uint64_t memory_bytes) noexcept {
  // Tiny epsilon so that repeated reserve/release float arithmetic cannot
  // spuriously reject an exactly-fitting request.
  constexpr double kEpsilon = 1e-9;
  if (cpus > free_cpus() + kEpsilon) return false;
  if (memory_bytes > free_memory()) return false;
  reserved_cpus_ += cpus;
  reserved_memory_ += memory_bytes;
  return true;
}

void ResourceLedger::release(double cpus, std::uint64_t memory_bytes) noexcept {
  reserved_cpus_ = std::max(0.0, reserved_cpus_ - cpus);
  reserved_memory_ -= std::min(reserved_memory_, memory_bytes);
}

}  // namespace wfs::cluster
