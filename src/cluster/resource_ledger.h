// Tracks scheduler-level resource commitments (requests) on a node.
//
// This is the Kubernetes notion of "allocatable minus requested": the
// kube-like scheduler in src/faas/ refuses to place a pod whose CPU/memory
// *requests* do not fit, independent of what is actually being used.
#pragma once

#include <cstdint>

namespace wfs::cluster {

class ResourceLedger {
 public:
  ResourceLedger(double cpus, std::uint64_t memory_bytes)
      : total_cpus_(cpus), total_memory_(memory_bytes) {}

  /// Attempts to commit the given requests; all-or-nothing.
  [[nodiscard]] bool try_reserve(double cpus, std::uint64_t memory_bytes) noexcept;

  /// Releases a previous commitment. Clamps at zero (release of more than
  /// reserved indicates a caller bug; we stay safe and keep counters sane).
  void release(double cpus, std::uint64_t memory_bytes) noexcept;

  [[nodiscard]] double total_cpus() const noexcept { return total_cpus_; }
  [[nodiscard]] std::uint64_t total_memory() const noexcept { return total_memory_; }
  [[nodiscard]] double reserved_cpus() const noexcept { return reserved_cpus_; }
  [[nodiscard]] std::uint64_t reserved_memory() const noexcept { return reserved_memory_; }
  [[nodiscard]] double free_cpus() const noexcept { return total_cpus_ - reserved_cpus_; }
  [[nodiscard]] std::uint64_t free_memory() const noexcept {
    return total_memory_ - reserved_memory_;
  }

 private:
  double total_cpus_;
  std::uint64_t total_memory_;
  double reserved_cpus_ = 0.0;
  std::uint64_t reserved_memory_ = 0;
};

}  // namespace wfs::cluster
