#include "cluster/cluster.h"

#include <stdexcept>

namespace wfs::cluster {

Cluster::Cluster(sim::Context& sim, std::vector<NodeSpec> specs) {
  if (specs.empty()) throw std::invalid_argument("Cluster: at least one node required");
  nodes_.reserve(specs.size());
  for (auto& spec : specs) nodes_.push_back(std::make_unique<Node>(sim, std::move(spec)));
}

Cluster Cluster::paper_testbed(sim::Context& sim) {
  NodeSpec master;
  master.name = "master";
  master.cores = 96.0;
  master.memory_bytes = 256ULL << 30;
  NodeSpec worker;
  worker.name = "worker";
  worker.cores = 96.0;
  worker.memory_bytes = 192ULL << 30;
  return Cluster(sim, {master, worker});
}

Node* Cluster::find(std::string_view name) noexcept {
  for (auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

double Cluster::total_cores() const noexcept {
  double total = 0.0;
  for (const auto& node : nodes_) total += node->spec().cores;
  return total;
}

std::uint64_t Cluster::total_memory() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->spec().memory_bytes;
  return total;
}

double Cluster::compute_load() const noexcept {
  double total = 0.0;
  for (const auto& node : nodes_) total += node->compute_load();
  return total;
}

double Cluster::cpu_fraction() const noexcept {
  double busy = 0.0;
  for (const auto& node : nodes_) {
    busy += node->cpu_fraction() * node->spec().cores;
  }
  return busy / total_cores();
}

std::uint64_t Cluster::resident_memory() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->resident_memory();
  return total;
}

double Cluster::power_watts() const noexcept {
  double total = 0.0;
  for (const auto& node : nodes_) total += node->power_watts();
  return total;
}

std::uint64_t Cluster::oom_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->oom_events();
  return total;
}

}  // namespace wfs::cluster
