#include "cluster/node.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "support/log.h"

namespace wfs::cluster {
namespace {

// Work below this many units is considered finished (guards against float
// residue keeping items alive forever).
constexpr double kWorkEpsilon = 1e-9;

}  // namespace

Node::Node(sim::Context& sim, NodeSpec spec)
    : sim_(sim), spec_(std::move(spec)), ledger_(spec_.cores, spec_.memory_bytes) {
  if (spec_.cores <= 0) throw std::invalid_argument("Node: cores must be positive");
  if (spec_.core_speed <= 0) throw std::invalid_argument("Node: core_speed must be positive");
}

QuotaGroupId Node::create_quota_group(double cpu_limit) {
  const QuotaGroupId id = next_group_id_++;
  groups_.emplace(id, QuotaGroup{cpu_limit});
  return id;
}

void Node::destroy_quota_group(QuotaGroupId group) {
  groups_.erase(group);
  // Items of a destroyed group fall back to unlimited on the next rebalance.
  for (auto& [id, item] : work_) {
    if (item.group == group) item.group = kNoQuotaGroup;
  }
  rebalance();
}

WorkId Node::submit_work(double demand_cores, double work_units, QuotaGroupId group,
                         std::function<void()> on_complete) {
  if (demand_cores <= 0) throw std::invalid_argument("submit_work: demand must be positive");
  if (work_units < 0) throw std::invalid_argument("submit_work: negative work");
  const WorkId id = next_work_id_++;
  advance_to_now();
  WorkItem item;
  item.demand_cores = demand_cores;
  item.remaining_units = work_units;
  item.group = group;
  item.on_complete = std::move(on_complete);
  work_.emplace(id, std::move(item));
  rebalance();
  return id;
}

void Node::cancel_work(WorkId id) {
  const auto it = work_.find(id);
  if (it == work_.end()) return;
  advance_to_now();
  if (it->second.completion_event != 0) sim_.cancel(it->second.completion_event);
  work_.erase(it);
  rebalance();
}

LoadId Node::add_background_load(double cores, bool spin) {
  if (cores < 0) throw std::invalid_argument("add_background_load: negative load");
  const LoadId id = next_load_id_++;
  background_.emplace(id, BackgroundLoad{cores, spin});
  (spin ? background_spin_ : background_compute_) += cores;
  // Compute-class background load takes capacity away from work items.
  if (!spin) rebalance();
  return id;
}

void Node::remove_background_load(LoadId id) {
  const auto it = background_.find(id);
  if (it == background_.end()) return;
  const bool spin = it->second.spin;
  double& bucket = spin ? background_spin_ : background_compute_;
  bucket = std::max(0.0, bucket - it->second.cores);
  background_.erase(it);
  if (!spin) rebalance();
}

bool Node::add_memory(std::uint64_t bytes) {
  resident_memory_ += bytes;
  peak_memory_ = std::max(peak_memory_, resident_memory_);
  if (resident_memory_ > spec_.memory_bytes) {
    ++oom_events_;
    WFS_LOG_DEBUG("cluster", "node {} over physical memory: {} > {}", spec_.name,
                  resident_memory_, spec_.memory_bytes);
    return false;
  }
  return true;
}

void Node::remove_memory(std::uint64_t bytes) {
  resident_memory_ -= std::min(resident_memory_, bytes);
}

double Node::compute_load() const noexcept {
  double cores = 0.0;
  for (const auto& [id, item] : work_) {
    cores += item.rate_units_per_s / spec_.core_speed;
  }
  // Background compute (management daemons etc.) cannot occupy more than
  // the machine has; rebalance() already ceded it priority over work.
  return cores + std::min(background_compute_, spec_.cores);
}

double Node::spin_load() const noexcept {
  // Spin load cannot occupy cores compute is using; clamp to what is left.
  const double free_cores = std::max(0.0, spec_.cores - compute_load());
  return std::min(background_spin_, free_cores);
}

double Node::cpu_fraction() const noexcept {
  return std::clamp((compute_load() + spin_load()) / spec_.cores, 0.0, 1.0);
}

double Node::power_watts() const noexcept {
  return spec_.power.watts(compute_load() / spec_.cores, spin_load() / spec_.cores);
}

void Node::advance_to_now() {
  const sim::SimTime now = sim_.now();
  if (now == last_advance_) return;
  const double dt = sim::to_seconds(now - last_advance_);
  for (auto& [id, item] : work_) {
    const double done = std::min(item.remaining_units, item.rate_units_per_s * dt);
    item.remaining_units -= done;
    completed_units_ += done;
  }
  last_advance_ = now;
}

void Node::rebalance() {
  advance_to_now();

  // Pass 1: per-group demand, so cgroup quotas can scale their members.
  std::unordered_map<QuotaGroupId, double> group_demand;
  for (const auto& [id, item] : work_) group_demand[item.group] += item.demand_cores;

  const auto group_scale = [&](QuotaGroupId group) {
    if (group == kNoQuotaGroup) return 1.0;
    const auto it = groups_.find(group);
    if (it == groups_.end() || it->second.cpu_limit <= 0) return 1.0;
    const double demand = group_demand[group];
    if (demand <= it->second.cpu_limit) return 1.0;
    return it->second.cpu_limit / demand;
  };

  // Pass 2: node-level processor sharing over the quota-scaled demands.
  // Compute-class background load (kubelet-like daemons) is served first;
  // work items share what remains.
  const double work_capacity =
      std::max(0.0, spec_.cores - std::min(background_compute_, spec_.cores));
  double total_effective = 0.0;
  for (const auto& [id, item] : work_) {
    total_effective += item.demand_cores * group_scale(item.group);
  }
  const double node_scale =
      total_effective > work_capacity
          ? (total_effective > 0.0 ? work_capacity / total_effective : 1.0)
          : 1.0;

  // Pass 3: set rates and (re)schedule completions.
  for (auto& [id, item] : work_) {
    const double effective_cores = item.demand_cores * group_scale(item.group) * node_scale;
    item.rate_units_per_s = effective_cores * spec_.core_speed;
    if (item.completion_event != 0) {
      sim_.cancel(item.completion_event);
      item.completion_event = 0;
    }
    if (item.remaining_units <= kWorkEpsilon) {
      item.completion_event = sim_.schedule_in(0, [this, id = id] { complete_work(id); });
      continue;
    }
    if (item.rate_units_per_s <= 0.0) {
      // Starved (background daemons consume the whole machine): the item
      // stalls; a later rebalance with free capacity reschedules it.
      continue;
    }
    const double seconds = item.remaining_units / item.rate_units_per_s;
    const sim::SimTime delay = std::max<sim::SimTime>(1, sim::from_seconds(seconds));
    item.completion_event = sim_.schedule_in(delay, [this, id = id] { complete_work(id); });
  }
}

void Node::complete_work(WorkId id) {
  const auto it = work_.find(id);
  if (it == work_.end()) return;
  advance_to_now();
  // Integer-microsecond rounding can fire us marginally early; absorb the
  // residue rather than rescheduling sub-microsecond remainders.
  it->second.remaining_units = 0.0;
  auto on_complete = std::move(it->second.on_complete);
  work_.erase(it);
  rebalance();
  if (on_complete) on_complete();
}

}  // namespace wfs::cluster
