// Multi-tenant open-loop traffic: N tenants submit workflow runs into ONE
// shared serverless platform on independent, pre-generated arrival streams
// (load/arrival.h). This is the ROADMAP's production-platform view — the
// paper runs one workflow per dedicated cluster; here the cluster is a
// shared substrate and the interesting questions are platform-level:
// where is the goodput knee, and can one greedy tenant starve the others?
//
// Determinism: every arrival stream comes from a per-tenant fork() of the
// config seed and is generated before the simulation starts, so one config
// is byte-identical at any sim_shards value; sweeps parallelise over
// independent configs exactly like core::run_fleets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "load/arrival.h"
#include "metrics/registry.h"

namespace wfs::load {

struct TenantSpec {
  std::string name = "tenant-0";
  std::string recipe = "blast";
  std::size_t num_tasks = 20;
  /// Fair-dequeue weight at the activator (1.0 = equal share).
  double weight = 1.0;
  /// Share of the offered load this tenant submits, relative to the other
  /// tenants' shares. A greedy tenant is modeled as rate_share >> 1.
  double rate_share = 1.0;
};

struct TrafficConfig {
  /// Must be a serverless (Kn*) paradigm — tenancy lives in the activator.
  core::Paradigm paradigm = core::Paradigm::kKn10wNoPM;
  core::DeploymentShape shape;
  /// Per-run WFM defaults; tenant and task_retries are stamped per run.
  core::WfmConfig wfm;
  std::vector<TenantSpec> tenants;

  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  BurstyShape bursty;
  /// Recorded offsets for ArrivalProcess::kTrace.
  std::vector<double> trace;

  /// Total workflow-run arrival rate across all tenants, runs/second,
  /// split by TenantSpec::rate_share.
  double offered_load_rps = 0.05;
  /// Arrivals land in [0, window_seconds).
  double window_seconds = 600.0;
  /// Extra simulated time after the window for in-flight runs to finish;
  /// runs still going at window + drain are counted as failed.
  double drain_seconds = 1800.0;
  std::uint64_t seed = 1;
  double cpu_work = 20.0;
  std::size_t sim_shards = 1;

  /// Admission knobs, forwarded to faas::AdmissionConfig (0/0/false — the
  /// defaults — leave the activator on the exact single-tenant FIFO path).
  std::size_t tenant_quota = 0;
  std::size_t tenant_queue_limit = 0;
  bool fair_dequeue = false;

  /// Retries per task (the WFM honours rejections' retry_after_ms).
  int task_retries = 3;
  bool collect_metrics = true;
};

struct TenantStats {
  std::string name;
  double weight = 1.0;
  std::size_t submitted = 0;
  std::size_t completed = 0;  // runs that finished with zero failed tasks
  std::size_t failed = 0;     // finished with failures, or still going at the deadline
  std::uint64_t rejected_requests = 0;  // bounced at the activator queue bound
  double mean_makespan_seconds = 0.0;   // over completed runs
  double p50_makespan_seconds = 0.0;
  double p99_makespan_seconds = 0.0;
  double goodput_rps = 0.0;  // completed runs / window
};

struct TrafficResult {
  bool drained = false;  // every submitted run finished before the deadline
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t failed = 0;
  double offered_rps = 0.0;
  double goodput_rps = 0.0;  // completed runs / window, all tenants
  /// Jain index over per-tenant goodput normalised by weight: 1.0 = perfectly
  /// fair, 1/N = one tenant owns everything. 1.0 when nothing completed.
  double jain_fairness = 1.0;
  /// Tenants that submitted runs but completed none — the starvation signal
  /// the isolation bench guards at zero with quotas + fair dequeue on.
  std::size_t starved_tenants = 0;
  std::uint64_t rejected_requests = 0;
  std::uint64_t cold_starts = 0;
  double wall_seconds = 0.0;
  std::vector<TenantStats> tenants;
  /// Final registry snapshot (empty when collect_metrics was off); includes
  /// the per-tenant activator counters and tenant_makespan_seconds
  /// histograms.
  metrics::MetricsSnapshot metrics;

  [[nodiscard]] bool ok() const noexcept { return drained; }
};

/// Runs one traffic window to completion on a fresh simulation.
[[nodiscard]] TrafficResult run_traffic(const TrafficConfig& config);

/// Sweep over independent traffic configs on a thread pool, same contract
/// as core::run_fleets: results in input order, `progress` serialized in
/// completion order.
using TrafficProgress = std::function<void(std::size_t index, const TrafficResult&)>;
[[nodiscard]] std::vector<TrafficResult> run_traffic_sweep(
    const std::vector<TrafficConfig>& configs, std::size_t jobs = 0,
    const TrafficProgress& progress = {});

}  // namespace wfs::load
