// Open-loop arrival processes for the multi-tenant traffic generator.
//
// Every process pre-generates its full arrival sequence from an explicitly
// seeded support::Rng BEFORE the simulation starts, so a fixed seed yields
// byte-identical traffic at any --jobs or sim_shards setting (the same
// determinism contract as the rest of the framework).
//
//   * Poisson — memoryless arrivals at a constant rate; the classic
//     open-loop baseline.
//   * Bursty (MMPP-2) — a two-state Markov-modulated Poisson process: a
//     short high-rate burst state and a long quiet state, exponential
//     sojourns, with rates derived so the OVERALL mean equals the requested
//     rate. Models diurnal/bursty science-gateway submission patterns.
//   * Trace — deterministic replay of recorded arrival offsets, tiled and
//     rescaled to the requested rate and duration (no RNG at all).
#pragma once

#include <string_view>
#include <vector>

#include "support/rng.h"

namespace wfs::load {

enum class ArrivalProcess { kPoisson, kBursty, kTrace };

[[nodiscard]] std::string_view to_string(ArrivalProcess process) noexcept;
/// Accepts "poisson", "bursty"/"mmpp" and "trace". Throws
/// std::invalid_argument otherwise.
[[nodiscard]] ArrivalProcess parse_arrival_process(std::string_view text);

/// Shape of the MMPP-2 burst state.
struct BurstyShape {
  /// Burst-state arrival rate as a multiple of the overall mean rate.
  double burst_rate_factor = 8.0;
  /// Long-run fraction of time spent in the burst state. The quiet-state
  /// rate is derived so the overall mean matches the requested rate:
  /// quiet = (mean - fraction * burst) / (1 - fraction), clamped at 0.
  double burst_fraction = 0.1;
  /// Mean burst + quiet cycle length, seconds (exponential sojourns).
  double mean_cycle_seconds = 60.0;
};

/// Poisson arrivals at `rate_per_second` over [0, duration_seconds).
/// Sorted, possibly empty. rate <= 0 yields no arrivals.
[[nodiscard]] std::vector<double> poisson_arrivals(support::Rng& rng,
                                                   double rate_per_second,
                                                   double duration_seconds);

/// MMPP-2 arrivals with overall mean `mean_rate_per_second`.
[[nodiscard]] std::vector<double> mmpp_arrivals(support::Rng& rng,
                                                double mean_rate_per_second,
                                                double duration_seconds,
                                                const BurstyShape& shape = {});

/// Replays `trace_offsets` (arrival instants of one recorded window, any
/// scale — they are normalised by their span) tiled and rescaled so that
/// round(rate * duration) arrivals land in [0, duration). Fully
/// deterministic. An empty trace degenerates to evenly spaced arrivals.
[[nodiscard]] std::vector<double> trace_arrivals(const std::vector<double>& trace_offsets,
                                                 double rate_per_second,
                                                 double duration_seconds);

}  // namespace wfs::load
