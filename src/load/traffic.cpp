#include "load/traffic.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "cluster/cluster.h"
#include "faas/platform.h"
#include "metrics/aggregate.h"
#include "net/router.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "storage/shared_fs.h"
#include "support/log.h"
#include "support/thread_pool.h"
#include "wfcommons/generator.h"

namespace wfs::load {

namespace {

/// Percentile over a SORTED vector (nearest-rank with interpolation);
/// 0 for an empty vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double> tenant_arrivals(const TrafficConfig& config, support::Rng& rng,
                                    double rate) {
  const double window = config.window_seconds;
  switch (config.arrival) {
    case ArrivalProcess::kPoisson: return poisson_arrivals(rng, rate, window);
    case ArrivalProcess::kBursty: return mmpp_arrivals(rng, rate, window, config.bursty);
    case ArrivalProcess::kTrace: return trace_arrivals(config.trace, rate, window);
  }
  return {};
}

}  // namespace

TrafficResult run_traffic(const TrafficConfig& config) {
  if (config.tenants.empty()) throw std::invalid_argument("run_traffic: no tenants");
  const core::ParadigmInfo& paradigm = core::paradigm_info(config.paradigm);
  if (!paradigm.serverless) {
    throw std::invalid_argument(
        "run_traffic: tenancy lives in the activator — use a Kn* paradigm");
  }
  double total_share = 0.0;
  for (const TenantSpec& tenant : config.tenants) {
    if (tenant.name.empty()) throw std::invalid_argument("run_traffic: tenant without name");
    total_share += std::max(tenant.rate_share, 0.0);
  }
  if (total_share <= 0.0) throw std::invalid_argument("run_traffic: zero total rate share");

  // Engine selection, identical to run_fleet: the classic single-queue
  // Simulation at sim_shards == 1, the conservative-lookahead engine above
  // that — results byte-identical at any value.
  std::unique_ptr<sim::Simulation> plain_sim;
  std::unique_ptr<sim::ShardedSimulation> sharded_sim;
  sim::Context* sim_context = nullptr;
  if (config.sim_shards > 1) {
    sharded_sim = std::make_unique<sim::ShardedSimulation>(config.sim_shards);
    sim_context = &sharded_sim->shard(0);
  } else {
    plain_sim = std::make_unique<sim::Simulation>();
    sim_context = plain_sim.get();
  }
  sim::Context& sim = *sim_context;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  storage::SharedFilesystem fs(sim);
  net::Router router(sim, net::NetworkConfig{}, config.seed);

  // One shared deployment for every tenant — the whole point. Admission
  // knobs land in the spec; weights come from the tenant list.
  faas::KnativeServiceSpec spec = core::knative_spec_for(config.paradigm, config.shape);
  spec.admission.tenant_inflight_limit = config.tenant_quota;
  spec.admission.tenant_queue_limit = config.tenant_queue_limit;
  spec.admission.fair_dequeue = config.fair_dequeue;
  for (const TenantSpec& tenant : config.tenants) {
    if (tenant.weight != 1.0) spec.admission.weights[tenant.name] = tenant.weight;
  }
  faas::KnativePlatform knative(sim, cluster, fs, router, spec);
  std::unique_ptr<metrics::MetricsRegistry> registry;
  if (config.collect_metrics) {
    registry = std::make_unique<metrics::MetricsRegistry>();
    knative.set_metrics(registry.get());
  }
  knative.deploy();
  const std::string endpoint = "http://" + spec.authority + "/wfbench";

  // One generated workflow per tenant, reused across that tenant's runs
  // (tenants re-submitting the same benchmark app — the fleet runner treats
  // concurrent same-recipe workflows the same way).
  wfcommons::WorkflowGenerator generator;
  std::vector<wfcommons::Workflow> workflows;
  std::vector<metrics::Histogram*> makespan_hists(config.tenants.size(), nullptr);
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    const TenantSpec& tenant = config.tenants[i];
    wfcommons::GenerateOptions options;
    options.num_tasks = tenant.num_tasks;
    options.seed = config.seed + i;
    options.cpu_work = config.cpu_work;
    wfcommons::Workflow wf = wfcommons::make_recipe(tenant.recipe)->generate(options);
    for (wfcommons::Task& task : wf.tasks()) task.api_url = endpoint;
    workflows.push_back(std::move(wf));
    if (registry) {
      makespan_hists[i] = &registry->histogram(
          "tenant_makespan_seconds", "Per-tenant workflow makespan distribution",
          {{"tenant", tenant.name}});
    }
  }

  // Pre-generate every tenant's arrival stream from an independent fork of
  // the root seed — all randomness is spent before the simulation starts.
  support::Rng root(config.seed);
  std::vector<std::vector<double>> arrivals;
  for (const TenantSpec& tenant : config.tenants) {
    support::Rng stream = root.fork();
    const double rate =
        config.offered_load_rps * std::max(tenant.rate_share, 0.0) / total_share;
    arrivals.push_back(tenant_arrivals(config, stream, rate));
  }

  TrafficResult result;
  result.tenants.resize(config.tenants.size());
  std::vector<std::vector<double>> makespans(config.tenants.size());
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    result.tenants[i].name = config.tenants[i].name;
    result.tenants[i].weight = config.tenants[i].weight;
    result.tenants[i].submitted = arrivals[i].size();
    result.submitted += arrivals[i].size();
  }

  core::WorkflowManager wfm(sim, router, fs, config.wfm);
  if (registry) wfm.set_metrics(registry.get());
  std::size_t remaining = result.submitted;
  const auto record = [&](std::size_t tenant_idx, core::WorkflowRunResult run) {
    TenantStats& stats = result.tenants[tenant_idx];
    if (run.ok()) {
      ++stats.completed;
      makespans[tenant_idx].push_back(run.makespan_seconds);
      if (makespan_hists[tenant_idx] != nullptr) {
        makespan_hists[tenant_idx]->observe(run.makespan_seconds);
      }
    } else {
      ++stats.failed;
    }
    --remaining;
  };

  // Schedule every arrival up front; each submission is an independent run
  // of the tenant's workflow, stamped with the tenant label the activator
  // keys admission on.
  for (std::size_t i = 0; i < config.tenants.size(); ++i) {
    core::WfmConfig run_config = config.wfm;
    run_config.tenant = config.tenants[i].name;
    run_config.task_retries = config.task_retries;
    for (const double at : arrivals[i]) {
      sim.schedule_in(sim::from_seconds(at), [&wfm, &workflows, &record, i, run_config] {
        wfm.run(workflows[i],
                [&record, i](core::WorkflowRunResult run) { record(i, std::move(run)); },
                run_config);
      });
    }
  }

  const sim::SimTime deadline =
      sim::from_seconds(config.window_seconds + config.drain_seconds);
  if (sharded_sim) {
    sim::SimTime lookahead = std::min(router.min_latency(), fs.min_op_latency());
    lookahead = std::min(lookahead, knative.spec().min_edge_latency());
    sharded_sim->set_lookahead(std::max<sim::SimTime>(1, lookahead));
    sharded_sim->run_until(deadline);
  } else {
    plain_sim->run_until(deadline);
  }

  result.drained = remaining == 0;
  result.offered_rps = config.offered_load_rps;
  result.wall_seconds = sim::to_seconds(sim.now());
  result.cold_starts = knative.stats().pods_created;
  result.rejected_requests = knative.activator().total_rejected();
  const auto& tenant_counters = knative.activator().tenants();

  std::vector<double> fair_share;
  for (std::size_t i = 0; i < result.tenants.size(); ++i) {
    TenantStats& stats = result.tenants[i];
    // Runs still in flight at the deadline count as failed: open-loop
    // overload shows up as losses, not as a silently extended window.
    stats.failed += stats.submitted - stats.completed - stats.failed;
    if (auto it = tenant_counters.find(stats.name); it != tenant_counters.end()) {
      stats.rejected_requests = it->second.rejected;
    }
    std::sort(makespans[i].begin(), makespans[i].end());
    if (!makespans[i].empty()) {
      double sum = 0.0;
      for (const double m : makespans[i]) sum += m;
      stats.mean_makespan_seconds = sum / static_cast<double>(makespans[i].size());
      stats.p50_makespan_seconds = percentile(makespans[i], 0.50);
      stats.p99_makespan_seconds = percentile(makespans[i], 0.99);
    }
    stats.goodput_rps = static_cast<double>(stats.completed) / config.window_seconds;
    result.completed += stats.completed;
    result.failed += stats.failed;
    if (stats.submitted > 0) {
      if (stats.completed == 0) ++result.starved_tenants;
      fair_share.push_back(stats.goodput_rps / std::max(stats.weight, 1e-9));
    }
  }
  result.goodput_rps = static_cast<double>(result.completed) / config.window_seconds;
  result.jain_fairness = metrics::jain_fairness(fair_share);

  knative.shutdown();
  if (registry) result.metrics = registry->snapshot();
  WFS_LOG_INFO("load",
               "traffic window done: offered {:.3f} rps, goodput {:.3f} rps, "
               "{}/{} runs ok, jain {:.3f}, {} starved",
               result.offered_rps, result.goodput_rps, result.completed,
               result.submitted, result.jain_fairness, result.starved_tenants);
  return result;
}

std::vector<TrafficResult> run_traffic_sweep(const std::vector<TrafficConfig>& configs,
                                             std::size_t jobs,
                                             const TrafficProgress& progress) {
  const std::size_t workers =
      std::min(jobs == 0 ? support::ThreadPool::default_workers() : jobs,
               std::max<std::size_t>(1, configs.size()));

  std::vector<TrafficResult> results;
  if (workers <= 1) {
    results.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results.push_back(run_traffic(configs[i]));
      if (progress) progress(i, results.back());
    }
    return results;
  }

  results.resize(configs.size());
  std::mutex progress_mutex;
  support::ThreadPool pool(workers);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pool.submit([&results, &configs, &progress, &progress_mutex, i] {
      TrafficResult result;
      try {
        result = run_traffic(configs[i]);
      } catch (const std::exception&) {
        result.drained = false;  // surfaced as !ok(); the sweep goes on
      }
      results[i] = std::move(result);
      if (progress) {
        const std::scoped_lock lock(progress_mutex);
        progress(i, results[i]);
      }
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace wfs::load
