#include "load/arrival.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace wfs::load {

std::string_view to_string(ArrivalProcess process) noexcept {
  switch (process) {
    case ArrivalProcess::kPoisson: return "poisson";
    case ArrivalProcess::kBursty: return "bursty";
    case ArrivalProcess::kTrace: return "trace";
  }
  return "poisson";
}

ArrivalProcess parse_arrival_process(std::string_view text) {
  if (text == "poisson") return ArrivalProcess::kPoisson;
  if (text == "bursty" || text == "mmpp") return ArrivalProcess::kBursty;
  if (text == "trace") return ArrivalProcess::kTrace;
  throw std::invalid_argument("unknown arrival process: " + std::string(text));
}

namespace {

/// Exponential draw with the given rate (events per second).
double exponential(support::Rng& rng, double rate) {
  // uniform_real is [0, 1): 1 - u is (0, 1], so the log is finite.
  return -std::log(1.0 - rng.uniform_real(0.0, 1.0)) / rate;
}

/// Appends Poisson arrivals at `rate` over [start, end) to `out`.
void append_poisson(support::Rng& rng, double rate, double start, double end,
                    std::vector<double>* out) {
  if (rate <= 0.0) return;
  double t = start + exponential(rng, rate);
  while (t < end) {
    out->push_back(t);
    t += exponential(rng, rate);
  }
}

}  // namespace

std::vector<double> poisson_arrivals(support::Rng& rng, double rate_per_second,
                                     double duration_seconds) {
  std::vector<double> arrivals;
  if (rate_per_second > 0.0 && duration_seconds > 0.0) {
    arrivals.reserve(static_cast<std::size_t>(rate_per_second * duration_seconds * 1.25) + 4);
    append_poisson(rng, rate_per_second, 0.0, duration_seconds, &arrivals);
  }
  return arrivals;
}

std::vector<double> mmpp_arrivals(support::Rng& rng, double mean_rate_per_second,
                                  double duration_seconds, const BurstyShape& shape) {
  std::vector<double> arrivals;
  if (mean_rate_per_second <= 0.0 || duration_seconds <= 0.0) return arrivals;
  const double fraction = std::clamp(shape.burst_fraction, 1e-6, 1.0 - 1e-6);
  const double burst_rate = std::max(shape.burst_rate_factor, 1.0) * mean_rate_per_second;
  const double quiet_rate =
      std::max(0.0, (mean_rate_per_second - fraction * burst_rate) / (1.0 - fraction));
  const double cycle = std::max(shape.mean_cycle_seconds, 1e-6);
  const double burst_sojourn = fraction * cycle;
  const double quiet_sojourn = (1.0 - fraction) * cycle;

  arrivals.reserve(
      static_cast<std::size_t>(mean_rate_per_second * duration_seconds * 1.25) + 4);
  // Walk the state chain over the window, Poisson-filling each segment.
  bool bursting = false;  // start quiet: bursts interrupt a calm baseline
  double t = 0.0;
  while (t < duration_seconds) {
    const double sojourn = exponential(rng, 1.0 / (bursting ? burst_sojourn : quiet_sojourn));
    const double end = std::min(t + sojourn, duration_seconds);
    append_poisson(rng, bursting ? burst_rate : quiet_rate, t, end, &arrivals);
    t = end;
    bursting = !bursting;
  }
  return arrivals;
}

std::vector<double> trace_arrivals(const std::vector<double>& trace_offsets,
                                   double rate_per_second, double duration_seconds) {
  std::vector<double> arrivals;
  if (rate_per_second <= 0.0 || duration_seconds <= 0.0) return arrivals;
  const std::size_t total =
      static_cast<std::size_t>(std::llround(rate_per_second * duration_seconds));
  if (total == 0) return arrivals;
  arrivals.reserve(total);

  if (trace_offsets.empty()) {
    // Degenerate trace: evenly spaced arrivals.
    const double step = duration_seconds / static_cast<double>(total);
    for (std::size_t i = 0; i < total; ++i) arrivals.push_back(static_cast<double>(i) * step);
    return arrivals;
  }

  // Normalise the recorded window to [0, 1) by its span, then tile it:
  // arrival i replays offset i % n of cycle i / n, with cycles rescaled so
  // the tiling exactly covers [0, duration).
  std::vector<double> normalized = trace_offsets;
  std::sort(normalized.begin(), normalized.end());
  const double base = normalized.front();
  const double span = std::max(normalized.back() - base, 1e-9);
  for (double& offset : normalized) offset = (offset - base) / (span * (1.0 + 1e-9));

  const std::size_t per_cycle = normalized.size();
  const std::size_t cycles = (total + per_cycle - 1) / per_cycle;
  const double cycle_len = duration_seconds / static_cast<double>(cycles);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t cycle = i / per_cycle;
    arrivals.push_back((static_cast<double>(cycle) + normalized[i % per_cycle]) * cycle_len);
  }
  std::sort(arrivals.begin(), arrivals.end());
  return arrivals;
}

}  // namespace wfs::load
