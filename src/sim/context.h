// The scheduling surface every simulated component programs against.
//
// Substrates (cluster, storage, network, platform, WFM) only ever need four
// operations: read the clock, schedule relative/absolute callbacks, and
// cancel. Extracting them as an interface lets the same component code run
// either on the classic single-threaded `Simulation` or bound to one shard
// of a `ShardedSimulation` — the component cannot tell the difference, and
// must not try to (shard-local time only advances inside its own events).
#pragma once

#include "sim/clock.h"
#include "sim/event_queue.h"

namespace wfs::sim {

class Context {
 public:
  Context() = default;
  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;
  virtual ~Context() = default;

  /// Current simulated time as observed by this context.
  [[nodiscard]] virtual SimTime now() const noexcept = 0;

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0;
  /// a zero delay runs after all currently pending work at `now`).
  virtual EventId schedule_in(SimTime delay, EventQueue::Callback fn) = 0;

  /// Schedules `fn` at an absolute time (>= now).
  virtual EventId schedule_at(SimTime at, EventQueue::Callback fn) = 0;

  /// Cancels a pending event. False when already fired/cancelled/unknown.
  virtual bool cancel(EventId id) = 0;
};

}  // namespace wfs::sim
