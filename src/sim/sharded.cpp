#include "sim/sharded.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "metrics/registry.h"
#include "obs/trace_recorder.h"
#include "support/format.h"
#include "support/thread_pool.h"

namespace wfs::sim {
namespace {

constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

}  // namespace

// ---- Shard ------------------------------------------------------------------

EventId ShardedSimulation::Shard::schedule_in(SimTime delay, EventQueue::Callback fn) {
  if (delay < 0) {
    throw std::invalid_argument("ShardedSimulation::Shard::schedule_in: negative delay");
  }
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId ShardedSimulation::Shard::schedule_at(SimTime at, EventQueue::Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("ShardedSimulation::Shard::schedule_at: time in the past");
  }
  return queue_.schedule(at, std::move(fn));
}

void ShardedSimulation::Shard::post(std::size_t target, SimTime at,
                                    EventQueue::Callback fn) {
  if (target >= owner_.shards_.size()) {
    throw std::out_of_range("ShardedSimulation::Shard::post: no such shard");
  }
  if (target == index_) {
    schedule_at(at, std::move(fn));
    return;
  }
  ++stats_.posts_sent;
  if (owner_.in_window_.load(std::memory_order_relaxed)) {
    // Conservative guarantee: the target may be executing anywhere before
    // the horizon right now, so a message landing inside the window would
    // race (and break reproducibility). Lookahead must cover the latency.
    if (at < owner_.horizon_) {
      throw std::invalid_argument(
          "ShardedSimulation::Shard::post: delivery time inside the current "
          "window (cross-shard latency shorter than the configured lookahead)");
    }
    outbox_.push_back(Mail{target, at, std::move(fn)});
    return;
  }
  // Between windows the engine is single-threaded; deliver directly.
  if (at < owner_.committed_) {
    throw std::invalid_argument(
        "ShardedSimulation::Shard::post: delivery time before committed time");
  }
  owner_.shards_[target]->queue_.schedule(at, std::move(fn));
}

void ShardedSimulation::Shard::run_window(SimTime horizon, const StopPredicate& stop) {
  try {
    bool ran = false;
    if (stop) {
      // Mirror the classic `while (!stop()) sim.step(1)` driver exactly:
      // the predicate gates every dispatch and observes the time of the
      // last EXECUTED event, so a deadline predicate still lets the
      // crossing event run. One event at a time — a batch already popped
      // when the predicate fires would be thrown away, losing events.
      while (!queue_.empty() && queue_.next_time() < horizon) {
        if (stop()) {
          owner_.stop_requested_.store(true, std::memory_order_relaxed);
          if (ran) ++stats_.active_windows;
          return;
        }
        EventQueue::Popped popped = queue_.pop();
        ++stats_.executed;
        if (stats_.executed > owner_.config_.event_limit) {
          throw std::runtime_error(
              "ShardedSimulation event limit exceeded (runaway event storm?)");
        }
        ran = true;
        now_ = popped.time;
        popped.fn();
      }
    } else {
      while (!queue_.empty() && queue_.next_time() < horizon) {
        const SimTime t = queue_.pop_batch(batch_);
        for (EventQueue::BatchItem& item : batch_) {
          if (!queue_.claim(item.id)) continue;
          ++stats_.executed;
          if (stats_.executed > owner_.config_.event_limit) {
            batch_.clear();
            throw std::runtime_error(
                "ShardedSimulation event limit exceeded (runaway event storm?)");
          }
          ran = true;
          now_ = t;
          item.fn();
          item.fn = nullptr;
        }
        batch_.clear();
      }
    }
    if (ran) ++stats_.active_windows;
  } catch (...) {
    error_ = std::current_exception();
  }
}

// ---- engine -----------------------------------------------------------------

ShardedSimulation::ShardedSimulation(std::size_t shards, ShardedConfig config)
    : config_(config) {
  if (shards == 0) throw std::invalid_argument("ShardedSimulation: need >= 1 shard");
  if (config_.lookahead < 1) {
    throw std::invalid_argument("ShardedSimulation: lookahead must be >= 1 us");
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.emplace_back(new Shard(*this, i));
  }
  std::size_t workers = config_.workers == 0
                            ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                            : config_.workers;
  workers = std::min(workers, shards);
  if (workers > 1) pool_ = std::make_unique<support::ThreadPool>(workers);
}

ShardedSimulation::~ShardedSimulation() = default;

SimTime ShardedSimulation::now() const noexcept {
  SimTime latest = drained_until_;
  for (const auto& shard : shards_) latest = std::max(latest, shard->now_);
  return latest;
}

bool ShardedSimulation::idle() const {
  return std::all_of(shards_.begin(), shards_.end(),
                     [](const auto& shard) { return shard->queue_.empty(); });
}

std::uint64_t ShardedSimulation::executed_events() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->stats_.executed;
  return total;
}

void ShardedSimulation::deliver_mail() {
  // Source-shard order, send order within a source: the target queue's
  // sequence numbers — and hence all tie-breaks — are reproducible for any
  // worker count.
  for (const auto& source : shards_) {
    for (Shard::Mail& mail : source->outbox_) {
      shards_[mail.target]->queue_.schedule(mail.at, std::move(mail.fn));
    }
    source->outbox_.clear();
  }
}

bool ShardedSimulation::run_window(SimTime deadline, const StopPredicate& stop) {
  SimTime open = kNever;
  std::size_t nonempty = 0;
  for (const auto& shard : shards_) {
    if (shard->queue_.empty()) continue;
    ++nonempty;
    open = std::min(open, shard->queue_.next_time());
  }
  if (nonempty == 0 || open > deadline) return false;

  horizon_ = open > kNever - config_.lookahead ? kNever : open + config_.lookahead;
  if (deadline != kNever && horizon_ > deadline) horizon_ = deadline + 1;

  occupied_.clear();
  std::size_t stalled = 0;
  for (const auto& shard : shards_) {
    if (shard->queue_.empty()) continue;
    if (shard->queue_.next_time() < horizon_) {
      occupied_.push_back(shard.get());
    } else {
      ++shard->stats_.stall_windows;
      ++stalled;
    }
  }

  ++windows_;
  sync_stalls_ += stalled;
  const bool parallel = pool_ != nullptr && occupied_.size() > 1;
  if (parallel) ++parallel_windows_;

  in_window_.store(true, std::memory_order_relaxed);
  if (parallel) {
    for (Shard* shard : occupied_) {
      pool_->submit([shard, horizon = horizon_, &stop] {
        shard->run_window(horizon, stop);
      });
    }
    pool_->wait_idle();
  } else {
    // Single occupied shard — or no pool: run inline, in shard order.
    for (Shard* shard : occupied_) shard->run_window(horizon_, stop);
  }
  in_window_.store(false, std::memory_order_relaxed);

  for (Shard* shard : occupied_) {
    if (shard->error_) {
      std::exception_ptr error = std::exchange(shard->error_, nullptr);
      std::rethrow_exception(error);
    }
  }

  deliver_mail();
  committed_ = horizon_;

  if (windows_metric_ != nullptr) {
    windows_metric_->inc();
    if (parallel) parallel_windows_metric_->inc();
    if (stalled > 0) stall_windows_metric_->inc(static_cast<double>(stalled));
    occupancy_metric_->observe(static_cast<double>(occupied_.size()));
    for (const Shard* shard : occupied_) {
      shard_events_metric_[shard->index_]->inc(
          static_cast<double>(shard->stats_.executed) -
          shard_events_seen_[shard->index_]);
      shard_events_seen_[shard->index_] =
          static_cast<double>(shard->stats_.executed);
    }
  }
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->counter(trace_pid_, "occupied_shards", open,
                    static_cast<double>(occupied_.size()));
    trace_->counter(trace_pid_, "stalled_shards", open, static_cast<double>(stalled));
  }
  return true;
}

SimTime ShardedSimulation::run(const StopPredicate& stop) {
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (!run_window(kNever, stop)) break;
  }
  return now();
}

SimTime ShardedSimulation::run_until(SimTime deadline, const StopPredicate& stop) {
  stop_requested_.store(false, std::memory_order_relaxed);
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (!run_window(deadline, stop)) break;
  }
  // Mirror Simulation::run_until: when everything at or before the deadline
  // has drained, the clock still advances to the deadline.
  if (!stop_requested_.load(std::memory_order_relaxed) && drained_until_ < deadline) {
    drained_until_ = deadline;
  }
  return now();
}

void ShardedSimulation::set_lookahead(SimTime lookahead) {
  if (in_window_.load(std::memory_order_relaxed)) {
    throw std::logic_error("ShardedSimulation::set_lookahead: window in flight");
  }
  if (lookahead < 1) {
    throw std::invalid_argument("ShardedSimulation: lookahead must be >= 1 us");
  }
  config_.lookahead = lookahead;
}

void ShardedSimulation::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    windows_metric_ = nullptr;
    parallel_windows_metric_ = nullptr;
    stall_windows_metric_ = nullptr;
    occupancy_metric_ = nullptr;
    shard_events_metric_.clear();
    shard_events_seen_.clear();
    return;
  }
  windows_metric_ = &registry->counter("sim_windows_total",
                                       "Lookahead windows executed");
  parallel_windows_metric_ =
      &registry->counter("sim_window_parallel_total",
                         "Windows with more than one occupied shard");
  stall_windows_metric_ =
      &registry->counter("sim_sync_stall_windows_total",
                         "Shard-windows stalled on conservative lookahead");
  occupancy_metric_ = &registry->histogram("sim_window_occupancy",
                                           "Occupied shards per window");
  shard_events_metric_.clear();
  shard_events_seen_.assign(shards_.size(), 0.0);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shard_events_metric_.push_back(
        &registry->counter("sim_shard_events_total", "Events dispatched per shard",
                           {{"shard", support::format("{}", i)}}));
  }
}

void ShardedSimulation::set_trace(obs::TraceRecorder* recorder) {
  trace_ = recorder;
  if (trace_ != nullptr) trace_pid_ = trace_->process("sim-shards");
}

}  // namespace wfs::sim
