#include "sim/periodic.h"

#include <stdexcept>

namespace wfs::sim {

PeriodicTask::PeriodicTask(Context& sim, SimTime period, Callback fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  if (period_ <= 0) throw std::invalid_argument("PeriodicTask: period must be positive");
}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start(SimTime first_delay) {
  if (running_) return;
  running_ = true;
  arm(first_delay);
}

void PeriodicTask::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    sim_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTask::arm(SimTime delay) {
  pending_ = sim_.schedule_in(delay, [this] { fire(); });
}

void PeriodicTask::fire() {
  pending_ = 0;
  if (!running_) return;
  fn_(sim_.now());
  // The callback may have stopped us — or stopped AND restarted us, in
  // which case start() already armed the next occurrence and re-arming
  // here would double the firing rate and leak an untracked event
  // (pending_ would be overwritten while start()'s event stays live).
  if (running_ && pending_ == 0) arm(period_);
}

}  // namespace wfs::sim
