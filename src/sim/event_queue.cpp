#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <stdexcept>
#include <utility>

namespace wfs::sim {

EventId EventQueue::schedule(SimTime at, Callback fn) {
  if (at < floor_) {
    throw std::invalid_argument(
        "EventQueue::schedule: time is in the past relative to the last "
        "popped event (causal order violation)");
  }
  const EventId id = next_id_++;
  if ((id >> 5) >= states_.size()) states_.push_back(0);
  set_state(id, kResident);
  const auto [it, inserted] = buckets_.try_emplace(at);
  if (inserted) {
    if (!spare_.empty()) {
      it->second.items = std::move(spare_.back());
      spare_.pop_back();
    }
    times_.push_back(at);
    std::push_heap(times_.begin(), times_.end(), std::greater<>{});
  }
  it->second.items.push_back(BatchItem{id, std::move(fn)});
  ++retained_;
  ++bucket_live_;
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  const std::uint8_t state = state_of(id);
  if (state == kDead) return false;
  set_state(id, kDead);
  --live_count_;
  if (state == kExtracted) {
    // Extracted into a running batch; claim() will observe the tombstone.
    ++batch_cancelled_;
    return true;
  }
  --bucket_live_;
  ++cancelled_resident_;
  // Lazy skipping alone only reclaims a cancelled entry once its bucket is
  // dispatched, so far-future schedule-then-cancel churn would pin memory
  // for the whole run. Sweep once bucket-resident tombstones exceed half
  // the retained entries: O(n) per sweep, amortised O(1) per cancel.
  if (cancelled_resident_ * 2 > retained_) sweep_cancelled();
  return true;
}

void EventQueue::sweep_cancelled() {
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    Bucket& bucket = it->second;
    auto& items = bucket.items;
    std::size_t write = bucket.head;
    for (std::size_t read = bucket.head; read < items.size(); ++read) {
      if (state_of(items[read].id) == kDead) {
        --retained_;
        --cancelled_resident_;
        continue;
      }
      if (write != read) items[write] = std::move(items[read]);
      ++write;
    }
    items.resize(write);
    if (write == bucket.head) {
      // Fully-cancelled bucket: retire it here; the times_ heap is rebuilt
      // below so its timestamp disappears too.
      items.clear();
      spare_.push_back(std::move(items));
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
  assert(cancelled_resident_ == 0);
  times_.clear();
  times_.reserve(buckets_.size());
  for (const auto& [time, bucket] : buckets_) times_.push_back(time);
  std::make_heap(times_.begin(), times_.end(), std::greater<>{});
}

void EventQueue::pop_time(SimTime time) const {
  assert(!times_.empty() && times_.front() == time);
  std::pop_heap(times_.begin(), times_.end(), std::greater<>{});
  times_.pop_back();
  const auto it = buckets_.find(time);
  assert(it != buckets_.end());
  std::vector<BatchItem> recycled = std::move(it->second.items);
  recycled.clear();
  spare_.push_back(std::move(recycled));
  buckets_.erase(it);
}

// Advances past cancelled tombstones until the front bucket's cursor rests
// on a live item (or the heap drains). Each tombstone is visited once.
void EventQueue::drop_dead_buckets() const {
  while (!times_.empty()) {
    const SimTime time = times_.front();
    Bucket& bucket = buckets_.at(time);
    while (bucket.head < bucket.items.size() &&
           state_of(bucket.items[bucket.head].id) == kDead) {
      ++bucket.head;
      --retained_;
      --cancelled_resident_;
    }
    if (bucket.head < bucket.items.size()) return;
    pop_time(time);
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_buckets();
  if (times_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return times_.front();
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_buckets();
  if (times_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  const SimTime time = times_.front();
  Bucket& bucket = buckets_.at(time);
  // drop_dead_buckets left the cursor on a live item.
  BatchItem item = std::move(bucket.items[bucket.head]);
  ++bucket.head;
  --retained_;
  --bucket_live_;
  --live_count_;
  set_state(item.id, kDead);
  if (bucket.head == bucket.items.size()) pop_time(time);
  floor_ = time;
  return Popped{time, std::move(item.fn)};
}

SimTime EventQueue::pop_batch(std::vector<BatchItem>& out) {
  out.clear();
  drop_dead_buckets();
  if (times_.empty()) throw std::logic_error("EventQueue::pop_batch on empty queue");
  const SimTime time = times_.front();
  Bucket& bucket = buckets_.at(time);
  if (out.capacity() < bucket.items.size() - bucket.head) {
    out.reserve(bucket.items.size() - bucket.head);
  }
  for (std::size_t i = bucket.head; i < bucket.items.size(); ++i) {
    BatchItem& item = bucket.items[i];
    --retained_;
    if (state_of(item.id) == kDead) {
      --cancelled_resident_;
      continue;
    }
    // Keep the event live (as kExtracted) so a same-instant predecessor in
    // this batch can still cancel() it before claim() runs it.
    set_state(item.id, kExtracted);
    --bucket_live_;
    out.push_back(std::move(item));
  }
  bucket.head = bucket.items.size();
  pop_time(time);
  floor_ = time;
  return time;
}

bool EventQueue::claim(EventId id) {
  if (batch_cancelled_ > 0 && state_of(id) == kDead) {
    --batch_cancelled_;
    return false;
  }
  set_state(id, kDead);
  --live_count_;
  return true;
}

}  // namespace wfs::sim
