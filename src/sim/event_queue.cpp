#include "sim/event_queue.h"

#include <cassert>
#include <stdexcept>

namespace wfs::sim {

EventId EventQueue::schedule(SimTime at, Callback fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, next_sequence_++, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

bool EventQueue::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  // Lazy skipping alone only reclaims a cancelled entry once it surfaces at
  // the top, so far-future schedule-then-cancel churn would pin memory for
  // the whole run. Rebuild once cancelled entries exceed half the heap:
  // O(n) per rebuild, amortised O(1) per cancel.
  if (cancelled_.size() * 2 > heap_.size()) compact();
  return true;
}

void EventQueue::compact() const {
  std::vector<Entry> live;
  live.reserve(heap_.size() - cancelled_.size());
  while (!heap_.empty()) {
    if (!cancelled_.contains(heap_.top().id)) live.push_back(heap_.top());
    heap_.pop();
  }
  // Every cancelled id had exactly one heap entry, and the full drain above
  // visited them all.
  cancelled_.clear();
  heap_ = std::priority_queue<Entry>(std::less<Entry>{}, std::move(live));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  drop_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::size() const noexcept { return callbacks_.size(); }

SimTime EventQueue::next_time() const {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Popped popped{top.time, std::move(it->second)};
  callbacks_.erase(it);
  return popped;
}

}  // namespace wfs::sim
