// Sharded discrete-event engine: conservative-lookahead parallel simulation.
//
// A ShardedSimulation partitions one experiment's events across N event
// queues ("shards" — naturally one per cluster node or service). Execution
// proceeds in windows: each window opens at the earliest pending event time
// t and closes at t + lookahead; every shard with events inside the window
// executes them independently (in parallel on a worker pool when available),
// then all shards synchronize at a barrier and buffered cross-shard
// messages are merged deterministically.
//
// Safety (the classic conservative argument): a shard may only influence
// another through post(), and post() refuses delivery times before the
// window's closing horizon. Transfer latencies and phase delays give the
// natural lookahead — any interaction between components on different
// shards takes at least one network/storage hop, so no message can land
// inside the window being executed and each shard's event order is
// independent of thread scheduling.
//
// Determinism: per shard, events run in (time, FIFO) order exactly like a
// single Simulation; cross-shard mail is delivered at the barrier in
// (source shard, send order) order, so queue sequence numbers — and hence
// every tie-break — are reproducible for any worker count, including 1.
// Campaign CSVs are byte-identical whatever `sim_shards` is set to.
//
// Contract for callbacks: an event bound to shard k may touch shard-k state
// only. Components that share state must be bound to the same shard (the
// experiment runner binds every paper substrate to shard 0 today; the
// plan-replay model in bench/micro_sim shards per cluster node).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/clock.h"
#include "sim/context.h"
#include "sim/event_queue.h"

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace wfs::metrics

namespace wfs::obs {
class TraceRecorder;
}  // namespace wfs::obs

namespace wfs::support {
class ThreadPool;
}  // namespace wfs::support

namespace wfs::sim {

struct ShardedConfig {
  /// Conservative lookahead window width, microseconds (>= 1). Cross-shard
  /// posts during a window must land at or after the window's horizon;
  /// callers derive this from their minimum declared cross-shard latency
  /// (network hop, storage op, phase delay).
  SimTime lookahead = kMillisecond;
  /// Worker threads executing a window's occupied shards. 0 = one per
  /// hardware core (capped at the shard count); 1 = run occupied shards
  /// inline on the driving thread, in shard order. Windows with a single
  /// occupied shard always run inline — no handoff cost — which makes the
  /// one-shard engine equivalent to a plain Simulation loop.
  std::size_t workers = 0;
  /// Safety valve: run()/run_until() throw std::runtime_error once any
  /// shard has dispatched this many events (storm guard).
  std::uint64_t event_limit = 500'000'000;
};

/// Per-shard occupancy/progress counters (see also set_metrics()).
struct ShardStats {
  std::uint64_t executed = 0;        // events dispatched by this shard
  std::uint64_t active_windows = 0;  // windows with >=1 event executed here
  std::uint64_t stall_windows = 0;   // pending events, none inside window
  std::uint64_t posts_sent = 0;      // cross-shard messages originated here
};

class ShardedSimulation {
 public:
  /// Called (on the executing shard's thread) before every event dispatch;
  /// returning true halts the engine after the events already run. With a
  /// single occupied shard this gives exactly the semantics of the classic
  /// `while (!stop()) sim.step(1)` driver loop.
  using StopPredicate = std::function<bool()>;

  /// One shard: a full sim::Context plus cross-shard post(). Obtained from
  /// ShardedSimulation::shard(); components bound to it cannot tell it
  /// apart from a plain Simulation.
  class Shard final : public Context {
   public:
    [[nodiscard]] SimTime now() const noexcept override { return now_; }
    EventId schedule_in(SimTime delay, EventQueue::Callback fn) override;
    EventId schedule_at(SimTime at, EventQueue::Callback fn) override;
    bool cancel(EventId id) override { return queue_.cancel(id); }

    [[nodiscard]] std::size_t index() const noexcept { return index_; }
    [[nodiscard]] const ShardStats& stats() const noexcept { return stats_; }
    [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }

    /// Schedules `fn` on another shard at absolute time `at`. During a
    /// window, delivery is buffered and merged at the barrier, and `at`
    /// must be at or after the window horizon (throws std::invalid_argument
    /// otherwise — the conservative-synchronization guarantee). Posting to
    /// the own shard is a plain schedule_at.
    void post(std::size_t target, SimTime at, EventQueue::Callback fn);

   private:
    friend class ShardedSimulation;
    struct Mail {
      std::size_t target = 0;
      SimTime at = 0;
      EventQueue::Callback fn;
    };

    Shard(ShardedSimulation& owner, std::size_t index)
        : owner_(owner), index_(index) {}
    void run_window(SimTime horizon, const StopPredicate& stop);

    ShardedSimulation& owner_;
    std::size_t index_;
    EventQueue queue_;
    std::vector<EventQueue::BatchItem> batch_;  // reused across instants
    std::vector<Mail> outbox_;                  // drained at each barrier
    SimTime now_ = 0;
    ShardStats stats_;
    std::exception_ptr error_;
  };

  explicit ShardedSimulation(std::size_t shards, ShardedConfig config = {});
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] Shard& shard(std::size_t index) { return *shards_.at(index); }

  /// Max executed event time across shards (run_until advances it to the
  /// deadline when every event drained first, mirroring Simulation).
  [[nodiscard]] SimTime now() const noexcept;
  [[nodiscard]] bool idle() const;
  [[nodiscard]] std::uint64_t executed_events() const noexcept;

  /// Runs until every queue drains (or `stop` returns true). Returns now().
  SimTime run(const StopPredicate& stop = {});

  /// Runs events with time <= deadline (Simulation::run_until semantics).
  SimTime run_until(SimTime deadline, const StopPredicate& stop = {});

  // Window/synchronization counters (the perf-trajectory observables).
  [[nodiscard]] std::uint64_t windows() const noexcept { return windows_; }
  [[nodiscard]] std::uint64_t parallel_windows() const noexcept { return parallel_windows_; }
  /// Total shard-windows stalled on lookahead (pending events, none
  /// executable before the horizon).
  [[nodiscard]] std::uint64_t sync_stalls() const noexcept { return sync_stalls_; }
  [[nodiscard]] const ShardStats& stats(std::size_t index) const {
    return shards_.at(index)->stats_;
  }

  void set_event_limit(std::uint64_t limit) noexcept { config_.event_limit = limit; }

  /// Replaces the lookahead window width — callers derive it from the
  /// minimum latency their components declare (DataStore::min_op_latency,
  /// Router::min_latency, KnativeServiceSpec::min_edge_latency) once those
  /// exist, which is after the engine they bind to. Throws when called
  /// mid-window or with a width < 1 us.
  void set_lookahead(SimTime lookahead);
  [[nodiscard]] SimTime lookahead() const noexcept { return config_.lookahead; }

  /// Registers sim_windows_total / sim_window_parallel_total /
  /// sim_sync_stall_windows_total counters, a sim_window_occupancy
  /// histogram and per-shard sim_shard_events_total{shard=...} counters.
  /// nullptr disables.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// Emits "occupied_shards" / "stalled_shards" counter series under a
  /// "sim-shards" trace process, one sample per window. nullptr disables.
  void set_trace(obs::TraceRecorder* recorder);

 private:
  bool run_window(SimTime deadline, const StopPredicate& stop);
  void deliver_mail();

  ShardedConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<Shard*> occupied_;  // scratch, reused per window

  SimTime horizon_ = 0;        // closing time of the in-flight window
  SimTime committed_ = 0;      // every event before this has executed
  SimTime drained_until_ = 0;  // run_until() clock floor when queues drain
  std::atomic<bool> in_window_{false};
  std::atomic<bool> stop_requested_{false};

  std::uint64_t windows_ = 0;
  std::uint64_t parallel_windows_ = 0;
  std::uint64_t sync_stalls_ = 0;

  metrics::Counter* windows_metric_ = nullptr;
  metrics::Counter* parallel_windows_metric_ = nullptr;
  metrics::Counter* stall_windows_metric_ = nullptr;
  metrics::Histogram* occupancy_metric_ = nullptr;
  std::vector<metrics::Counter*> shard_events_metric_;
  std::vector<double> shard_events_seen_;  // last value flushed per shard
  obs::TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_pid_ = 0;
};

}  // namespace wfs::sim
