// Simulated time.
//
// Time is an integer count of microseconds since the start of the
// simulation. Integer time keeps event ordering deterministic (no
// floating-point ties) across compilers and optimisation levels.
#pragma once

#include <cstdint>

namespace wfs::sim {

/// Microseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * kMillisecond;
inline constexpr SimTime kMinute = 60 * kSecond;
inline constexpr SimTime kHour = 60 * kMinute;

/// Converts seconds (possibly fractional) to SimTime, rounding to the
/// nearest microsecond.
constexpr SimTime from_seconds(double seconds) noexcept {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond) + (seconds >= 0 ? 0.5 : -0.5));
}

/// Converts SimTime to fractional seconds (for reporting).
constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace wfs::sim
