#include "sim/simulation.h"

#include <stdexcept>

namespace wfs::sim {

EventId Simulation::schedule_in(SimTime delay, EventQueue::Callback fn) {
  if (delay < 0) throw std::invalid_argument("Simulation::schedule_in: negative delay");
  return queue_.schedule(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(SimTime at, EventQueue::Callback fn) {
  if (at < now_) throw std::invalid_argument("Simulation::schedule_at: time in the past");
  return queue_.schedule(at, std::move(fn));
}

void Simulation::execute_next() {
  auto [time, fn] = queue_.pop();
  now_ = time;
  ++executed_;
  if (executed_ > event_limit_) {
    throw std::runtime_error("Simulation event limit exceeded (runaway event storm?)");
  }
  fn();
}

void Simulation::execute_batch() {
  now_ = queue_.pop_batch(batch_);
  for (EventQueue::BatchItem& item : batch_) {
    // A batch-mate that already ran may have cancelled this event.
    if (!queue_.claim(item.id)) continue;
    ++executed_;
    if (executed_ > event_limit_) {
      batch_.clear();
      throw std::runtime_error("Simulation event limit exceeded (runaway event storm?)");
    }
    item.fn();
    item.fn = nullptr;  // release the closure as eagerly as pop() would
  }
  batch_.clear();
}

SimTime Simulation::run() {
  while (!queue_.empty()) execute_batch();
  return now_;
}

SimTime Simulation::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) execute_batch();
  if (now_ < deadline) now_ = deadline;
  return now_;
}

std::size_t Simulation::step(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty()) {
    execute_next();
    ++executed;
  }
  return executed;
}

}  // namespace wfs::sim
