// The discrete-event simulation driver.
//
// One Simulation owns the clock and the event queue; every substrate
// (cluster, platform, network, sampler) schedules callbacks against it
// through the sim::Context interface. A Simulation is strictly
// single-threaded (Core Guidelines CP.3: the less shared writable data the
// better); run several Simulation instances on separate threads for
// parallel experiment sweeps, or use sim::ShardedSimulation to parallelize
// INSIDE one experiment.
//
// run()/run_until() dispatch in same-timestamp batches: the whole bucket
// of events at the current instant is extracted with one heap operation
// and executed back to back, in exactly the order one-at-a-time popping
// would have produced (cancellations between batch-mates included).
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "sim/clock.h"
#include "sim/context.h"
#include "sim/event_queue.h"

namespace wfs::sim {

class Simulation final : public Context {
 public:
  Simulation() = default;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept override { return now_; }

  /// Schedules `fn` to run `delay` microseconds from now (delay >= 0;
  /// a zero delay runs after all currently pending work at `now`).
  EventId schedule_in(SimTime delay, EventQueue::Callback fn) override;

  /// Schedules `fn` at an absolute time (>= now).
  EventId schedule_at(SimTime at, EventQueue::Callback fn) override;

  bool cancel(EventId id) override { return queue_.cancel(id); }

  /// Runs until the queue drains. Returns the final time.
  SimTime run();

  /// Runs events with time <= deadline; the clock ends at
  /// min(deadline, last event time) or deadline if events remain.
  SimTime run_until(SimTime deadline);

  /// Executes at most `max_events` events one at a time (for
  /// debugging/stepping and drivers that re-check state between events).
  std::size_t step(std::size_t max_events = 1);

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Safety valve: run()/run_until() throw std::runtime_error after this
  /// many events (default 500M) — catches accidental event storms.
  void set_event_limit(std::uint64_t limit) noexcept { event_limit_ = limit; }

 private:
  void execute_next();
  void execute_batch();

  EventQueue queue_;
  std::vector<EventQueue::BatchItem> batch_;  // reused across instants
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t event_limit_ = 500'000'000;
};

}  // namespace wfs::sim
