// Priority queue of timed events with stable FIFO ordering for ties and
// O(log n) cancellation via handles.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/clock.h"

namespace wfs::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one queue.
using EventId = std::uint64_t;

/// Min-heap of (time, sequence) ordered events. Events scheduled for the
/// same instant fire in scheduling order — required for reproducibility.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at` (must not be in the past relative
  /// to the last popped event). Returns a handle usable with cancel().
  EventId schedule(SimTime at, Callback fn);

  /// Marks an event as cancelled; it will be skipped when reached. When
  /// cancelled entries outnumber the live ones the heap is compacted
  /// eagerly, so schedule-then-cancel churn (retry timers racing their
  /// completion, stopped periodic tasks) cannot grow the heap unboundedly.
  /// Returns false when the id is unknown or already fired/cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Heap entries, INCLUDING not-yet-reclaimed cancelled ones — a probe for
  /// the compaction bound (tests assert heap_size() stays O(live events)).
  [[nodiscard]] std::size_t heap_size() const noexcept { return heap_.size(); }

  /// Time of the next live event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the next live event. Only valid when !empty().
  struct Popped {
    SimTime time;
    Callback fn;
  };
  Popped pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t sequence;
    EventId id;
    // greater-than for min-heap via std::priority_queue's max-heap default
    bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return sequence > other.sequence;
    }
  };

  void drop_cancelled() const;
  void compact() const;

  mutable std::priority_queue<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  // Callbacks stored separately so cancel() can release them promptly.
  std::unordered_map<EventId, Callback> callbacks_;
  std::uint64_t next_sequence_ = 0;
  EventId next_id_ = 1;
};

}  // namespace wfs::sim
