// Priority queue of timed events with stable FIFO ordering for ties,
// cancellation via handles, and batched same-timestamp extraction.
//
// Layout: a min-heap of DISTINCT timestamps over per-timestamp buckets
// (append-ordered vectors). Events at one instant cost one heap operation
// for the whole bucket instead of one per event — the dominant cost of the
// old one-entry-per-event heap — and dispatching a simulation instant is a
// single `pop_batch` that hands the caller the whole bucket as a vector.
// FIFO-for-ties falls out of bucket append order.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/clock.h"

namespace wfs::sim {

/// Identifies a scheduled event so it can be cancelled. Ids are never
/// reused within one queue.
using EventId = std::uint64_t;

/// Min-heap of timestamp buckets. Events scheduled for the same instant
/// fire in scheduling order — required for reproducibility.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `fn` at absolute time `at`. Throws std::invalid_argument
  /// when `at` lies in the past relative to the last popped event — every
  /// user (not just Simulation) gets time monotonicity enforced, so a
  /// misbehaving direct scheduler (cross-shard delivery, tests) cannot
  /// silently corrupt causal order. Returns a handle usable with cancel().
  EventId schedule(SimTime at, Callback fn);

  /// Marks an event as cancelled; it will be skipped when reached. When
  /// cancelled entries outnumber the live ones the buckets are swept
  /// eagerly, so schedule-then-cancel churn (retry timers racing their
  /// completion, stopped periodic tasks) cannot grow retained entries
  /// unboundedly. Returns false when the id is unknown or already
  /// fired/cancelled. Cancelling an event that `pop_batch` has already
  /// extracted (but whose callback has not been claimed) still works.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return bucket_live_ == 0; }
  /// Live (schedulable, not-yet-fired, not-cancelled) events, including
  /// batch-extracted ones awaiting claim().
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// Retained entries, INCLUDING not-yet-reclaimed cancelled ones — a probe
  /// for the compaction bound (tests assert heap_size() stays O(live)).
  [[nodiscard]] std::size_t heap_size() const noexcept { return retained_; }

  /// Time of the next live event; only valid when !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Pops the next live event. Only valid when !empty().
  struct Popped {
    SimTime time;
    Callback fn;
  };
  Popped pop();

  /// One extracted event of a batch; claim it before invoking.
  struct BatchItem {
    EventId id = 0;
    Callback fn;
  };

  /// Extracts EVERY live event at the earliest timestamp into `out`
  /// (cleared first) in FIFO order and returns that timestamp. Events
  /// scheduled at the same instant while the batch executes land in a new
  /// bucket and come back with the next pop_batch — exactly the order
  /// one-at-a-time pop() would have produced. Before invoking an item the
  /// caller MUST claim() it: a batched event can still be cancelled by an
  /// earlier event of the same batch. Only valid when !empty().
  SimTime pop_batch(std::vector<BatchItem>& out);

  /// Claims a batched event for dispatch. False when it was cancelled
  /// after extraction — the caller must then skip the callback.
  bool claim(EventId id);

 private:
  struct Bucket {
    std::vector<BatchItem> items;
    std::size_t head = 0;  // items[0, head) already popped or reclaimed
  };

  // Per-event lifecycle, 2 bits per id in a dense array — ids are handed
  // out sequentially, so this replaces an id->time hash map (and its cache
  // miss per schedule/dispatch/cancel) with one in-cache bit probe.
  enum : std::uint8_t { kDead = 0, kResident = 1, kExtracted = 2 };
  [[nodiscard]] std::uint8_t state_of(EventId id) const noexcept {
    return static_cast<std::uint8_t>((states_[id >> 5] >> ((id & 31) * 2)) & 3);
  }
  void set_state(EventId id, std::uint8_t state) noexcept {
    std::uint64_t& word = states_[id >> 5];
    const unsigned shift = static_cast<unsigned>(id & 31) * 2;
    word = (word & ~(std::uint64_t{3} << shift)) |
           (std::uint64_t{state} << shift);
  }

  void drop_dead_buckets() const;
  void sweep_cancelled();
  void pop_time(SimTime time) const;

  // Heap of distinct timestamps (min on top via std::greater).
  mutable std::vector<SimTime> times_;
  mutable std::unordered_map<SimTime, Bucket> buckets_;
  std::vector<std::uint64_t> states_;  // 32 event states per word
  // Recycled bucket storage: exhausted buckets park their vectors here so
  // steady-state operation allocates nothing per timestamp.
  mutable std::vector<std::vector<BatchItem>> spare_;
  mutable std::size_t retained_ = 0;  // items held across all buckets
  std::size_t bucket_live_ = 0;       // live events resident in buckets
  std::size_t live_count_ = 0;        // live events incl. extracted unclaimed
  mutable std::size_t cancelled_resident_ = 0;  // tombstones still in buckets
  std::size_t batch_cancelled_ = 0;   // extracted items cancelled pre-claim
  EventId next_id_ = 1;
  SimTime floor_ = 0;  // last popped/batched timestamp
};

}  // namespace wfs::sim
