// Periodic task helper: re-schedules a callback at a fixed period until
// stopped — used by the metrics sampler (1 s cadence, like PCP) and the
// Knative autoscaler loop (2 s cadence).
#pragma once

#include <functional>

#include "sim/context.h"

namespace wfs::sim {

/// RAII periodic task. The callback receives the firing time. Destroying or
/// stop()ping cancels the pending occurrence. The referenced Context must
/// outlive the PeriodicTask.
class PeriodicTask {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Creates a stopped task; call start().
  PeriodicTask(Context& sim, SimTime period, Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begins firing `first_delay` from now, then every `period`.
  /// Restarting an already running task is a no-op. May be called from
  /// inside the task's own callback (e.g. stop() + start() to re-phase):
  /// the occurrence armed here is the only one that remains pending.
  void start(SimTime first_delay = 0);

  /// Cancels future occurrences (the currently executing one completes).
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] SimTime period() const noexcept { return period_; }

 private:
  void fire();
  void arm(SimTime delay);

  Context& sim_;
  SimTime period_;
  Callback fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

}  // namespace wfs::sim
