#include "metrics/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "support/format.h"

namespace wfs::metrics {

namespace {

/// Atomic add for doubles via CAS (fetch_add on atomic<double> is C++20
/// floating-point atomics, which libstdc++ 12 lowers to the same loop).
void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

LabelSet sorted_labels(LabelSet labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
std::string escape_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Canonical `{a="1",b="2"}` rendering of a sorted label set; empty labels
/// render as "" so unlabeled children sort first and sample lines carry no
/// brace pair.
std::string label_text(const LabelSet& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key;
    out += "=\"";
    out += escape_label_value(value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

/// Shortest round-trip-ish rendering for sample values: integers print
/// without a fractional part (counters are usually whole), everything else
/// uses %.17g which preserves the double exactly.
std::string sample_value(double value) {
  if (value == static_cast<std::int64_t>(value) && std::abs(value) < 1e15) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Bucket bound rendering for `le=` labels: %g is stable and readable
/// (0.001, 0.002, ... 16384).
std::string bound_text(double bound) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", bound);
  return buffer;
}

json::Value labels_to_json(const LabelSet& labels) {
  json::Object out;
  for (const auto& [key, value] : labels) out.set(key, value);
  return out;
}

LabelSet labels_from_json(const json::Value& value) {
  LabelSet out;
  if (!value.is_object()) return out;
  for (const auto& [key, entry] : value.as_object()) {
    out.emplace_back(key, entry.string_or(""));
  }
  return sorted_labels(std::move(out));
}

MetricKind kind_from_string(std::string_view text) {
  if (text == "counter") return MetricKind::kCounter;
  if (text == "gauge") return MetricKind::kGauge;
  if (text == "histogram") return MetricKind::kHistogram;
  throw std::invalid_argument("metrics: unknown metric kind '" + std::string(text) + "'");
}

}  // namespace

void Counter::inc(double amount) noexcept { atomic_add(value_, amount); }

void Gauge::add(double delta) noexcept { atomic_add(value_, delta); }

std::vector<double> HistogramSpec::bounds() const {
  std::vector<double> out;
  out.reserve(bucket_count);
  double bound = first_bound;
  for (std::size_t i = 0; i < bucket_count; ++i) {
    out.push_back(bound);
    bound *= growth;
  }
  return out;
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("metrics: histogram needs >= 1 bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("metrics: histogram bounds must be sorted");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "counter";
}

double histogram_quantile(const HistogramSnapshot& histogram, double q) {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("metrics: quantile must be in [0, 1]");
  if (histogram.count == 0 || histogram.buckets.empty()) return 0.0;
  const double target = q * static_cast<double>(histogram.count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
    const std::uint64_t in_bucket = histogram.buckets[i];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      if (i >= histogram.bounds.size()) {
        // Overflow bucket has no upper edge; the last finite bound is the
        // best defensible estimate.
        return histogram.bounds.back();
      }
      const double upper = histogram.bounds[i];
      const double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
      const double into = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return histogram.bounds.back();
}

const MetricFamily* MetricsSnapshot::find(std::string_view name) const noexcept {
  for (const auto& family : families) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const MetricPoint* MetricsSnapshot::find(std::string_view name,
                                         const LabelSet& labels) const noexcept {
  const MetricFamily* family = find(name);
  if (family == nullptr) return nullptr;
  const LabelSet wanted = sorted_labels(labels);
  for (const auto& point : family->points) {
    if (point.labels == wanted) return &point;
  }
  return nullptr;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& family : snapshot.families) {
    out += support::format("# HELP {} {}\n", family.name, family.help);
    out += support::format("# TYPE {} {}\n", family.name, to_string(family.kind));
    for (const auto& point : family.points) {
      if (family.kind != MetricKind::kHistogram) {
        out += family.name;
        out += label_text(point.labels);
        out.push_back(' ');
        out += sample_value(point.value);
        out.push_back('\n');
        continue;
      }
      const HistogramSnapshot& histogram = point.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < histogram.bounds.size(); ++i) {
        cumulative += i < histogram.buckets.size() ? histogram.buckets[i] : 0;
        LabelSet labels = point.labels;
        labels.emplace_back("le", bound_text(histogram.bounds[i]));
        out += family.name;
        out += "_bucket";
        out += label_text(labels);
        out.push_back(' ');
        out += std::to_string(cumulative);
        out.push_back('\n');
      }
      LabelSet labels = point.labels;
      labels.emplace_back("le", "+Inf");
      out += family.name;
      out += "_bucket";
      out += label_text(labels);
      out.push_back(' ');
      out += std::to_string(histogram.count);
      out.push_back('\n');
      out += family.name;
      out += "_sum";
      out += label_text(point.labels);
      out.push_back(' ');
      out += sample_value(histogram.sum);
      out.push_back('\n');
      out += family.name;
      out += "_count";
      out += label_text(point.labels);
      out.push_back(' ');
      out += std::to_string(histogram.count);
      out.push_back('\n');
    }
  }
  return out;
}

json::Value snapshot_to_json(const MetricsSnapshot& snapshot) {
  json::Array families;
  families.reserve(snapshot.families.size());
  for (const auto& family : snapshot.families) {
    json::Object family_json;
    family_json.set("name", family.name);
    family_json.set("help", family.help);
    family_json.set("kind", std::string(to_string(family.kind)));
    json::Array points;
    points.reserve(family.points.size());
    for (const auto& point : family.points) {
      json::Object point_json;
      point_json.set("labels", labels_to_json(point.labels));
      if (family.kind == MetricKind::kHistogram) {
        json::Array bounds;
        for (double bound : point.histogram.bounds) bounds.emplace_back(bound);
        json::Array buckets;
        for (std::uint64_t bucket : point.histogram.buckets) buckets.emplace_back(bucket);
        point_json.set("bounds", std::move(bounds));
        point_json.set("buckets", std::move(buckets));
        point_json.set("sum", point.histogram.sum);
        point_json.set("count", point.histogram.count);
      } else {
        point_json.set("value", point.value);
      }
      points.emplace_back(std::move(point_json));
    }
    family_json.set("points", std::move(points));
    families.emplace_back(std::move(family_json));
  }
  json::Object out;
  out.set("families", std::move(families));
  return out;
}

MetricsSnapshot snapshot_from_json(const json::Value& value) {
  MetricsSnapshot out;
  const json::Value* families = value.find("families");
  if (families == nullptr || !families->is_array()) return out;
  for (const json::Value& family_json : families->as_array()) {
    MetricFamily family;
    if (const json::Value* name = family_json.find("name")) family.name = name->string_or("");
    if (const json::Value* help = family_json.find("help")) family.help = help->string_or("");
    if (const json::Value* kind = family_json.find("kind")) {
      family.kind = kind_from_string(kind->string_or("counter"));
    }
    if (const json::Value* points = family_json.find("points"); points != nullptr && points->is_array()) {
      for (const json::Value& point_json : points->as_array()) {
        MetricPoint point;
        if (const json::Value* labels = point_json.find("labels")) {
          point.labels = labels_from_json(*labels);
        }
        if (family.kind == MetricKind::kHistogram) {
          if (const json::Value* bounds = point_json.find("bounds"); bounds != nullptr && bounds->is_array()) {
            for (const json::Value& bound : bounds->as_array()) {
              point.histogram.bounds.push_back(bound.double_or(0.0));
            }
          }
          if (const json::Value* buckets = point_json.find("buckets"); buckets != nullptr && buckets->is_array()) {
            for (const json::Value& bucket : buckets->as_array()) {
              point.histogram.buckets.push_back(
                  static_cast<std::uint64_t>(bucket.int_or(0)));
            }
          }
          if (const json::Value* sum = point_json.find("sum")) {
            point.histogram.sum = sum->double_or(0.0);
          }
          if (const json::Value* count = point_json.find("count")) {
            point.histogram.count = static_cast<std::uint64_t>(count->int_or(0));
          }
        } else if (const json::Value* point_value = point_json.find("value")) {
          point.value = point_value->double_or(0.0);
        }
        family.points.push_back(std::move(point));
      }
    }
    out.families.push_back(std::move(family));
  }
  return out;
}

namespace {

void merge_point(MetricKind kind, MetricPoint& target, const MetricPoint& source) {
  switch (kind) {
    case MetricKind::kCounter:
      target.value += source.value;
      return;
    case MetricKind::kGauge:
      target.value = std::max(target.value, source.value);
      return;
    case MetricKind::kHistogram: {
      if (target.histogram.bounds != source.histogram.bounds ||
          target.histogram.buckets.size() != source.histogram.buckets.size()) {
        throw std::invalid_argument("metrics: cannot merge histograms with different bucket layouts");
      }
      for (std::size_t i = 0; i < target.histogram.buckets.size(); ++i) {
        target.histogram.buckets[i] += source.histogram.buckets[i];
      }
      target.histogram.sum += source.histogram.sum;
      target.histogram.count += source.histogram.count;
      return;
    }
  }
}

}  // namespace

void merge_into(MetricsSnapshot& target, const MetricsSnapshot& source) {
  for (const auto& source_family : source.families) {
    // Families stay sorted by name; insert where the name belongs.
    auto family_it = std::lower_bound(
        target.families.begin(), target.families.end(), source_family.name,
        [](const MetricFamily& family, const std::string& name) { return family.name < name; });
    if (family_it == target.families.end() || family_it->name != source_family.name) {
      target.families.insert(family_it, source_family);
      continue;
    }
    if (family_it->kind != source_family.kind) {
      throw std::invalid_argument("metrics: cannot merge family '" + source_family.name +
                                  "' with mismatched kinds");
    }
    for (const auto& source_point : source_family.points) {
      const std::string source_key = label_text(source_point.labels);
      auto point_it = std::lower_bound(
          family_it->points.begin(), family_it->points.end(), source_key,
          [](const MetricPoint& point, const std::string& key) {
            return label_text(point.labels) < key;
          });
      if (point_it == family_it->points.end() || point_it->labels != source_point.labels) {
        family_it->points.insert(point_it, source_point);
        continue;
      }
      merge_point(family_it->kind, *point_it, source_point);
    }
  }
}

MetricsSnapshot delta(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsSnapshot out = after;
  for (auto& family : out.families) {
    const MetricFamily* base_family = before.find(family.name);
    if (base_family == nullptr) continue;
    if (base_family->kind != family.kind) {
      throw std::invalid_argument("metrics: cannot diff family '" + family.name +
                                  "' with mismatched kinds");
    }
    for (auto& point : family.points) {
      const MetricPoint* base = nullptr;
      for (const auto& candidate : base_family->points) {
        if (candidate.labels == point.labels) {
          base = &candidate;
          break;
        }
      }
      if (base == nullptr) continue;
      switch (family.kind) {
        case MetricKind::kCounter:
          point.value = std::max(0.0, point.value - base->value);
          break;
        case MetricKind::kGauge:
          break;  // gauges report the later value as-is
        case MetricKind::kHistogram: {
          if (point.histogram.bounds != base->histogram.bounds ||
              point.histogram.buckets.size() != base->histogram.buckets.size()) {
            throw std::invalid_argument(
                "metrics: cannot diff histograms with different bucket layouts");
          }
          for (std::size_t i = 0; i < point.histogram.buckets.size(); ++i) {
            const std::uint64_t base_count = base->histogram.buckets[i];
            point.histogram.buckets[i] =
                point.histogram.buckets[i] >= base_count ? point.histogram.buckets[i] - base_count : 0;
          }
          point.histogram.sum = std::max(0.0, point.histogram.sum - base->histogram.sum);
          point.histogram.count = point.histogram.count >= base->histogram.count
                                      ? point.histogram.count - base->histogram.count
                                      : 0;
          break;
        }
      }
    }
  }
  return out;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name, MetricKind kind,
                                                const std::string& help) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else if (it->second.kind != kind) {
    throw std::invalid_argument("metrics: family '" + name + "' already registered as " +
                                std::string(to_string(it->second.kind)));
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const LabelSet& labels) {
  const LabelSet sorted = sorted_labels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, MetricKind::kCounter, help);
  auto [it, inserted] = fam.children.try_emplace(label_text(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.counter = std::make_unique<Counter>();
  }
  return *it->second.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const LabelSet& labels) {
  const LabelSet sorted = sorted_labels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, MetricKind::kGauge, help);
  auto [it, inserted] = fam.children.try_emplace(label_text(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.gauge = std::make_unique<Gauge>();
  }
  return *it->second.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      const LabelSet& labels, const HistogramSpec& spec) {
  const LabelSet sorted = sorted_labels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& fam = family(name, MetricKind::kHistogram, help);
  if (fam.bounds.empty()) fam.bounds = spec.bounds();
  auto [it, inserted] = fam.children.try_emplace(label_text(sorted));
  if (inserted) {
    it->second.labels = sorted;
    it->second.histogram = std::make_unique<Histogram>(fam.bounds);
  }
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.families.reserve(families_.size());
  for (const auto& [name, fam] : families_) {
    MetricFamily family_out;
    family_out.name = name;
    family_out.help = fam.help;
    family_out.kind = fam.kind;
    family_out.points.reserve(fam.children.size());
    for (const auto& [key, child] : fam.children) {
      MetricPoint point;
      point.labels = child.labels;
      switch (fam.kind) {
        case MetricKind::kCounter:
          point.value = child.counter->value();
          break;
        case MetricKind::kGauge:
          point.value = child.gauge->value();
          break;
        case MetricKind::kHistogram:
          point.histogram.bounds = child.histogram->bounds();
          point.histogram.buckets = child.histogram->bucket_counts();
          point.histogram.sum = child.histogram->sum();
          point.histogram.count = child.histogram->count();
          break;
      }
      family_out.points.push_back(std::move(point));
    }
    out.families.push_back(std::move(family_out));
  }
  return out;
}

std::string MetricsRegistry::prometheus_text() const {
  return metrics::prometheus_text(snapshot());
}

json::Value MetricsRegistry::to_json() const { return snapshot_to_json(snapshot()); }

}  // namespace wfs::metrics
