#include "metrics/pmdump.h"

#include <algorithm>
#include "support/format.h"
#include <limits>

namespace wfs::metrics {

std::string pmdump_csv(const Sampler& sampler, const std::vector<std::string>& series_names,
                       PmdumpOptions options) {
  std::vector<const TimeSeries*> series;
  series.reserve(series_names.size());
  std::size_t rows = std::numeric_limits<std::size_t>::max();
  for (const std::string& name : series_names) {
    series.push_back(&sampler.series(name));
    rows = std::min(rows, series.back()->size());
  }
  if (series.empty()) return "time\n";

  std::string out = "time";
  for (const std::string& name : series_names) {
    out.push_back(options.separator);
    out += name;
  }
  out.push_back('\n');

  for (std::size_t row = 0; row < rows; ++row) {
    out += wfs::support::format("{:.{}f}", sim::to_seconds((*series[0])[row].time),
                       options.time_precision);
    for (const TimeSeries* s : series) {
      out.push_back(options.separator);
      out += wfs::support::format("{:.6g}", (*s)[row].value);
    }
    out.push_back('\n');
  }
  return out;
}

std::string pmdump_csv_all(const Sampler& sampler, PmdumpOptions options) {
  return pmdump_csv(sampler, sampler.probe_names(), options);
}

}  // namespace wfs::metrics
