// Always-on structured metrics — the third observability pillar beside the
// Sampler (run-level PCP-style series) and the obs::TraceRecorder (opt-in
// Chrome traces).
//
// A MetricsRegistry holds labeled *families* of instruments, Prometheus
// style: Counter (monotonic), Gauge (instantaneous) and Histogram
// (log-bucketed latency/size distribution with p50/p95/p99/p999
// estimation). Instrumented components resolve their handles ONCE (in a
// set_metrics call) and keep plain pointers; the hot path is an atomic
// add behind a single null check — no map lookups, no allocations, and
// nullptr disables the whole layer exactly like TraceRecorder's gating.
//
// Everything is thread-safe: family registration takes the registry mutex,
// instrument updates are lock-free atomics, so campaign cells running on a
// support::ThreadPool may share one process-wide registry (tsan-clean).
// Iteration order is deterministic (families by name, children by label
// text), which makes snapshots, expositions and merged campaign metrics
// byte-stable across runs and worker counts.
//
// Snapshots are plain data: they ride in ExperimentResult, round-trip
// through results_io JSON, merge across campaign cells (counters and
// histogram buckets add, gauges keep the max) and render as Prometheus
// text exposition (text/plain; version 0.0.4) via prometheus_text().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "json/value.h"

namespace wfs::metrics {

/// Label key/value pairs. Registration sorts them by key, so any order
/// names the same child ({a=1,b=2} == {b=2,a=1}).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value (Prometheus counters are doubles, so
/// second-valued totals like wfm_input_wait_seconds_total fit too).
class Counter {
 public:
  void inc(double amount = 1.0) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Instantaneous value (queue depths, pod counts).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-spaced bucket layout: finite upper bounds first_bound * growth^i for
/// i in [0, bucket_count), plus an implicit +Inf overflow bucket. The
/// default covers 1 ms .. ~12 days in factor-of-two steps — wide enough for
/// request latencies, storage transfers and cold starts alike, and shared
/// bounds keep histograms mergeable across campaign cells.
struct HistogramSpec {
  double first_bound = 1e-3;
  double growth = 2.0;
  std::size_t bucket_count = 30;

  [[nodiscard]] std::vector<double> bounds() const;
};

/// Mergeable log-bucketed distribution. observe() is a binary search over
/// the (immutable) bounds plus three relaxed atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size = bounds().size() + 1, the
  /// last entry being the +Inf overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// ---- snapshots (plain data; serializable, mergeable) -----------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

struct HistogramSnapshot {
  std::vector<double> bounds;          // finite upper bounds (Prometheus `le`)
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1; last = overflow
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Quantile estimate from bucket counts, q in [0, 1]: linear interpolation
/// inside the bucket holding the target rank (so the estimate is exact to
/// within one bucket width). Overflow-bucket ranks clamp to the last finite
/// bound; an empty histogram yields 0.
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& histogram, double q);

struct MetricPoint {
  LabelSet labels;                // sorted by key
  double value = 0.0;             // counter / gauge
  HistogramSnapshot histogram;    // histogram families only
};

struct MetricFamily {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricPoint> points;  // sorted by label text
};

struct MetricsSnapshot {
  std::vector<MetricFamily> families;  // sorted by name

  [[nodiscard]] bool empty() const noexcept { return families.empty(); }
  [[nodiscard]] const MetricFamily* find(std::string_view name) const noexcept;
  /// Point lookup; the given labels are sorted before matching.
  [[nodiscard]] const MetricPoint* find(std::string_view name,
                                        const LabelSet& labels) const noexcept;
};

/// Prometheus text exposition (text/plain; version 0.0.4): HELP/TYPE
/// headers, one sample line per point, cumulative `_bucket{le=...}` series
/// plus `_sum`/`_count` for histograms.
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// JSON via json::write — the results_io persistence format.
[[nodiscard]] json::Value snapshot_to_json(const MetricsSnapshot& snapshot);
[[nodiscard]] MetricsSnapshot snapshot_from_json(const json::Value& value);

/// Accumulates `source` into `target`: counters and histogram buckets add,
/// gauges keep the maximum (peak depth is the meaningful aggregate). New
/// families/points are inserted in order. Throws std::invalid_argument on
/// kind or bucket-layout mismatches.
void merge_into(MetricsSnapshot& target, const MetricsSnapshot& source);

/// What happened between two snapshots of one registry: counters and
/// histograms subtract (clamped at zero), gauges report the later value.
[[nodiscard]] MetricsSnapshot delta(const MetricsSnapshot& before,
                                    const MetricsSnapshot& after);

// ---- registry --------------------------------------------------------------

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create the named child. The returned reference is stable for
  /// the registry's lifetime — call sites resolve it once and update
  /// through the pointer. Re-registering an existing name with a different
  /// kind throws std::invalid_argument; `help` and (for histograms) `spec`
  /// are taken from the first registration.
  Counter& counter(const std::string& name, const std::string& help,
                   const LabelSet& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const LabelSet& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const LabelSet& labels = {}, const HistogramSpec& spec = {});

  /// Consistent point-in-time copy, deterministically ordered.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Convenience exporters over snapshot().
  [[nodiscard]] std::string prometheus_text() const;
  [[nodiscard]] json::Value to_json() const;

 private:
  struct Child {
    LabelSet labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    std::vector<double> bounds;              // histogram families
    std::map<std::string, Child> children;   // key = canonical label text
  };

  Family& family(const std::string& name, MetricKind kind, const std::string& help);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace wfs::metrics
