#include "metrics/aggregate.h"

#include "support/format.h"

namespace wfs::metrics {

Summary summarize(const TimeSeries& series) {
  Summary out;
  out.samples = series.size();
  if (series.empty()) return out;
  out.mean = series.mean();
  out.time_weighted_mean = series.time_weighted_mean();
  out.min = series.min();
  out.max = series.max();
  out.stddev = series.stddev();
  out.p50 = series.percentile(50.0);
  out.p95 = series.percentile(95.0);
  out.p99 = series.percentile(99.0);
  out.integral = series.integral();
  return out;
}

std::string to_string(const Summary& summary) {
  return wfs::support::format(
      "n={} mean={:.3f} twm={:.3f} min={:.3f} max={:.3f} sd={:.3f} p50={:.3f} p95={:.3f} "
      "p99={:.3f} integral={:.3f}",
      summary.samples, summary.mean, summary.time_weighted_mean, summary.min, summary.max,
      summary.stddev, summary.p50, summary.p95, summary.p99, summary.integral);
}

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_squares = 0.0;
  for (double x : allocations) {
    if (x < 0.0) x = 0.0;
    sum += x;
    sum_squares += x * x;
  }
  if (sum_squares <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_squares);
}

}  // namespace wfs::metrics
