#include "metrics/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace wfs::metrics {

void TimeSeries::push(sim::SimTime time, double value) {
  if (!samples_.empty() && time < samples_.back().time) {
    throw std::invalid_argument("TimeSeries::push: non-monotonic time");
  }
  samples_.push_back(Sample{time, value});
}

double TimeSeries::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const Sample& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::min() const noexcept {
  double out = std::numeric_limits<double>::infinity();
  for (const Sample& s : samples_) out = std::min(out, s.value);
  return samples_.empty() ? 0.0 : out;
}

double TimeSeries::max() const noexcept {
  double out = -std::numeric_limits<double>::infinity();
  for (const Sample& s : samples_) out = std::max(out, s.value);
  return samples_.empty() ? 0.0 : out;
}

double TimeSeries::stddev() const noexcept {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double sum_sq = 0.0;
  for (const Sample& s : samples_) sum_sq += (s.value - m) * (s.value - m);
  return std::sqrt(sum_sq / static_cast<double>(samples_.size() - 1));
}

double TimeSeries::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of [0,100]");
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const Sample& s : samples_) values.push_back(s.value);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double TimeSeries::integral() const noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double dt = sim::to_seconds(samples_[i].time - samples_[i - 1].time);
    total += 0.5 * (samples_[i].value + samples_[i - 1].value) * dt;
  }
  return total;
}

double TimeSeries::time_weighted_mean() const noexcept {
  if (samples_.size() < 2) return mean();
  const double span = sim::to_seconds(samples_.back().time - samples_.front().time);
  if (span <= 0.0) return mean();
  return integral() / span;
}

namespace {

double values_percentile(std::vector<double>& values, double p) {
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace

TimeSeries windowed_percentile(const TimeSeries& series, std::size_t windows, double p) {
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of [0,100]");
  TimeSeries out;
  if (series.empty()) return out;
  const sim::SimTime begin = series.samples().front().time;
  const sim::SimTime end = series.samples().back().time;
  if (windows < 2 || series.size() < 2 || end <= begin) {
    out.push(end, series.percentile(p));
    return out;
  }
  const double width = static_cast<double>(end - begin) / static_cast<double>(windows);
  std::size_t index = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    const auto window_end =
        w + 1 == windows ? end
                         : begin + static_cast<sim::SimTime>(width * static_cast<double>(w + 1));
    std::vector<double> values;
    while (index < series.size() && series[index].time <= window_end) {
      values.push_back(series[index].value);
      ++index;
    }
    if (!values.empty()) out.push(window_end, values_percentile(values, p));
  }
  return out;
}

}  // namespace wfs::metrics
