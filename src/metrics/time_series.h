// Uniform-or-irregular sampled time series of one metric.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/clock.h"

namespace wfs::metrics {

struct Sample {
  sim::SimTime time;
  double value;
};

class TimeSeries {
 public:
  void push(sim::SimTime time, double value);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const Sample& operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept { return samples_; }

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const noexcept;
  [[nodiscard]] double max() const noexcept;
  /// Sample standard deviation (n-1); 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const noexcept;
  /// Linear-interpolated percentile of the values, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;

  /// Trapezoidal integral over time, in value·seconds (e.g. watts -> joules).
  [[nodiscard]] double integral() const noexcept;

  /// Mean weighted by the time step to the next sample (correct for
  /// irregular sampling); equals mean() for uniform cadence.
  [[nodiscard]] double time_weighted_mean() const noexcept;

  void clear() noexcept { samples_.clear(); }

 private:
  std::vector<Sample> samples_;
};

/// Percentile-over-time: splits the series' time span into `windows` equal
/// windows and emits one sample per non-empty window — time at the window's
/// end, value the percentile of the samples inside it. With fewer than 2
/// samples (or a zero span) the result collapses to one whole-series sample.
/// Throws like TimeSeries::percentile for p outside [0, 100].
[[nodiscard]] TimeSeries windowed_percentile(const TimeSeries& series, std::size_t windows,
                                             double p);

}  // namespace wfs::metrics
