// Terminal rendering of results — the bench binaries print paper-figure
// analogues as labelled horizontal bar charts and sparklines.
#pragma once

#include <string>
#include <vector>

#include "metrics/time_series.h"

namespace wfs::metrics {

struct Bar {
  std::string label;
  double value = 0.0;
};

struct BarChartOptions {
  int width = 48;             // bar area width in characters
  std::string unit;           // appended to the printed value
  int value_precision = 2;
  char fill = '#';
};

/// Horizontal bar chart scaled to the max value; one line per bar:
///   "label  |#######            | 12.34 s"
[[nodiscard]] std::string bar_chart(const std::vector<Bar>& bars, BarChartOptions options = {});

/// Grouped bars: for each row label, one bar per series (series are
/// interleaved and tagged), sharing one global scale — the shape of the
/// paper's faceted comparisons.
struct GroupedBars {
  std::vector<std::string> series_names;          // e.g. {"Kn10wNoPM", "LC10wNoPM"}
  std::vector<std::string> row_labels;            // e.g. workflow names
  std::vector<std::vector<double>> values;        // [row][series]
};
[[nodiscard]] std::string grouped_bar_chart(const GroupedBars& data,
                                            BarChartOptions options = {});

/// One-line unicode-free sparkline of a series (buckets min..max into
/// " .:-=+*#%@").
[[nodiscard]] std::string sparkline(const TimeSeries& series, int width = 64);

}  // namespace wfs::metrics
