// Periodic metrics sampling — the simulated Performance Co-Pilot.
//
// The paper collects CPU, memory and RAPL power at 1 s cadence with
// `pmdumptext -t 1sec`. The Sampler registers named probes (callables
// returning the instantaneous value) and records them into TimeSeries at a
// fixed simulated period.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "metrics/time_series.h"
#include "sim/periodic.h"
#include "sim/context.h"

namespace wfs::metrics {

class Sampler {
 public:
  using Probe = std::function<double()>;

  Sampler(sim::Context& sim, sim::SimTime period = sim::kSecond);

  /// Registers a probe; re-registering an existing name replaces the probe
  /// AND resets its series (the old samples may be in different units —
  /// mixing them into one series would corrupt every aggregate).
  void add_probe(std::string name, Probe probe);

  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return task_.running(); }

  /// Takes one sample of every probe immediately (used at run boundaries so
  /// the first/last instants are always captured).
  void sample_now();

  [[nodiscard]] const TimeSeries& series(const std::string& name) const;
  [[nodiscard]] bool has_series(const std::string& name) const noexcept;
  [[nodiscard]] std::vector<std::string> probe_names() const;
  [[nodiscard]] sim::SimTime period() const noexcept { return task_.period(); }

 private:
  struct Channel {
    Probe probe;
    TimeSeries series;
  };

  sim::Context& sim_;
  // std::map: deterministic probe iteration order for pmdump column order.
  std::map<std::string, Channel> channels_;
  sim::PeriodicTask task_;
};

}  // namespace wfs::metrics
