// pmdumptext-style CSV export.
//
// The paper records metrics as `pmdumptext -d ',' -t 1sec metric1 metric2
// ... > run.csv`; this produces the same layout: a header row of metric
// names, then one row per sample instant with a timestamp column. All the
// requested series must share sampling instants (they do when they come from
// one Sampler).
#pragma once

#include <string>
#include <vector>

#include "metrics/sampler.h"

namespace wfs::metrics {

struct PmdumpOptions {
  char separator = ',';
  /// Timestamp column renders simulated seconds with this precision.
  int time_precision = 3;
};

/// Renders the named series from a sampler into CSV text. Throws
/// std::out_of_range for unknown series names. Series of different lengths
/// are truncated to the shortest.
[[nodiscard]] std::string pmdump_csv(const Sampler& sampler,
                                     const std::vector<std::string>& series_names,
                                     PmdumpOptions options = {});

/// Convenience: all probes, in deterministic (sorted) order.
[[nodiscard]] std::string pmdump_csv_all(const Sampler& sampler, PmdumpOptions options = {});

}  // namespace wfs::metrics
