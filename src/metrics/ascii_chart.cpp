#include "metrics/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include "support/format.h"
#include <stdexcept>

namespace wfs::metrics {
namespace {

std::string render_bar(const std::string& label, std::size_t label_width, double value,
                       double max_value, const BarChartOptions& options) {
  const int fill_width =
      max_value > 0.0
          ? static_cast<int>(std::lround(value / max_value * options.width))
          : 0;
  std::string bar(static_cast<std::size_t>(std::clamp(fill_width, 0, options.width)),
                  options.fill);
  bar.resize(static_cast<std::size_t>(options.width), ' ');
  std::string padded_label = label;
  padded_label.resize(std::max(label_width, label.size()), ' ');
  return wfs::support::format("{} |{}| {:.{}f}{}{}\n", padded_label, bar, value,
                     options.value_precision, options.unit.empty() ? "" : " ", options.unit);
}

}  // namespace

std::string bar_chart(const std::vector<Bar>& bars, BarChartOptions options) {
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const Bar& bar : bars) {
    max_value = std::max(max_value, bar.value);
    label_width = std::max(label_width, bar.label.size());
  }
  std::string out;
  for (const Bar& bar : bars) {
    out += render_bar(bar.label, label_width, bar.value, max_value, options);
  }
  return out;
}

std::string grouped_bar_chart(const GroupedBars& data, BarChartOptions options) {
  if (data.values.size() != data.row_labels.size()) {
    throw std::invalid_argument("grouped_bar_chart: rows/values size mismatch");
  }
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& name : data.series_names) label_width = std::max(label_width, name.size());
  for (std::size_t r = 0; r < data.values.size(); ++r) {
    if (data.values[r].size() != data.series_names.size()) {
      throw std::invalid_argument("grouped_bar_chart: series count mismatch in row");
    }
    for (const double v : data.values[r]) max_value = std::max(max_value, v);
  }
  std::string out;
  for (std::size_t r = 0; r < data.row_labels.size(); ++r) {
    out += data.row_labels[r] + "\n";
    for (std::size_t s = 0; s < data.series_names.size(); ++s) {
      out += "  " + render_bar(data.series_names[s], label_width, data.values[r][s], max_value,
                               options);
    }
  }
  return out;
}

std::string sparkline(const TimeSeries& series, int width) {
  static constexpr std::string_view kLevels = " .:-=+*#%@";
  if (series.empty() || width <= 0) return "";
  const double lo = series.min();
  const double hi = series.max();
  const double span = hi - lo;
  const std::size_t n = series.size();
  std::string out;
  out.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    // Average the samples that fall into this column.
    const std::size_t begin = static_cast<std::size_t>(i) * n / static_cast<std::size_t>(width);
    std::size_t end =
        (static_cast<std::size_t>(i) + 1) * n / static_cast<std::size_t>(width);
    end = std::max(end, begin + 1);
    double sum = 0.0;
    for (std::size_t j = begin; j < end && j < n; ++j) sum += series[j].value;
    const double value = sum / static_cast<double>(std::min(end, n) - begin);
    const double norm = span > 0.0 ? (value - lo) / span : 0.0;
    const auto level = static_cast<std::size_t>(
        std::clamp(norm, 0.0, 1.0) * static_cast<double>(kLevels.size() - 1));
    out.push_back(kLevels[level]);
  }
  return out;
}

}  // namespace wfs::metrics
