#include "metrics/sampler.h"

#include <stdexcept>

namespace wfs::metrics {

Sampler::Sampler(sim::Context& sim, sim::SimTime period)
    : sim_(sim), task_(sim, period, [this](sim::SimTime) { sample_now(); }) {}

void Sampler::add_probe(std::string name, Probe probe) {
  Channel& channel = channels_[std::move(name)];
  channel.probe = std::move(probe);
  // A replaced probe starts a fresh series: stale samples from the previous
  // probe (possibly in different units) must not leak into aggregates.
  channel.series = TimeSeries{};
}

void Sampler::start() { task_.start(); }

void Sampler::stop() { task_.stop(); }

void Sampler::sample_now() {
  const sim::SimTime now = sim_.now();
  for (auto& [name, channel] : channels_) {
    if (!channel.series.empty() && channel.series.samples().back().time == now) {
      continue;  // avoid duplicate samples when sample_now() races the tick
    }
    channel.series.push(now, channel.probe());
  }
}

const TimeSeries& Sampler::series(const std::string& name) const {
  const auto it = channels_.find(name);
  if (it == channels_.end()) throw std::out_of_range("Sampler: unknown probe " + name);
  return it->second.series;
}

bool Sampler::has_series(const std::string& name) const noexcept {
  return channels_.contains(name);
}

std::vector<std::string> Sampler::probe_names() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) names.push_back(name);
  return names;
}

}  // namespace wfs::metrics
