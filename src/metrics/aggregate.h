// Summary statistics over a sampled series — the numbers the paper's
// Jupyter analysis extracts from each pmdumptext CSV.
#pragma once

#include <string>

#include "metrics/time_series.h"

namespace wfs::metrics {

struct Summary {
  std::size_t samples = 0;
  double mean = 0.0;
  double time_weighted_mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// value·seconds integral (joules when the series is watts).
  double integral = 0.0;
};

[[nodiscard]] Summary summarize(const TimeSeries& series);

/// "mean=12.3 max=45.6 p95=40.0" single-line rendering for reports.
[[nodiscard]] std::string to_string(const Summary& summary);

/// Jain's fairness index over per-entity allocations:
/// J = (Σx)² / (n · Σx²), in [1/n, 1]. 1.0 = perfectly even shares, 1/n =
/// one entity owns everything. Empty or all-zero input yields 1.0 (nothing
/// was allocated, so nothing was unfair). Negative entries are clamped to 0.
[[nodiscard]] double jain_fairness(const std::vector<double>& allocations);

}  // namespace wfs::metrics
