#include "storage/shared_fs.h"

#include <algorithm>
#include <cmath>

#include "metrics/registry.h"

namespace wfs::storage {

SharedFilesystem::SharedFilesystem(sim::Context& sim, SharedFsConfig config)
    : sim_(sim), config_(config) {}

void SharedFilesystem::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  metrics_.resolve(*registry, "shared_fs");
}

void SharedFilesystem::stage(const std::string& name, std::uint64_t size_bytes) {
  files_[name] = FileMeta{size_bytes, sim_.now()};
}

bool SharedFilesystem::exists(const std::string& name) const noexcept {
  return files_.contains(name);
}

const FileMeta* SharedFilesystem::stat(const std::string& name) const noexcept {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

sim::SimTime SharedFilesystem::transfer_time(std::uint64_t size_bytes, double bandwidth) const {
  // Congestion: transfers beyond the threshold divide the pipe.
  double effective = bandwidth;
  if (inflight_ > config_.congestion_threshold) {
    effective = bandwidth * static_cast<double>(config_.congestion_threshold) /
                static_cast<double>(inflight_);
  }
  const double seconds = static_cast<double>(size_bytes) / std::max(effective, 1.0);
  return config_.op_latency + sim::from_seconds(seconds);
}

void SharedFilesystem::read(const std::string& name, std::function<void(bool)> done) {
  const auto it = files_.find(name);
  const std::uint64_t epoch = epoch_;
  if (it == files_.end()) {
    ++failed_reads_;
    if (metrics_.failed_reads != nullptr) metrics_.failed_reads->inc();
    // A miss is an op like any other: it pays the metadata round trip (an
    // NFS lookup is not free), occupies a congestion slot while in flight,
    // and lands in the op-duration histogram — matching ObjectStore's 404
    // path. Deferring the callback also keeps the caller's dispatch loop
    // from being re-entered mid-call.
    ++inflight_;
    sim_.schedule_in(config_.op_latency, [this, epoch, done = std::move(done)] {
      if (epoch == epoch_) {
        --inflight_;
        if (metrics_.read_ops != nullptr) {
          metrics_.read_ops->inc();
          metrics_.read_duration->observe(sim::to_seconds(config_.op_latency));
        }
      }
      done(false);
    });
    return;
  }
  const std::uint64_t size = it->second.size_bytes;
  ++inflight_;
  const sim::SimTime duration = transfer_time(size, config_.read_bandwidth_bps);
  sim_.schedule_in(duration, [this, epoch, size, duration, done = std::move(done)] {
    if (epoch == epoch_) {
      --inflight_;
      bytes_read_ += size;
      if (metrics_.read_ops != nullptr) {
        metrics_.read_ops->inc();
        metrics_.read_bytes->inc(static_cast<double>(size));
        metrics_.read_duration->observe(sim::to_seconds(duration));
      }
    }
    done(true);
  });
}

void SharedFilesystem::write(std::string name, std::uint64_t size_bytes,
                             std::function<void()> done) {
  ++inflight_;
  const std::uint64_t epoch = epoch_;
  const std::uint64_t gen = generation_of(name);
  const sim::SimTime duration = transfer_time(size_bytes, config_.write_bandwidth_bps);
  sim_.schedule_in(duration,
                   [this, epoch, gen, name = std::move(name), size_bytes, duration,
                    done = std::move(done)]() mutable {
                     // The writer's done() always fires (its workflow moves
                     // on), but a completion that straddles clear()/remove()
                     // must not mutate the fresh store's state.
                     if (epoch == epoch_) {
                       --inflight_;
                       bytes_written_ += size_bytes;
                       if (metrics_.write_ops != nullptr) {
                         metrics_.write_ops->inc();
                         metrics_.write_bytes->inc(static_cast<double>(size_bytes));
                         metrics_.write_duration->observe(sim::to_seconds(duration));
                       }
                       if (generation_of(name) == gen) {
                         files_[std::move(name)] = FileMeta{size_bytes, sim_.now()};
                       }
                     }
                     done();
                   });
}

std::uint64_t SharedFilesystem::generation_of(const std::string& name) const {
  const auto it = remove_gen_.find(name);
  return it == remove_gen_.end() ? 0 : it->second;
}

bool SharedFilesystem::remove(const std::string& name) {
  ++remove_gen_[name];  // in-flight writes of this name must not land
  return files_.erase(name) > 0;
}

void SharedFilesystem::clear() {
  ++epoch_;  // invalidate every in-flight completion
  files_.clear();
  remove_gen_.clear();
  inflight_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  failed_reads_ = 0;
}

std::optional<std::uint64_t> SharedFilesystem::stat_size(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) return std::nullopt;
  return it->second.size_bytes;
}

std::uint64_t SharedFilesystem::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, meta] : files_) total += meta.size_bytes;
  return total;
}

}  // namespace wfs::storage
