#include "storage/shared_fs.h"

#include <algorithm>
#include <cmath>

#include "metrics/registry.h"

namespace wfs::storage {

SharedFilesystem::SharedFilesystem(sim::Simulation& sim, SharedFsConfig config)
    : sim_(sim), config_(config) {}

void SharedFilesystem::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  metrics_.resolve(*registry, "shared_fs");
}

void SharedFilesystem::stage(const std::string& name, std::uint64_t size_bytes) {
  files_[name] = FileMeta{size_bytes, sim_.now()};
}

bool SharedFilesystem::exists(const std::string& name) const noexcept {
  return files_.contains(name);
}

const FileMeta* SharedFilesystem::stat(const std::string& name) const noexcept {
  const auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

sim::SimTime SharedFilesystem::transfer_time(std::uint64_t size_bytes, double bandwidth) const {
  // Congestion: transfers beyond the threshold divide the pipe.
  double effective = bandwidth;
  if (inflight_ > config_.congestion_threshold) {
    effective = bandwidth * static_cast<double>(config_.congestion_threshold) /
                static_cast<double>(inflight_);
  }
  const double seconds = static_cast<double>(size_bytes) / std::max(effective, 1.0);
  return config_.op_latency + sim::from_seconds(seconds);
}

void SharedFilesystem::read(const std::string& name, std::function<void(bool)> done) {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    ++failed_reads_;
    if (metrics_.failed_reads != nullptr) metrics_.failed_reads->inc();
    // A miss still pays the metadata round trip (an NFS lookup is not free),
    // and deferring the callback keeps the caller's dispatch loop from being
    // re-entered mid-call — matching ObjectStore's 404 path, which charges
    // request_latency.
    sim_.schedule_in(config_.op_latency, [done = std::move(done)] { done(false); });
    return;
  }
  const std::uint64_t size = it->second.size_bytes;
  ++inflight_;
  const sim::SimTime duration = transfer_time(size, config_.read_bandwidth_bps);
  sim_.schedule_in(duration, [this, size, duration, done = std::move(done)] {
    --inflight_;
    bytes_read_ += size;
    if (metrics_.read_ops != nullptr) {
      metrics_.read_ops->inc();
      metrics_.read_bytes->inc(static_cast<double>(size));
      metrics_.read_duration->observe(sim::to_seconds(duration));
    }
    done(true);
  });
}

void SharedFilesystem::write(std::string name, std::uint64_t size_bytes,
                             std::function<void()> done) {
  ++inflight_;
  const sim::SimTime duration = transfer_time(size_bytes, config_.write_bandwidth_bps);
  sim_.schedule_in(duration,
                   [this, name = std::move(name), size_bytes, duration,
                    done = std::move(done)]() mutable {
                     --inflight_;
                     bytes_written_ += size_bytes;
                     if (metrics_.write_ops != nullptr) {
                       metrics_.write_ops->inc();
                       metrics_.write_bytes->inc(static_cast<double>(size_bytes));
                       metrics_.write_duration->observe(sim::to_seconds(duration));
                     }
                     files_[std::move(name)] = FileMeta{size_bytes, sim_.now()};
                     done();
                   });
}

bool SharedFilesystem::remove(const std::string& name) { return files_.erase(name) > 0; }

void SharedFilesystem::clear() { files_.clear(); }

std::uint64_t SharedFilesystem::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, meta] : files_) total += meta.size_bytes;
  return total;
}

}  // namespace wfs::storage
