#include "storage/data_store.h"

#include "metrics/registry.h"

namespace wfs::storage {

void StoreMetrics::resolve(metrics::MetricsRegistry& registry, const std::string& backend) {
  const auto labels = [&backend](const char* op) {
    return metrics::LabelSet{{"backend", backend}, {"op", op}};
  };
  read_ops = &registry.counter("storage_ops_total",
                               "Storage operations completed, by backend and op",
                               labels("read"));
  write_ops = &registry.counter("storage_ops_total",
                                "Storage operations completed, by backend and op",
                                labels("write"));
  read_bytes = &registry.counter("storage_bytes_total",
                                 "Bytes transferred, by backend and op", labels("read"));
  write_bytes = &registry.counter("storage_bytes_total",
                                  "Bytes transferred, by backend and op", labels("write"));
  failed_reads = &registry.counter("storage_failed_reads_total",
                                   "Reads of missing objects, by backend",
                                   {{"backend", backend}});
  read_duration = &registry.histogram("storage_op_duration_seconds",
                                      "Storage operation duration, seconds",
                                      labels("read"));
  write_duration = &registry.histogram("storage_op_duration_seconds",
                                       "Storage operation duration, seconds",
                                       labels("write"));
}

}  // namespace wfs::storage
