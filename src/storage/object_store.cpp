#include "storage/object_store.h"

#include <algorithm>

#include "metrics/registry.h"

namespace wfs::storage {

ObjectStore::ObjectStore(sim::Simulation& sim, ObjectStoreConfig config)
    : sim_(sim), config_(config) {}

void ObjectStore::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  metrics_.resolve(*registry, "object_store");
}

void ObjectStore::stage(const std::string& name, std::uint64_t size_bytes) {
  objects_[name] = size_bytes;
}

bool ObjectStore::exists(const std::string& name) const { return objects_.contains(name); }

sim::SimTime ObjectStore::transfer_time(std::uint64_t size_bytes, double per_object_bps) const {
  double bps = per_object_bps;
  if (config_.aggregate_bps > 0.0 && inflight_ > 0) {
    bps = std::min(bps, config_.aggregate_bps / static_cast<double>(inflight_));
  }
  return config_.request_latency +
         sim::from_seconds(static_cast<double>(size_bytes) / std::max(bps, 1.0));
}

void ObjectStore::read(const std::string& name, std::function<void(bool)> done) {
  ++get_requests_;
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    ++failed_reads_;
    if (metrics_.failed_reads != nullptr) metrics_.failed_reads->inc();
    // Missing objects still cost a round trip (404 from the frontend).
    sim_.schedule_in(config_.request_latency, [done = std::move(done)] { done(false); });
    return;
  }
  const std::uint64_t size = it->second;
  ++inflight_;
  const sim::SimTime duration = transfer_time(size, config_.per_object_read_bps);
  sim_.schedule_in(duration, [this, size, duration, done = std::move(done)] {
    --inflight_;
    bytes_read_ += size;
    if (metrics_.read_ops != nullptr) {
      metrics_.read_ops->inc();
      metrics_.read_bytes->inc(static_cast<double>(size));
      metrics_.read_duration->observe(sim::to_seconds(duration));
    }
    done(true);
  });
}

void ObjectStore::write(std::string name, std::uint64_t size_bytes,
                        std::function<void()> done) {
  ++put_requests_;
  ++inflight_;
  const sim::SimTime duration = transfer_time(size_bytes, config_.per_object_write_bps);
  sim_.schedule_in(duration, [this, name = std::move(name), size_bytes, duration,
                              done = std::move(done)]() mutable {
    --inflight_;
    bytes_written_ += size_bytes;
    if (metrics_.write_ops != nullptr) {
      metrics_.write_ops->inc();
      metrics_.write_bytes->inc(static_cast<double>(size_bytes));
      metrics_.write_duration->observe(sim::to_seconds(duration));
    }
    objects_[std::move(name)] = size_bytes;
    done();
  });
}

}  // namespace wfs::storage
