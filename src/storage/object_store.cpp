#include "storage/object_store.h"

#include <algorithm>

namespace wfs::storage {

ObjectStore::ObjectStore(sim::Simulation& sim, ObjectStoreConfig config)
    : sim_(sim), config_(config) {}

void ObjectStore::stage(const std::string& name, std::uint64_t size_bytes) {
  objects_[name] = size_bytes;
}

bool ObjectStore::exists(const std::string& name) const { return objects_.contains(name); }

sim::SimTime ObjectStore::transfer_time(std::uint64_t size_bytes, double per_object_bps) const {
  double bps = per_object_bps;
  if (config_.aggregate_bps > 0.0 && inflight_ > 0) {
    bps = std::min(bps, config_.aggregate_bps / static_cast<double>(inflight_));
  }
  return config_.request_latency +
         sim::from_seconds(static_cast<double>(size_bytes) / std::max(bps, 1.0));
}

void ObjectStore::read(const std::string& name, std::function<void(bool)> done) {
  ++get_requests_;
  const auto it = objects_.find(name);
  if (it == objects_.end()) {
    ++failed_reads_;
    // Missing objects still cost a round trip (404 from the frontend).
    sim_.schedule_in(config_.request_latency, [done = std::move(done)] { done(false); });
    return;
  }
  const std::uint64_t size = it->second;
  ++inflight_;
  sim_.schedule_in(transfer_time(size, config_.per_object_read_bps),
                   [this, size, done = std::move(done)] {
                     --inflight_;
                     bytes_read_ += size;
                     done(true);
                   });
}

void ObjectStore::write(std::string name, std::uint64_t size_bytes,
                        std::function<void()> done) {
  ++put_requests_;
  ++inflight_;
  sim_.schedule_in(transfer_time(size_bytes, config_.per_object_write_bps),
                   [this, name = std::move(name), size_bytes,
                    done = std::move(done)]() mutable {
                     --inflight_;
                     bytes_written_ += size_bytes;
                     objects_[std::move(name)] = size_bytes;
                     done();
                   });
}

}  // namespace wfs::storage
