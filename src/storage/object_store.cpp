#include "storage/object_store.h"

#include <algorithm>

#include "metrics/registry.h"

namespace wfs::storage {

ObjectStore::ObjectStore(sim::Context& sim, ObjectStoreConfig config)
    : sim_(sim), config_(config) {}

void ObjectStore::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_.reset();
    return;
  }
  metrics_.resolve(*registry, "object_store");
}

void ObjectStore::stage(const std::string& name, std::uint64_t size_bytes) {
  objects_[name] = size_bytes;
}

bool ObjectStore::exists(const std::string& name) const { return objects_.contains(name); }

sim::SimTime ObjectStore::transfer_time(std::uint64_t size_bytes, double per_object_bps) const {
  double bps = per_object_bps;
  if (config_.aggregate_bps > 0.0 && inflight_ > 0) {
    bps = std::min(bps, config_.aggregate_bps / static_cast<double>(inflight_));
  }
  return config_.request_latency +
         sim::from_seconds(static_cast<double>(size_bytes) / std::max(bps, 1.0));
}

void ObjectStore::read(const std::string& name, std::function<void(bool)> done) {
  ++get_requests_;
  const auto it = objects_.find(name);
  const std::uint64_t epoch = epoch_;
  if (it == objects_.end()) {
    ++failed_reads_;
    if (metrics_.failed_reads != nullptr) metrics_.failed_reads->inc();
    // Missing objects still cost a round trip (404 from the frontend), hold
    // an inflight slot for it, and count as a read op — the same miss model
    // as SharedFilesystem.
    ++inflight_;
    sim_.schedule_in(config_.request_latency, [this, epoch, done = std::move(done)] {
      if (epoch == epoch_) {
        --inflight_;
        if (metrics_.read_ops != nullptr) {
          metrics_.read_ops->inc();
          metrics_.read_duration->observe(sim::to_seconds(config_.request_latency));
        }
      }
      done(false);
    });
    return;
  }
  const std::uint64_t size = it->second;
  ++inflight_;
  const sim::SimTime duration = transfer_time(size, config_.per_object_read_bps);
  sim_.schedule_in(duration, [this, epoch, size, duration, done = std::move(done)] {
    if (epoch == epoch_) {
      --inflight_;
      bytes_read_ += size;
      if (metrics_.read_ops != nullptr) {
        metrics_.read_ops->inc();
        metrics_.read_bytes->inc(static_cast<double>(size));
        metrics_.read_duration->observe(sim::to_seconds(duration));
      }
    }
    done(true);
  });
}

void ObjectStore::write(std::string name, std::uint64_t size_bytes,
                        std::function<void()> done) {
  ++put_requests_;
  ++inflight_;
  const std::uint64_t epoch = epoch_;
  const std::uint64_t gen = generation_of(name);
  const sim::SimTime duration = transfer_time(size_bytes, config_.per_object_write_bps);
  sim_.schedule_in(duration, [this, epoch, gen, name = std::move(name), size_bytes, duration,
                              done = std::move(done)]() mutable {
    if (epoch == epoch_) {
      --inflight_;
      bytes_written_ += size_bytes;
      if (metrics_.write_ops != nullptr) {
        metrics_.write_ops->inc();
        metrics_.write_bytes->inc(static_cast<double>(size_bytes));
        metrics_.write_duration->observe(sim::to_seconds(duration));
      }
      if (generation_of(name) == gen) {
        objects_[std::move(name)] = size_bytes;
      }
    }
    done();
  });
}

std::uint64_t ObjectStore::generation_of(const std::string& name) const {
  const auto it = remove_gen_.find(name);
  return it == remove_gen_.end() ? 0 : it->second;
}

bool ObjectStore::remove(const std::string& name) {
  ++remove_gen_[name];
  return objects_.erase(name) > 0;
}

void ObjectStore::clear() {
  ++epoch_;
  objects_.clear();
  remove_gen_.clear();
  inflight_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  failed_reads_ = 0;
  get_requests_ = 0;
  put_requests_ = 0;
}

std::optional<std::uint64_t> ObjectStore::stat_size(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

}  // namespace wfs::storage
