// S3-style remote object store — the paper's §VII "external distributed
// data storage" alternative to the shared drive.
//
// Model differences vs the NFS-style SharedFilesystem:
//  * every operation pays a higher per-request latency (HTTP + auth);
//  * per-object bandwidth is lower, but the aggregate scales out — no
//    congestion collapse when hundreds of functions write simultaneously
//    (the object store's frontend fleet absorbs it);
//  * strongly consistent (list-after-put), like modern S3.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/context.h"
#include "storage/data_store.h"

namespace wfs::storage {

struct ObjectStoreConfig {
  sim::SimTime request_latency = 15 * sim::kMillisecond;
  double per_object_read_bps = 500e6;
  double per_object_write_bps = 300e6;
  /// Aggregate ceiling across concurrent transfers (0 = unlimited).
  double aggregate_bps = 0.0;
};

class ObjectStore final : public DataStore {
 public:
  ObjectStore(sim::Context& sim, ObjectStoreConfig config = {});

  /// Registers ops/bytes/duration metrics under backend="object_store".
  void set_metrics(metrics::MetricsRegistry* registry) override;

  void stage(const std::string& name, std::uint64_t size_bytes) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  /// A 404 is a request like any other: it charges request_latency, holds an
  /// inflight slot for that window, and lands in the op-duration histogram —
  /// the same miss model as SharedFilesystem::read.
  void read(const std::string& name, std::function<void(bool ok)> done) override;
  void write(std::string name, std::uint64_t size_bytes, std::function<void()> done) override;

  /// DELETE: in-flight PUTs of the same key must not resurrect it.
  bool remove(const std::string& name) override;
  /// Empties the bucket and resets traffic/request counters; in-flight
  /// completions are invalidated (epoch guard).
  void clear() override;

  /// Every request pays at least the HTTP+auth round trip — the bound a
  /// sharded simulation uses for its conservative lookahead.
  [[nodiscard]] sim::SimTime min_op_latency() const noexcept override {
    return config_.request_latency;
  }
  [[nodiscard]] std::optional<std::uint64_t> stat_size(
      const std::string& name) const override;

  [[nodiscard]] std::uint64_t bytes_read() const override { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const override { return bytes_written_; }
  [[nodiscard]] std::uint64_t failed_reads() const override { return failed_reads_; }

  [[nodiscard]] std::size_t object_count() const noexcept { return objects_.size(); }
  [[nodiscard]] std::size_t inflight_ops() const noexcept { return inflight_; }
  [[nodiscard]] std::uint64_t get_requests() const noexcept { return get_requests_; }
  [[nodiscard]] std::uint64_t put_requests() const noexcept { return put_requests_; }

 private:
  [[nodiscard]] sim::SimTime transfer_time(std::uint64_t size_bytes, double per_object_bps) const;
  [[nodiscard]] std::uint64_t generation_of(const std::string& name) const;

  sim::Context& sim_;
  ObjectStoreConfig config_;
  std::unordered_map<std::string, std::uint64_t> objects_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::string, std::uint64_t> remove_gen_;
  std::size_t inflight_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t failed_reads_ = 0;
  std::uint64_t get_requests_ = 0;
  std::uint64_t put_requests_ = 0;
  StoreMetrics metrics_;
};

}  // namespace wfs::storage
