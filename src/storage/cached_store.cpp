#include "storage/cached_store.h"

#include <algorithm>
#include <list>
#include <unordered_map>
#include <utility>

#include "metrics/registry.h"

namespace wfs::storage {

/// One node's bounded LRU plus the DataStore facade its pods use. The
/// facade forwards everything except read/write — reads consult the LRU
/// first, writes go through to the backing store and fill the local cache
/// on completion.
struct CachedStore::NodeCache final : DataStore {
  NodeCache(CachedStore& owner, std::string name)
      : owner_(owner), node_name_(std::move(name)) {}

  // ---- DataStore facade -----------------------------------------------------
  void set_metrics(metrics::MetricsRegistry* /*registry*/) override {
    // The owning CachedStore resolves per-node handles; the view is inert.
  }

  void stage(const std::string& name, std::uint64_t size_bytes) override {
    owner_.stage(name, size_bytes);
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    return owner_.backing_.exists(name);
  }

  void read(const std::string& name, std::function<void(bool)> done) override {
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.where);
      const std::uint64_t size = it->second.size_bytes;
      ++stats_.hits;
      stats_.bytes_saved += size;
      if (hits_metric_ != nullptr) hits_metric_->inc();
      if (bytes_saved_metric_ != nullptr) {
        bytes_saved_metric_->inc(static_cast<double>(size));
      }
      const sim::SimTime duration =
          owner_.config_.hit_latency +
          sim::from_seconds(static_cast<double>(size) /
                            std::max(owner_.config_.hit_bandwidth_bps, 1.0));
      if (owner_.trace_ != nullptr) {
        owner_.trace_->complete(owner_.trace_pid_, lane_, name, "cache-hit",
                                owner_.sim_.now(), owner_.sim_.now() + duration);
      }
      owner_.sim_.schedule_in(duration, [done = std::move(done)] { done(true); });
      return;
    }
    ++stats_.misses;
    if (misses_metric_ != nullptr) misses_metric_->inc();
    const sim::SimTime started = owner_.sim_.now();
    // Snapshot the fill guards at issue: the size observed now is the size
    // of the bytes this read will actually carry, and the generation/epoch
    // pin detects any stage()/write()/remove()/clear() that races the
    // transfer — a late fill must not resurrect an invalidated entry or
    // record a re-staged size for old bytes.
    const std::optional<std::uint64_t> issue_size = owner_.backing_.stat_size(name);
    const std::uint64_t epoch = owner_.cache_epoch_;
    const std::uint64_t gen = owner_.generation_of(name);

    if (owner_.config_.p2p_enabled && issue_size.has_value()) {
      if (NodeCache* peer = owner_.find_peer_with(name, this)) {
        // Peer-to-peer pull: the producer's node streams its cached copy
        // over the node-to-node link; the backing store never sees it.
        const std::uint64_t size = *issue_size;
        ++stats_.p2p_transfers;
        stats_.p2p_bytes += size;
        if (p2p_metric_ != nullptr) p2p_metric_->inc();
        if (p2p_bytes_metric_ != nullptr) p2p_bytes_metric_->inc(static_cast<double>(size));
        peer->lru_touch(name);
        const sim::SimTime duration =
            owner_.config_.p2p_latency +
            sim::from_seconds(static_cast<double>(size) /
                              std::max(owner_.config_.p2p_bandwidth_bps, 1.0));
        owner_.sim_.schedule_in(duration, [this, name, size, epoch, gen, started,
                                           done = std::move(done)] {
          if (epoch == owner_.cache_epoch_ && gen == owner_.generation_of(name)) {
            insert(name, size);
          }
          if (owner_.trace_ != nullptr) {
            owner_.trace_->complete(owner_.trace_pid_, lane_, name, "cache-p2p", started,
                                    owner_.sim_.now());
          }
          done(true);
        });
        return;
      }
    }

    owner_.backing_.read(name, [this, name, started, issue_size, epoch, gen,
                                done = std::move(done)](bool ok) {
      if (ok && issue_size.has_value() && epoch == owner_.cache_epoch_ &&
          gen == owner_.generation_of(name)) {
        // Read-through fill: the bytes just travelled to this node, keep
        // them. Backends that cannot report a size simply don't fill.
        insert(name, *issue_size);
      }
      if (owner_.trace_ != nullptr) {
        owner_.trace_->complete(owner_.trace_pid_, lane_, name, "cache-miss", started,
                                owner_.sim_.now());
      }
      done(ok);
    });
  }

  void write(std::string name, std::uint64_t size_bytes,
             std::function<void()> done) override {
    // Write-through: the backing store stays the source of truth and keeps
    // its only-visible-on-completion semantics. On completion the writer
    // node keeps the bytes (its downstream tasks are the likely readers)
    // and every other node drops its now-stale copy.
    std::string key = name;
    owner_.backing_.write(std::move(name), size_bytes,
                          [this, key = std::move(key), size_bytes,
                           done = std::move(done)]() mutable {
                            // The backing store may have barred this landing
                            // (a remove() raced the transfer, or clear()
                            // reset the world). Re-validate before filling:
                            // only bytes the backing store actually holds
                            // may be served from cache.
                            const std::optional<std::uint64_t> landed =
                                owner_.backing_.stat_size(key);
                            owner_.bump_generation(key);
                            owner_.invalidate_everywhere(key, this);
                            if (landed.has_value() && *landed == size_bytes) {
                              insert(key, size_bytes);
                            } else {
                              invalidate(key);
                            }
                            done();
                          });
  }

  bool remove(const std::string& name) override { return owner_.remove(name); }
  void clear() override { owner_.clear(); }

  [[nodiscard]] std::optional<std::uint64_t> stat_size(
      const std::string& name) const override {
    return owner_.backing_.stat_size(name);
  }

  [[nodiscard]] std::uint64_t bytes_read() const override {
    return owner_.backing_.bytes_read();
  }
  [[nodiscard]] std::uint64_t bytes_written() const override {
    return owner_.backing_.bytes_written();
  }
  [[nodiscard]] std::uint64_t failed_reads() const override {
    return owner_.backing_.failed_reads();
  }

  // ---- LRU ------------------------------------------------------------------
  void insert(const std::string& name, std::uint64_t size_bytes) {
    if (size_bytes > owner_.config_.capacity_bytes) return;  // would evict everything
    if (const auto it = entries_.find(name); it != entries_.end()) {
      used_bytes_ -= it->second.size_bytes;
      lru_.erase(it->second.where);
      entries_.erase(it);
    }
    lru_.push_front(name);
    entries_[name] = Entry{size_bytes, lru_.begin()};
    used_bytes_ += size_bytes;
    while (used_bytes_ > owner_.config_.capacity_bytes && !lru_.empty()) {
      const std::string& victim = lru_.back();
      const auto victim_it = entries_.find(victim);
      used_bytes_ -= victim_it->second.size_bytes;
      entries_.erase(victim_it);
      lru_.pop_back();
      ++stats_.evictions;
      if (evictions_metric_ != nullptr) evictions_metric_->inc();
    }
  }

  /// Refresh recency without changing contents — a peer serving a p2p pull
  /// just used its copy.
  void lru_touch(const std::string& name) {
    const auto it = entries_.find(name);
    if (it != entries_.end()) lru_.splice(lru_.begin(), lru_, it->second.where);
  }

  bool invalidate(const std::string& name) {
    const auto it = entries_.find(name);
    if (it == entries_.end()) return false;
    used_bytes_ -= it->second.size_bytes;
    lru_.erase(it->second.where);
    entries_.erase(it);
    ++stats_.invalidations;
    return true;
  }

  void invalidate_all() {
    stats_.invalidations += entries_.size();
    entries_.clear();
    lru_.clear();
    used_bytes_ = 0;
  }

  [[nodiscard]] std::uint64_t cached_size(const std::string& name) const {
    const auto it = entries_.find(name);
    return it == entries_.end() ? 0 : it->second.size_bytes;
  }

  struct Entry {
    std::uint64_t size_bytes = 0;
    std::list<std::string>::iterator where;
  };

  CachedStore& owner_;
  std::string node_name_;
  std::list<std::string> lru_;  // front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t used_bytes_ = 0;
  CacheStats stats_;
  obs::TraceRecorder::Tid lane_ = 0;
  metrics::Counter* hits_metric_ = nullptr;
  metrics::Counter* misses_metric_ = nullptr;
  metrics::Counter* evictions_metric_ = nullptr;
  metrics::Counter* bytes_saved_metric_ = nullptr;
  metrics::Counter* p2p_metric_ = nullptr;
  metrics::Counter* p2p_bytes_metric_ = nullptr;
};

CachedStore::CachedStore(sim::Context& sim, DataStore& backing, CacheConfig config)
    : sim_(sim), backing_(backing), config_(config) {}

CachedStore::~CachedStore() = default;

void CachedStore::set_metrics(metrics::MetricsRegistry* registry) {
  registry_ = registry;
  backing_.set_metrics(registry);
  for (auto& [name, cache] : nodes_) attach_instruments(*cache);
}

void CachedStore::set_trace(obs::TraceRecorder* trace) {
  trace_ = (trace != nullptr && trace->enabled()) ? trace : nullptr;
  if (trace_ != nullptr) trace_pid_ = trace_->process("data-cache");
  for (auto& [name, cache] : nodes_) attach_instruments(*cache);
}

void CachedStore::attach_instruments(NodeCache& cache) {
  if (registry_ != nullptr) {
    const metrics::LabelSet labels{{"node", cache.node_name_}};
    cache.hits_metric_ = &registry_->counter(
        "storage_cache_hits_total", "Reads served from the node-local cache", labels);
    cache.misses_metric_ = &registry_->counter(
        "storage_cache_misses_total", "Reads that fell through to the backing store",
        labels);
    cache.evictions_metric_ = &registry_->counter(
        "storage_cache_evictions_total", "LRU entries displaced by capacity pressure",
        labels);
    cache.bytes_saved_metric_ = &registry_->counter(
        "storage_cache_bytes_saved_total",
        "Backing-store bytes hits avoided transferring", labels);
    cache.p2p_metric_ = &registry_->counter(
        "storage_cache_p2p_total", "Misses served from a peer node's cache", labels);
    cache.p2p_bytes_metric_ = &registry_->counter(
        "storage_cache_p2p_bytes_total",
        "Backing-store bytes peer-to-peer pulls avoided transferring", labels);
  } else {
    cache.hits_metric_ = nullptr;
    cache.misses_metric_ = nullptr;
    cache.evictions_metric_ = nullptr;
    cache.bytes_saved_metric_ = nullptr;
    cache.p2p_metric_ = nullptr;
    cache.p2p_bytes_metric_ = nullptr;
  }
  cache.lane_ = trace_ != nullptr ? trace_->lane(trace_pid_, cache.node_name_) : 0;
}

void CachedStore::stage(const std::string& name, std::uint64_t size_bytes) {
  bump_generation(name);  // bar in-flight fills of the replaced content
  invalidate_everywhere(name, nullptr);
  backing_.stage(name, size_bytes);
}

bool CachedStore::exists(const std::string& name) const { return backing_.exists(name); }

void CachedStore::read(const std::string& name, std::function<void(bool)> done) {
  backing_.read(name, std::move(done));
}

void CachedStore::write(std::string name, std::uint64_t size_bytes,
                        std::function<void()> done) {
  std::string key = name;
  backing_.write(std::move(name), size_bytes,
                 [this, key = std::move(key), done = std::move(done)]() mutable {
                   bump_generation(key);
                   invalidate_everywhere(key, nullptr);
                   done();
                 });
}

bool CachedStore::remove(const std::string& name) {
  bump_generation(name);  // an in-flight fill must not resurrect it
  invalidate_everywhere(name, nullptr);
  return backing_.remove(name);
}

void CachedStore::clear() {
  ++cache_epoch_;  // bar every in-flight fill
  name_gen_.clear();
  for (auto& [name, cache] : nodes_) cache->invalidate_all();
  backing_.clear();
}

std::optional<std::uint64_t> CachedStore::stat_size(const std::string& name) const {
  return backing_.stat_size(name);
}

std::uint64_t CachedStore::bytes_read() const { return backing_.bytes_read(); }
std::uint64_t CachedStore::bytes_written() const { return backing_.bytes_written(); }
std::uint64_t CachedStore::failed_reads() const { return backing_.failed_reads(); }

CachedStore::NodeCache& CachedStore::node(const std::string& node_name) {
  auto it = nodes_.find(node_name);
  if (it == nodes_.end()) {
    it = nodes_.emplace(node_name, std::make_unique<NodeCache>(*this, node_name)).first;
    attach_instruments(*it->second);
  }
  return *it->second;
}

DataStore& CachedStore::node_view(const std::string& node_name) {
  return node(node_name);
}

void CachedStore::invalidate_everywhere(const std::string& name,
                                        const NodeCache* except) {
  for (auto& [node_name, cache] : nodes_) {
    if (cache.get() == except) continue;
    cache->invalidate(name);
  }
}

void CachedStore::bump_generation(const std::string& name) { ++name_gen_[name]; }

std::uint64_t CachedStore::generation_of(const std::string& name) const {
  const auto it = name_gen_.find(name);
  return it == name_gen_.end() ? 0 : it->second;
}

CachedStore::NodeCache* CachedStore::find_peer_with(const std::string& name,
                                                    const NodeCache* except) {
  // Ordered scan so the serving peer is deterministic across runs.
  for (auto& [node_name, cache] : nodes_) {
    if (cache.get() == except) continue;
    if (cache->cached_size(name) > 0) return cache.get();
  }
  return nullptr;
}

std::uint64_t CachedStore::cached_bytes(const std::string& node_name,
                                        const std::vector<std::string>& names) const {
  const auto it = nodes_.find(node_name);
  if (it == nodes_.end()) return 0;
  std::uint64_t total = 0;
  for (const std::string& name : names) total += it->second->cached_size(name);
  return total;
}

std::uint64_t CachedStore::node_cached_bytes(const std::string& node_name) const {
  const auto it = nodes_.find(node_name);
  return it == nodes_.end() ? 0 : it->second->used_bytes_;
}

CacheStats CachedStore::node_stats(const std::string& node_name) const {
  const auto it = nodes_.find(node_name);
  return it == nodes_.end() ? CacheStats{} : it->second->stats_;
}

CacheStats CachedStore::stats() const {
  CacheStats total;
  for (const auto& [name, cache] : nodes_) {
    total.hits += cache->stats_.hits;
    total.misses += cache->stats_.misses;
    total.evictions += cache->stats_.evictions;
    total.invalidations += cache->stats_.invalidations;
    total.bytes_saved += cache->stats_.bytes_saved;
    total.p2p_transfers += cache->stats_.p2p_transfers;
    total.p2p_bytes += cache->stats_.p2p_bytes;
  }
  return total;
}

}  // namespace wfs::storage
