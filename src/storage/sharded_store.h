// Sharded, replicated object store — the paper's §VII "external distributed
// data storage" grown into a real storage tier.
//
// N storage nodes sit behind a consistent-hash ring (virtual nodes, so
// adding or removing a node remaps only the arcs it owned). Every object is
// placed on `replication_factor` distinct nodes walked clockwise from its
// hash:
//
//            hash(name)                       write: fan out to every
//                │                            replica, ack when the
//        ┌───── ring ─────┐                   slowest one lands
//        ▼                │
//   s2 ──●── s0 ──●── s1 ─┴●─ s2 ...          read: nearest (ring-first)
//        primary   replica                    LIVE replica; each failover
//                                             hop costs one link trip
//
// Failure model: kill_node() drops a node and everything it held. Reads
// fail over to the surviving replicas; a background repair loop then
// re-replicates every under-replicated object over the node-to-node link
// until the replication factor is restored. The repair loop is event-
// driven — it arms itself on kill and disarms when nothing is left to
// repair, so an idle store schedules no events and sim.run() terminates.
//
// Like the other backends the store is strongly consistent (visible only
// on write completion), honours the remove-generation and clear-epoch
// contracts of DataStore, and reports through StoreMetrics under
// backend="sharded_store" plus per-storage-node op/repair counters and a
// "sharded-store" trace process with one lane per node.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_recorder.h"
#include "sim/context.h"
#include "storage/data_store.h"

namespace wfs::storage {

struct ShardedStoreConfig {
  /// Storage nodes behind the ring.
  std::size_t num_nodes = 4;
  /// Copies per object; writes ack when the slowest replica lands.
  std::size_t replication_factor = 2;
  /// Ring points per node — more points, smoother arcs (and smaller remap
  /// fraction when the node set changes).
  std::size_t virtual_nodes = 64;
  /// Client <-> storage-node request round trip (RPC + lookup). Higher
  /// than the shared drive's 2 ms — every op crosses the ring.
  sim::SimTime op_latency = 5 * sim::kMillisecond;
  /// Per-node disk/NIC rates, the same class of box as the shared drive
  /// (SharedFsConfig) — the scale-out win is N boxes, not a faster box.
  double per_object_read_bps = 2.0e9;
  double per_object_write_bps = 1.2e9;
  /// Transfers beyond this many concurrent ops ON ONE NODE share that
  /// node's pipe (SharedFilesystem semantics, per node). The ring spreads
  /// a wide phase across num_nodes pipes, so the fleet congests at
  /// num_nodes x threshold where the shared drive congests at threshold.
  std::size_t congestion_threshold = 16;
  /// Node-to-node hop: replica fan-out, read failover, repair streams.
  sim::SimTime link_latency = 500;  // microseconds
  double link_bps = 2.5e9;
  /// Kill -> first repair sweep (and sweep -> sweep while work remains).
  sim::SimTime repair_delay = 50 * sim::kMillisecond;
  /// Repair transfers started per sweep.
  std::size_t max_parallel_repairs = 4;
};

class ShardedObjectStore final : public DataStore {
 public:
  ShardedObjectStore(sim::Context& sim, ShardedStoreConfig config = {});

  /// Registers the shared StoreMetrics families under
  /// backend="sharded_store", per-node storage_node_ops_total{node=,op=}
  /// counters, and the repair counter pair.
  void set_metrics(metrics::MetricsRegistry* registry) override;
  /// Attaches a trace recorder: a "sharded-store" process with one lane per
  /// storage node carrying read/write/replicate/repair spans.
  void set_trace(obs::TraceRecorder* trace);

  void stage(const std::string& name, std::uint64_t size_bytes) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  /// Reads from the nearest (ring-first) live replica; each hop past the
  /// primary pays one link round trip. A miss — or an object whose every
  /// replica died — charges op_latency, holds an inflight slot and lands in
  /// the duration histogram, the same 404 model as the other backends.
  void read(const std::string& name, std::function<void(bool ok)> done) override;
  /// Write fan-out: the primary streams the object, every other replica
  /// receives it over the node-to-node link in parallel; done() (and
  /// visibility) when the slowest leg lands.
  void write(std::string name, std::uint64_t size_bytes,
             std::function<void()> done) override;
  bool remove(const std::string& name) override;
  /// Fresh store: drops every object, revives dead nodes, resets counters;
  /// in-flight completions and pending repairs are epoch-invalidated.
  void clear() override;
  [[nodiscard]] std::optional<std::uint64_t> stat_size(
      const std::string& name) const override;

  /// Conservative lookahead bound: nothing completes faster than the
  /// cheaper of a node RPC and a node-to-node link hop (repair legs and
  /// failover hops ride the link).
  [[nodiscard]] sim::SimTime min_op_latency() const noexcept override {
    return std::min(config_.op_latency, config_.link_latency);
  }

  [[nodiscard]] std::uint64_t bytes_read() const override { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const override { return bytes_written_; }
  [[nodiscard]] std::uint64_t failed_reads() const override { return failed_reads_; }

  // ---- failure / repair ------------------------------------------------------
  /// Kills a storage node: its copies are gone, in-flight ops it served
  /// still complete (the stream already left the NIC), future reads fail
  /// over, and the repair loop arms. False when already dead / out of range.
  bool kill_node(std::size_t node);
  [[nodiscard]] bool node_alive(std::size_t node) const;
  [[nodiscard]] std::size_t live_nodes() const noexcept;

  /// Objects currently holding fewer live copies than they should (their
  /// replication target is min(replication_factor, live nodes)).
  [[nodiscard]] std::size_t under_replicated() const;
  [[nodiscard]] std::uint64_t repaired_objects() const noexcept { return repaired_objects_; }
  [[nodiscard]] std::uint64_t repaired_bytes() const noexcept { return repaired_bytes_; }
  [[nodiscard]] std::uint64_t node_kills() const noexcept { return node_kills_; }
  /// Objects whose every replica died before repair could copy them out.
  [[nodiscard]] std::uint64_t lost_objects() const;

  // ---- introspection ---------------------------------------------------------
  [[nodiscard]] std::size_t node_count() const noexcept { return config_.num_nodes; }
  /// Ring-order replica set currently targeted for `name` (live nodes only).
  [[nodiscard]] std::vector<std::size_t> replicas_of(const std::string& name) const;
  /// Ring owner of `name` ignoring liveness — the pure hash placement, for
  /// remap tests.
  [[nodiscard]] std::size_t primary_of(const std::string& name) const;
  [[nodiscard]] std::size_t object_count() const noexcept { return objects_.size(); }
  /// Copies held by one node.
  [[nodiscard]] std::size_t node_object_count(std::size_t node) const;
  [[nodiscard]] std::size_t inflight_ops() const noexcept { return inflight_; }
  [[nodiscard]] const ShardedStoreConfig& config() const noexcept { return config_; }

 private:
  struct ObjectMeta {
    std::uint64_t size_bytes = 0;
    /// Nodes currently holding a copy, ring-preference order.
    std::vector<std::size_t> holders;
  };
  struct NodeState {
    bool alive = true;
    std::size_t inflight = 0;
    std::uint64_t ops = 0;
    metrics::Counter* read_ops = nullptr;
    metrics::Counter* write_ops = nullptr;
    metrics::Counter* replicate_ops = nullptr;
    obs::TraceRecorder::Tid lane = 0;
  };

  /// First `replication_factor` distinct LIVE nodes walking the ring
  /// clockwise from hash(name). Empty when every node is dead.
  [[nodiscard]] std::vector<std::size_t> placement_of(const std::string& name) const;
  [[nodiscard]] sim::SimTime node_transfer_time(std::size_t node, std::uint64_t size_bytes,
                                                double per_object_bps) const;
  [[nodiscard]] std::uint64_t generation_of(const std::string& name) const;
  [[nodiscard]] std::size_t replication_target() const noexcept;
  [[nodiscard]] bool is_under_replicated(const ObjectMeta& meta) const;
  void attach_node_instruments(std::size_t node);
  void trace_span(std::size_t node, const std::string& name, const char* category,
                  sim::SimTime start, sim::SimTime end);
  void begin_op(std::size_t node);
  void end_op(std::size_t node, std::uint64_t epoch);
  void schedule_repair();
  void run_repair_sweep();
  void finish_repair_transfer(const std::string& name, std::size_t dest,
                              std::uint64_t size_bytes, std::uint64_t gen);

  sim::Context& sim_;
  ShardedStoreConfig config_;
  /// (point, node) ring, sorted by point. Built once per node set.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
  std::vector<NodeState> nodes_;
  /// Ordered so repair sweeps and invariant scans are deterministic.
  std::map<std::string, ObjectMeta> objects_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::string, std::uint64_t> remove_gen_;
  /// Names needing another copy; repair drains it in lexicographic order.
  std::set<std::string> repair_queue_;
  bool repair_armed_ = false;
  std::size_t inflight_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t failed_reads_ = 0;
  std::uint64_t repaired_objects_ = 0;
  std::uint64_t repaired_bytes_ = 0;
  std::uint64_t node_kills_ = 0;
  std::uint64_t lost_objects_ = 0;
  StoreMetrics metrics_;
  metrics::MetricsRegistry* registry_ = nullptr;
  metrics::Counter* repair_objects_metric_ = nullptr;
  metrics::Counter* repair_bytes_metric_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceRecorder::Pid trace_pid_ = 0;
};

}  // namespace wfs::storage
