// Simulated shared drive (the paper's NFS-style common directory).
//
// Every wfbench function reads its inputs from and writes its outputs to
// this filesystem; the workflow manager polls it to check that a phase's
// inputs exist before dispatching (paper §III-C). The model charges
// base latency + size/bandwidth per operation, with a simple congestion
// multiplier when many transfers are in flight (an NFS server saturates).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/context.h"
#include "storage/data_store.h"

namespace wfs::storage {

struct SharedFsConfig {
  double read_bandwidth_bps = 2.0e9;   // ~2 GB/s aggregate NFS read
  double write_bandwidth_bps = 1.2e9;  // writes are slower
  sim::SimTime op_latency = 2 * sim::kMillisecond;
  /// Transfers beyond this many concurrent ops share bandwidth.
  std::size_t congestion_threshold = 16;
};

struct FileMeta {
  std::uint64_t size_bytes = 0;
  sim::SimTime created_at = 0;
};

class SharedFilesystem final : public DataStore {
 public:
  SharedFilesystem(sim::Context& sim, SharedFsConfig config = {});

  /// Registers ops/bytes/duration metrics under backend="shared_fs".
  void set_metrics(metrics::MetricsRegistry* registry) override;

  /// Instantly registers a file (workflow staging of initial inputs).
  void stage(const std::string& name, std::uint64_t size_bytes) override;

  [[nodiscard]] bool exists(const std::string& name) const noexcept override;
  /// Returns nullptr when absent.
  [[nodiscard]] const FileMeta* stat(const std::string& name) const noexcept;

  /// Asynchronous read: `done(true)` after the simulated transfer, or
  /// `done(false)` after `op_latency` when the file is missing. A miss is an
  /// op like any other: it costs the metadata round trip, occupies a
  /// congestion slot while in flight (an NFS GETATTR contends for the same
  /// server), lands in the op-duration histogram, and never re-enters the
  /// caller synchronously — matching ObjectStore's 404 path.
  void read(const std::string& name, std::function<void(bool ok)> done) override;

  /// Asynchronous write: file becomes visible to exists() only when the
  /// transfer completes — this is what makes the WFM's availability check
  /// meaningful.
  void write(std::string name, std::uint64_t size_bytes,
             std::function<void()> done) override;

  /// Deletes a file if present (used by cleanup between experiments). Also
  /// bars any in-flight write of the same name from re-inserting it on
  /// completion.
  bool remove(const std::string& name) override;
  /// Forgets every file AND resets the traffic counters; completions in
  /// flight across the clear are invalidated (epoch guard) so they can
  /// neither resurrect files nor underflow `inflight_`.
  void clear() override;

  /// Every operation pays at least op_latency — the NFS round trip bounds
  /// a sharded simulation's lookahead.
  [[nodiscard]] sim::SimTime min_op_latency() const noexcept override {
    return config_.op_latency;
  }
  [[nodiscard]] std::optional<std::uint64_t> stat_size(
      const std::string& name) const override;

  [[nodiscard]] std::size_t file_count() const noexcept { return files_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept;
  [[nodiscard]] std::uint64_t bytes_read() const noexcept override { return bytes_read_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept override {
    return bytes_written_;
  }
  [[nodiscard]] std::size_t inflight_ops() const noexcept { return inflight_; }
  [[nodiscard]] std::uint64_t failed_reads() const noexcept override { return failed_reads_; }

 private:
  [[nodiscard]] sim::SimTime transfer_time(std::uint64_t size_bytes, double bandwidth) const;
  [[nodiscard]] std::uint64_t generation_of(const std::string& name) const;

  sim::Context& sim_;
  SharedFsConfig config_;
  std::unordered_map<std::string, FileMeta> files_;
  /// Bumped by clear(); completions captured under an older epoch are dead.
  std::uint64_t epoch_ = 0;
  /// Per-name removal generation: a write completes into files_ only if no
  /// remove() of that name happened while it was in flight.
  std::unordered_map<std::string, std::uint64_t> remove_gen_;
  std::size_t inflight_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t failed_reads_ = 0;
  StoreMetrics metrics_;
};

}  // namespace wfs::storage
