// Abstract data backend for workflow I/O.
//
// The paper's prototype assumes a shared drive (§III-C) and names "external
// distributed data storage" as future work (§VII). Both the wfbench service
// and the workflow manager program against this interface, so either
// backend — the NFS-style SharedFilesystem or the S3-style ObjectStore —
// can carry a workflow's dataflow.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace wfs::storage {

class DataStore {
 public:
  virtual ~DataStore() = default;

  /// Instantly registers a file (initial input staging).
  virtual void stage(const std::string& name, std::uint64_t size_bytes) = 0;

  /// Metadata check — the WFM's pre-dispatch availability poll.
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;

  /// Asynchronous read; `done(false)` when the object is missing.
  virtual void read(const std::string& name, std::function<void(bool ok)> done) = 0;

  /// Asynchronous write; the object becomes visible to exists() only when
  /// the transfer completes.
  virtual void write(std::string name, std::uint64_t size_bytes,
                     std::function<void()> done) = 0;

  // Traffic counters (for reports).
  [[nodiscard]] virtual std::uint64_t bytes_read() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;
  [[nodiscard]] virtual std::uint64_t failed_reads() const = 0;
};

}  // namespace wfs::storage
