// Abstract data backend for workflow I/O.
//
// The paper's prototype assumes a shared drive (§III-C) and names "external
// distributed data storage" as future work (§VII). Both the wfbench service
// and the workflow manager program against this interface, so either
// backend — the NFS-style SharedFilesystem or the S3-style ObjectStore —
// can carry a workflow's dataflow.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "sim/clock.h"

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace wfs::metrics

namespace wfs::storage {

/// Metric handles shared by every backend, labeled {backend=<name>, op=...}:
/// storage_ops_total, storage_bytes_total, storage_failed_reads_total and the
/// storage_op_duration_seconds histogram. resolve() registers the families
/// once; all-null handles mean metrics are off.
struct StoreMetrics {
  metrics::Counter* read_ops = nullptr;
  metrics::Counter* write_ops = nullptr;
  metrics::Counter* read_bytes = nullptr;
  metrics::Counter* write_bytes = nullptr;
  metrics::Counter* failed_reads = nullptr;
  metrics::Histogram* read_duration = nullptr;
  metrics::Histogram* write_duration = nullptr;

  void resolve(metrics::MetricsRegistry& registry, const std::string& backend);
  void reset() noexcept { *this = StoreMetrics{}; }
};

class DataStore {
 public:
  virtual ~DataStore() = default;

  /// Attaches a metrics registry (nullptr = off). Backends that report
  /// metrics override this; the default is a no-op so simple test doubles
  /// need not care.
  virtual void set_metrics(metrics::MetricsRegistry* /*registry*/) {}

  /// Instantly registers a file (initial input staging).
  virtual void stage(const std::string& name, std::uint64_t size_bytes) = 0;

  /// Metadata check — the WFM's pre-dispatch availability poll.
  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;

  /// Asynchronous read; `done(false)` when the object is missing.
  virtual void read(const std::string& name, std::function<void(bool ok)> done) = 0;

  /// Asynchronous write; the object becomes visible to exists() only when
  /// the transfer completes.
  virtual void write(std::string name, std::uint64_t size_bytes,
                     std::function<void()> done) = 0;

  /// Deletes an object (cross-experiment cleanup). Returns true when it was
  /// present. After remove() returns, the name stays absent until a later
  /// stage()/write() — an in-flight write started before the remove must not
  /// resurrect it. Default: nothing to delete.
  virtual bool remove(const std::string& /*name*/) { return false; }

  /// Drops every object AND resets the traffic counters — a fresh store for
  /// the next experiment. Completions in flight across clear() must neither
  /// reinsert objects nor skew the new counters. Default: no-op.
  virtual void clear() {}

  /// Size of a stored object, or nullopt when absent (or unknown). The
  /// cache layer uses this to account read-through fills.
  [[nodiscard]] virtual std::optional<std::uint64_t> stat_size(
      const std::string& /*name*/) const {
    return std::nullopt;
  }

  /// Minimum simulated latency of any read/write this store can complete —
  /// the store's contribution to a sharded simulation's conservative
  /// lookahead (no completion callback may fire sooner than this after the
  /// operation starts). 0 means "no declared bound" and callers must fall
  /// back to the 1 us floor.
  [[nodiscard]] virtual sim::SimTime min_op_latency() const noexcept { return 0; }

  // Traffic counters (for reports).
  [[nodiscard]] virtual std::uint64_t bytes_read() const = 0;
  [[nodiscard]] virtual std::uint64_t bytes_written() const = 0;
  [[nodiscard]] virtual std::uint64_t failed_reads() const = 0;
};

}  // namespace wfs::storage
