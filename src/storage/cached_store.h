// Node-local data cache layer — a decorator over any DataStore.
//
// The paper's prototype funnels every task's I/O through one shared drive
// (§III-C) and names "external distributed data storage" as future work
// (§VII). The cache turns that fixed cost into a tunable one: each cluster
// node gets a bounded LRU over the backing store, so a task whose inputs
// were produced (or previously read) on the same node serves them at local
// NVMe speed instead of paying the shared-drive round trip.
//
//   WFM ──────────────► CachedStore ──────────► backing DataStore
//   (stage/exists:            │ node_view("worker")   (SharedFilesystem
//    pass-through)            ▼                        or ObjectStore)
//   Pod on "worker" ───► NodeView ── hit ──► local, no backing traffic
//                            └──── miss ──► backing.read + read-through fill
//
// Consistency rules:
//  * writes are write-through: the backing store stays the source of truth
//    and exists() keeps its only-visible-on-completion semantics;
//  * a completed write fills the writer node's cache and invalidates the
//    name everywhere else (the old bytes are stale);
//  * remove()/clear()/stage() through the decorator (or any node view)
//    invalidate every node cache before touching the backing store;
//  * fills are generation-guarded: a mutation that raced an in-flight read
//    or write bars the late fill, so a cache entry always describes bytes
//    the backing store actually holds.
// Mutating the backing store directly, behind the decorator's back, is the
// one way to make a cache stale — don't.
//
// With `p2p_enabled` a miss first looks for the object in a peer node's
// cache and pulls it over the node-to-node link — the producer's node
// serves its consumers directly and the shared backing store never sees
// the transfer.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_recorder.h"
#include "sim/context.h"
#include "storage/data_store.h"

namespace wfs::storage {

struct CacheConfig {
  /// Per-node capacity; objects larger than this are never cached.
  std::uint64_t capacity_bytes = 256ULL << 20;
  /// Fixed cost of a local hit (page cache / local NVMe lookup).
  sim::SimTime hit_latency = 200;  // microseconds
  /// Local read bandwidth for hits — no shared-drive contention.
  double hit_bandwidth_bps = 8.0e9;
  /// Peer-to-peer transfer: a miss pulls from another node's cache over the
  /// node-to-node link instead of the backing store, when a peer holds it.
  bool p2p_enabled = false;
  /// Node-to-node link round trip for a p2p pull.
  sim::SimTime p2p_latency = 300;  // microseconds
  double p2p_bandwidth_bps = 2.0e9;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  /// Backing-store bytes a hit avoided transferring.
  std::uint64_t bytes_saved = 0;
  /// Misses served from a peer node's cache over the node-to-node link.
  std::uint64_t p2p_transfers = 0;
  /// Backing-store bytes those peer pulls avoided transferring.
  std::uint64_t p2p_bytes = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

class CachedStore final : public DataStore {
 public:
  CachedStore(sim::Context& sim, DataStore& backing, CacheConfig config = {});
  ~CachedStore() override;

  CachedStore(const CachedStore&) = delete;
  CachedStore& operator=(const CachedStore&) = delete;

  /// Registers per-node hit/miss/eviction/bytes-saved counter families
  /// (storage_cache_*_total{node=...}) and forwards to the backing store.
  void set_metrics(metrics::MetricsRegistry* registry) override;

  /// Attaches a trace recorder: each node lane gets "cache-hit" /
  /// "cache-miss" spans under a "data-cache" process. nullptr disables.
  void set_trace(obs::TraceRecorder* trace);

  // DataStore interface — the node-less path (the WFM's stage/exists/poll).
  // Pure pass-through except that mutations invalidate every node cache.
  void stage(const std::string& name, std::uint64_t size_bytes) override;
  [[nodiscard]] bool exists(const std::string& name) const override;
  /// Node-less reads go straight to the backing store and fill no cache.
  void read(const std::string& name, std::function<void(bool ok)> done) override;
  void write(std::string name, std::uint64_t size_bytes,
             std::function<void()> done) override;
  bool remove(const std::string& name) override;
  void clear() override;
  [[nodiscard]] std::optional<std::uint64_t> stat_size(
      const std::string& name) const override;
  [[nodiscard]] std::uint64_t bytes_read() const override;
  [[nodiscard]] std::uint64_t bytes_written() const override;
  [[nodiscard]] std::uint64_t failed_reads() const override;

  /// The per-node facade pods read and write through. Created on first use;
  /// the reference stays valid for the CachedStore's lifetime.
  [[nodiscard]] DataStore& node_view(const std::string& node_name);

  /// Locality signal for the scheduler: how many bytes of `names` the given
  /// node already holds. Zero for nodes without a view yet.
  [[nodiscard]] std::uint64_t cached_bytes(const std::string& node_name,
                                           const std::vector<std::string>& names) const;
  /// Total bytes resident in one node's cache.
  [[nodiscard]] std::uint64_t node_cached_bytes(const std::string& node_name) const;
  /// One node's counters (zeroes for nodes without a view).
  [[nodiscard]] CacheStats node_stats(const std::string& node_name) const;
  /// Counters summed across every node.
  [[nodiscard]] CacheStats stats() const;

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] DataStore& backing() noexcept { return backing_; }

  /// Fastest possible completion: a local cache hit, a p2p link pull when
  /// enabled, or the backing store, should it ever declare something
  /// quicker. Keeps sharded-simulation lookahead conservative.
  [[nodiscard]] sim::SimTime min_op_latency() const noexcept override {
    sim::SimTime bound = config_.hit_latency;
    if (config_.p2p_enabled) bound = std::min(bound, config_.p2p_latency);
    const sim::SimTime backing = backing_.min_op_latency();
    if (backing > 0) bound = std::min(bound, backing);
    return bound;
  }

 private:
  struct NodeCache;

  NodeCache& node(const std::string& node_name);
  void invalidate_everywhere(const std::string& name, const NodeCache* except);
  void attach_instruments(NodeCache& cache);
  /// Mutation guards barring stale fills: stage/remove/landed writes bump
  /// the name's generation, clear() bumps the epoch; an in-flight fill only
  /// lands when both still match the snapshot taken at issue.
  void bump_generation(const std::string& name);
  [[nodiscard]] std::uint64_t generation_of(const std::string& name) const;
  /// First peer node (by name) whose cache holds `name`; nullptr when none.
  [[nodiscard]] NodeCache* find_peer_with(const std::string& name,
                                          const NodeCache* except);

  sim::Context& sim_;
  DataStore& backing_;
  CacheConfig config_;
  metrics::MetricsRegistry* registry_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceRecorder::Pid trace_pid_ = 0;
  /// Ordered by node name so invalidation sweeps are deterministic.
  std::map<std::string, std::unique_ptr<NodeCache>> nodes_;
  std::uint64_t cache_epoch_ = 0;
  std::unordered_map<std::string, std::uint64_t> name_gen_;
};

}  // namespace wfs::storage
