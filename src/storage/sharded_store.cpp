#include "storage/sharded_store.h"

#include <utility>

#include "metrics/registry.h"

namespace wfs::storage {
namespace {

/// FNV-1a with a murmur3 finalizer, spelled out so ring placement is
/// identical on every platform (std::hash makes no such promise and would
/// break committed baselines). Plain FNV-1a leaves the high bits of short
/// keys that differ only in a trailing character nearly untouched — the
/// vnode labels "s0#0".."s0#63" would all land on one tiny arc and the
/// ring would degenerate; the finalizer avalanches every input bit across
/// the whole word.
std::uint64_t fnv1a(const std::string& key) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdULL;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ULL;
  hash ^= hash >> 33;
  return hash;
}

std::string node_label(std::size_t node) { return "s" + std::to_string(node); }

}  // namespace

ShardedObjectStore::ShardedObjectStore(sim::Context& sim, ShardedStoreConfig config)
    : sim_(sim), config_(config) {
  config_.num_nodes = std::max<std::size_t>(1, config_.num_nodes);
  config_.replication_factor =
      std::min(std::max<std::size_t>(1, config_.replication_factor), config_.num_nodes);
  config_.virtual_nodes = std::max<std::size_t>(1, config_.virtual_nodes);
  nodes_.resize(config_.num_nodes);
  ring_.reserve(config_.num_nodes * config_.virtual_nodes);
  for (std::size_t node = 0; node < config_.num_nodes; ++node) {
    for (std::size_t v = 0; v < config_.virtual_nodes; ++v) {
      ring_.emplace_back(fnv1a(node_label(node) + "#" + std::to_string(v)), node);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

void ShardedObjectStore::set_metrics(metrics::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry == nullptr) {
    metrics_.reset();
    repair_objects_metric_ = nullptr;
    repair_bytes_metric_ = nullptr;
  } else {
    metrics_.resolve(*registry, "sharded_store");
    repair_objects_metric_ = &registry->counter(
        "storage_repair_objects_total",
        "Objects re-replicated by the background repair loop", {});
    repair_bytes_metric_ = &registry->counter(
        "storage_repair_bytes_total", "Bytes moved by repair transfers", {});
  }
  for (std::size_t node = 0; node < nodes_.size(); ++node) attach_node_instruments(node);
}

void ShardedObjectStore::set_trace(obs::TraceRecorder* trace) {
  trace_ = (trace != nullptr && trace->enabled()) ? trace : nullptr;
  if (trace_ != nullptr) trace_pid_ = trace_->process("sharded-store");
  for (std::size_t node = 0; node < nodes_.size(); ++node) attach_node_instruments(node);
}

void ShardedObjectStore::attach_node_instruments(std::size_t node) {
  NodeState& state = nodes_[node];
  if (registry_ != nullptr) {
    const auto labels = [&](const char* op) {
      return metrics::LabelSet{{"node", node_label(node)}, {"op", op}};
    };
    state.read_ops = &registry_->counter(
        "storage_node_ops_total", "Operations served, by storage node and op",
        labels("read"));
    state.write_ops = &registry_->counter(
        "storage_node_ops_total", "Operations served, by storage node and op",
        labels("write"));
    state.replicate_ops = &registry_->counter(
        "storage_node_ops_total", "Operations served, by storage node and op",
        labels("replicate"));
  } else {
    state.read_ops = nullptr;
    state.write_ops = nullptr;
    state.replicate_ops = nullptr;
  }
  state.lane = trace_ != nullptr ? trace_->lane(trace_pid_, node_label(node)) : 0;
}

void ShardedObjectStore::trace_span(std::size_t node, const std::string& name,
                                    const char* category, sim::SimTime start,
                                    sim::SimTime end) {
  if (trace_ != nullptr) {
    trace_->complete(trace_pid_, nodes_[node].lane, name, category, start, end);
  }
}

// ---- placement ---------------------------------------------------------------

std::vector<std::size_t> ShardedObjectStore::placement_of(const std::string& name) const {
  // Walk the ring clockwise from hash(name); the first `replication_factor`
  // distinct LIVE nodes are the object's replica set.
  std::vector<std::size_t> placement;
  const std::uint64_t point = fnv1a(name);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, std::size_t{0}));
  for (std::size_t steps = 0; steps < ring_.size() && placement.size() < config_.replication_factor;
       ++steps, ++it) {
    if (it == ring_.end()) it = ring_.begin();
    const std::size_t node = it->second;
    if (!nodes_[node].alive) continue;
    if (std::find(placement.begin(), placement.end(), node) == placement.end()) {
      placement.push_back(node);
    }
  }
  return placement;
}

std::size_t ShardedObjectStore::primary_of(const std::string& name) const {
  const std::uint64_t point = fnv1a(name);
  auto it = std::lower_bound(ring_.begin(), ring_.end(),
                             std::make_pair(point, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::size_t> ShardedObjectStore::replicas_of(const std::string& name) const {
  return placement_of(name);
}

std::size_t ShardedObjectStore::replication_target() const noexcept {
  return std::min(config_.replication_factor, live_nodes());
}

bool ShardedObjectStore::is_under_replicated(const ObjectMeta& meta) const {
  return meta.holders.size() < replication_target();
}

sim::SimTime ShardedObjectStore::node_transfer_time(std::size_t node,
                                                    std::uint64_t size_bytes,
                                                    double per_object_bps) const {
  // SharedFilesystem congestion semantics, applied per node: full rate up
  // to the threshold, then the node's pipe divides across its in-flight set.
  double bps = per_object_bps;
  const std::size_t inflight = nodes_[node].inflight;
  if (config_.congestion_threshold > 0 && inflight > config_.congestion_threshold) {
    bps = per_object_bps * static_cast<double>(config_.congestion_threshold) /
          static_cast<double>(inflight);
  }
  return sim::from_seconds(static_cast<double>(size_bytes) / std::max(bps, 1.0));
}

std::uint64_t ShardedObjectStore::generation_of(const std::string& name) const {
  const auto it = remove_gen_.find(name);
  return it == remove_gen_.end() ? 0 : it->second;
}

void ShardedObjectStore::begin_op(std::size_t node) {
  ++inflight_;
  ++nodes_[node].inflight;
}

void ShardedObjectStore::end_op(std::size_t node, std::uint64_t epoch) {
  if (epoch != epoch_) return;  // a clear() reset the counters already
  --inflight_;
  --nodes_[node].inflight;
}

// ---- DataStore ---------------------------------------------------------------

void ShardedObjectStore::stage(const std::string& name, std::uint64_t size_bytes) {
  ObjectMeta meta;
  meta.size_bytes = size_bytes;
  meta.holders = placement_of(name);
  objects_[name] = std::move(meta);
}

bool ShardedObjectStore::exists(const std::string& name) const {
  const auto it = objects_.find(name);
  return it != objects_.end() && !it->second.holders.empty();
}

std::optional<std::uint64_t> ShardedObjectStore::stat_size(const std::string& name) const {
  const auto it = objects_.find(name);
  if (it == objects_.end() || it->second.holders.empty()) return std::nullopt;
  return it->second.size_bytes;
}

void ShardedObjectStore::read(const std::string& name, std::function<void(bool)> done) {
  const std::uint64_t epoch = epoch_;
  const auto it = objects_.find(name);
  if (it == objects_.end() || it->second.holders.empty()) {
    // 404 from the ring owner: the request still pays the RPC, holds a slot
    // on that node, and counts as a read op — the same miss model as the
    // other backends.
    ++failed_reads_;
    if (metrics_.failed_reads != nullptr) metrics_.failed_reads->inc();
    const std::size_t node = primary_of(name);
    begin_op(node);
    const sim::SimTime started = sim_.now();
    sim_.schedule_in(config_.op_latency, [this, epoch, node, name, started,
                                          done = std::move(done)] {
      if (epoch == epoch_) {
        end_op(node, epoch);
        if (metrics_.read_ops != nullptr) {
          metrics_.read_ops->inc();
          metrics_.read_duration->observe(sim::to_seconds(config_.op_latency));
        }
        if (nodes_[node].read_ops != nullptr) nodes_[node].read_ops->inc();
        trace_span(node, name, "store-miss", started, sim_.now());
      }
      done(false);
    });
    return;
  }

  // Nearest replica: the first live holder in ring order. Every holder is
  // live (kill_node scrubs dead copies), so this is holders.front() when
  // the primary survives; each failover position past the object's ring
  // owner costs one extra link hop.
  const ObjectMeta& meta = it->second;
  std::size_t node = meta.holders.front();
  std::size_t hops = 0;
  {
    // Count how far down the preference walk the serving replica sits.
    const std::uint64_t point = fnv1a(name);
    auto walk = std::lower_bound(ring_.begin(), ring_.end(),
                                 std::make_pair(point, std::size_t{0}));
    std::vector<std::size_t> seen;
    for (std::size_t steps = 0; steps < ring_.size(); ++steps, ++walk) {
      if (walk == ring_.end()) walk = ring_.begin();
      const std::size_t candidate = walk->second;
      if (std::find(seen.begin(), seen.end(), candidate) != seen.end()) continue;
      if (nodes_[candidate].alive &&
          std::find(meta.holders.begin(), meta.holders.end(), candidate) !=
              meta.holders.end()) {
        node = candidate;
        hops = seen.size();
        break;
      }
      seen.push_back(candidate);
    }
  }
  const std::uint64_t size = meta.size_bytes;
  begin_op(node);
  const sim::SimTime duration = config_.op_latency +
                                static_cast<sim::SimTime>(hops) * config_.link_latency +
                                node_transfer_time(node, size, config_.per_object_read_bps);
  const sim::SimTime started = sim_.now();
  sim_.schedule_in(duration, [this, epoch, node, name, size, duration, started,
                              done = std::move(done)] {
    if (epoch == epoch_) {
      end_op(node, epoch);
      bytes_read_ += size;
      if (metrics_.read_ops != nullptr) {
        metrics_.read_ops->inc();
        metrics_.read_bytes->inc(static_cast<double>(size));
        metrics_.read_duration->observe(sim::to_seconds(duration));
      }
      if (nodes_[node].read_ops != nullptr) nodes_[node].read_ops->inc();
      ++nodes_[node].ops;
      trace_span(node, name, "store-read", started, sim_.now());
    }
    done(true);
  });
}

void ShardedObjectStore::write(std::string name, std::uint64_t size_bytes,
                               std::function<void()> done) {
  const std::uint64_t epoch = epoch_;
  const std::uint64_t gen = generation_of(name);
  const std::vector<std::size_t> targets = placement_of(name);
  if (targets.empty()) {
    // Every storage node is dead; the client's request times out after the
    // RPC window and nothing lands (the next exists() poll reports absent).
    sim_.schedule_in(config_.op_latency, [done = std::move(done)] { done(); });
    return;
  }

  // Fan-out: the primary ingests the object at its own bandwidth, every
  // other replica receives it over the node-to-node link, all in parallel.
  // The write acks — and the object becomes visible — when the slowest leg
  // lands.
  const sim::SimTime started = sim_.now();
  std::vector<sim::SimTime> leg_durations;
  leg_durations.reserve(targets.size());
  sim::SimTime slowest = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::size_t node = targets[i];
    begin_op(node);
    sim::SimTime duration;
    if (i == 0) {
      duration = config_.op_latency +
                 node_transfer_time(node, size_bytes, config_.per_object_write_bps);
    } else {
      duration = config_.op_latency + config_.link_latency +
                 sim::from_seconds(static_cast<double>(size_bytes) /
                                   std::max(config_.link_bps, 1.0));
    }
    leg_durations.push_back(duration);
    slowest = std::max(slowest, duration);
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const std::size_t node = targets[i];
    const bool primary = i == 0;
    sim_.schedule_in(leg_durations[i], [this, epoch, node, primary, started, key = name] {
      if (epoch != epoch_) return;
      end_op(node, epoch);
      NodeState& state = nodes_[node];
      ++state.ops;
      if (primary) {
        if (state.write_ops != nullptr) state.write_ops->inc();
        trace_span(node, key, "store-write", started, sim_.now());
      } else {
        if (state.replicate_ops != nullptr) state.replicate_ops->inc();
        trace_span(node, key, "store-replicate", started, sim_.now());
      }
    });
  }
  sim_.schedule_in(slowest, [this, epoch, gen, targets, name = std::move(name), size_bytes,
                             slowest, done = std::move(done)]() mutable {
    if (epoch == epoch_) {
      bytes_written_ += size_bytes;
      if (metrics_.write_ops != nullptr) {
        metrics_.write_ops->inc();
        metrics_.write_bytes->inc(static_cast<double>(size_bytes));
        metrics_.write_duration->observe(sim::to_seconds(slowest));
      }
      if (generation_of(name) == gen) {
        ObjectMeta meta;
        meta.size_bytes = size_bytes;
        // A replica killed while the transfer was in flight never landed
        // its copy; the survivors carry the object.
        for (const std::size_t node : targets) {
          if (nodes_[node].alive) meta.holders.push_back(node);
        }
        if (!meta.holders.empty()) {
          const bool degraded = meta.holders.size() < replication_target();
          objects_[name] = std::move(meta);
          if (degraded) {
            repair_queue_.insert(name);
            schedule_repair();
          }
        }
      }
    }
    done();
  });
}

bool ShardedObjectStore::remove(const std::string& name) {
  ++remove_gen_[name];  // in-flight writes of this name must not land
  repair_queue_.erase(name);
  return objects_.erase(name) > 0;
}

void ShardedObjectStore::clear() {
  ++epoch_;  // invalidate every in-flight completion and pending repair
  objects_.clear();
  remove_gen_.clear();
  repair_queue_.clear();
  repair_armed_ = false;
  for (NodeState& node : nodes_) {
    node.alive = true;
    node.inflight = 0;
    node.ops = 0;
  }
  inflight_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
  failed_reads_ = 0;
  repaired_objects_ = 0;
  repaired_bytes_ = 0;
  node_kills_ = 0;
  lost_objects_ = 0;
}

// ---- failure / repair --------------------------------------------------------

bool ShardedObjectStore::node_alive(std::size_t node) const {
  return node < nodes_.size() && nodes_[node].alive;
}

std::size_t ShardedObjectStore::live_nodes() const noexcept {
  std::size_t live = 0;
  for (const NodeState& node : nodes_) live += node.alive ? 1 : 0;
  return live;
}

std::size_t ShardedObjectStore::node_object_count(std::size_t node) const {
  std::size_t count = 0;
  for (const auto& [name, meta] : objects_) {
    count += std::find(meta.holders.begin(), meta.holders.end(), node) != meta.holders.end()
                 ? 1
                 : 0;
  }
  return count;
}

std::size_t ShardedObjectStore::under_replicated() const {
  std::size_t count = 0;
  for (const auto& [name, meta] : objects_) count += is_under_replicated(meta) ? 1 : 0;
  return count;
}

std::uint64_t ShardedObjectStore::lost_objects() const { return lost_objects_; }

bool ShardedObjectStore::kill_node(std::size_t node) {
  if (node >= nodes_.size() || !nodes_[node].alive) return false;
  nodes_[node].alive = false;
  ++node_kills_;
  // Scrub the dead copies. Objects left with zero live replicas are lost;
  // the rest queue for re-replication.
  std::vector<std::string> lost;
  for (auto& [name, meta] : objects_) {
    const auto held = std::find(meta.holders.begin(), meta.holders.end(), node);
    if (held == meta.holders.end()) continue;
    meta.holders.erase(held);
    if (meta.holders.empty()) {
      lost.push_back(name);
    } else if (is_under_replicated(meta)) {
      repair_queue_.insert(name);
    }
  }
  for (const std::string& name : lost) {
    objects_.erase(name);
    repair_queue_.erase(name);
    ++lost_objects_;
  }
  schedule_repair();
  return true;
}

void ShardedObjectStore::schedule_repair() {
  if (repair_armed_ || repair_queue_.empty()) return;
  repair_armed_ = true;
  const std::uint64_t epoch = epoch_;
  sim_.schedule_in(config_.repair_delay, [this, epoch] {
    if (epoch != epoch_) return;  // cleared while pending
    repair_armed_ = false;
    run_repair_sweep();
  });
}

void ShardedObjectStore::run_repair_sweep() {
  // Start up to max_parallel_repairs link transfers, draining the queue in
  // lexicographic order so repair traffic is deterministic. Whatever cannot
  // start this sweep re-arms for the next one.
  std::size_t started = 0;
  auto it = repair_queue_.begin();
  while (it != repair_queue_.end() && started < config_.max_parallel_repairs) {
    const std::string name = *it;
    const auto obj = objects_.find(name);
    if (obj == objects_.end() || !is_under_replicated(obj->second)) {
      it = repair_queue_.erase(it);  // removed or already healthy
      continue;
    }
    const ObjectMeta& meta = obj->second;
    // Destination: the first live non-holder on the object's preference
    // walk — the node the ring would have picked had it been placed now.
    std::size_t dest = nodes_.size();
    {
      const std::uint64_t point = fnv1a(name);
      auto walk = std::lower_bound(ring_.begin(), ring_.end(),
                                   std::make_pair(point, std::size_t{0}));
      std::vector<std::size_t> seen;
      for (std::size_t steps = 0; steps < ring_.size(); ++steps, ++walk) {
        if (walk == ring_.end()) walk = ring_.begin();
        const std::size_t candidate = walk->second;
        if (std::find(seen.begin(), seen.end(), candidate) != seen.end()) continue;
        seen.push_back(candidate);
        if (!nodes_[candidate].alive) continue;
        if (std::find(meta.holders.begin(), meta.holders.end(), candidate) !=
            meta.holders.end()) {
          continue;
        }
        dest = candidate;
        break;
      }
    }
    if (dest == nodes_.size()) {
      // No live node lacks a copy — the object is as replicated as the
      // cluster allows (is_under_replicated() can't be true here, but stay
      // defensive).
      it = repair_queue_.erase(it);
      continue;
    }
    it = repair_queue_.erase(it);
    ++started;
    const std::uint64_t gen = generation_of(name);
    const std::uint64_t size = meta.size_bytes;
    begin_op(dest);
    const std::uint64_t epoch = epoch_;
    const sim::SimTime duration =
        config_.link_latency +
        sim::from_seconds(static_cast<double>(size) / std::max(config_.link_bps, 1.0));
    const sim::SimTime began = sim_.now();
    sim_.schedule_in(duration, [this, epoch, name, dest, size, gen, began] {
      if (epoch != epoch_) return;
      end_op(dest, epoch);
      trace_span(dest, name, "store-repair", began, sim_.now());
      finish_repair_transfer(name, dest, size, gen);
    });
  }
  if (!repair_queue_.empty()) schedule_repair();
}

void ShardedObjectStore::finish_repair_transfer(const std::string& name, std::size_t dest,
                                                std::uint64_t size_bytes,
                                                std::uint64_t gen) {
  const auto it = objects_.find(name);
  // The object may have been removed or overwritten while the copy was on
  // the wire; a stale copy must not resurrect or double-count it.
  if (it == objects_.end() || generation_of(name) != gen || !nodes_[dest].alive) {
    schedule_repair();
    return;
  }
  ObjectMeta& meta = it->second;
  if (std::find(meta.holders.begin(), meta.holders.end(), dest) == meta.holders.end()) {
    meta.holders.push_back(dest);
    ++repaired_objects_;
    repaired_bytes_ += size_bytes;
    if (repair_objects_metric_ != nullptr) repair_objects_metric_->inc();
    if (repair_bytes_metric_ != nullptr) {
      repair_bytes_metric_->inc(static_cast<double>(size_bytes));
    }
    if (nodes_[dest].replicate_ops != nullptr) nodes_[dest].replicate_ops->inc();
  }
  if (is_under_replicated(meta)) repair_queue_.insert(name);
  schedule_repair();
}

}  // namespace wfs::storage
