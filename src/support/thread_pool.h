// Fixed-size worker pool for running independent simulations in parallel.
//
// Each Simulation is strictly single-threaded (see sim/simulation.h), so the
// natural unit of parallelism in this framework is one whole experiment:
// campaign and fleet sweeps dispatch each cell to a pool worker and collect
// results by index, keeping output order deterministic regardless of which
// worker finishes first. Jobs must not touch shared mutable state other than
// what they synchronise themselves; the framework-level shared pieces
// (support::Logger) are thread-safe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
class Gauge;
}  // namespace wfs::metrics

namespace wfs::support {

class ThreadPool {
 public:
  using Job = std::function<void()>;

  /// Spawns `workers` threads; 0 means default_workers().
  explicit ThreadPool(std::size_t workers = 0);

  /// Waits for queued and in-flight jobs, then joins the workers. Jobs that
  /// raced shutdown into the queue after the workers exited are drained
  /// inline — every job that submit() accepted runs, unconditionally.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Attaches a metrics registry: pool_jobs_total counts submissions,
  /// pool_queue_depth tracks jobs waiting (not yet picked up). Handles are
  /// updated under the pool's own mutex. nullptr disables.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// Enqueues a job. Jobs run in submission order but complete in any order;
  /// a job must not throw (wrap work in try/catch and record failures).
  void submit(Job job);

  /// Blocks until the queue is empty and no job is executing.
  void wait_idle();

  [[nodiscard]] std::size_t worker_count() const noexcept { return workers_.size(); }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static std::size_t default_workers() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Job> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  // signalled on submit / stop
  std::condition_variable idle_cv_;  // signalled when a job finishes
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  metrics::Counter* jobs_metric_ = nullptr;   // guarded by mutex_
  metrics::Gauge* depth_metric_ = nullptr;    // guarded by mutex_
};

}  // namespace wfs::support
