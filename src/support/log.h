// Lightweight leveled logger for the framework.
//
// The simulator is single-threaded per Simulation instance, but examples and
// the experiment runner may execute several simulations from a thread pool,
// so the sink is protected by a mutex (Core Guidelines CP.2: avoid data
// races; CP.20: RAII locks only).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "support/format.h"

namespace wfs::support {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Returns the fixed, lower-case name used in log lines ("trace", ... "off").
std::string_view to_string(LogLevel level) noexcept;

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off"
/// (case-insensitive). Returns kInfo for anything unrecognised.
LogLevel parse_log_level(std::string_view text) noexcept;

/// Process-wide logger configuration. All functions are thread-safe.
class Logger {
 public:
  /// Global minimum level; messages below it are dropped before formatting.
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Redirects output (default: stderr). Pass nullptr to restore stderr.
  /// The stream must outlive all logging calls.
  static void set_sink(std::ostream* sink) noexcept;

  /// Emits one formatted line: "[level] component: message\n".
  static void write(LogLevel level, std::string_view component, std::string_view message);
};

/// Formatting front-end: log(LogLevel::kInfo, "faas", "scaled to {}", n).
template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt, Args&&... args) {
  if (level < Logger::level()) return;
  Logger::write(level, component, format(fmt, std::forward<Args>(args)...));
}

}  // namespace wfs::support

#define WFS_LOG_TRACE(component, ...) \
  ::wfs::support::log(::wfs::support::LogLevel::kTrace, component, __VA_ARGS__)
#define WFS_LOG_DEBUG(component, ...) \
  ::wfs::support::log(::wfs::support::LogLevel::kDebug, component, __VA_ARGS__)
#define WFS_LOG_INFO(component, ...) \
  ::wfs::support::log(::wfs::support::LogLevel::kInfo, component, __VA_ARGS__)
#define WFS_LOG_WARN(component, ...) \
  ::wfs::support::log(::wfs::support::LogLevel::kWarn, component, __VA_ARGS__)
#define WFS_LOG_ERROR(component, ...) \
  ::wfs::support::log(::wfs::support::LogLevel::kError, component, __VA_ARGS__)
