#include "support/rng.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace wfs::support {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform_real(double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::truncated_normal(double mean, double stddev, double lo, double hi) {
  if (stddev <= 0.0) return std::clamp(mean, lo, hi);
  std::normal_distribution<double> dist(mean, stddev);
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double draw = dist(engine_);
    if (draw >= lo && draw <= hi) return draw;
  }
  return std::clamp(mean, lo, hi);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0) throw std::invalid_argument("weighted_index: no positive weight");
  double point = uniform_real(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    point -= weights[i];
    if (point <= 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::fork() {
  // Draw two words so the child stream is decorrelated from subsequent
  // parent draws even for adjacent seeds.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b << 1));
}

}  // namespace wfs::support
