// Deterministic random number generation.
//
// Everything in the framework that needs randomness (recipe generation,
// latency jitter) draws from an explicitly seeded Rng instance that is passed
// down by value or reference — never from global state — so that a fixed
// seed reproduces an experiment bit-for-bit (the determinism property tests
// in tests/ rely on this).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace wfs::support {

/// A seeded 64-bit PRNG (SplitMix64-based engine feeding a mt19937_64) with
/// convenience draws. Cheap to copy; copies evolve independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Truncated normal: draws N(mean, stddev) re-sampled (max 64 tries, then
  /// clamped) into [lo, hi].
  double truncated_normal(double mean, double stddev, double lo, double hi);

  /// Bernoulli draw with probability p of true.
  bool chance(double p);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator; used so sibling recipe
  /// components do not perturb each other's streams.
  Rng fork();

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wfs::support
