// Typed unit constants and conversions used throughout the simulator.
//
// Simulated time is kept in integer microseconds (SimTime in sim/clock.h);
// byte quantities in std::uint64_t; rates in double (bytes/s, work-units/s).
#pragma once

#include <cstdint>

namespace wfs::support {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Parses strings like "512Mi", "2Gi", "100k", "1500" into bytes.
/// Suffixes: k/M/G (decimal), Ki/Mi/Gi (binary). Throws std::invalid_argument
/// on malformed input.
std::uint64_t parse_bytes(const char* text);

/// Parses Kubernetes-style CPU quantities: "2" -> 2.0 cores, "500m" -> 0.5.
/// Throws std::invalid_argument on malformed input.
double parse_cpus(const char* text);

}  // namespace wfs::support
