// Minimal command-line flag parser for the examples and bench drivers.
//
//   wfs::support::CliParser cli("quickstart", "Run a tiny Blast workflow");
//   cli.add_flag("recipe", "blast", "recipe name");
//   cli.add_flag("tasks", "50", "workflow size (number of tasks)");
//   cli.add_switch("verbose", "enable debug logging");
//   if (!cli.parse(argc, argv)) return 1;   // prints usage on --help / error
//   int n = cli.get_int("tasks");
//
// Accepts "--name value" and "--name=value"; switches take no value.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace wfs::support {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a value flag with a default (also its --help documentation).
  void add_flag(std::string name, std::string default_value, std::string help);

  /// Registers a boolean switch (false unless present).
  void add_switch(std::string name, std::string help);

  /// Parses argv. Returns false (after printing usage to stderr) when the
  /// arguments are malformed or --help/-h was requested.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& get(std::string_view name) const;
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_switch(std::string_view name) const;

  /// Arguments that were not flags, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The generated usage text (printed automatically on --help).
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string value;
    std::string help;
    bool is_switch = false;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Flag, std::less<>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wfs::support
