#include "support/units.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace wfs::support {
namespace {

// Parses the leading numeric part, returning the remainder via `rest`.
double parse_number(const char* text, const char** rest) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text) throw std::invalid_argument(std::string("not a number: ") + text);
  *rest = end;
  return value;
}

}  // namespace

std::uint64_t parse_bytes(const char* text) {
  const char* rest = nullptr;
  const double value = parse_number(text, &rest);
  if (value < 0) throw std::invalid_argument(std::string("negative byte count: ") + text);
  const std::string suffix(rest);
  double scale = 1.0;
  if (suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "k" || suffix == "K") {
    scale = 1e3;
  } else if (suffix == "M") {
    scale = 1e6;
  } else if (suffix == "G") {
    scale = 1e9;
  } else if (suffix == "Ki") {
    scale = static_cast<double>(kKiB);
  } else if (suffix == "Mi") {
    scale = static_cast<double>(kMiB);
  } else if (suffix == "Gi") {
    scale = static_cast<double>(kGiB);
  } else {
    throw std::invalid_argument("unknown byte suffix: " + suffix);
  }
  return static_cast<std::uint64_t>(value * scale);
}

double parse_cpus(const char* text) {
  const char* rest = nullptr;
  const double value = parse_number(text, &rest);
  if (value < 0) throw std::invalid_argument(std::string("negative cpu count: ") + text);
  const std::string suffix(rest);
  if (suffix.empty()) return value;
  if (suffix == "m") return value / 1000.0;  // millicores
  throw std::invalid_argument("unknown cpu suffix: " + suffix);
}

}  // namespace wfs::support
