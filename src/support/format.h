// Minimal std::format replacement (libstdc++ 12 does not ship <format>).
//
// Supports the subset of the std::format grammar this codebase uses:
//   {}            default formatting
//   {:d} {:x} {:X}  integers (decimal / hex)
//   {:f} {:e} {:g}  doubles with optional precision {:.3f}
//   {:.{}f}       runtime precision (consumes the next argument)
//   {:8} {:<8} {:>8} {:^8}  width and alignment (strings and numbers)
//   {:04} {:04x}  zero padding for numbers
//   {{ and }}     literal braces
// Positional arguments ({0}) are not supported; arguments are consumed in
// order. Errors (bad spec, too few arguments) throw std::format_error-like
// std::runtime_error to fail loudly in tests.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace wfs::support {

class format_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

/// Type-erased format argument.
class FormatArg {
 public:
  FormatArg(bool v) : value_(v) {}
  FormatArg(char v) : value_(v) {}
  FormatArg(double v) : value_(v) {}
  FormatArg(float v) : value_(static_cast<double>(v)) {}
  FormatArg(const char* v) : value_(std::string_view(v)) {}
  FormatArg(std::string_view v) : value_(v) {}
  FormatArg(const std::string& v) : value_(std::string_view(v)) {}

  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> && !std::is_same_v<T, char>)
  FormatArg(T v) {
    if constexpr (std::is_signed_v<T>) {
      value_ = static_cast<std::int64_t>(v);
    } else {
      value_ = static_cast<std::uint64_t>(v);
    }
  }

  template <typename T>
    requires std::is_enum_v<T>
  FormatArg(T v) : FormatArg(static_cast<std::underlying_type_t<T>>(v)) {}

  [[nodiscard]] std::int64_t as_int() const;
  void append_to(std::string& out, std::string_view spec) const;

 private:
  std::variant<bool, char, std::int64_t, std::uint64_t, double, std::string_view> value_;
};

std::string vformat(std::string_view fmt, std::vector<FormatArg> args);

}  // namespace detail

/// Formats `fmt` with the given arguments (std::format subset, see above).
template <typename... Args>
[[nodiscard]] std::string format(std::string_view fmt, Args&&... args) {
  return detail::vformat(fmt, std::vector<detail::FormatArg>{detail::FormatArg(args)...});
}

}  // namespace wfs::support
