#include "support/format.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace wfs::support::detail {
namespace {

struct Spec {
  char fill = ' ';
  char align = 0;       // '<', '>', '^' or 0 (default: right for numbers, left for strings)
  char sign = 0;        // '+', '-', ' ' or 0
  bool zero_pad = false;
  int width = 0;
  int precision = -1;   // -1: unspecified
  bool runtime_precision = false;  // ".{}" — caller substitutes before parsing
  char type = 0;        // d x X f F e E g G s c b or 0
};

Spec parse_spec(std::string_view spec) {
  Spec out;
  std::size_t i = 0;
  // [[fill]align]
  if (spec.size() >= 2 && (spec[1] == '<' || spec[1] == '>' || spec[1] == '^')) {
    out.fill = spec[0];
    out.align = spec[1];
    i = 2;
  } else if (!spec.empty() && (spec[0] == '<' || spec[0] == '>' || spec[0] == '^')) {
    out.align = spec[0];
    i = 1;
  }
  // [sign]
  if (i < spec.size() && (spec[i] == '+' || spec[i] == '-' || spec[i] == ' ')) {
    out.sign = spec[i];
    ++i;
  }
  // [0][width]
  if (i < spec.size() && spec[i] == '0') {
    out.zero_pad = true;
    ++i;
  }
  while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
    out.width = out.width * 10 + (spec[i] - '0');
    ++i;
  }
  // [.precision]
  if (i < spec.size() && spec[i] == '.') {
    ++i;
    if (i < spec.size() && spec[i] == '{') {
      // ".{}" runtime precision: must have been substituted already.
      throw format_error("unsubstituted runtime precision in spec");
    }
    int precision = 0;
    bool any = false;
    while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
      precision = precision * 10 + (spec[i] - '0');
      ++i;
      any = true;
    }
    if (!any) throw format_error("missing precision digits");
    out.precision = precision;
  }
  // [type]
  if (i < spec.size()) {
    out.type = spec[i];
    ++i;
  }
  if (i != spec.size()) throw format_error("trailing characters in format spec");
  return out;
}

void pad_and_append(std::string& out, std::string body, const Spec& spec, bool numeric) {
  if (static_cast<int>(body.size()) >= spec.width) {
    out += body;
    return;
  }
  const std::size_t pad = static_cast<std::size_t>(spec.width) - body.size();
  char align = spec.align;
  if (align == 0) align = numeric ? '>' : '<';
  if (numeric && spec.zero_pad && spec.align == 0) {
    // Zero padding goes after any sign.
    std::size_t sign = (!body.empty() && (body[0] == '-' || body[0] == '+')) ? 1 : 0;
    body.insert(sign, pad, '0');
    out += body;
    return;
  }
  switch (align) {
    case '<': out += body; out.append(pad, spec.fill); break;
    case '>': out.append(pad, spec.fill); out += body; break;
    case '^': {
      const std::size_t left = pad / 2;
      out.append(left, spec.fill);
      out += body;
      out.append(pad - left, spec.fill);
      break;
    }
    default: out += body;
  }
}

std::string render_unsigned(std::uint64_t value, char type) {
  char buffer[32];
  int written = 0;
  switch (type) {
    case 'x': written = std::snprintf(buffer, sizeof buffer, "%" PRIx64, value); break;
    case 'X': written = std::snprintf(buffer, sizeof buffer, "%" PRIX64, value); break;
    case 'b': {
      std::string bits;
      if (value == 0) bits = "0";
      while (value != 0) {
        bits.insert(bits.begin(), static_cast<char>('0' + (value & 1)));
        value >>= 1;
      }
      return bits;
    }
    default: written = std::snprintf(buffer, sizeof buffer, "%" PRIu64, value); break;
  }
  return std::string(buffer, static_cast<std::size_t>(written));
}

std::string render_double(double value, const Spec& spec) {
  char buffer[64];
  const int precision = spec.precision >= 0 ? spec.precision : 6;
  int written = 0;
  switch (spec.type) {
    case 'f':
    case 'F':
      written = std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
      break;
    case 'e':
      written = std::snprintf(buffer, sizeof buffer, "%.*e", precision, value);
      break;
    case 'E':
      written = std::snprintf(buffer, sizeof buffer, "%.*E", precision, value);
      break;
    case 'g':
      written = std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
      break;
    case 'G':
      written = std::snprintf(buffer, sizeof buffer, "%.*G", precision, value);
      break;
    case 0: {
      if (spec.precision >= 0) {
        written = std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        break;
      }
      // Shortest round-trip representation, like std::format's default.
      const auto [ptr, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
      if (ec != std::errc()) throw format_error("double to_chars failed");
      return std::string(buffer, ptr);
    }
    default: throw format_error("bad type for floating point argument");
  }
  if (written < 0) throw format_error("snprintf failed");
  return std::string(buffer, static_cast<std::size_t>(written));
}

}  // namespace

std::int64_t FormatArg::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return static_cast<std::int64_t>(*u);
  throw format_error("runtime precision argument is not an integer");
}

void FormatArg::append_to(std::string& out, std::string_view spec_text) const {
  const Spec spec = parse_spec(spec_text);
  std::string body;
  bool numeric = true;
  if (const auto* b = std::get_if<bool>(&value_)) {
    if (spec.type == 'd') {
      body = *b ? "1" : "0";
    } else {
      body = *b ? "true" : "false";
      numeric = false;
    }
  } else if (const auto* c = std::get_if<char>(&value_)) {
    if (spec.type == 'd' || spec.type == 'x' || spec.type == 'X') {
      body = render_unsigned(static_cast<std::uint64_t>(static_cast<unsigned char>(*c)),
                             spec.type);
    } else {
      body = std::string(1, *c);
      numeric = false;
    }
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    if (*i < 0) {
      body = "-" + render_unsigned(static_cast<std::uint64_t>(-(*i + 1)) + 1, spec.type);
    } else {
      body = render_unsigned(static_cast<std::uint64_t>(*i), spec.type);
    }
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    body = render_unsigned(*u, spec.type);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    body = render_double(*d, spec);
  } else if (const auto* s = std::get_if<std::string_view>(&value_)) {
    body = std::string(*s);
    if (spec.precision >= 0) body.resize(std::min<std::size_t>(body.size(), spec.precision));
    numeric = false;
  }
  if (numeric && (spec.sign == '+' || spec.sign == ' ') && !body.empty() && body[0] != '-') {
    body.insert(body.begin(), spec.sign);
  }
  pad_and_append(out, std::move(body), spec, numeric);
}

std::string vformat(std::string_view fmt, std::vector<FormatArg> args) {
  std::string out;
  out.reserve(fmt.size() + args.size() * 8);
  std::size_t next_arg = 0;
  for (std::size_t i = 0; i < fmt.size(); ++i) {
    const char c = fmt[i];
    if (c == '}') {
      if (i + 1 < fmt.size() && fmt[i + 1] == '}') {
        out.push_back('}');
        ++i;
        continue;
      }
      throw format_error("unmatched '}' in format string");
    }
    if (c != '{') {
      out.push_back(c);
      continue;
    }
    if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
      out.push_back('{');
      ++i;
      continue;
    }
    // Find the matching close brace, skipping nested "{}" (runtime
    // precision specs like "{:.{}f}").
    std::size_t close = std::string_view::npos;
    int nesting = 0;
    for (std::size_t j = i + 1; j < fmt.size(); ++j) {
      if (fmt[j] == '{') {
        ++nesting;
      } else if (fmt[j] == '}') {
        if (nesting == 0) {
          close = j;
          break;
        }
        --nesting;
      }
    }
    if (close == std::string_view::npos) throw format_error("unmatched '{' in format string");
    std::string spec(fmt.substr(i + 1, close - i - 1));
    if (!spec.empty() && spec[0] != ':') throw format_error("positional args not supported");
    if (!spec.empty()) spec.erase(0, 1);
    // Runtime precision ".{}" consumes the *following* argument, matching
    // std::format's ordering (value first, then precision).
    if (const std::size_t nested = spec.find(".{}"); nested != std::string::npos) {
      if (next_arg + 1 >= args.size()) throw format_error("missing precision argument");
      const FormatArg value = args[next_arg];
      const std::int64_t precision = args[next_arg + 1].as_int();
      next_arg += 2;
      spec.replace(nested, 3, "." + std::to_string(precision));
      value.append_to(out, spec);
      i = close;
      continue;
    }
    if (next_arg >= args.size()) throw format_error("too few format arguments");
    args[next_arg++].append_to(out, spec);
    i = close;
  }
  return out;
}

}  // namespace wfs::support::detail
