#include "support/log.h"

#include <atomic>
#include <cctype>
#include <iostream>
#include <mutex>

namespace wfs::support {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_sink_mutex;

}  // namespace

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "info";
}

LogLevel parse_log_level(std::string_view text) noexcept {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void Logger::set_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel Logger::level() noexcept { return g_level.load(std::memory_order_relaxed); }

void Logger::set_sink(std::ostream* sink) noexcept {
  const std::scoped_lock lock(g_sink_mutex);
  g_sink.store(sink, std::memory_order_relaxed);
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  if (level < Logger::level()) return;
  const std::scoped_lock lock(g_sink_mutex);
  std::ostream* out = g_sink.load(std::memory_order_relaxed);
  if (out == nullptr) out = &std::cerr;
  (*out) << '[' << to_string(level) << "] " << component << ": " << message << '\n';
}

}  // namespace wfs::support
