#include "support/cli.h"

#include <cstdlib>
#include "support/format.h"
#include <iostream>
#include <stdexcept>

namespace wfs::support {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(std::string name, std::string default_value, std::string help) {
  flags_[std::move(name)] = Flag{std::move(default_value), std::move(help), false};
}

void CliParser::add_switch(std::string name, std::string help) {
  flags_[std::move(name)] = Flag{"false", std::move(help), true};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cerr << usage();
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const std::size_t eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    } else {
      name = std::string(arg);
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::cerr << "unknown flag --" << name << "\n" << usage();
      return false;
    }
    if (it->second.is_switch) {
      if (has_value) {
        std::cerr << "switch --" << name << " does not take a value\n" << usage();
        return false;
      }
      it->second.value = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::cerr << "flag --" << name << " requires a value\n" << usage();
        return false;
      }
      value = argv[++i];
    }
    it->second.value = std::move(value);
  }
  return true;
}

const std::string& CliParser::get(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) throw std::out_of_range("unknown flag: " + std::string(name));
  return it->second.value;
}

std::int64_t CliParser::get_int(std::string_view name) const {
  const std::string& text = get(name);
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + std::string(name) + " is not an integer: " + text);
  }
  return value;
}

double CliParser::get_double(std::string_view name) const {
  const std::string& text = get(name);
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + std::string(name) + " is not a number: " + text);
  }
  return value;
}

bool CliParser::get_switch(std::string_view name) const { return get(name) == "true"; }

std::string CliParser::usage() const {
  std::string out = wfs::support::format("{} — {}\n\nflags:\n", program_, description_);
  for (const auto& [name, flag] : flags_) {
    if (flag.is_switch) {
      out += wfs::support::format("  --{:<24} {}\n", name, flag.help);
    } else {
      out += wfs::support::format("  --{:<24} {} (default: {})\n", name + " <value>", flag.help,
                         flag.value);
    }
  }
  return out;
}

}  // namespace wfs::support
