#include "support/thread_pool.h"

#include <algorithm>

namespace wfs::support {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? default_workers() : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Job job) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_workers() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises queued
      // jobs run (wait_idle callers rely on every submitted job completing).
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace wfs::support
