#include "support/thread_pool.h"

#include <algorithm>

#include "metrics/registry.h"

namespace wfs::support {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = workers == 0 ? default_workers() : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // A submit that raced shutdown can slip into the queue after every worker
  // observed stop_ + empty and exited; without this drain such a job would
  // sit in queue_ forever, silently breaking the "every submitted job
  // completes" contract. The workers are joined, so run leftovers inline.
  const std::scoped_lock lock(mutex_);
  while (!queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(queue_.size()));
    job();
  }
}

void ThreadPool::set_metrics(metrics::MetricsRegistry* registry) {
  const std::scoped_lock lock(mutex_);
  if (registry == nullptr) {
    jobs_metric_ = nullptr;
    depth_metric_ = nullptr;
    return;
  }
  jobs_metric_ = &registry->counter("pool_jobs_total", "Jobs submitted to the thread pool");
  depth_metric_ = &registry->gauge("pool_queue_depth", "Jobs queued, not yet picked up");
}

void ThreadPool::submit(Job job) {
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
    if (jobs_metric_ != nullptr) jobs_metric_->inc();
    if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(queue_.size()));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

std::size_t ThreadPool::default_workers() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: the destructor promises queued
      // jobs run (wait_idle callers rely on every submitted job completing).
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(queue_.size()));
      ++in_flight_;
    }
    job();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace wfs::support
