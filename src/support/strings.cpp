#include "support/strings.h"

#include <cctype>
#include <cstdint>
#include "support/format.h"

namespace wfs::support {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](char c) {
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string pad_id(std::uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) < width) {
    digits.insert(0, static_cast<std::size_t>(width) - digits.size(), '0');
  }
  return digits;
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr const char* kSuffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kSuffixes)) {
    value /= 1024.0;
    ++unit;
  }
  if (unit == 0) return wfs::support::format("{} B", bytes);
  return wfs::support::format("{:.2f} {}", value, kSuffixes[unit]);
}

std::string human_duration(double seconds) {
  if (seconds < 0) return "-" + human_duration(-seconds);
  if (seconds < 60.0) return wfs::support::format("{:.1f}s", seconds);
  const auto total = static_cast<std::uint64_t>(seconds);
  const std::uint64_t h = total / 3600, m = (total % 3600) / 60, s = total % 60;
  if (h > 0) return wfs::support::format("{}h{:02}m{:02}s", h, m, s);
  return wfs::support::format("{}m{:02}s", m, s);
}

}  // namespace wfs::support
