// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace wfs::support {

/// Splits on a single-character separator; empty fields are preserved.
/// split("a,,b", ',') -> {"a", "", "b"}; split("", ',') -> {""}.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins with a separator string.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// ASCII lower-casing.
std::string to_lower(std::string_view text);

/// Zero-pads a non-negative number to `width` digits: pad_id(7, 8) ->
/// "00000007" — the WfCommons task-id convention ("blastall_00000002").
std::string pad_id(std::uint64_t value, int width);

/// Formats a byte count with a binary-unit suffix ("1.50 GiB").
std::string human_bytes(std::uint64_t bytes);

/// Formats seconds as "1h02m03s" / "4m05s" / "6.3s" depending on magnitude.
std::string human_duration(double seconds);

}  // namespace wfs::support
