#include "wfbench/native.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <fstream>

#include "support/format.h"

namespace wfs::wfbench {
namespace {

using Clock = std::chrono::steady_clock;

// Busy-burns roughly `seconds` of CPU; the volatile accumulator defeats
// dead-code elimination (what stress-ng's cpu stressor does in spirit).
double burn_cpu(double seconds) {
  const auto deadline = Clock::now() + std::chrono::duration<double>(seconds);
  volatile double sink = 1.0;
  while (Clock::now() < deadline) {
    for (int i = 0; i < 1000; ++i) sink = sink * 1.0000001 + 0.0000001;
  }
  return seconds;
}

}  // namespace

NativeOutcome execute_native(const TaskParams& params, const NativeConfig& config) {
  NativeOutcome outcome;
  const auto started = Clock::now();
  const std::filesystem::path workdir =
      params.workdir.empty() ? config.workdir : std::filesystem::path(params.workdir);

  // Phase 1: read inputs (must have been produced / staged already).
  for (const std::string& input : params.inputs) {
    const std::filesystem::path path = workdir / input;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      outcome.error = support::format("missing input file: {}", path.string());
      return outcome;
    }
    char buffer[1 << 16];
    while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
      outcome.bytes_read += static_cast<std::uint64_t>(in.gcount());
      if (in.gcount() < static_cast<std::streamsize>(sizeof buffer)) break;
    }
  }

  // Phase 2: memory stress + CPU stress at the requested duty cycle.
  std::vector<char> allocation;
  if (params.memory_bytes > 0) {
    allocation.resize(params.memory_bytes);
    // Touch one byte per page so the allocation is actually resident.
    for (std::size_t i = 0; i < allocation.size(); i += 4096) allocation[i] = 1;
  }
  const double duty = std::clamp(params.percent_cpu, 0.01, 1.0);
  double busy_budget = params.cpu_work * config.work_unit_seconds;
  constexpr double kSlice = 0.005;  // 5 ms duty-cycle slices
  while (busy_budget > 0.0) {
    const double busy = std::min(busy_budget, kSlice * duty);
    outcome.busy_seconds += burn_cpu(busy);
    busy_budget -= busy;
    if (duty < 1.0 && busy_budget > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(busy / duty * (1.0 - duty)));
    }
  }

  // Phase 3: write outputs at their declared sizes.
  std::error_code ec;
  std::filesystem::create_directories(workdir, ec);
  for (const auto& [file, size] : params.outputs) {
    const std::filesystem::path path = workdir / file;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      outcome.error = support::format("cannot write output file: {}", path.string());
      return outcome;
    }
    static constexpr char kChunk[1 << 14] = {};
    std::uint64_t remaining = size;
    while (remaining > 0) {
      const auto n = static_cast<std::streamsize>(std::min<std::uint64_t>(remaining,
                                                                          sizeof kChunk));
      out.write(kChunk, n);
      remaining -= static_cast<std::uint64_t>(n);
    }
    outcome.bytes_written += size;
  }

  if (!config.persistent_memory) allocation.clear();  // NoPM frees eagerly
  outcome.ok = true;
  outcome.runtime_seconds =
      std::chrono::duration<double>(Clock::now() - started).count();
  return outcome;
}

NativeWorkerPool::NativeWorkerPool(int workers, NativeConfig config)
    : config_(std::move(config)) {
  if (workers <= 0) throw std::invalid_argument("NativeWorkerPool: workers must be > 0");
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

NativeWorkerPool::~NativeWorkerPool() {
  for (std::jthread& thread : threads_) thread.request_stop();
  work_available_.notify_all();
  // jthread joins on destruction.
}

std::future<NativeOutcome> NativeWorkerPool::submit(TaskParams params) {
  Job job;
  job.params = std::move(params);
  std::future<NativeOutcome> future = job.done.get_future();
  {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
  return future;
}

void NativeWorkerPool::drain() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && inflight_ == 0; });
}

std::size_t NativeWorkerPool::completed() const {
  const std::scoped_lock lock(mutex_);
  return completed_;
}

void NativeWorkerPool::worker_loop(std::stop_token stop) {
  while (true) {
    Job job;
    {
      std::unique_lock lock(mutex_);
      work_available_.wait(lock, stop, [this] { return !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and nothing to do
      job = std::move(queue_.front());
      queue_.pop_front();
      ++inflight_;
    }
    NativeOutcome outcome = execute_native(job.params, config_);
    job.done.set_value(std::move(outcome));
    {
      const std::scoped_lock lock(mutex_);
      --inflight_;
      ++completed_;
      if (queue_.empty() && inflight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace wfs::wfbench
