#include "wfbench/stress_model.h"

#include <algorithm>

namespace wfs::wfbench {

StressEstimate estimate(const TaskParams& params, const EnvironmentModel& env) {
  StressEstimate out;
  for (std::size_t i = 0; i < params.inputs.size(); ++i) {
    out.read_seconds += env.io_latency_seconds +
                        static_cast<double>(env.assumed_input_bytes) / env.read_bandwidth_bps;
  }
  const double rate = std::max(1e-9, env.core_speed * params.percent_cpu);
  out.compute_seconds = params.cpu_work / rate;
  for (const auto& [file, size] : params.outputs) {
    out.write_seconds +=
        env.io_latency_seconds + static_cast<double>(size) / env.write_bandwidth_bps;
  }
  return out;
}

double cpu_seconds(const TaskParams& params, const EnvironmentModel& env) {
  return params.cpu_work / std::max(1e-9, env.core_speed);
}

}  // namespace wfs::wfbench
