// Cost model of one wfbench task execution.
//
// The real wfbench.py runs three phases: read inputs from the shared drive,
// stress the CPU for `cpu-work` units at `percent-cpu` (while a memory
// stressor holds --vm-bytes), then write outputs. This header centralises
// the closed-form expectations used by tests and benches to cross-check the
// simulated service (the service itself executes the phases event by event
// against the node/filesystem models).
#pragma once

#include <cstdint>

#include "wfbench/task_params.h"

namespace wfs::wfbench {

struct StressEstimate {
  double read_seconds = 0.0;
  double compute_seconds = 0.0;
  double write_seconds = 0.0;

  [[nodiscard]] double total_seconds() const noexcept {
    return read_seconds + compute_seconds + write_seconds;
  }
};

struct EnvironmentModel {
  double core_speed = 1.0;           // work units per second per core
  double read_bandwidth_bps = 2.0e9;
  double write_bandwidth_bps = 1.2e9;
  double io_latency_seconds = 0.002;
  /// Input sizes are unknown to the request body; estimators assume this
  /// per-input size unless told otherwise.
  std::uint64_t assumed_input_bytes = 40 * 1024;
};

/// Uncontended (full `percent_cpu` allocation, idle filesystem) duration of
/// a task — the lower bound the simulation approaches on an idle cluster.
[[nodiscard]] StressEstimate estimate(const TaskParams& params, const EnvironmentModel& env);

/// CPU-seconds the task burns (work / core_speed) — paradigm-independent,
/// used by resource-conservation property tests.
[[nodiscard]] double cpu_seconds(const TaskParams& params, const EnvironmentModel& env);

}  // namespace wfs::wfbench
