#include "wfbench/service.h"

#include <memory>

#include "json/write.h"
#include "support/format.h"
#include "support/log.h"

namespace wfs::wfbench {
namespace {

/// Retry-After hint on pod-churn 503s: about one autoscaler tick — the time
/// a replacement replica typically needs to appear.
constexpr int kRetryAfterMs = 1000;

net::HttpResponse ok_response(const TaskParams& params, double runtime_seconds) {
  json::Object body;
  body.set("name", params.name);
  body.set("status", "ok");
  body.set("runtimeInSeconds", runtime_seconds);
  return net::HttpResponse::make_ok(json::write_compact(json::Value(std::move(body))));
}

}  // namespace

WfBenchService::WfBenchService(sim::Context& sim, cluster::Node& node,
                               storage::DataStore& fs, ServiceConfig config,
                               cluster::QuotaGroupId quota_group)
    : sim_(sim), node_(node), fs_(fs), config_(config), quota_group_(quota_group) {
  if (config_.workers <= 0) throw std::invalid_argument("WfBenchService: workers must be > 0");
  workers_.resize(static_cast<std::size_t>(config_.workers));
  add_resident(config_.base_memory_bytes +
               config_.memory_per_worker * static_cast<std::uint64_t>(config_.workers));
  idle_load_ = node_.add_background_load(
      config_.idle_load_per_worker * static_cast<double>(config_.workers), /*spin=*/true);
}

WfBenchService::~WfBenchService() { shutdown(); }

void WfBenchService::add_resident(std::uint64_t bytes) {
  resident_bytes_ += bytes;
  node_.add_memory(bytes);
}

void WfBenchService::remove_resident(std::uint64_t bytes) {
  bytes = std::min(bytes, resident_bytes_);
  resident_bytes_ -= bytes;
  node_.remove_memory(bytes);
}

void WfBenchService::handle(const TaskParams& params, ResponseCallback done) {
  if (shutdown_) {
    done(net::HttpResponse::service_unavailable("wfbench service is shut down"));
    return;
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i].busy) {
      dispatch(i, params, std::move(done));
      return;
    }
  }
  queue_.push_back(PendingRequest{params, std::move(done), sim_.now()});
  stats_.max_queue_depth = std::max<std::uint64_t>(stats_.max_queue_depth, queue_.size());
}

void WfBenchService::dispatch(std::size_t worker_index, TaskParams params,
                              ResponseCallback done, double queue_seconds) {
  Worker& worker = workers_[worker_index];
  worker.busy = true;
  worker.queue_seconds = queue_seconds;
  worker.accepted_at = sim_.now();
  ++busy_workers_;
  auto shared_params = std::make_shared<TaskParams>(std::move(params));
  auto shared_done = std::make_shared<ResponseCallback>(std::move(done));
  worker.active_done = shared_done;

  // Phase 1: read every input from the shared drive. A missing input means
  // a preceding function has not produced it — the request fails (the WFM's
  // availability check exists to prevent exactly this).
  if (shared_params->inputs.empty()) {
    begin_compute(worker_index, std::move(shared_params), std::move(shared_done));
    return;
  }
  struct ReadState {
    std::size_t remaining;
    bool failed = false;
  };
  auto state = std::make_shared<ReadState>(ReadState{shared_params->inputs.size()});
  const std::uint64_t gen = generation_;
  for (const std::string& input : shared_params->inputs) {
    fs_.read(input, [this, worker_index, gen, state, shared_params, shared_done](bool read_ok) {
      if (gen != generation_) return;  // service restarted/shut down meanwhile
      if (!read_ok) state->failed = true;
      if (--state->remaining > 0) return;
      if (state->failed) {
        ++stats_.failed;
        ++stats_.missing_input_failures;
        net::HttpResponse response = net::HttpResponse::server_error(
            support::format("missing input file for task {}", shared_params->name));
        const Worker& w = workers_[worker_index];
        response.timing.queue_seconds = w.queue_seconds;
        response.timing.transfer_seconds = sim::to_seconds(sim_.now() - w.accepted_at);
        (*shared_done)(std::move(response));
        release_worker(worker_index);
        return;
      }
      begin_compute(worker_index, shared_params, shared_done);
    });
  }
}

bool WfBenchService::reserve_task_memory(Worker& worker, std::uint64_t bytes) {
  std::uint64_t delta = bytes;
  if (config_.persistent_memory && worker.kept_bytes > 0) {
    // The kept allocation is reused; only growth allocates new pages.
    delta = bytes > worker.kept_bytes ? bytes - worker.kept_bytes : 0;
  }
  if (config_.memory_limit_bytes > 0 &&
      resident_bytes_ + delta > config_.memory_limit_bytes) {
    return false;  // container OOMKill analogue
  }
  worker.task_bytes = delta;
  if (delta > 0) add_resident(delta);
  return true;
}

void WfBenchService::begin_compute(std::size_t worker_index,
                                   std::shared_ptr<TaskParams> shared_params,
                                   std::shared_ptr<ResponseCallback> shared_done) {
  Worker& worker = workers_[worker_index];
  // Allocator slack (uncapped containers) grows the effective allocation;
  // the same effective size is used for the PM keep below so accounting
  // balances across invocations.
  const auto effective_bytes = static_cast<std::uint64_t>(
      static_cast<double>(shared_params->memory_bytes) * (1.0 + config_.allocation_slack));
  if (!reserve_task_memory(worker, effective_bytes)) {
    ++stats_.failed;
    ++stats_.oom_failures;
    net::HttpResponse response = net::HttpResponse::server_error(
        support::format("container memory limit exceeded by task {}", shared_params->name));
    response.timing.queue_seconds = worker.queue_seconds;
    response.timing.transfer_seconds = sim::to_seconds(sim_.now() - worker.accepted_at);
    (*shared_done)(std::move(response));
    release_worker(worker_index);
    return;
  }

  const std::uint64_t gen = generation_;
  const sim::SimTime started = sim_.now();
  worker.work = node_.submit_work(
      shared_params->percent_cpu, shared_params->cpu_work, quota_group_,
      [this, worker_index, gen, started, effective_bytes, shared_params, shared_done] {
        if (gen != generation_) return;
        workers_[worker_index].work = 0;
        const sim::SimTime compute_done = sim_.now();
        // Phase 3: write outputs, then settle memory and respond.
        auto finish_up = [this, worker_index, gen, started, compute_done, effective_bytes,
                          shared_params, shared_done] {
          if (gen != generation_) return;
          Worker& w = workers_[worker_index];
          if (config_.persistent_memory) {
            // --vm-keep: the allocation stays with the worker process.
            w.kept_bytes = std::max(w.kept_bytes, effective_bytes);
            w.task_bytes = 0;
            if (w.kept_bytes > 0 && w.pm_load == 0) {
              w.pm_load = node_.add_background_load(config_.pm_refresh_load, /*spin=*/true);
            }
          } else if (w.task_bytes > 0) {
            remove_resident(w.task_bytes);
            w.task_bytes = 0;
          }
          ++stats_.completed;
          const double runtime = sim::to_seconds(sim_.now() - started);
          net::HttpResponse response = ok_response(*shared_params, runtime);
          // Server-Timing: reads before `started`, writes after compute_done.
          response.timing.queue_seconds = w.queue_seconds;
          response.timing.transfer_seconds =
              sim::to_seconds((started - w.accepted_at) + (sim_.now() - compute_done));
          response.timing.compute_seconds = sim::to_seconds(compute_done - started);
          (*shared_done)(std::move(response));
          release_worker(worker_index);
        };
        if (shared_params->outputs.empty()) {
          finish_up();
          return;
        }
        auto remaining = std::make_shared<std::size_t>(shared_params->outputs.size());
        for (const auto& [file, size] : shared_params->outputs) {
          fs_.write(file, size, [remaining, finish_up] {
            if (--*remaining == 0) finish_up();
          });
        }
      });
}

void WfBenchService::release_worker(std::size_t worker_index) {
  Worker& worker = workers_[worker_index];
  worker.busy = false;
  worker.active_done.reset();
  --busy_workers_;
  if (queue_.empty() || shutdown_) return;
  PendingRequest next = std::move(queue_.front());
  queue_.pop_front();
  dispatch(worker_index, std::move(next.params), std::move(next.done),
           sim::to_seconds(sim_.now() - next.enqueued_at));
}

void WfBenchService::shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  ++generation_;  // invalidate all pending async phases

  // Pod churn (scale-down, chaos kill): the request would have succeeded on
  // another replica, so hint a short Retry-After — roughly the platform's
  // replacement latency — instead of letting clients apply their full
  // default backoff.
  for (PendingRequest& pending : queue_) {
    pending.done(
        net::HttpResponse::service_unavailable("service terminating", kRetryAfterMs));
    ++stats_.failed;
  }
  queue_.clear();

  for (Worker& worker : workers_) {
    if (worker.active_done) {
      (*worker.active_done)(
          net::HttpResponse::service_unavailable("service terminating", kRetryAfterMs));
      worker.active_done.reset();
      ++stats_.failed;
    }
    if (worker.work != 0) {
      node_.cancel_work(worker.work);
      worker.work = 0;
    }
    if (worker.pm_load != 0) {
      node_.remove_background_load(worker.pm_load);
      worker.pm_load = 0;
    }
    worker.busy = false;
    worker.kept_bytes = 0;
    worker.task_bytes = 0;
  }
  busy_workers_ = 0;

  node_.remove_background_load(idle_load_);
  remove_resident(resident_bytes_);
  WFS_LOG_DEBUG("wfbench", "service on {} shut down ({} completed, {} failed)", node_.name(),
                stats_.completed, stats_.failed);
}

}  // namespace wfs::wfbench
