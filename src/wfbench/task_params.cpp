#include "wfbench/task_params.h"

#include <stdexcept>

#include "json/parse.h"

namespace wfs::wfbench {

json::Value to_json(const TaskParams& params) {
  json::Object body;
  body.set("name", params.name);
  body.set("percent-cpu", params.percent_cpu);
  body.set("cpu-work", params.cpu_work);
  if (params.memory_bytes > 0) body.set("memory-bytes", params.memory_bytes);
  json::Object out;
  for (const auto& [file, size] : params.outputs) out.set(file, size);
  body.set("out", std::move(out));
  json::Array inputs;
  for (const std::string& file : params.inputs) inputs.emplace_back(file);
  body.set("inputs", std::move(inputs));
  if (!params.workdir.empty()) body.set("workdir", params.workdir);
  if (!params.tenant.empty()) body.set("tenant", params.tenant);
  return json::Value(std::move(body));
}

TaskParams task_params_from_json(const json::Value& body) {
  if (!body.is_object()) throw std::invalid_argument("wfbench request body is not an object");
  const json::Object& obj = body.as_object();

  TaskParams params;
  const json::Value* name = obj.find("name");
  if (name == nullptr || !name->is_string()) {
    throw std::invalid_argument("wfbench request missing string field 'name'");
  }
  params.name = name->as_string();

  if (const json::Value* v = obj.find("percent-cpu")) {
    if (!v->is_number()) throw std::invalid_argument("'percent-cpu' must be a number");
    params.percent_cpu = v->as_double();
    if (params.percent_cpu <= 0.0 || params.percent_cpu > 64.0) {
      throw std::invalid_argument("'percent-cpu' out of range");
    }
  }
  if (const json::Value* v = obj.find("cpu-work")) {
    if (!v->is_number()) throw std::invalid_argument("'cpu-work' must be a number");
    params.cpu_work = v->as_double();
    if (params.cpu_work < 0.0) throw std::invalid_argument("'cpu-work' must be non-negative");
  }
  if (const json::Value* v = obj.find("memory-bytes")) {
    if (!v->is_number()) throw std::invalid_argument("'memory-bytes' must be a number");
    params.memory_bytes = static_cast<std::uint64_t>(v->int_or(0));
  }
  if (const json::Value* v = obj.find("out")) {
    if (!v->is_object()) throw std::invalid_argument("'out' must be an object");
    for (const auto& [file, size] : v->as_object()) {
      if (!size.is_number()) throw std::invalid_argument("'out' sizes must be numbers");
      params.outputs.emplace_back(file, static_cast<std::uint64_t>(size.int_or(0)));
    }
  }
  if (const json::Value* v = obj.find("inputs")) {
    if (!v->is_array()) throw std::invalid_argument("'inputs' must be an array");
    for (const json::Value& entry : v->as_array()) {
      if (!entry.is_string()) throw std::invalid_argument("'inputs' entries must be strings");
      params.inputs.push_back(entry.as_string());
    }
  }
  if (const json::Value* v = obj.find("workdir")) params.workdir = v->string_or("");
  if (const json::Value* v = obj.find("tenant")) params.tenant = v->string_or("");
  return params;
}

TaskParams parse_task_params(const std::string& text) {
  return task_params_from_json(json::parse(text));
}

}  // namespace wfs::wfbench
