// WfBench as a Service — one serving process (a Knative pod's container or
// a local Docker container) running the wfbench app behind gunicorn with a
// fixed worker pool (`--workers N`, the paper's 1w/10w/1000w knob).
//
// Each worker executes one request at a time through the three wfbench
// phases (read inputs -> cpu+memory stress -> write outputs) against the
// simulated node and shared filesystem. Requests beyond the worker count
// queue inside the process. Persistent memory (PM, stress-ng --vm-keep)
// makes a worker retain its stressor allocation between requests until the
// process exits — the knob behind the paper's memory-usage deltas.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "cluster/node.h"
#include "net/http.h"
#include "sim/clock.h"
#include "storage/data_store.h"
#include "wfbench/task_params.h"

namespace wfs::wfbench {

struct ServiceConfig {
  int workers = 10;
  /// gunicorn --threads (kept for fidelity; threads share the worker's
  /// request slot in the paper's setup of --threads 1).
  int threads = 1;
  bool persistent_memory = false;
  /// Resident footprint of the serving process independent of stress
  /// allocations (python + gunicorn master).
  std::uint64_t base_memory_bytes = 150ULL << 20;
  /// Additional resident bytes per forked worker (a preforked
  /// python/gunicorn worker RSS).
  std::uint64_t memory_per_worker = 50ULL << 20;
  /// Cores of low-IPC polling overhead each idle worker costs.
  double idle_load_per_worker = 0.008;
  /// Extra spin load per worker actively holding a kept PM allocation
  /// (the stressor keeps touching pages).
  double pm_refresh_load = 0.02;
  /// Memory limit of the container (0 = unlimited). Exceeding it fails the
  /// request with 500 (OOMKill analogue).
  std::uint64_t memory_limit_bytes = 0;
  /// Allocator greediness without a cgroup memory limit: stressor
  /// allocations grow by this fraction (glibc arenas keep slack when
  /// nothing pushes back) — the paper's "without such constraints it may
  /// consume more memory" observation for NoCR containers.
  double allocation_slack = 0.0;
};

struct ServiceStats {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t oom_failures = 0;
  std::uint64_t missing_input_failures = 0;
  std::uint64_t max_queue_depth = 0;
};

class WfBenchService {
 public:
  using ResponseCallback = std::function<void(net::HttpResponse)>;

  /// Binds the service to its node. `quota_group` caps the aggregate CPU
  /// rate of this process's work (cgroup --cpus), kNoQuotaGroup = uncapped.
  /// Registers the base memory footprint and idle worker loads immediately.
  WfBenchService(sim::Context& sim, cluster::Node& node, storage::DataStore& fs,
                 ServiceConfig config,
                 cluster::QuotaGroupId quota_group = cluster::kNoQuotaGroup);
  ~WfBenchService();

  WfBenchService(const WfBenchService&) = delete;
  WfBenchService& operator=(const WfBenchService&) = delete;

  /// Handles one wfbench invocation; `done` fires exactly once with the
  /// HTTP response. Never blocks: excess requests queue.
  void handle(const TaskParams& params, ResponseCallback done);

  /// Graceful-stop analogue: releases all memory (including PM keeps),
  /// deregisters loads, cancels in-flight work (their callbacks get 503).
  /// Idempotent; also runs on destruction.
  void shutdown();

  [[nodiscard]] bool running() const noexcept { return !shutdown_; }
  [[nodiscard]] int workers() const noexcept { return config_.workers; }
  [[nodiscard]] int busy_workers() const noexcept { return busy_workers_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept { return queue_.size(); }
  /// In-flight = executing + queued (what the Knative autoscaler observes).
  [[nodiscard]] std::size_t inflight() const noexcept {
    return static_cast<std::size_t>(busy_workers_) + queue_.size();
  }
  [[nodiscard]] bool has_capacity() const noexcept {
    return inflight() < static_cast<std::size_t>(config_.workers);
  }
  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }
  /// Resident bytes currently accounted to this process on its node.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept { return resident_bytes_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  struct Worker {
    bool busy = false;
    std::uint64_t task_bytes = 0;  // stressor allocation of the current task
    std::uint64_t kept_bytes = 0;  // PM allocation retained between tasks
    cluster::LoadId pm_load = 0;   // refresh load while kept_bytes > 0
    cluster::WorkId work = 0;      // in-flight compute work
    double queue_seconds = 0.0;    // in-process wait before this worker took it
    sim::SimTime accepted_at = 0;  // when the worker started the read phase
    /// Held so shutdown can answer 503 instead of dropping the request.
    std::shared_ptr<ResponseCallback> active_done;
  };

  struct PendingRequest {
    TaskParams params;
    ResponseCallback done;
    sim::SimTime enqueued_at = 0;
  };

  void dispatch(std::size_t worker_index, TaskParams params, ResponseCallback done,
                double queue_seconds = 0.0);
  void begin_compute(std::size_t worker_index, std::shared_ptr<TaskParams> params,
                     std::shared_ptr<ResponseCallback> done);
  void release_worker(std::size_t worker_index);
  bool reserve_task_memory(Worker& worker, std::uint64_t bytes);
  void add_resident(std::uint64_t bytes);
  void remove_resident(std::uint64_t bytes);

  sim::Context& sim_;
  cluster::Node& node_;
  storage::DataStore& fs_;
  ServiceConfig config_;
  cluster::QuotaGroupId quota_group_;

  std::vector<Worker> workers_;
  std::deque<PendingRequest> queue_;
  int busy_workers_ = 0;
  std::uint64_t resident_bytes_ = 0;
  cluster::LoadId idle_load_ = 0;
  ServiceStats stats_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;  // invalidates async phases after shutdown
};

}  // namespace wfs::wfbench
