// The wfbench invocation payload — the JSON body of the POST request the
// paper sends to the service (§III-B):
//   {"name":"split_fasta_00000001", "percent-cpu":0.6, "cpu-work":100,
//    "out":{"split_fasta_00000001_output.txt":204082},
//    "inputs":["split_fasta_00000001_input.txt"],
//    "workdir":"../data/wfbench-knative"}
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "json/value.h"

namespace wfs::wfbench {

struct TaskParams {
  std::string name;
  double percent_cpu = 0.6;
  double cpu_work = 100.0;
  /// Stressor allocation (--vm-bytes). 0 means "no memory stress".
  std::uint64_t memory_bytes = 0;
  /// Output files to produce: (file name, size in bytes).
  std::vector<std::pair<std::string, std::uint64_t>> outputs;
  /// Input files that must exist on the shared drive.
  std::vector<std::string> inputs;
  std::string workdir;
  /// Submitting tenant (multi-tenant platforms only). Empty — the default —
  /// is omitted from the JSON body, so single-tenant requests are
  /// byte-identical to the paper's.
  std::string tenant;

  friend bool operator==(const TaskParams&, const TaskParams&) = default;
};

/// Serializes to the POST body shape shown above.
[[nodiscard]] json::Value to_json(const TaskParams& params);

/// Parses a POST body. Throws std::invalid_argument on missing/ill-typed
/// required fields (name) or malformed structures.
[[nodiscard]] TaskParams task_params_from_json(const json::Value& body);

/// Parses request text directly (throws json::ParseError on bad JSON).
[[nodiscard]] TaskParams parse_task_params(const std::string& text);

}  // namespace wfs::wfbench
