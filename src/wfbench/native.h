// Native wfbench execution — the REAL thing, not the simulation.
//
// wfbench.py performs actual computation: it burns CPU at the requested
// duty cycle, holds a memory allocation, reads its inputs and writes its
// outputs as real files. This module is that executable in C++: the same
// TaskParams request body, executed against the host. A NativeWorkerPool
// of std::jthreads is the gunicorn worker-pool analogue (Core Guidelines
// CP.4: think in tasks; CP.20/CP.42: RAII locks, condition-variable waits).
//
// The simulated WfBenchService (service.h) is used for the paper-scale
// experiments; this native path exists so the library is also a working
// benchmark tool (see examples/native_wfbench.cpp) and so the cost model
// can be sanity-checked against real execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "wfbench/task_params.h"

namespace wfs::wfbench {

struct NativeConfig {
  /// Seconds of busy CPU per cpu-work unit (wfbench.py's work unit is
  /// hardware dependent; keep small for demos/tests).
  double work_unit_seconds = 0.001;
  /// Where inputs are read from and outputs written to (the shared-drive
  /// "workdir"); TaskParams::workdir overrides when non-empty.
  std::filesystem::path workdir;
  /// Keep the memory allocation after the task (the PM / --vm-keep knob).
  bool persistent_memory = false;
};

struct NativeOutcome {
  bool ok = false;
  std::string error;
  double runtime_seconds = 0.0;   // wall time of the whole task
  double busy_seconds = 0.0;      // CPU time actually burned
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

/// Executes one wfbench task on the calling thread, for real: reads every
/// input file (fails if missing), allocates and touches `memory-bytes`,
/// spins `cpu-work` work units at the `percent-cpu` duty cycle, writes
/// every declared output file at its declared size.
[[nodiscard]] NativeOutcome execute_native(const TaskParams& params,
                                           const NativeConfig& config);

/// Fixed pool of worker threads executing wfbench tasks — the gunicorn
/// `--workers N` analogue. Tasks queue FIFO; submit() never blocks.
class NativeWorkerPool {
 public:
  NativeWorkerPool(int workers, NativeConfig config);
  ~NativeWorkerPool();

  NativeWorkerPool(const NativeWorkerPool&) = delete;
  NativeWorkerPool& operator=(const NativeWorkerPool&) = delete;

  /// Enqueues a task; the future resolves when a worker finishes it.
  [[nodiscard]] std::future<NativeOutcome> submit(TaskParams params);

  /// Blocks until every queued/in-flight task completed.
  void drain();

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(threads_.size()); }
  [[nodiscard]] std::size_t completed() const;

 private:
  struct Job {
    TaskParams params;
    std::promise<NativeOutcome> done;
  };

  void worker_loop(std::stop_token stop);

  NativeConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable_any work_available_;
  std::condition_variable idle_;
  std::deque<Job> queue_;
  std::size_t inflight_ = 0;
  std::size_t completed_ = 0;
  std::vector<std::jthread> threads_;  // last member: joins before state dies
};

}  // namespace wfs::wfbench
