#include "containers/runtime.h"

#include <algorithm>

#include "json/parse.h"
#include "support/format.h"
#include "support/log.h"

namespace wfs::containers {

LocalContainerRuntime::LocalContainerRuntime(sim::Context& sim, cluster::Cluster& cluster,
                                             storage::DataStore& fs, net::Router& router,
                                             LocalRuntimeConfig config)
    : sim_(sim), cluster_(cluster), fs_(fs), router_(router), config_(std::move(config)) {}

LocalContainerRuntime::~LocalContainerRuntime() { shutdown(); }

void LocalContainerRuntime::start() {
  if (started_) return;
  started_ = true;
  for (std::size_t n = 0; n < cluster_.size(); ++n) {
    for (int c = 0; c < config_.containers_per_node; ++c) {
      ContainerSpec spec = config_.container;
      spec.name = support::format("{}-{}-{}", config_.container.name,
                                  cluster_.node(n).name(), c);
      containers_.push_back(std::make_unique<LocalContainer>(sim_, cluster_.node(n), fs_,
                                                             std::move(spec),
                                                             [this] { pump(); }));
    }
  }
  router_.bind(config_.authority, [this](const net::HttpRequest& request,
                                         std::shared_ptr<net::Responder> responder) {
    handle_request(request, std::move(responder));
  });
  WFS_LOG_INFO("containers", "{} local containers started at {}", containers_.size(),
               config_.authority);
}

void LocalContainerRuntime::shutdown() {
  if (!started_) return;
  started_ = false;
  router_.unbind(config_.authority);
  for (Queued& queued : backlog_) {
    queued.done(net::HttpResponse::service_unavailable("local runtime stopping"));
  }
  backlog_.clear();
  for (auto& container : containers_) container->stop();
  containers_.clear();
}

std::size_t LocalContainerRuntime::inflight() const noexcept {
  std::size_t total = backlog_.size();
  for (const auto& container : containers_) total += container->inflight();
  return total;
}

std::uint64_t LocalContainerRuntime::service_oom_failures() const noexcept {
  std::uint64_t total = 0;
  for (const auto& container : containers_) {
    if (container->service() != nullptr) {
      total += container->service()->stats().oom_failures;
    }
  }
  return total;
}

void LocalContainerRuntime::handle_request(const net::HttpRequest& request,
                                           std::shared_ptr<net::Responder> responder) {
  ++stats_.requests;
  wfbench::TaskParams params;
  try {
    params = wfbench::task_params_from_json(json::parse(request.body));
  } catch (const std::exception& e) {
    ++stats_.bad_requests;
    responder->respond(net::HttpResponse::bad_request(e.what()));
    return;
  }
  backlog_.push_back(Queued{
      std::move(params),
      [this, responder](net::HttpResponse response) {
        if (response.ok()) {
          ++stats_.completed;
        } else {
          ++stats_.failed;
        }
        responder->respond(std::move(response));
      },
      sim_.now()});
  stats_.max_backlog = std::max<std::uint64_t>(stats_.max_backlog, backlog_.size());
  pump();
}

LocalContainer* LocalContainerRuntime::pick_container() {
  LocalContainer* best = nullptr;
  std::size_t best_inflight = 0;
  for (auto& container : containers_) {
    if (!container->running() || !container->service()->has_capacity()) continue;
    if (best == nullptr || container->inflight() < best_inflight) {
      best = container.get();
      best_inflight = container->inflight();
    }
  }
  return best;
}

void LocalContainerRuntime::pump() {
  while (!backlog_.empty()) {
    LocalContainer* container = pick_container();
    if (container == nullptr) return;  // all workers busy; retry on completion
    Queued queued = std::move(backlog_.front());
    backlog_.pop_front();
    // No cold start here — resident containers only ever queue.
    const double wait = sim::to_seconds(sim_.now() - queued.enqueued_at);
    auto done = std::move(queued.done);
    container->service()->handle(queued.params,
                                 [this, wait, done = std::move(done)](net::HttpResponse response) {
                                   response.timing.queue_seconds += wait;
                                   done(std::move(response));
                                   pump();
                                 });
  }
}

}  // namespace wfs::containers
