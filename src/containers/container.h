// A long-running local Docker-like container hosting the wfbench app —
// the paper's bare-metal baseline unit (§III-D):
//   docker run -v /mnt/data:/data --cpus=2 -p 127.0.0.1:80:8080 wfbench
//
// Unlike a pod it has no cold start beyond a short image boot, is never
// autoscaled, and holds its resources (worker pool, PM allocations) for
// the entire experiment. `--cpus` (the paper's "CPU Requirement", CR)
// becomes a cgroup quota group; NoCR leaves the container uncapped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/node.h"
#include "storage/data_store.h"
#include "wfbench/service.h"

namespace wfs::containers {

struct ContainerSpec {
  std::string name = "wfbench-local";
  wfbench::ServiceConfig service;
  /// docker run --cpus (0 = NoCR: no quota, no reservation).
  double cpus = 0.0;
  /// docker run --memory (0 = unlimited).
  std::uint64_t memory_limit = 0;
  /// Image boot time before the app serves.
  sim::SimTime start_delay = sim::kSecond;
  /// CFS throttling/bookkeeping overhead a CR cgroup adds (cores of spin
  /// while the container runs; only applied when cpus > 0). This is why the
  /// paper measures slightly better power/CPU for NoCR at equal runtime.
  double cr_overhead_cores = 1.5;
};

class LocalContainer {
 public:
  /// Starts the container on `node`; `on_ready` fires after start_delay.
  /// With CR set, the cpus are also reserved in the node ledger (docker
  /// does not reserve, but the paper's CR runs sized containers such that
  /// reservations reflect intent; NoCR reserves nothing).
  LocalContainer(sim::Context& sim, cluster::Node& node, storage::DataStore& fs,
                 ContainerSpec spec, std::function<void()> on_ready);
  ~LocalContainer();

  LocalContainer(const LocalContainer&) = delete;
  LocalContainer& operator=(const LocalContainer&) = delete;

  /// docker stop: shuts the service down, releasing memory and quota.
  void stop();

  [[nodiscard]] bool running() const noexcept { return service_ != nullptr; }
  [[nodiscard]] wfbench::WfBenchService* service() noexcept { return service_.get(); }
  [[nodiscard]] const wfbench::WfBenchService* service() const noexcept {
    return service_.get();
  }
  [[nodiscard]] const ContainerSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] cluster::Node& node() noexcept { return node_; }
  [[nodiscard]] std::size_t inflight() const noexcept {
    return service_ ? service_->inflight() : 0;
  }

 private:
  sim::Context& sim_;
  cluster::Node& node_;
  storage::DataStore& fs_;
  ContainerSpec spec_;
  cluster::QuotaGroupId quota_group_ = cluster::kNoQuotaGroup;
  cluster::LoadId cr_overhead_load_ = 0;
  bool reserved_ = false;
  std::unique_ptr<wfbench::WfBenchService> service_;
  sim::EventId boot_event_ = 0;
};

}  // namespace wfs::containers
