// The bare-metal local-container runtime: a fixed fleet of wfbench
// containers (default: one per node, as in the paper's 2-node baseline),
// a published port each workflow function is curl'ed at, and a simple
// least-loaded dispatcher. No autoscaling, no scale-to-zero — resources
// stay resident for the whole run, which is precisely what the serverless
// comparison measures against.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "containers/container.h"
#include "net/router.h"
#include "sim/clock.h"
#include "storage/data_store.h"

namespace wfs::containers {

struct LocalRuntimeConfig {
  /// Routing authority for the published port (paper: localhost:80).
  std::string authority = "localhost:80";
  /// Containers per node (paper baseline: 1).
  int containers_per_node = 1;
  ContainerSpec container;
};

struct LocalRuntimeStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t max_backlog = 0;
};

class LocalContainerRuntime {
 public:
  LocalContainerRuntime(sim::Context& sim, cluster::Cluster& cluster,
                        storage::DataStore& fs, net::Router& router,
                        LocalRuntimeConfig config);
  ~LocalContainerRuntime();

  LocalContainerRuntime(const LocalContainerRuntime&) = delete;
  LocalContainerRuntime& operator=(const LocalContainerRuntime&) = delete;

  /// docker run everything + bind the published port.
  void start();
  /// docker stop everything + unbind; fails queued requests with 503.
  void shutdown();

  [[nodiscard]] std::size_t container_count() const noexcept { return containers_.size(); }
  [[nodiscard]] std::size_t inflight() const noexcept;
  [[nodiscard]] std::size_t backlog() const noexcept { return backlog_.size(); }
  [[nodiscard]] const LocalRuntimeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const LocalRuntimeConfig& config() const noexcept { return config_; }
  [[nodiscard]] LocalContainer& container(std::size_t index) { return *containers_.at(index); }
  /// Aggregate wfbench OOM failures across the fleet.
  [[nodiscard]] std::uint64_t service_oom_failures() const noexcept;

 private:
  struct Queued {
    wfbench::TaskParams params;
    std::function<void(net::HttpResponse)> done;
    sim::SimTime enqueued_at = 0;
  };

  void handle_request(const net::HttpRequest& request,
                      std::shared_ptr<net::Responder> responder);
  [[nodiscard]] LocalContainer* pick_container();
  void pump();

  sim::Context& sim_;
  cluster::Cluster& cluster_;
  storage::DataStore& fs_;
  net::Router& router_;
  LocalRuntimeConfig config_;

  std::vector<std::unique_ptr<LocalContainer>> containers_;
  std::deque<Queued> backlog_;
  LocalRuntimeStats stats_;
  bool started_ = false;
};

}  // namespace wfs::containers
