#include "containers/container.h"

#include "support/log.h"

namespace wfs::containers {

LocalContainer::LocalContainer(sim::Context& sim, cluster::Node& node,
                               storage::DataStore& fs, ContainerSpec spec,
                               std::function<void()> on_ready)
    : sim_(sim), node_(node), fs_(fs), spec_(std::move(spec)) {
  if (spec_.cpus > 0.0) {
    quota_group_ = node_.create_quota_group(spec_.cpus);
    // Best effort: containers on the paper's baseline are sized to fit, but
    // docker itself never refuses, so a failed reservation is not fatal.
    reserved_ = node_.ledger().try_reserve(spec_.cpus, 0);
    if (spec_.cr_overhead_cores > 0.0) {
      cr_overhead_load_ = node_.add_background_load(spec_.cr_overhead_cores, /*spin=*/true);
    }
  }
  boot_event_ = sim_.schedule_in(spec_.start_delay, [this, on_ready = std::move(on_ready)] {
    boot_event_ = 0;
    wfbench::ServiceConfig service_config = spec_.service;
    if (spec_.memory_limit > 0) service_config.memory_limit_bytes = spec_.memory_limit;
    service_ =
        std::make_unique<wfbench::WfBenchService>(sim_, node_, fs_, service_config, quota_group_);
    WFS_LOG_DEBUG("containers", "container {} serving on {}", spec_.name, node_.name());
    if (on_ready) on_ready();
  });
}

LocalContainer::~LocalContainer() { stop(); }

void LocalContainer::stop() {
  if (boot_event_ != 0) {
    sim_.cancel(boot_event_);
    boot_event_ = 0;
  }
  if (service_) {
    service_->shutdown();
    service_.reset();
  }
  if (quota_group_ != cluster::kNoQuotaGroup) {
    node_.destroy_quota_group(quota_group_);
    quota_group_ = cluster::kNoQuotaGroup;
  }
  if (cr_overhead_load_ != 0) {
    node_.remove_background_load(cr_overhead_load_);
    cr_overhead_load_ = 0;
  }
  if (reserved_) {
    node_.ledger().release(spec_.cpus, 0);
    reserved_ = false;
  }
}

}  // namespace wfs::containers
