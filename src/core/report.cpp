#include "core/report.h"

#include <algorithm>

#include "metrics/ascii_chart.h"
#include "metrics/time_series.h"
#include "support/format.h"

namespace wfs::core {
namespace {

double pct_change(double candidate, double baseline) {
  if (baseline == 0.0) return 0.0;
  return (candidate - baseline) / baseline * 100.0;
}

}  // namespace

std::string result_header() {
  return support::format("{:<14} {:<26} {:>6} {:<8} {:>9} {:>7} {:>9} {:>8} {:>9} {:>5}\n",
                         "paradigm", "workflow", "tasks", "status", "time(s)", "cpu%",
                         "mem(GiB)", "power(W)", "energy(kJ)", "pods");
}

std::string result_row(const ExperimentResult& result) {
  const char* status = result.ok() ? "ok" : "FAILED";
  return support::format(
      "{:<14} {:<26} {:>6} {:<8} {:>9.1f} {:>7.2f} {:>9.2f} {:>8.1f} {:>9.1f} {:>5}\n",
      result.paradigm_name, result.workflow_name, result.config.num_tasks, status,
      result.makespan_seconds, result.cpu_percent.time_weighted_mean,
      result.memory_gib.time_weighted_mean, result.power_watts.time_weighted_mean,
      result.energy_joules / 1000.0,
      result.cold_starts > 0 ? result.max_ready_pods : result.pods_series.max());
}

std::string result_table(const std::vector<ExperimentResult>& results) {
  std::string out = result_header();
  for (const ExperimentResult& result : results) out += result_row(result);
  return out;
}

std::string overhead_summary(const ExperimentResult& result) {
  return support::format(
      "overheads: {} cold starts ({:.2f}s), retry wait {:.2f}s ({} retries), "
      "input wait {:.2f}s, activator queue {:.2f}s, upstream failures {}\n",
      result.cold_starts, result.cold_start_seconds, result.run.retry_wait_seconds,
      result.run.task_retries, result.run.input_wait_seconds,
      result.activator_wait_seconds, result.run.upstream_failures);
}

std::string profile_summary(const obs::RunProfile& profile) {
  if (!profile.valid) return "profile: unavailable (run did not complete)\n";
  std::string out = support::format(
      "== run profile ==\n"
      "observed critical path: {:.2f}s across {} tasks "
      "(static DAG lower bound {:.2f}s)\n",
      profile.cp_length_seconds, profile.path.size(), profile.static_cp_seconds);

  // Segments sorted by critical-path share, nonzero only, with a 40-char bar.
  struct Row {
    obs::Segment segment;
    double seconds;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < obs::kSegmentCount; ++i) {
    const auto segment = static_cast<obs::Segment>(i);
    if (profile.critical[segment] > 0.0) rows.push_back({segment, profile.critical[segment]});
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.seconds > b.seconds; });
  for (const Row& row : rows) {
    const double pct = profile.pct(row.segment);
    const auto width = static_cast<std::size_t>(pct / 100.0 * 40.0 + 0.5);
    out += support::format("{:<14} {:>9.2f}s {:>5.1f}%  {}\n", obs::to_string(row.segment),
                           row.seconds, pct, std::string(width, '#'));
  }
  out += support::format("dominant segment: {}\n", obs::to_string(profile.dominant()));

  if (profile.task_wall_series.size() >= 2) {
    const metrics::TimeSeries p99 =
        metrics::windowed_percentile(profile.task_wall_series, 4, 99.0);
    out += "task wall p99 by quarter:";
    for (const metrics::Sample& sample : p99.samples()) {
      out += support::format(" {:.2f}s@{:.0f}s", sample.value, sim::to_seconds(sample.time));
    }
    out += "\n";
  }
  return out;
}

std::string profile_summary(const ExperimentResult& result) {
  return profile_summary(result.run.profile);
}

MetricDeltas compare(const ExperimentResult& candidate, const ExperimentResult& baseline) {
  MetricDeltas deltas;
  deltas.execution_time_pct = pct_change(candidate.makespan_seconds, baseline.makespan_seconds);
  deltas.cpu_pct = pct_change(candidate.cpu_percent.time_weighted_mean,
                              baseline.cpu_percent.time_weighted_mean);
  deltas.memory_pct = pct_change(candidate.memory_gib.time_weighted_mean,
                                 baseline.memory_gib.time_weighted_mean);
  deltas.power_pct = pct_change(candidate.power_watts.time_weighted_mean,
                                baseline.power_watts.time_weighted_mean);
  deltas.energy_pct = pct_change(candidate.energy_joules, baseline.energy_joules);
  return deltas;
}

std::string delta_row(const std::string& label, const MetricDeltas& deltas) {
  return support::format(
      "{:<34} time {:+7.1f}%  cpu {:+7.1f}%  mem {:+7.1f}%  power {:+6.1f}%  energy {:+6.1f}%\n",
      label, deltas.execution_time_pct, deltas.cpu_pct, deltas.memory_pct, deltas.power_pct,
      deltas.energy_pct);
}

namespace {

std::string point_label(const metrics::MetricPoint& point) {
  if (point.labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : point.labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=" + value;
  }
  out += "}";
  return out;
}

}  // namespace

std::string metrics_report(const metrics::MetricsSnapshot& snapshot,
                           std::size_t max_histograms) {
  if (snapshot.empty()) return "";
  std::string out = "== metrics ==\n";

  // Scalar families first: one line per point, deterministic order.
  for (const auto& family : snapshot.families) {
    if (family.kind == metrics::MetricKind::kHistogram) continue;
    for (const auto& point : family.points) {
      out += support::format("{}{} {:g}\n", family.name, point_label(point), point.value);
    }
  }

  // Busiest histogram points (by observation count), each as a populated-
  // bucket bar chart plus quantile estimates.
  struct HistogramRef {
    const metrics::MetricFamily* family;
    const metrics::MetricPoint* point;
  };
  std::vector<HistogramRef> histograms;
  for (const auto& family : snapshot.families) {
    if (family.kind != metrics::MetricKind::kHistogram) continue;
    for (const auto& point : family.points) {
      if (point.histogram.count > 0) histograms.push_back({&family, &point});
    }
  }
  std::stable_sort(histograms.begin(), histograms.end(),
                   [](const HistogramRef& a, const HistogramRef& b) {
                     return a.point->histogram.count > b.point->histogram.count;
                   });
  if (histograms.size() > max_histograms) histograms.resize(max_histograms);

  for (const HistogramRef& ref : histograms) {
    const metrics::HistogramSnapshot& histogram = ref.point->histogram;
    out += support::format("\n{}{} count={} sum={:.3f} p50={:g} p95={:g} p99={:g} p999={:g}\n",
                           ref.family->name, point_label(*ref.point), histogram.count,
                           histogram.sum, metrics::histogram_quantile(histogram, 0.50),
                           metrics::histogram_quantile(histogram, 0.95),
                           metrics::histogram_quantile(histogram, 0.99),
                           metrics::histogram_quantile(histogram, 0.999));
    std::vector<metrics::Bar> bars;
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] == 0) continue;
      std::string label;
      if (i < histogram.bounds.size()) {
        const double lower = i == 0 ? 0.0 : histogram.bounds[i - 1];
        label = support::format("{:g}..{:g}", lower, histogram.bounds[i]);
      } else {
        label = support::format(">{:g}", histogram.bounds.back());
      }
      bars.push_back({std::move(label), static_cast<double>(histogram.buckets[i])});
    }
    metrics::BarChartOptions options;
    options.value_precision = 0;
    out += metrics::bar_chart(bars, options);
  }
  return out;
}

std::string tenancy_summary(const load::TrafficResult& result) {
  std::string out = support::format(
      "traffic window: offered {:.3f} rps  goodput {:.3f} rps  runs {}/{} ok  "
      "jain {:.3f}  starved {}  rejected {}  cold-starts {}\n",
      result.offered_rps, result.goodput_rps, result.completed, result.submitted,
      result.jain_fairness, result.starved_tenants, result.rejected_requests,
      result.cold_starts);
  out += support::format("{:<14} {:>6} {:>9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>10}\n",
                         "tenant", "weight", "submitted", "ok", "failed", "rejected",
                         "p50 s", "p99 s", "goodput/s");
  for (const load::TenantStats& tenant : result.tenants) {
    out += support::format("{:<14} {:>6.2f} {:>9} {:>6} {:>8} {:>9} {:>9.2f} {:>9.2f} {:>10.4f}\n",
                           tenant.name, tenant.weight, tenant.submitted, tenant.completed,
                           tenant.failed, tenant.rejected_requests,
                           tenant.p50_makespan_seconds, tenant.p99_makespan_seconds,
                           tenant.goodput_rps);
  }
  return out;
}

}  // namespace wfs::core
