// Table II: the computational paradigms of the evaluation, and factories
// mapping each onto a concrete platform deployment.
//
//   Kn1wPM        Knative, 1 worker/pod, persistent memory
//   Kn1wNoPM      Knative, 1 worker/pod, no persistent memory
//   Kn10wNoPM     Knative, 10 workers/pod, no PM   (the paper's pick)
//   Kn1000wPM     Knative, 1000 workers in ONE whole-machine pod (coarse)
//   LC1wPM        Local containers, 1 worker per core (96/container), PM
//   LC1wNoPM      as above, no PM
//   LC10wNoPM     Local containers, 10 workers per core (960/container)
//   LC10wNoPMNoCR as above without CPU/memory requirements (no cgroup caps)
//   LC1000wPM     Local containers, 1000 workers, PM (coarse)
//
// The worker counts follow the artifact's measured runs
// (local-container-96w / 960w): "k workers per process" on the LC side
// means k workers per CPU of the hosting node.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "containers/runtime.h"
#include "faas/service_config.h"

namespace wfs::core {

enum class Paradigm {
  kKn1wPM,
  kKn1wNoPM,
  kKn10wNoPM,
  kKn1000wPM,
  kLC1wPM,
  kLC1wNoPM,
  kLC10wNoPM,
  kLC10wNoPMNoCR,
  kLC1000wPM,
};

struct ParadigmInfo {
  Paradigm paradigm;
  std::string name;         // Table II label, e.g. "Kn10wNoPM"
  std::string description;  // Table II right column
  bool serverless = false;
  bool persistent_memory = false;
  bool coarse_grained = false;
  bool cpu_requirement = true;  // CR: resource requests/limits declared
  int workers_label = 1;        // the 1/10/1000 in the name
};

[[nodiscard]] const ParadigmInfo& paradigm_info(Paradigm paradigm);
[[nodiscard]] const std::string& to_string(Paradigm paradigm);
[[nodiscard]] Paradigm parse_paradigm(std::string_view name);

/// All nine paradigms in Table II order.
[[nodiscard]] std::vector<Paradigm> all_paradigms();
/// The 7 fine-grained paradigms (Table I row a).
[[nodiscard]] std::vector<Paradigm> fine_grained_paradigms();
/// The 2 coarse-grained paradigms (Table I row b).
[[nodiscard]] std::vector<Paradigm> coarse_grained_paradigms();

/// Reference deployment constants shared by the factories; the defaults
/// describe the paper's 2-node EPYC testbed.
struct DeploymentShape {
  double node_cores = 96.0;
  std::uint64_t node_memory = 192ULL << 30;  // smaller node bounds coarse pods
  /// The wfbench service authority for serverless routing.
  std::string knative_authority = "wfbench.knative-functions.10.0.0.1.sslip.io:80";
  /// The published local-container port.
  std::string local_authority = "localhost:80";
};

/// Builds the Knative service spec for a Kn* paradigm. Throws for LC*.
[[nodiscard]] faas::KnativeServiceSpec knative_spec_for(Paradigm paradigm,
                                                        const DeploymentShape& shape = {});

/// Builds the local runtime config for an LC* paradigm. Throws for Kn*.
[[nodiscard]] containers::LocalRuntimeConfig local_config_for(
    Paradigm paradigm, const DeploymentShape& shape = {});

}  // namespace wfs::core
