#include "core/paradigm.h"

#include <array>
#include <stdexcept>

#include "support/strings.h"

namespace wfs::core {
namespace {

const std::array<ParadigmInfo, 9>& table() {
  static const std::array<ParadigmInfo, 9> kTable = {{
      {Paradigm::kKn1wPM, "Kn1wPM",
       "Knative, 1 worker per process (pod), persistent memory over the functions", true, true,
       false, true, 1},
      {Paradigm::kKn1wNoPM, "Kn1wNoPM",
       "Knative, 1 worker per process (pod), no persistent memory over the functions", true,
       false, false, true, 1},
      {Paradigm::kKn10wNoPM, "Kn10wNoPM",
       "Knative, 10 workers per process (pod), no persistent memory over the functions", true,
       false, false, true, 10},
      {Paradigm::kKn1000wPM, "Kn1000wPM",
       "Knative, 1000 workers in one whole-machine pod, persistent memory (coarse-grained)",
       true, true, true, true, 1000},
      {Paradigm::kLC1wPM, "LC1wPM",
       "Local containers, 1 worker per CPU (96 per container), persistent memory", false, true,
       false, true, 1},
      {Paradigm::kLC1wNoPM, "LC1wNoPM",
       "Local containers, 1 worker per CPU (96 per container), no persistent memory", false,
       false, false, true, 1},
      {Paradigm::kLC10wNoPM, "LC10wNoPM",
       "Local containers, 10 workers per CPU (960 per container), no persistent memory", false,
       false, false, true, 10},
      {Paradigm::kLC10wNoPMNoCR, "LC10wNoPMNoCR",
       "Local containers, 10 workers per CPU, no persistent memory, no CPU requirement", false,
       false, false, false, 10},
      {Paradigm::kLC1000wPM, "LC1000wPM",
       "Local containers, 1000 workers per container, persistent memory (coarse-grained)",
       false, true, true, true, 1000},
  }};
  return kTable;
}

}  // namespace

const ParadigmInfo& paradigm_info(Paradigm paradigm) {
  for (const ParadigmInfo& info : table()) {
    if (info.paradigm == paradigm) return info;
  }
  throw std::invalid_argument("unknown paradigm enum value");
}

const std::string& to_string(Paradigm paradigm) { return paradigm_info(paradigm).name; }

Paradigm parse_paradigm(std::string_view name) {
  const std::string key = support::to_lower(name);
  for (const ParadigmInfo& info : table()) {
    if (support::to_lower(info.name) == key) return info.paradigm;
  }
  throw std::invalid_argument("unknown paradigm: " + std::string(name));
}

std::vector<Paradigm> all_paradigms() {
  std::vector<Paradigm> out;
  for (const ParadigmInfo& info : table()) out.push_back(info.paradigm);
  return out;
}

std::vector<Paradigm> fine_grained_paradigms() {
  std::vector<Paradigm> out;
  for (const ParadigmInfo& info : table()) {
    if (!info.coarse_grained) out.push_back(info.paradigm);
  }
  return out;
}

std::vector<Paradigm> coarse_grained_paradigms() {
  return {Paradigm::kKn1000wPM, Paradigm::kLC1000wPM};
}

faas::KnativeServiceSpec knative_spec_for(Paradigm paradigm, const DeploymentShape& shape) {
  const ParadigmInfo& info = paradigm_info(paradigm);
  if (!info.serverless) {
    throw std::invalid_argument(info.name + " is not a Knative paradigm");
  }
  faas::KnativeServiceSpec spec;
  spec.name = "wfbench";
  spec.authority = shape.knative_authority;
  spec.container.persistent_memory = info.persistent_memory;

  if (info.coarse_grained) {
    // Whole-machine pods, reserved up front (one per node of the testbed):
    // no cold start on the request path, no autoscaling, no CPU/memory
    // throttling beyond the machines themselves (paper §V-C).
    spec.container.workers = 1000;
    spec.cpu_request = shape.node_cores - 2.0;  // leave room for kubelet
    spec.memory_request = shape.node_memory - (8ULL << 30);
    spec.cpu_limit = 0.0;
    spec.memory_limit = 0;
    spec.min_scale = 2;
    spec.max_scale = 2;
    return spec;
  }

  // Fine-grained pods: modest requests so many pods fit, a burstable cgroup
  // CPU limit above the request (requests < limits, the common Kubernetes
  // QoS shape), and a memory limit that a burst of heavy tasks can exceed —
  // the failure mode the paper reports for large fine-grained runs. The
  // aggregate serverless compute ceiling (max_scale x cpu_limit = 48 cores)
  // is what separates the paper's two behaviour groups: layered workflows'
  // phases fit under it, dense single-phase bursts do not.
  spec.container.workers = info.workers_label;
  if (info.workers_label == 1) {
    // 1w pods: tiny, but many of them — the aggregate compute ceiling ends
    // up slightly below the 10w deployment's, so 10w is modestly faster
    // (the paper's Figure 4 finding), not categorically different.
    spec.cpu_request = 1.0;
    spec.cpu_limit = 2.0;
    spec.memory_request = 1ULL << 30;
    spec.memory_limit = 3ULL << 30;
    spec.min_scale = 0;
    spec.max_scale = 48;
  } else {
    spec.cpu_request = 2.0;
    spec.cpu_limit = 6.0;
    spec.memory_request = 4ULL << 30;
    spec.memory_limit = 12ULL << 30;
    spec.min_scale = 0;
    spec.max_scale = 8;
  }
  return spec;
}

containers::LocalRuntimeConfig local_config_for(Paradigm paradigm,
                                                const DeploymentShape& shape) {
  const ParadigmInfo& info = paradigm_info(paradigm);
  if (info.serverless) {
    throw std::invalid_argument(info.name + " is not a local-container paradigm");
  }
  containers::LocalRuntimeConfig config;
  config.authority = shape.local_authority;
  config.containers_per_node = 1;
  config.container.name = "wfbench-local";
  config.container.service.persistent_memory = info.persistent_memory;

  if (info.coarse_grained) {
    config.container.service.workers = 1000;
  } else {
    // "k workers per process" realised as k x node CPUs gunicorn workers
    // (the artifact's 96w / 960w runs).
    config.container.service.workers =
        static_cast<int>(shape.node_cores) * info.workers_label;
  }

  if (info.cpu_requirement) {
    // CR: --cpus and --memory declared; the cgroup enforces hard caps (and
    // pays a little CFS bookkeeping, see ContainerSpec::cr_overhead_cores).
    config.container.cpus = shape.node_cores - 8.0;
    config.container.memory_limit = shape.node_memory - (16ULL << 30);
  } else {
    // NoCR: nothing pushes back on the allocator, so stress allocations
    // carry slack — "without such constraints it may consume more memory".
    config.container.cpus = 0.0;
    config.container.memory_limit = 0;
    config.container.service.allocation_slack = 0.15;
  }
  return config;
}

}  // namespace wfs::core
