#include "core/experiment.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "faas/platform.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "obs/trace_recorder.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "storage/cached_store.h"
#include "storage/object_store.h"
#include "storage/shared_fs.h"
#include "storage/sharded_store.h"
#include "support/format.h"
#include "support/log.h"
#include "support/units.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/translators/local_container.h"

namespace wfs::core {
namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace

ExperimentResult ExperimentRunner::run(const ExperimentConfig& config) const {
  ExperimentResult result;
  result.config = config;
  const ParadigmInfo& paradigm = paradigm_info(config.paradigm);
  result.paradigm_name = paradigm.name;

  // ---- substrates -----------------------------------------------------------
  // Engine selection. sim_shards == 1 (the default) drives the classic
  // single-queue Simulation. > 1 runs the same experiment on the
  // conservative-lookahead ShardedSimulation; every paper substrate shares
  // state (cluster, store, router), so they all bind to shard 0 and results
  // are byte-identical at any shard count, while the windowed engine —
  // lookahead accounting, barriers, occupancy metrics — is exercised end to
  // end. bench/micro_sim's plan-replay model is what fans independent work
  // across shards.
  std::unique_ptr<sim::Simulation> plain_sim;
  std::unique_ptr<sim::ShardedSimulation> sharded_sim;
  sim::Context* sim_context = nullptr;
  if (config.sim_shards > 1) {
    sharded_sim = std::make_unique<sim::ShardedSimulation>(config.sim_shards);
    sim_context = &sharded_sim->shard(0);
  } else {
    plain_sim = std::make_unique<sim::Simulation>();
    sim_context = plain_sim.get();
  }
  sim::Context& sim = *sim_context;
  // Declared before the platform so pods can still emit their terminate
  // spans while the platform (and its pods) are torn down. Same for the
  // registry: pod terminations during platform teardown still count.
  obs::TraceRecorder recorder;
  recorder.set_enabled(!config.trace_path.empty());
  metrics::MetricsRegistry registry;
  metrics::MetricsRegistry* metrics_registry = config.collect_metrics ? &registry : nullptr;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  // storage_nodes > 0 swaps the single shared store for the sharded,
  // replicated tier; 0 (the default) keeps the exact paper data path.
  std::unique_ptr<storage::DataStore> store;
  storage::ShardedObjectStore* sharded_store = nullptr;
  if (config.storage_nodes > 0) {
    storage::ShardedStoreConfig sharded_config;
    sharded_config.num_nodes = config.storage_nodes;
    sharded_config.replication_factor = config.replication_factor;
    auto sharded = std::make_unique<storage::ShardedObjectStore>(sim, sharded_config);
    sharded->set_trace(&recorder);
    sharded_store = sharded.get();
    store = std::move(sharded);
  } else if (config.backend == DataBackend::kObjectStore) {
    store = std::make_unique<storage::ObjectStore>(sim);
  } else {
    store = std::make_unique<storage::SharedFilesystem>(sim);
  }
  // Cache off (the default) uses the store directly — the exact paper data
  // path; on, the decorator interposes per-node LRUs.
  std::unique_ptr<storage::CachedStore> cache;
  if (config.data_cache_mb_per_node > 0) {
    storage::CacheConfig cache_config;
    cache_config.capacity_bytes = config.data_cache_mb_per_node << 20;
    cache_config.p2p_enabled = config.p2p_transfer;
    cache = std::make_unique<storage::CachedStore>(sim, *store, cache_config);
    cache->set_trace(&recorder);
  }
  // Durability chaos: a storage node dies mid-run; survivable at RF >= 2.
  if (sharded_store != nullptr && config.storage_kill_at_seconds > 0.0) {
    sim.schedule_in(sim::from_seconds(config.storage_kill_at_seconds),
                    [sharded_store, node = config.storage_kill_node] {
                      sharded_store->kill_node(node);
                    });
  }
  storage::DataStore& fs = cache ? *cache : *store;
  fs.set_metrics(metrics_registry);
  net::Router router(sim, net::NetworkConfig{}, config.seed);
  router.set_trace(&recorder);
  router.set_metrics(metrics_registry);

  // ---- workload -------------------------------------------------------------
  wfcommons::GenerateOptions gen;
  gen.num_tasks = config.num_tasks;
  gen.seed = config.seed;
  gen.cpu_work = config.cpu_work;
  gen.data_scale = config.data_scale;
  wfcommons::Workflow workflow = wfcommons::make_recipe(config.recipe)->generate(gen);
  result.workflow_name = workflow.name();

  // ---- platform -------------------------------------------------------------
  std::unique_ptr<faas::KnativePlatform> knative;
  std::unique_ptr<containers::LocalContainerRuntime> local;
  if (paradigm.serverless) {
    faas::KnativeServiceSpec spec = config.knative_spec_override.has_value()
                                        ? *config.knative_spec_override
                                        : knative_spec_for(config.paradigm, config.shape);
    if (config.cache_aware_placement) spec.cache_aware_placement = true;
    // Only non-default knobs are applied, so a knative_spec_override that
    // carries its own AdmissionConfig is not clobbered by the zeros.
    if (config.tenant_quota > 0) spec.admission.tenant_inflight_limit = config.tenant_quota;
    if (config.tenant_queue_limit > 0) {
      spec.admission.tenant_queue_limit = config.tenant_queue_limit;
    }
    if (config.fair_dequeue) spec.admission.fair_dequeue = true;
    wfcommons::KnativeTranslatorConfig tconfig;
    tconfig.service_url = "http://" + spec.authority + "/wfbench";
    tconfig.workdir = config.wfm.workdir;
    wfcommons::KnativeTranslator(tconfig).apply(workflow);
    knative = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    knative->set_trace(&recorder);
    knative->set_metrics(metrics_registry);
    if (cache) knative->set_data_cache(cache.get());
    knative->deploy();
  } else {
    containers::LocalRuntimeConfig lconfig = config.local_config_override.has_value()
                                                 ? *config.local_config_override
                                                 : local_config_for(config.paradigm, config.shape);
    wfcommons::LocalContainerTranslatorConfig tconfig;
    tconfig.endpoint_url = "http://" + lconfig.authority + "/wfbench";
    tconfig.workdir = config.wfm.workdir;
    wfcommons::LocalContainerTranslator(tconfig).apply(workflow);
    local = std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router,
                                                                lconfig);
    local->start();
  }

  // ---- telemetry (PCP analogue) ---------------------------------------------
  metrics::Sampler sampler(sim, sim::from_seconds(config.sample_period_seconds));
  sampler.add_probe("cpu_pct", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.add_probe("mem_gib",
                    [&cluster] { return static_cast<double>(cluster.resident_memory()) / kGiB; });
  sampler.add_probe("power_w", [&cluster] { return cluster.power_watts(); });
  sampler.add_probe("pods", [&]() -> double {
    if (knative) return knative->ready_pods();
    return local ? static_cast<double>(local->container_count()) : 0.0;
  });
  sampler.sample_now();
  sampler.start();

  // ---- execute --------------------------------------------------------------
  WorkflowManager wfm(sim, router, fs);
  wfm.set_trace(&recorder);
  wfm.set_metrics(metrics_registry);
  std::optional<WorkflowRunResult> run_result;
  // The cell's WfmConfig rides along as a per-run override, so sweeps that
  // vary phase_delay / scheduling / task_retries share one manager setup.
  const RunHandle handle = wfm.run(workflow, [&run_result, &sampler](WorkflowRunResult r) {
    run_result = std::move(r);
    sampler.sample_now();
    sampler.stop();
  }, config.wfm);

  const sim::SimTime deadline = sim::from_seconds(config.deadline_seconds);
  if (sharded_sim) {
    // Conservative lookahead = the smallest latency any substrate declares
    // for a cross-component interaction (floored at 1 us). Nothing can cross
    // shards faster, so no window can miss a message.
    sim::SimTime lookahead = router.min_latency();
    if (const sim::SimTime store_min = fs.min_op_latency(); store_min > 0) {
      lookahead = std::min(lookahead, store_min);
    }
    if (knative) lookahead = std::min(lookahead, knative->spec().min_edge_latency());
    sharded_sim->set_lookahead(std::max<sim::SimTime>(1, lookahead));
    sharded_sim->set_metrics(metrics_registry);
    sharded_sim->set_trace(&recorder);
    // The stop predicate observes the last executed event's time, so the
    // engine — exactly like the step(1) loop below — still executes the
    // event that crosses the deadline before halting.
    sharded_sim->run([&handle, &engine = *sharded_sim, deadline] {
      return handle.done() || engine.now() >= deadline;
    });
  } else {
    while (!handle.done() && !plain_sim->idle() && plain_sim->now() < deadline) {
      plain_sim->step(1);
    }
  }

  // ---- outcome --------------------------------------------------------------
  if (!run_result.has_value()) {
    result.completed = false;
    result.failure_reason = sim.now() >= deadline
                                ? "did not conclude before the deadline"
                                : "execution stalled (platform made no progress)";
    result.makespan_seconds = sim::to_seconds(sim.now());
    sampler.stop();
  } else {
    result.completed = run_result->completed;
    result.run = std::move(*run_result);
    result.makespan_seconds = result.run.makespan_seconds;
    if (result.run.tasks_failed > 0) {
      result.failure_reason = support::format("{} of {} functions failed",
                                              result.run.tasks_failed, result.run.tasks_total);
    }
  }

  // ---- aggregate ------------------------------------------------------------
  result.cpu_series = sampler.series("cpu_pct");
  result.memory_series = sampler.series("mem_gib");
  result.power_series = sampler.series("power_w");
  result.pods_series = sampler.series("pods");
  result.cpu_percent = metrics::summarize(result.cpu_series);
  result.memory_gib = metrics::summarize(result.memory_series);
  result.power_watts = metrics::summarize(result.power_series);
  result.energy_joules = result.power_series.integral();

  result.node_oom_events = cluster.oom_events();
  result.storage_bytes_read = store->bytes_read();
  result.storage_bytes_written = store->bytes_written();
  if (cache) {
    const storage::CacheStats cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.cache_misses = cache_stats.misses;
    result.cache_evictions = cache_stats.evictions;
    result.cache_bytes_saved = cache_stats.bytes_saved;
    result.cache_hit_rate = cache_stats.hit_rate();
    result.p2p_transfers = cache_stats.p2p_transfers;
    result.p2p_bytes_saved = cache_stats.p2p_bytes;
  }
  if (sharded_store != nullptr) {
    result.storage_repair_objects = sharded_store->repaired_objects();
    result.storage_repair_bytes = sharded_store->repaired_bytes();
    result.storage_node_kills = sharded_store->node_kills();
    result.storage_under_replicated = sharded_store->under_replicated();
    result.storage_lost_objects = sharded_store->lost_objects();
  }
  if (knative) {
    result.locality_placements = knative->scheduler().locality_placements();
    result.cold_starts = knative->stats().pods_created;
    result.chaos_kills = knative->stats().chaos_kills;
    result.max_ready_pods = knative->stats().max_ready_pods;
    result.scheduling_failures = knative->stats().scheduling_failures;
    result.service_oom_failures = knative->service_oom_failures();
    result.activator_wait_seconds = knative->activator().total_wait_seconds();
    knative->shutdown();
    result.cold_start_seconds = knative->stats().cold_start_seconds;
  }
  if (local) {
    result.service_oom_failures = local->service_oom_failures();
    local->shutdown();
  }
  if (result.completed && result.failure_reason.empty() && result.node_oom_events > 0) {
    result.failure_reason = support::format("node memory exhausted ({} OOM events)",
                                            result.node_oom_events);
  }
  // Save after shutdown so pod "serving" spans (closed on terminate) land
  // in the file. The metrics snapshot is taken here for the same reason —
  // terminations during shutdown are part of the run.
  if (recorder.enabled()) recorder.save(config.trace_path);
  if (metrics_registry != nullptr) result.metrics = metrics_registry->snapshot();
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  return ExperimentRunner{}.run(config);
}

}  // namespace wfs::core
