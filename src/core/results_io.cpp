#include "core/results_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "json/parse.h"
#include "json/write.h"
#include "obs/profile.h"

namespace wfs::core {
namespace {

json::Value series_to_json(const metrics::TimeSeries& series) {
  json::Array t;
  json::Array v;
  for (const metrics::Sample& sample : series.samples()) {
    t.emplace_back(sim::to_seconds(sample.time));
    v.emplace_back(sample.value);
  }
  json::Object out;
  out.set("t", std::move(t));
  out.set("v", std::move(v));
  return json::Value(std::move(out));
}

metrics::TimeSeries series_from_json(const json::Value& value) {
  metrics::TimeSeries series;
  if (!value.is_object()) return series;
  const json::Value* t = value.find("t");
  const json::Value* v = value.find("v");
  if (t == nullptr || v == nullptr || !t->is_array() || !v->is_array()) return series;
  const std::size_t n = std::min(t->as_array().size(), v->as_array().size());
  for (std::size_t i = 0; i < n; ++i) {
    series.push(sim::from_seconds(t->as_array()[i].double_or(0.0)),
                v->as_array()[i].double_or(0.0));
  }
  return series;
}

json::Value summary_to_json(const metrics::Summary& summary) {
  json::Object out;
  out.set("samples", summary.samples);
  out.set("mean", summary.mean);
  out.set("time_weighted_mean", summary.time_weighted_mean);
  out.set("min", summary.min);
  out.set("max", summary.max);
  out.set("stddev", summary.stddev);
  out.set("p50", summary.p50);
  out.set("p95", summary.p95);
  out.set("p99", summary.p99);
  out.set("integral", summary.integral);
  return json::Value(std::move(out));
}

metrics::Summary summary_from_json(const json::Value& value) {
  metrics::Summary summary;
  if (!value.is_object()) return summary;
  const auto get = [&](const char* key, double fallback) {
    const json::Value* v = value.find(key);
    return v != nullptr ? v->double_or(fallback) : fallback;
  };
  if (const json::Value* v = value.find("samples")) {
    summary.samples = static_cast<std::size_t>(v->int_or(0));
  }
  summary.mean = get("mean", 0.0);
  summary.time_weighted_mean = get("time_weighted_mean", 0.0);
  summary.min = get("min", 0.0);
  summary.max = get("max", 0.0);
  summary.stddev = get("stddev", 0.0);
  summary.p50 = get("p50", 0.0);
  summary.p95 = get("p95", 0.0);
  summary.p99 = get("p99", 0.0);  // absent in pre-registry result files
  summary.integral = get("integral", 0.0);
  return summary;
}

}  // namespace

json::Value result_to_json(const ExperimentResult& result) {
  json::Object document;
  document.set("schema", "wfserverless-result-1");

  json::Object config;
  config.set("paradigm", result.paradigm_name);
  config.set("recipe", result.config.recipe);
  config.set("num_tasks", result.config.num_tasks);
  config.set("seed", result.config.seed);
  config.set("cpu_work", result.config.cpu_work);
  config.set("data_scale", result.config.data_scale);
  config.set("backend",
             result.config.backend == DataBackend::kObjectStore ? "objectstore" : "shared");
  config.set("data_cache_mb_per_node", result.config.data_cache_mb_per_node);
  config.set("cache_aware_placement", result.config.cache_aware_placement);
  config.set("sim_shards", result.config.sim_shards);
  config.set("storage_nodes", result.config.storage_nodes);
  config.set("replication_factor", result.config.replication_factor);
  config.set("p2p_transfer", result.config.p2p_transfer);
  config.set("tenant_quota", result.config.tenant_quota);
  config.set("tenant_queue_limit", result.config.tenant_queue_limit);
  config.set("fair_dequeue", result.config.fair_dequeue);
  document.set("config", std::move(config));

  json::Object outcome;
  outcome.set("workflow", result.workflow_name);
  outcome.set("completed", result.completed);
  outcome.set("failure_reason", result.failure_reason);
  outcome.set("makespan_seconds", result.makespan_seconds);
  outcome.set("tasks_total", result.run.tasks_total);
  outcome.set("tasks_failed", result.run.tasks_failed);
  outcome.set("task_retries", result.run.task_retries);
  outcome.set("upstream_failures", result.run.upstream_failures);
  outcome.set("input_wait_seconds", result.run.input_wait_seconds);
  outcome.set("retry_wait_seconds", result.run.retry_wait_seconds);
  document.set("outcome", std::move(outcome));

  json::Object aggregates;
  aggregates.set("cpu_percent", summary_to_json(result.cpu_percent));
  aggregates.set("memory_gib", summary_to_json(result.memory_gib));
  aggregates.set("power_watts", summary_to_json(result.power_watts));
  aggregates.set("energy_joules", result.energy_joules);
  document.set("aggregates", std::move(aggregates));

  json::Object platform;
  platform.set("cold_starts", result.cold_starts);
  platform.set("max_ready_pods", result.max_ready_pods);
  platform.set("scheduling_failures", result.scheduling_failures);
  platform.set("node_oom_events", result.node_oom_events);
  platform.set("service_oom_failures", result.service_oom_failures);
  platform.set("activator_wait_seconds", result.activator_wait_seconds);
  platform.set("cold_start_seconds", result.cold_start_seconds);
  platform.set("storage_bytes_read", result.storage_bytes_read);
  platform.set("storage_bytes_written", result.storage_bytes_written);
  document.set("platform", std::move(platform));

  // Node-local cache counters, omitted entirely when the cache was off so
  // old-format consumers see no new key.
  if (result.config.data_cache_mb_per_node > 0) {
    json::Object cache;
    cache.set("hits", result.cache_hits);
    cache.set("misses", result.cache_misses);
    cache.set("evictions", result.cache_evictions);
    cache.set("bytes_saved", result.cache_bytes_saved);
    cache.set("hit_rate", result.cache_hit_rate);
    cache.set("locality_placements", result.locality_placements);
    cache.set("p2p_transfers", result.p2p_transfers);
    cache.set("p2p_bytes_saved", result.p2p_bytes_saved);
    document.set("cache", std::move(cache));
  }

  // Sharded data plane counters, omitted entirely when the single-store
  // path ran so old-format consumers see no new key.
  if (result.config.storage_nodes > 0) {
    json::Object sharded;
    sharded.set("repair_objects", result.storage_repair_objects);
    sharded.set("repair_bytes", result.storage_repair_bytes);
    sharded.set("node_kills", result.storage_node_kills);
    sharded.set("under_replicated", result.storage_under_replicated);
    sharded.set("lost_objects", result.storage_lost_objects);
    document.set("sharded_store", std::move(sharded));
  }

  json::Object series;
  series.set("cpu_pct", series_to_json(result.cpu_series));
  series.set("mem_gib", series_to_json(result.memory_series));
  series.set("power_w", series_to_json(result.power_series));
  series.set("pods", series_to_json(result.pods_series));
  document.set("series", std::move(series));

  // Registry snapshot, omitted entirely when metrics were off so old-format
  // consumers see no new key.
  if (!result.metrics.empty()) {
    document.set("metrics", metrics::snapshot_to_json(result.metrics));
  }

  // Run profile (observed critical path + makespan attribution), omitted for
  // runs that never completed so old-format consumers see no new key.
  if (result.run.profile.valid) {
    document.set("profile", obs::profile_to_json(result.run.profile));
  }
  return json::Value(std::move(document));
}

ExperimentResult result_from_json(const json::Value& document) {
  if (!document.is_object()) {
    throw std::invalid_argument("result document is not an object");
  }
  const json::Object& root = document.as_object();
  if (const json::Value* schema = root.find("schema");
      schema == nullptr || schema->string_or("") != "wfserverless-result-1") {
    throw std::invalid_argument("unknown result schema");
  }
  ExperimentResult result;

  if (const json::Value* config = root.find("config")) {
    result.paradigm_name = config->find("paradigm") != nullptr
                               ? config->find("paradigm")->string_or("")
                               : "";
    if (!result.paradigm_name.empty()) {
      try {
        result.config.paradigm = parse_paradigm(result.paradigm_name);
      } catch (const std::invalid_argument&) {
        // Ablation labels ("cold=2.5s") are not catalog names; keep default.
      }
    }
    if (const json::Value* v = config->find("recipe")) result.config.recipe = v->string_or("");
    if (const json::Value* v = config->find("num_tasks")) {
      result.config.num_tasks = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("seed")) {
      result.config.seed = static_cast<std::uint64_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("cpu_work")) {
      result.config.cpu_work = v->double_or(100.0);
    }
    if (const json::Value* v = config->find("data_scale")) {
      result.config.data_scale = v->double_or(1.0);
    }
    if (const json::Value* v = config->find("backend")) {
      result.config.backend = v->string_or("shared") == "objectstore"
                                  ? DataBackend::kObjectStore
                                  : DataBackend::kSharedDrive;
    }
    // Absent in pre-cache result files; default to off.
    if (const json::Value* v = config->find("data_cache_mb_per_node")) {
      result.config.data_cache_mb_per_node = static_cast<std::uint64_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("cache_aware_placement")) {
      result.config.cache_aware_placement = v->bool_or(false);
    }
    // Absent in pre-sharding result files; default to the sequential engine.
    if (const json::Value* v = config->find("sim_shards")) {
      result.config.sim_shards = static_cast<std::size_t>(v->int_or(1));
    }
    // Absent in pre-sharded-store result files; default to the single store.
    if (const json::Value* v = config->find("storage_nodes")) {
      result.config.storage_nodes = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("replication_factor")) {
      result.config.replication_factor = static_cast<std::size_t>(v->int_or(2));
    }
    if (const json::Value* v = config->find("p2p_transfer")) {
      result.config.p2p_transfer = v->bool_or(false);
    }
    // Absent in pre-tenancy result files; default to admission off.
    if (const json::Value* v = config->find("tenant_quota")) {
      result.config.tenant_quota = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("tenant_queue_limit")) {
      result.config.tenant_queue_limit = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = config->find("fair_dequeue")) {
      result.config.fair_dequeue = v->bool_or(false);
    }
  }
  if (const json::Value* outcome = root.find("outcome")) {
    if (const json::Value* v = outcome->find("workflow")) {
      result.workflow_name = v->string_or("");
    }
    if (const json::Value* v = outcome->find("completed")) {
      result.completed = v->bool_or(false);
    }
    if (const json::Value* v = outcome->find("failure_reason")) {
      result.failure_reason = v->string_or("");
    }
    if (const json::Value* v = outcome->find("makespan_seconds")) {
      result.makespan_seconds = v->double_or(0.0);
    }
    if (const json::Value* v = outcome->find("tasks_total")) {
      result.run.tasks_total = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = outcome->find("tasks_failed")) {
      result.run.tasks_failed = static_cast<std::size_t>(v->int_or(0));
    }
    // Absent in pre-tracing result files; default to zero.
    if (const json::Value* v = outcome->find("task_retries")) {
      result.run.task_retries = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = outcome->find("upstream_failures")) {
      result.run.upstream_failures = static_cast<std::size_t>(v->int_or(0));
    }
    if (const json::Value* v = outcome->find("input_wait_seconds")) {
      result.run.input_wait_seconds = v->double_or(0.0);
    }
    if (const json::Value* v = outcome->find("retry_wait_seconds")) {
      result.run.retry_wait_seconds = v->double_or(0.0);
    }
    result.run.completed = result.completed;
    result.run.makespan_seconds = result.makespan_seconds;
  }
  if (const json::Value* aggregates = root.find("aggregates")) {
    if (const json::Value* v = aggregates->find("cpu_percent")) {
      result.cpu_percent = summary_from_json(*v);
    }
    if (const json::Value* v = aggregates->find("memory_gib")) {
      result.memory_gib = summary_from_json(*v);
    }
    if (const json::Value* v = aggregates->find("power_watts")) {
      result.power_watts = summary_from_json(*v);
    }
    if (const json::Value* v = aggregates->find("energy_joules")) {
      result.energy_joules = v->double_or(0.0);
    }
  }
  if (const json::Value* platform = root.find("platform")) {
    const auto get_u64 = [&](const char* key) -> std::uint64_t {
      const json::Value* v = platform->find(key);
      return v != nullptr ? static_cast<std::uint64_t>(v->int_or(0)) : 0;
    };
    result.cold_starts = get_u64("cold_starts");
    result.max_ready_pods = get_u64("max_ready_pods");
    result.scheduling_failures = get_u64("scheduling_failures");
    result.node_oom_events = get_u64("node_oom_events");
    result.service_oom_failures = get_u64("service_oom_failures");
    if (const json::Value* v = platform->find("activator_wait_seconds")) {
      result.activator_wait_seconds = v->double_or(0.0);
    }
    if (const json::Value* v = platform->find("cold_start_seconds")) {
      result.cold_start_seconds = v->double_or(0.0);
    }
    result.storage_bytes_read = get_u64("storage_bytes_read");
    result.storage_bytes_written = get_u64("storage_bytes_written");
  }
  if (const json::Value* cache = root.find("cache")) {
    const auto get_u64 = [&](const char* key) -> std::uint64_t {
      const json::Value* v = cache->find(key);
      return v != nullptr ? static_cast<std::uint64_t>(v->int_or(0)) : 0;
    };
    result.cache_hits = get_u64("hits");
    result.cache_misses = get_u64("misses");
    result.cache_evictions = get_u64("evictions");
    result.cache_bytes_saved = get_u64("bytes_saved");
    result.locality_placements = get_u64("locality_placements");
    result.p2p_transfers = get_u64("p2p_transfers");
    result.p2p_bytes_saved = get_u64("p2p_bytes_saved");
    if (const json::Value* v = cache->find("hit_rate")) {
      result.cache_hit_rate = v->double_or(0.0);
    }
  }
  if (const json::Value* sharded = root.find("sharded_store")) {
    const auto get_u64 = [&](const char* key) -> std::uint64_t {
      const json::Value* v = sharded->find(key);
      return v != nullptr ? static_cast<std::uint64_t>(v->int_or(0)) : 0;
    };
    result.storage_repair_objects = get_u64("repair_objects");
    result.storage_repair_bytes = get_u64("repair_bytes");
    result.storage_node_kills = get_u64("node_kills");
    result.storage_under_replicated = get_u64("under_replicated");
    result.storage_lost_objects = get_u64("lost_objects");
  }
  if (const json::Value* series = root.find("series")) {
    if (const json::Value* v = series->find("cpu_pct")) {
      result.cpu_series = series_from_json(*v);
    }
    if (const json::Value* v = series->find("mem_gib")) {
      result.memory_series = series_from_json(*v);
    }
    if (const json::Value* v = series->find("power_w")) {
      result.power_series = series_from_json(*v);
    }
    if (const json::Value* v = series->find("pods")) {
      result.pods_series = series_from_json(*v);
    }
  }
  if (const json::Value* metrics_json = root.find("metrics")) {
    result.metrics = metrics::snapshot_from_json(*metrics_json);
  }
  if (const json::Value* profile = root.find("profile")) {
    result.run.profile = obs::profile_from_json(*profile);
  }
  return result;
}

std::string write_result(const ExperimentResult& result) {
  return json::write_pretty(result_to_json(result));
}

ExperimentResult parse_result(const std::string& text) {
  return result_from_json(json::parse(text));
}

bool save_result(const ExperimentResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << write_result(result);
  return static_cast<bool>(out);
}

ExperimentResult load_result(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open result file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_result(buffer.str());
}

}  // namespace wfs::core
