// End-to-end experiment runner: the code path behind every number in the
// reproduction of Figures 4-7 and Tables I-II.
//
// One experiment = one (paradigm, workflow family, size) cell: build the
// simulated 2-node testbed, deploy the paradigm's platform, generate and
// translate the workflow, run it through the serverless WFM while a 1 s
// PCP-like sampler records CPU / memory / power, and aggregate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/paradigm.h"
#include "core/workflow_manager.h"
#include "metrics/aggregate.h"
#include "metrics/registry.h"
#include "metrics/time_series.h"
#include "wfcommons/workflow.h"

namespace wfs::core {

/// Where workflow data lives: the paper's shared drive, or the §VII
/// future-work external object store.
enum class DataBackend { kSharedDrive, kObjectStore };

struct ExperimentConfig {
  Paradigm paradigm = Paradigm::kKn10wNoPM;
  std::string recipe = "blast";
  std::size_t num_tasks = 50;
  std::uint64_t seed = 1;
  DataBackend backend = DataBackend::kSharedDrive;
  /// WfBench cpu-work base (paper uses 100-250).
  double cpu_work = 100.0;
  /// WfBench I/O-intensity knob: multiplier on every generated file size
  /// (1.0 = the recipes' published footprints). The storage ablations use
  /// it to put the data plane on the critical path.
  double data_scale = 1.0;
  /// Safety deadline: runs still going after this much simulated time are
  /// reported as failed ("did not conclude").
  double deadline_seconds = 4.0 * 3600.0;
  WfmConfig wfm;
  DeploymentShape shape;
  /// Sampling cadence (PCP: 1 s).
  double sample_period_seconds = 1.0;

  /// Event-queue shards for the simulation engine. 1 (the default) is the
  /// classic single-queue Simulation; > 1 runs the experiment on the
  /// conservative-lookahead ShardedSimulation (sim/sharded.h) with the
  /// lookahead derived from the substrates' declared minimum latencies.
  /// Results are byte-identical at every value — see DESIGN.md, "Parallel
  /// simulation".
  std::size_t sim_shards = 1;

  /// Node-local data cache capacity per cluster node, MiB. 0 (the default)
  /// disables the cache entirely — the store is used directly, the exact
  /// paper data path.
  std::uint64_t data_cache_mb_per_node = 0;
  /// Score pod placement by cached input bytes for the pending tasks
  /// (falling back to the paradigm's strategy). Only meaningful with
  /// data_cache_mb_per_node > 0 and a serverless paradigm.
  bool cache_aware_placement = false;

  /// Sharded data plane. 0 (the default) keeps the single-store `backend`
  /// path — the exact paper data path; > 0 replaces it with a
  /// storage::ShardedObjectStore of that many storage nodes behind
  /// consistent hashing.
  std::size_t storage_nodes = 0;
  /// Copies per object on the sharded store (clamped to [1, storage_nodes]).
  std::size_t replication_factor = 2;
  /// Peer-to-peer transfer: cache misses pull from a peer node's cache over
  /// the node-to-node link instead of the backing store. Requires
  /// data_cache_mb_per_node > 0.
  bool p2p_transfer = false;
  /// Chaos hook for the durability ablation: kill this storage node at the
  /// given simulated time (0 seconds = never). Only meaningful with
  /// storage_nodes > 0; survivable at replication_factor >= 2 thanks to
  /// read failover + background repair.
  double storage_kill_at_seconds = 0.0;
  std::size_t storage_kill_node = 0;

  /// Per-tenant admission control at the activator (faas::AdmissionConfig).
  /// All defaults off — the exact single-tenant FIFO activator, and request
  /// bodies / CSVs byte-identical to the seed. Only meaningful for
  /// serverless paradigms; tenants are labeled via WfmConfig::tenant.
  std::size_t tenant_quota = 0;        // per-tenant in-flight limit
  std::size_t tenant_queue_limit = 0;  // per-tenant buffered bound (503 over it)
  bool fair_dequeue = false;           // weighted-fair dequeue across tenants

  /// Ablation hooks: when set, these replace the spec the paradigm factory
  /// would produce (the paradigm still selects serverless vs local).
  std::optional<faas::KnativeServiceSpec> knative_spec_override;
  std::optional<containers::LocalRuntimeConfig> local_config_override;

  /// When non-empty, record a Chrome trace (task attempts, pod lifecycles,
  /// autoscaler decisions, HTTP hops) and write it to this path when the
  /// run finishes. Empty (the default) disables tracing entirely — no
  /// events are recorded and the hot paths pay a single null check.
  std::string trace_path;

  /// Always-on structured metrics: the run gets its own MetricsRegistry,
  /// every component is instrumented, and the final snapshot lands in
  /// ExperimentResult::metrics (and from there in results_io / merged
  /// campaign expositions). Set false to disable — call sites then pay
  /// only their null check, exactly like tracing.
  bool collect_metrics = true;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::string workflow_name;
  std::string paradigm_name;

  /// Run outcome. `completed` = all phases executed before the deadline;
  /// failure_reason explains deadline hits, task failures or OOM pressure.
  bool completed = false;
  std::string failure_reason;

  double makespan_seconds = 0.0;
  WorkflowRunResult run;

  // Aggregates over the run window (the paper's four metrics).
  metrics::Summary cpu_percent;     // cluster CPU busy %, 0-100
  metrics::Summary memory_gib;      // cluster resident memory, GiB
  metrics::Summary power_watts;     // cluster package power, W
  double energy_joules = 0.0;

  // Platform behaviour counters.
  std::uint64_t cold_starts = 0;       // pods created (serverless only)
  std::uint64_t max_ready_pods = 0;
  std::uint64_t scheduling_failures = 0;
  std::uint64_t node_oom_events = 0;
  std::uint64_t service_oom_failures = 0;
  std::uint64_t chaos_kills = 0;
  double activator_wait_seconds = 0.0;  // total buffered wait (serverless)
  double cold_start_seconds = 0.0;      // total pod creation->Ready time

  // Data plane: backing-store traffic, and the node-local cache's counters
  // (all zero when data_cache_mb_per_node was 0).
  std::uint64_t storage_bytes_read = 0;     // shared drive / object store
  std::uint64_t storage_bytes_written = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bytes_saved = 0;      // shared-drive bytes hits avoided
  double cache_hit_rate = 0.0;
  std::uint64_t locality_placements = 0;    // pods placed by cached bytes

  // Sharded data plane (all zero when storage_nodes was 0).
  std::uint64_t p2p_transfers = 0;          // misses served from a peer cache
  std::uint64_t p2p_bytes_saved = 0;        // backing bytes those pulls avoided
  std::uint64_t storage_repair_objects = 0; // objects re-replicated after kills
  std::uint64_t storage_repair_bytes = 0;
  std::uint64_t storage_node_kills = 0;
  std::uint64_t storage_under_replicated = 0;  // still degraded at run end
  std::uint64_t storage_lost_objects = 0;      // every replica died pre-repair

  /// Final registry snapshot (empty when collect_metrics was off). Render
  /// with metrics::prometheus_text or merge across cells with
  /// metrics::merge_into.
  metrics::MetricsSnapshot metrics;

  // Full series, for CSV export and sparklines.
  metrics::TimeSeries cpu_series;
  metrics::TimeSeries memory_series;
  metrics::TimeSeries power_series;
  metrics::TimeSeries pods_series;

  [[nodiscard]] bool ok() const noexcept { return completed && run.tasks_failed == 0; }
};

class ExperimentRunner {
 public:
  /// Runs one experiment to completion (fresh simulation per call).
  [[nodiscard]] ExperimentResult run(const ExperimentConfig& config) const;
};

/// Convenience wrapper used by benches/examples.
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace wfs::core
