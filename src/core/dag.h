// Execution plan: the workflow manager's view of a translated workflow.
//
// The WFM (paper §III-C) turns the JSON workflow into a DAG. Two execution
// modes consume this plan (see core/workflow_manager.h):
//  * phase-barrier — all functions of a level ("phase"/"step") are invoked
//    simultaneously, the next level starts only after every response arrived
//    plus a fixed delay (the paper's prototype behaviour);
//  * dependency-driven — a task is dispatched the moment its last DAG parent
//    finished (ready-set scheduling).
// To serve both, the plan materialises the level decomposition (phases) AND
// the dependency edges: every planned task knows its level plus its parents
// and children as flat task ids.
#pragma once

#include <string>
#include <vector>

#include "wfbench/task_params.h"
#include "wfcommons/workflow.h"

namespace wfs::core {

struct PlannedTask {
  std::string name;
  std::string api_url;
  wfbench::TaskParams params;
  /// DAG level of this task (= the paper's phase index).
  std::size_t level = 0;
  /// Dependency edges as flat task ids (row-major over `phases`). Filled by
  /// build_plan; empty on hand-built plans, which then behave as if every
  /// task were a root under dependency-driven scheduling.
  std::vector<std::size_t> parents;
  std::vector<std::size_t> children;
};

struct ExecutionPlan {
  std::string workflow_name;
  /// Tasks grouped by DAG level, workflow order within a level.
  std::vector<std::vector<PlannedTask>> phases;
  /// Files no task produces; the WFM stages them before phase 0.
  std::vector<wfcommons::TaskFile> external_inputs;

  [[nodiscard]] std::size_t task_count() const noexcept;
  [[nodiscard]] std::size_t widest_phase() const noexcept;

  /// Flat task ids enumerate `phases` row-major: level 0's tasks first.
  [[nodiscard]] std::size_t flat_id(std::size_t level, std::size_t index) const noexcept;
  [[nodiscard]] const PlannedTask& task(std::size_t flat_id) const;
  [[nodiscard]] PlannedTask& task(std::size_t flat_id);

  /// Pending-parent counter per task (flat-id indexed) — the ready-set
  /// dispatcher's initial gate values. Roots have indegree 0.
  [[nodiscard]] std::vector<std::size_t> indegrees() const;
};

/// Converts one IR task into the wfbench POST payload.
[[nodiscard]] wfbench::TaskParams to_task_params(const wfcommons::Task& task,
                                                 const std::string& workdir);

/// Builds the plan (levels + dependency edges) from a translated workflow
/// (every task must carry an api_url). Throws std::invalid_argument when a
/// task has no endpoint or the workflow fails validation.
[[nodiscard]] ExecutionPlan build_plan(const wfcommons::Workflow& workflow,
                                       const std::string& workdir);

}  // namespace wfs::core
