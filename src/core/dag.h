// Execution plan: the workflow manager's view of a translated workflow.
//
// The WFM (paper §III-C) turns the JSON workflow into a DAG. Two execution
// modes consume this plan (see core/workflow_manager.h):
//  * phase-barrier — all functions of a level ("phase"/"step") are invoked
//    simultaneously, the next level starts only after every response arrived
//    plus a fixed delay (the paper's prototype behaviour);
//  * dependency-driven — a task is dispatched the moment its last DAG parent
//    finished (ready-set scheduling).
//
// The plan is COLUMNAR (structure of arrays): every per-task attribute lives
// in a flat id-indexed column, adjacency is CSR (one edge array + one offset
// array per direction), and all strings — task names, api_urls, file names,
// workdirs — are interned once into a shared character arena and referenced
// by 8-byte handles. A row-of-structs representation (the pre-PR-6
// `vector<vector<PlannedTask>>`) costs ~15 heap blocks and several hundred
// bytes per task; the columnar layout costs a handful of contiguous arrays
// and O(100) bytes/task, which is what lets a single plan hold 10^5-10^6
// tasks (the Merlin "ensembles of millions of tasks" regime).
//
// Task ids are level-major: level 0's tasks first, then level 1's, in
// workflow order within a level. A level is therefore a contiguous id range.
//
// Construction: `build_plan` (from a translated workflow) or `PlanBuilder`
// (programmatic, used by tests and benches). The legacy `PlannedTask` struct
// and `plan_from_phases` survive one more PR as a deprecated shim for
// hand-built plans.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "wfbench/task_params.h"
#include "wfcommons/workflow.h"

namespace wfs::core {

/// Flat task id — level-major position in the plan. 32 bits carry 4 G tasks,
/// and halving the id width is most of what makes CSR edges cheap.
using TaskId = std::uint32_t;

/// DEPRECATED row-of-structs task record, kept one PR so hand-built plans
/// (tests, benches) and the before/after ablation in bench/micro_plan still
/// compile. New code uses the columnar accessors / PlanBuilder instead.
struct PlannedTask {
  std::string name;
  std::string api_url;
  wfbench::TaskParams params;
  /// DAG level of this task (= the paper's phase index).
  std::size_t level = 0;
  /// Dependency edges as flat task ids. Empty on hand-built plans, which
  /// then behave as if every task were a root under dependency-driven
  /// scheduling.
  std::vector<std::size_t> parents;
  std::vector<std::size_t> children;
};

class PlanBuilder;

class ExecutionPlan {
 public:
  /// One level's contiguous id range, iterable as TaskId values.
  class LevelSpan {
   public:
    class iterator {
     public:
      using value_type = TaskId;
      using difference_type = std::ptrdiff_t;
      iterator() = default;
      explicit iterator(TaskId id) : id_(id) {}
      TaskId operator*() const noexcept { return id_; }
      iterator& operator++() noexcept {
        ++id_;
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator old = *this;
        ++id_;
        return old;
      }
      friend bool operator==(iterator, iterator) = default;

     private:
      TaskId id_ = 0;
    };

    LevelSpan() = default;
    LevelSpan(TaskId first, TaskId last) : first_(first), last_(last) {}
    [[nodiscard]] TaskId front() const noexcept { return first_; }
    [[nodiscard]] TaskId begin_id() const noexcept { return first_; }
    [[nodiscard]] TaskId end_id() const noexcept { return last_; }
    [[nodiscard]] std::size_t size() const noexcept { return last_ - first_; }
    [[nodiscard]] bool empty() const noexcept { return first_ == last_; }
    [[nodiscard]] iterator begin() const noexcept { return iterator(first_); }
    [[nodiscard]] iterator end() const noexcept { return iterator(last_); }

   private:
    TaskId first_ = 0;
    TaskId last_ = 0;
  };

  ExecutionPlan() = default;

  // ---- shape (all O(1): counts are stored at build time, not scanned) ----

  [[nodiscard]] const std::string& workflow_name() const noexcept { return workflow_name_; }
  [[nodiscard]] std::size_t task_count() const noexcept { return names_.size(); }
  [[nodiscard]] std::size_t level_count() const noexcept {
    return level_offsets_.empty() ? 0 : level_offsets_.size() - 1;
  }
  /// Width of the widest level. Stored by the builder — O(1), no scan.
  [[nodiscard]] std::size_t widest_phase() const noexcept { return widest_; }
  /// Dependency edges (parent lists; the child direction mirrors it on
  /// build_plan output, but hand-built plans may fill either side alone).
  [[nodiscard]] std::size_t edge_count() const noexcept { return parent_edges_.size(); }

  // ---- per-task columns ----

  /// Level of a task — O(log level_count) over the level index (ids are
  /// level-major, so the level is the offset bucket containing the id).
  [[nodiscard]] std::uint32_t level_of(TaskId id) const noexcept {
    const auto it = std::upper_bound(level_offsets_.begin(), level_offsets_.end(), id);
    return static_cast<std::uint32_t>(it - level_offsets_.begin()) - 1;
  }
  [[nodiscard]] std::string_view name(TaskId id) const noexcept { return str(names_[id]); }
  [[nodiscard]] std::string_view api_url(TaskId id) const noexcept {
    return str(api_urls_[id]);
  }
  [[nodiscard]] std::string_view workdir(TaskId id) const noexcept {
    return str(workdirs_[id]);
  }
  [[nodiscard]] double percent_cpu(TaskId id) const noexcept { return percent_cpu_[id]; }
  [[nodiscard]] double cpu_work(TaskId id) const noexcept { return cpu_work_[id]; }
  [[nodiscard]] std::uint64_t memory_bytes(TaskId id) const noexcept {
    return memory_bytes_[id];
  }

  /// CSR adjacency — O(1) span views, no per-task heap vectors.
  [[nodiscard]] std::span<const TaskId> parents(TaskId id) const noexcept {
    return {parent_edges_.data() + parent_offsets_[id],
            parent_offsets_[id + 1] - parent_offsets_[id]};
  }
  [[nodiscard]] std::span<const TaskId> children(TaskId id) const noexcept {
    return {child_edges_.data() + child_offsets_[id],
            child_offsets_[id + 1] - child_offsets_[id]};
  }

  /// Pending-parent counters per task — the ready-set dispatcher's initial
  /// gate values; roots hold 0. Returns a view of the precomputed column.
  /// (The pre-PR-6 signature returned a freshly recomputed
  /// `std::vector<std::size_t>` by value; that copy semantic is deprecated —
  /// callers who need a mutable countdown copy the span themselves.)
  [[nodiscard]] std::span<const std::uint32_t> indegrees() const noexcept {
    return indegrees_;
  }

  // ---- level index ----

  [[nodiscard]] LevelSpan tasks_in_level(std::size_t level) const noexcept {
    return {level_offsets_[level], level_offsets_[level + 1]};
  }
  [[nodiscard]] std::size_t level_size(std::size_t level) const noexcept {
    return level_offsets_[level + 1] - level_offsets_[level];
  }
  /// First flat id of (level, index-within-level) — O(1) via the level index.
  [[nodiscard]] TaskId flat_id(std::size_t level, std::size_t index) const noexcept {
    return level_offsets_[level] + static_cast<TaskId>(index);
  }

  // ---- per-task files (CSR over the interned arena) ----

  [[nodiscard]] std::size_t input_count(TaskId id) const noexcept {
    return input_offsets_[id + 1] - input_offsets_[id];
  }
  [[nodiscard]] std::string_view input_name(TaskId id, std::size_t i) const noexcept {
    return str(input_files_[input_offsets_[id] + i]);
  }
  [[nodiscard]] std::size_t output_count(TaskId id) const noexcept {
    return output_offsets_[id + 1] - output_offsets_[id];
  }
  [[nodiscard]] std::string_view output_name(TaskId id, std::size_t i) const noexcept {
    return str(output_files_[output_offsets_[id] + i]);
  }
  [[nodiscard]] std::uint64_t output_size(TaskId id, std::size_t i) const noexcept {
    return output_sizes_[output_offsets_[id] + i];
  }

  /// Materialises the wfbench POST payload for one task (name, knobs, file
  /// lists, workdir) from the columns. Built per dispatch attempt; the plan
  /// itself never stores row-major TaskParams.
  [[nodiscard]] wfbench::TaskParams task_params(TaskId id) const;

  /// Files no task produces; the WFM stages them before phase 0.
  [[nodiscard]] const std::vector<wfcommons::TaskFile>& external_inputs() const noexcept {
    return external_inputs_;
  }

  /// Bytes of heap the plan's columns + arena occupy (capacity-based; the
  /// memory-footprint figure bench/micro_plan reports).
  [[nodiscard]] std::size_t memory_footprint_bytes() const noexcept;

 private:
  friend class PlanBuilder;

  /// Interned string handle: byte offset into the NUL-terminated `arena_`
  /// (the ELF .strtab layout). 4 bytes per reference; the length is
  /// recovered on access. Plan strings never carry embedded NULs.
  using StrRef = std::uint32_t;

  /// Constant-compressed column: when every row holds the same value — api
  /// urls after a translator pass, the shared workdir, default memory
  /// limits — the column stores ONE value instead of task_count() copies.
  /// The builder fills it like a plain vector; build() collapses it.
  template <typename T>
  class UniformColumn {
   public:
    [[nodiscard]] T operator[](std::size_t i) const noexcept {
      return values_.empty() ? uniform_ : values_[i];
    }
    [[nodiscard]] std::size_t capacity_bytes() const noexcept {
      return values_.capacity() * sizeof(T);
    }
    void push_back(T value) { values_.push_back(std::move(value)); }
    void reserve(std::size_t n) { values_.reserve(n); }
    /// Collapses N identical rows to the single stored value.
    void collapse_if_uniform() {
      if (values_.empty()) return;
      for (const T& value : values_) {
        if (!(value == values_.front())) {
          values_.shrink_to_fit();
          return;
        }
      }
      uniform_ = values_.front();
      values_.clear();
      values_.shrink_to_fit();
    }

   private:
    T uniform_{};
    std::vector<T> values_;
  };

  [[nodiscard]] std::string_view str(StrRef ref) const noexcept {
    return std::string_view(arena_.data() + ref);
  }

  std::string workflow_name_;
  std::vector<wfcommons::TaskFile> external_inputs_;

  /// Every string of the plan (names, urls, file names, workdirs), each
  /// distinct value stored exactly once.
  std::string arena_;

  // Flat id-indexed columns. api_url / workdir / memory are uniform across
  // tasks on every translator's output, so those columns constant-compress.
  // There is no stored level column: ids are level-major, so level_of is a
  // binary search over the (tiny) level index.
  std::vector<StrRef> names_;
  UniformColumn<StrRef> api_urls_;
  UniformColumn<StrRef> workdirs_;
  std::vector<std::uint32_t> indegrees_;
  std::vector<double> percent_cpu_;
  std::vector<double> cpu_work_;
  UniformColumn<std::uint64_t> memory_bytes_;

  // CSR adjacency, both directions (offsets have task_count()+1 entries).
  std::vector<std::uint32_t> parent_offsets_;
  std::vector<TaskId> parent_edges_;
  std::vector<std::uint32_t> child_offsets_;
  std::vector<TaskId> child_edges_;

  // CSR file lists.
  std::vector<std::uint32_t> input_offsets_;
  std::vector<StrRef> input_files_;
  std::vector<std::uint32_t> output_offsets_;
  std::vector<StrRef> output_files_;
  std::vector<std::uint64_t> output_sizes_;

  // Level index: tasks of level l are ids [level_offsets_[l], level_offsets_[l+1]).
  std::vector<TaskId> level_offsets_;
  std::uint32_t widest_ = 0;
};

/// Incremental columnar-plan constructor. Tasks must be added in level-major
/// order (non-decreasing level); file declarations attach to the most
/// recently added task (the columns are append-only CSR streams). Edge
/// direction lists are recorded independently — `connect` fills both — so a
/// legacy plan's exact parent/child orderings survive the conversion.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string workflow_name);

  void reserve(std::size_t tasks, std::size_t edges);

  /// Adds a task; `level` must be >= the previous task's level. Throws
  /// std::invalid_argument on level regression.
  TaskId add_task(std::uint32_t level, std::string_view name, std::string_view api_url,
                  double percent_cpu, double cpu_work, std::uint64_t memory_bytes,
                  std::string_view workdir);

  /// Declares an input / output file of the LAST added task.
  void add_input(std::string_view file);
  void add_output(std::string_view file, std::uint64_t size_bytes);

  /// Appends `parent` to `child`'s parent list / `child` to `parent`'s child
  /// list. `connect` does both (the normal, symmetric case).
  void add_parent(TaskId child, TaskId parent);
  void add_child(TaskId parent, TaskId child);
  void connect(TaskId parent, TaskId child) {
    add_parent(child, parent);
    add_child(parent, child);
  }

  /// Grows the level count to at least `count` (covers trailing empty
  /// levels, which legacy hand-built plans could express).
  void ensure_levels(std::size_t count);

  void set_external_inputs(std::vector<wfcommons::TaskFile> files);

  [[nodiscard]] std::size_t task_count() const noexcept { return plan_.names_.size(); }

  /// Finalises CSR offsets + the indegree column and returns the plan. The
  /// builder is consumed.
  [[nodiscard]] ExecutionPlan build() &&;

 private:
  ExecutionPlan::StrRef intern(std::string_view text);

  ExecutionPlan plan_;
  // (parent, child) edge streams in insertion order, bucketed stably into
  // CSR at build() so per-task list order matches the legacy representation.
  std::vector<std::pair<TaskId, TaskId>> parent_stream_;  // (child, parent)
  std::vector<std::pair<TaskId, TaskId>> child_stream_;   // (parent, child)
  // Arena intern table; views point into plan_.arena_ via stable indices.
  std::unordered_map<std::string, ExecutionPlan::StrRef> intern_;
  // Per-task levels, kept builder-side only: build() folds them into the
  // plan's level index and the column is discarded.
  std::vector<std::uint32_t> levels_;
  std::int64_t last_level_ = -1;
  std::size_t ensured_levels_ = 0;
};

/// Converts one IR task into the wfbench POST payload.
[[nodiscard]] wfbench::TaskParams to_task_params(const wfcommons::Task& task,
                                                 const std::string& workdir);

/// Builds the plan (levels + dependency edges) from a translated workflow
/// (every task must carry an api_url). Throws std::invalid_argument when a
/// task has no endpoint or the workflow fails validation.
[[nodiscard]] ExecutionPlan build_plan(const wfcommons::Workflow& workflow,
                                       const std::string& workdir);

/// Static critical-path length of the plan's DAG in seconds — the longest
/// dependency chain of uncontended compute durations (cpu_work / percent_cpu,
/// matching wfcommons::critical_path). Ignores cold starts, queueing,
/// transfers and retries, so it lower-bounds any observed makespan.
[[nodiscard]] double static_critical_path_seconds(const ExecutionPlan& plan);

/// DEPRECATED compatibility shim: converts a legacy row-of-structs plan
/// (tasks grouped by level, edges as flat-id vectors) into the columnar
/// representation. `params.name` is ignored in favour of the task name (the
/// two were always equal on build_plan output). Will be removed next PR —
/// construct through PlanBuilder instead.
[[deprecated("build hand-made plans with core::PlanBuilder")]]
[[nodiscard]] ExecutionPlan plan_from_phases(
    std::string workflow_name, const std::vector<std::vector<PlannedTask>>& phases,
    std::vector<wfcommons::TaskFile> external_inputs = {});

}  // namespace wfs::core
