// Execution plan: the workflow manager's view of a translated workflow.
//
// The WFM (paper §III-C) turns the JSON workflow into a DAG and executes it
// level by level ("phases"/"steps"): all functions of a phase are invoked
// simultaneously, the next phase starts only after every response arrived
// plus a fixed delay. This header materialises that plan: per phase, the
// ready-to-send wfbench request of every task plus its endpoint.
#pragma once

#include <string>
#include <vector>

#include "wfbench/task_params.h"
#include "wfcommons/workflow.h"

namespace wfs::core {

struct PlannedTask {
  std::string name;
  std::string api_url;
  wfbench::TaskParams params;
};

struct ExecutionPlan {
  std::string workflow_name;
  std::vector<std::vector<PlannedTask>> phases;
  /// Files no task produces; the WFM stages them before phase 0.
  std::vector<wfcommons::TaskFile> external_inputs;

  [[nodiscard]] std::size_t task_count() const noexcept;
  [[nodiscard]] std::size_t widest_phase() const noexcept;
};

/// Converts one IR task into the wfbench POST payload.
[[nodiscard]] wfbench::TaskParams to_task_params(const wfcommons::Task& task,
                                                 const std::string& workdir);

/// Builds the phase plan from a translated workflow (every task must carry
/// an api_url). Throws std::invalid_argument when a task has no endpoint or
/// the workflow fails validation.
[[nodiscard]] ExecutionPlan build_plan(const wfcommons::Workflow& workflow,
                                       const std::string& workdir);

}  // namespace wfs::core
