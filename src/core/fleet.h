// Fleet runs: several workflows sharing ONE platform deployment — the
// paper's §VII scenario ("the invocation of multiple concurrent functions
// by different workflows") as a first-class API.
//
// One WorkflowManager carries the whole fleet: its run table keys every
// active workflow by run id. In concurrent mode all workflows start
// together; in sequential mode each starts when the previous completes
// (the methodology of the single-workflow figures). Metrics are sampled
// over the whole fleet window, so the two modes' utilisation and wall
// time are directly comparable.
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/workflow_manager.h"

namespace wfs::core {

struct FleetItem {
  std::string recipe = "blast";
  std::size_t num_tasks = 100;
  std::uint64_t seed = 1;
  /// Tenant label stamped on the run's requests (WfmConfig::tenant). Empty —
  /// the default — keeps the paper's exact request bodies.
  std::string tenant;
};

struct FleetConfig {
  Paradigm paradigm = Paradigm::kKn10wNoPM;
  std::vector<FleetItem> items;
  /// true: all workflows start together; false: chained one after another.
  bool concurrent = true;
  double cpu_work = 100.0;
  WfmConfig wfm;
  DeploymentShape shape;
  double deadline_seconds = 4.0 * 3600.0;
  /// Simulation-engine shards; same contract as ExperimentConfig::sim_shards
  /// (1 = the classic single-queue engine, results identical at any value).
  std::size_t sim_shards = 1;

  /// Data-plane knobs, same contract as ExperimentConfig: all defaults off
  /// keep the fleet on the plain shared filesystem.
  std::uint64_t data_cache_mb_per_node = 0;
  std::size_t storage_nodes = 0;
  std::size_t replication_factor = 2;
  bool p2p_transfer = false;

  /// Per-tenant admission control, same contract as ExperimentConfig: all
  /// defaults off keep the single-tenant FIFO activator. Only meaningful
  /// for serverless paradigms with FleetItem::tenant labels set.
  std::size_t tenant_quota = 0;
  std::size_t tenant_queue_limit = 0;
  bool fair_dequeue = false;
};

struct FleetResult {
  bool completed = false;  // every workflow finished before the deadline
  std::size_t workflows_failed = 0;
  double wall_seconds = 0.0;  // first start -> last completion
  metrics::Summary cpu_percent;
  metrics::Summary memory_gib;
  metrics::Summary power_watts;
  double energy_joules = 0.0;
  std::uint64_t cold_starts = 0;
  // Data plane (zero when the knobs were off).
  std::uint64_t cache_hits = 0;
  std::uint64_t p2p_transfers = 0;
  std::uint64_t storage_repair_objects = 0;
  std::vector<WorkflowRunResult> runs;

  [[nodiscard]] bool ok() const noexcept { return completed && workflows_failed == 0; }
};

/// Runs the fleet to completion on a fresh simulation.
[[nodiscard]] FleetResult run_fleet(const FleetConfig& config);

/// Sweep over independent fleets: each config runs on its own simulation,
/// dispatched to a support::ThreadPool of `jobs` workers (0 =
/// hardware_concurrency, 1 = plain sequential loop). Results come back in
/// input order regardless of completion order; `progress` (optional) fires
/// exactly once per fleet, serialized, in COMPLETION order, with the
/// config's index in `configs`.
using FleetProgress = std::function<void(std::size_t index, const FleetResult&)>;
[[nodiscard]] std::vector<FleetResult> run_fleets(const std::vector<FleetConfig>& configs,
                                                  std::size_t jobs = 0,
                                                  const FleetProgress& progress = {});

}  // namespace wfs::core
