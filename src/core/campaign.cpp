#include "core/campaign.h"

#include <algorithm>
#include <exception>
#include <mutex>

#include "support/format.h"
#include "support/thread_pool.h"
#include "wfcommons/recipes/recipe.h"

namespace wfs::core {
namespace {

/// The full cell grid in deterministic order: seed and scheduling sweeps
/// outermost (so the default single-value case reproduces the historical
/// recipe > size > paradigm layout exactly), then the facet triple.
std::vector<ExperimentConfig> enumerate_cells(const CampaignSpec& spec) {
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{spec.seed} : spec.seeds;
  std::vector<SchedulingMode> schedulings = spec.schedulings;
  if (schedulings.empty()) schedulings = {spec.wfm.scheduling};

  std::vector<ExperimentConfig> cells;
  cells.reserve(spec.cell_count());
  for (const std::uint64_t seed : seeds) {
    for (const SchedulingMode scheduling : schedulings) {
      for (const std::string& recipe : spec.recipes) {
        for (const std::size_t size : spec.sizes) {
          for (const Paradigm paradigm : spec.paradigms) {
            ExperimentConfig config;
            config.paradigm = paradigm;
            config.recipe = recipe;
            config.num_tasks = size;
            config.seed = seed;
            config.cpu_work = spec.cpu_work;
            config.backend = spec.backend;
            config.data_cache_mb_per_node = spec.data_cache_mb_per_node;
            config.cache_aware_placement = spec.cache_aware_placement;
            config.storage_nodes = spec.storage_nodes;
            config.replication_factor = spec.replication_factor;
            config.p2p_transfer = spec.p2p_transfer;
            config.sim_shards = spec.sim_shards;
            config.tenant_quota = spec.tenant_quota;
            config.tenant_queue_limit = spec.tenant_queue_limit;
            config.fair_dequeue = spec.fair_dequeue;
            config.wfm = spec.wfm;
            config.wfm.scheduling = scheduling;
            config.collect_metrics = spec.collect_metrics;
            cells.push_back(std::move(config));
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace

CampaignSpec paper_fine_grained_campaign() {
  CampaignSpec spec;
  spec.paradigms = fine_grained_paradigms();
  spec.recipes = wfcommons::recipe_names();
  spec.sizes = {50, 200};
  return spec;
}

CampaignSpec paper_coarse_grained_campaign() {
  CampaignSpec spec;
  spec.paradigms = coarse_grained_paradigms();
  spec.recipes = wfcommons::recipe_names();
  spec.sizes = {100, 500, 1000};
  return spec;
}

const std::vector<ExperimentResult>& Campaign::run(const Progress& progress) {
  const std::vector<ExperimentConfig> cells = enumerate_cells(spec_);
  const std::size_t jobs = std::min(
      spec_.jobs == 0 ? support::ThreadPool::default_workers() : spec_.jobs,
      std::max<std::size_t>(1, cells.size()));

  results_.clear();
  if (jobs <= 1) {
    results_.reserve(cells.size());
    for (const ExperimentConfig& config : cells) {
      results_.push_back(run_experiment(config));
      if (progress) progress(results_.back());
    }
    return results_;
  }

  // Parallel path: slots are pre-allocated so each worker writes a distinct
  // element (no reallocation while workers run) and cell order is preserved
  // no matter which worker finishes first.
  results_.resize(cells.size());
  std::mutex progress_mutex;
  support::ThreadPool pool(jobs);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    pool.submit([this, &cells, &progress, &progress_mutex, i] {
      ExperimentResult result;
      try {
        result = run_experiment(cells[i]);
      } catch (const std::exception& e) {
        result.config = cells[i];
        result.paradigm_name = paradigm_info(cells[i].paradigm).name;
        result.completed = false;
        result.failure_reason = support::format("experiment threw: {}", e.what());
      }
      results_[i] = std::move(result);
      if (progress) {
        const std::scoped_lock lock(progress_mutex);
        progress(results_[i]);
      }
    });
  }
  pool.wait_idle();
  return results_;
}

const ExperimentResult* Campaign::find(Paradigm paradigm, const std::string& recipe,
                                       std::size_t size,
                                       std::optional<std::uint64_t> seed,
                                       std::optional<SchedulingMode> scheduling) const {
  const ExperimentResult* match = nullptr;
  for (const ExperimentResult& result : results_) {
    if (result.config.paradigm != paradigm || result.config.recipe != recipe ||
        result.config.num_tasks != size) {
      continue;
    }
    if (seed.has_value() && result.config.seed != *seed) continue;
    if (scheduling.has_value() && result.config.wfm.scheduling != *scheduling) continue;
    if (match != nullptr) return nullptr;  // ambiguous: an omitted key differs
    match = &result;
  }
  return match;
}

std::string Campaign::summary_csv() const {
  std::string out =
      "paradigm,recipe,tasks,seed,scheduling,status,makespan_s,cpu_pct_mean,cpu_pct_p50,"
      "cpu_pct_p99,cpu_pct_max,mem_gib_mean,mem_gib_max,power_w_mean,energy_kj,cold_starts,"
      "max_ready_pods,scheduling_failures,node_oom_events,service_oom_failures,tasks_failed,"
      "cold_start_s,retry_wait_s,input_wait_s,activator_wait_s,cache_hit_rate,"
      "shared_drive_bytes_saved,p2p_bytes_saved,storage_repair_bytes";
  if (spec_.profile) {
    out += ",cp_length_seconds,cp_coldstart_pct,cp_queue_pct,cp_transfer_pct,cp_compute_pct";
  }
  out += "\n";
  for (const ExperimentResult& result : results_) {
    out += support::format(
        "{},{},{},{},{},{},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},"
        "{},{},{},{},{},{},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{},{},{}",
        result.paradigm_name, result.config.recipe, result.config.num_tasks,
        result.config.seed, to_string(result.config.wfm.scheduling),
        result.ok() ? "ok" : "failed", result.makespan_seconds,
        result.cpu_percent.time_weighted_mean, result.cpu_percent.p50, result.cpu_percent.p99,
        result.cpu_percent.max, result.memory_gib.time_weighted_mean, result.memory_gib.max,
        result.power_watts.time_weighted_mean, result.energy_joules / 1000.0,
        result.cold_starts, result.max_ready_pods, result.scheduling_failures,
        result.node_oom_events, result.service_oom_failures, result.run.tasks_failed,
        result.cold_start_seconds, result.run.retry_wait_seconds,
        result.run.input_wait_seconds, result.activator_wait_seconds,
        result.cache_hit_rate, result.cache_bytes_saved, result.p2p_bytes_saved,
        result.storage_repair_bytes);
    if (spec_.profile) {
      const obs::RunProfile& profile = result.run.profile;
      out += support::format(",{:.3f},{:.3f},{:.3f},{:.3f},{:.3f}",
                             profile.cp_length_seconds, profile.pct(obs::Segment::kColdStart),
                             profile.pct(obs::Segment::kQueue),
                             profile.pct(obs::Segment::kTransfer),
                             profile.pct(obs::Segment::kCompute));
    }
    out += "\n";
  }
  return out;
}

metrics::MetricsSnapshot merged_metrics(const std::vector<ExperimentResult>& results) {
  metrics::MetricsSnapshot merged;
  for (const ExperimentResult& result : results) {
    if (!result.metrics.empty()) metrics::merge_into(merged, result.metrics);
  }
  return merged;
}

std::size_t Campaign::failed_cells() const {
  std::size_t failed = 0;
  for (const ExperimentResult& result : results_) failed += result.ok() ? 0 : 1;
  return failed;
}

}  // namespace wfs::core
