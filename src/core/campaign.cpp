#include "core/campaign.h"

#include "support/format.h"
#include "wfcommons/recipes/recipe.h"

namespace wfs::core {

CampaignSpec paper_fine_grained_campaign() {
  CampaignSpec spec;
  spec.paradigms = fine_grained_paradigms();
  spec.recipes = wfcommons::recipe_names();
  spec.sizes = {50, 200};
  return spec;
}

CampaignSpec paper_coarse_grained_campaign() {
  CampaignSpec spec;
  spec.paradigms = coarse_grained_paradigms();
  spec.recipes = wfcommons::recipe_names();
  spec.sizes = {100, 500, 1000};
  return spec;
}

const std::vector<ExperimentResult>& Campaign::run(const Progress& progress) {
  results_.clear();
  results_.reserve(spec_.cell_count());
  for (const std::string& recipe : spec_.recipes) {
    for (const std::size_t size : spec_.sizes) {
      for (const Paradigm paradigm : spec_.paradigms) {
        ExperimentConfig config;
        config.paradigm = paradigm;
        config.recipe = recipe;
        config.num_tasks = size;
        config.seed = spec_.seed;
        config.cpu_work = spec_.cpu_work;
        config.backend = spec_.backend;
        config.wfm = spec_.wfm;
        results_.push_back(run_experiment(config));
        if (progress) progress(results_.back());
      }
    }
  }
  return results_;
}

const ExperimentResult* Campaign::find(Paradigm paradigm, const std::string& recipe,
                                       std::size_t size) const {
  for (const ExperimentResult& result : results_) {
    if (result.config.paradigm == paradigm && result.config.recipe == recipe &&
        result.config.num_tasks == size) {
      return &result;
    }
  }
  return nullptr;
}

std::string Campaign::summary_csv() const {
  std::string out =
      "paradigm,recipe,tasks,seed,scheduling,status,makespan_s,cpu_pct_mean,cpu_pct_max,"
      "mem_gib_mean,mem_gib_max,power_w_mean,energy_kj,cold_starts,max_ready_pods,"
      "scheduling_failures,node_oom_events,service_oom_failures,tasks_failed,"
      "cold_start_s,retry_wait_s,input_wait_s,activator_wait_s\n";
  for (const ExperimentResult& result : results_) {
    out += support::format(
        "{},{},{},{},{},{},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{:.3f},{},{},{},{},{},{},"
        "{:.3f},{:.3f},{:.3f},{:.3f}\n",
        result.paradigm_name, result.config.recipe, result.config.num_tasks,
        result.config.seed, to_string(result.config.wfm.scheduling),
        result.ok() ? "ok" : "failed", result.makespan_seconds,
        result.cpu_percent.time_weighted_mean, result.cpu_percent.max,
        result.memory_gib.time_weighted_mean, result.memory_gib.max,
        result.power_watts.time_weighted_mean, result.energy_joules / 1000.0,
        result.cold_starts, result.max_ready_pods, result.scheduling_failures,
        result.node_oom_events, result.service_oom_failures, result.run.tasks_failed,
        result.cold_start_seconds, result.run.retry_wait_seconds,
        result.run.input_wait_seconds, result.activator_wait_seconds);
  }
  return out;
}

std::size_t Campaign::failed_cells() const {
  std::size_t failed = 0;
  for (const ExperimentResult& result : results_) failed += result.ok() ? 0 : 1;
  return failed;
}

}  // namespace wfs::core
