// Execution tracing — per-task timelines out of a WorkflowRunResult.
//
// Two renderings:
//  * an ASCII Gantt (per phase, plus per-category lanes) for terminals;
//  * Chrome trace-event JSON (chrome://tracing / Perfetto importable),
//    one complete event per function invocation, lanes = phases.
// The artifact only keeps aggregate CSVs; task-level timelines are the
// natural next tool for diagnosing where a paradigm loses time (cold
// starts vs queueing vs throttled compute).
#pragma once

#include <string>

#include "core/workflow_manager.h"

namespace wfs::core {

struct GanttOptions {
  int width = 80;          // timeline width in characters
  /// Collapse per-task rows into one row per (phase, category) lane.
  bool by_category = true;
  /// Show at most this many individual task rows when by_category = false.
  std::size_t max_rows = 40;
};

/// Multi-line ASCII Gantt of the run ("[phase 1] blastall x47 |##...|").
[[nodiscard]] std::string render_gantt(const WorkflowRunResult& result,
                                       GanttOptions options = {});

/// Chrome trace-event JSON: {"traceEvents": [{"name", "ph":"X", "ts", "dur",
/// "pid": 1, "tid": phase, ...}]}. Timestamps in microseconds.
[[nodiscard]] std::string chrome_trace_json(const WorkflowRunResult& result);

}  // namespace wfs::core
