#include "core/workflow_manager.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "json/parse.h"
#include "json/write.h"
#include "metrics/registry.h"
#include "support/format.h"
#include "support/log.h"
#include "wfbench/task_params.h"

namespace wfs::core {

std::string_view to_string(SchedulingMode mode) noexcept {
  switch (mode) {
    case SchedulingMode::kPhaseBarrier: return "phase-barrier";
    case SchedulingMode::kDependencyDriven: return "dependency-driven";
  }
  return "?";
}

SchedulingMode parse_scheduling_mode(std::string_view text) {
  if (text == "barrier" || text == "phase-barrier" || text == "phasebarrier") {
    return SchedulingMode::kPhaseBarrier;
  }
  if (text == "depdriven" || text == "dependency-driven" || text == "dependencydriven" ||
      text == "ready") {
    return SchedulingMode::kDependencyDriven;
  }
  throw std::invalid_argument("unknown scheduling mode: " + std::string(text));
}

namespace detail {

/// One row of the manager's run table. Shared between the manager, the
/// simulation's scheduled callbacks and any RunHandles; `delivered` gates
/// every callback so late events after completion/cancellation are no-ops.
struct WfmRunState {
  WorkflowManager* owner = nullptr;
  WfmConfig config;
  ExecutionPlan plan;
  WorkflowManager::CompletionCallback on_complete;
  WorkflowRunResult result;
  sim::SimTime started_at = 0;

  // Ready-set gates, indexed by flat TaskId (the plan's columnar ids).
  std::vector<std::uint32_t> pending;      // gate counter; 0 = ready
  std::vector<sim::SimTime> gate_delay;    // applied when the gate opens
  std::vector<sim::SimTime> released_at;   // gate opened; -1 = not yet
  std::vector<sim::SimTime> dispatched_at; // first dispatch entry; -1 = not yet
  std::vector<std::uint8_t> failed;        // outcome per finished task (fail-fast)
  // Observed critical-path edges: the id whose completion opened each gate
  // (last-finishing parent, or the barrier level's last finisher); -1 = root.
  std::vector<std::int64_t> gated_by;
  std::size_t unfinished = 0;

  // Batched ready set: gate openings append newly-ready ids here and the
  // outermost frame drains the span — one queue walk instead of recursive
  // per-child release, and reentrancy-safe when a release finishes a task
  // synchronously (fail-fast) and opens further gates mid-drain.
  std::vector<TaskId> ready_queue;
  std::size_t ready_head = 0;
  bool draining = false;

  // Tracing (null/0 when recording is off for this run).
  obs::TraceRecorder* trace = nullptr;
  obs::TraceRecorder::Pid trace_pid = 0;
  obs::TraceRecorder::Tid run_lane = 0;
  std::vector<obs::TraceRecorder::Tid> task_lane;

  // Level-attributed stats (PhaseOutcome source, both modes).
  struct LevelStats {
    sim::SimTime first_dispatch = -1;
    sim::SimTime last_finish = 0;
    std::size_t finished = 0;
    std::size_t failed = 0;
  };
  std::vector<LevelStats> levels;
  // Barrier wiring: per level, the flat-id range of the next non-empty
  // level whose gates open when this level completes.
  struct NextRange {
    TaskId begin = 0;
    TaskId end = 0;
  };
  std::vector<NextRange> barrier_next;

  bool cancelled = false;
  bool delivered = false;
};

}  // namespace detail

using detail::WfmRunState;

namespace {

/// True when this run records trace events.
bool tracing(const WfmRunState& state) {
  return state.trace != nullptr && state.trace->enabled();
}

/// Lazily registers the per-task trace lane (one timeline row per task).
obs::TraceRecorder::Tid task_lane(WfmRunState& state, TaskId task_id) {
  if (state.task_lane[task_id] == 0) {
    state.task_lane[task_id] =
        state.trace->lane(state.trace_pid, std::string(state.plan.name(task_id)));
  }
  return state.task_lane[task_id];
}

}  // namespace

// ---- RunHandle -------------------------------------------------------------

bool RunHandle::done() const noexcept {
  const auto state = state_.lock();
  return id_ != 0 && (!state || state->delivered);
}

bool RunHandle::cancel() {
  const auto state = state_.lock();
  if (!state || state->delivered || state->owner == nullptr) return false;
  state->owner->cancel_run(state);
  return true;
}

// ---- WorkflowManager -------------------------------------------------------

WorkflowManager::WorkflowManager(sim::Context& sim, net::Router& router,
                                 storage::DataStore& fs, WfmConfig config)
    : sim_(sim), router_(router), fs_(fs), config_(std::move(config)) {}

void WorkflowManager::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    attempts_metric_ = nullptr;
    retries_metric_ = nullptr;
    input_wait_metric_ = nullptr;
    return;
  }
  // Registered eagerly so a retry-free run still exposes
  // wfm_task_retries_total 0 (absence would read as "not instrumented").
  attempts_metric_ = &registry->counter("wfm_task_attempts_total",
                                        "Function invocations sent (retries included)");
  retries_metric_ = &registry->counter("wfm_task_retries_total",
                                       "Invocations re-sent after transient failures");
  input_wait_metric_ = &registry->counter(
      "wfm_input_wait_seconds_total", "Seconds spent polling the data store for task inputs");
}

WorkflowManager::~WorkflowManager() {
  // Orphan still-active runs: their scheduled callbacks check `delivered`
  // before touching the (now dead) manager, and RunHandle::done() reports
  // true. Completion callbacks are not fired during teardown.
  for (auto& [id, state] : runs_) {
    state->owner = nullptr;
    state->cancelled = true;
    state->delivered = true;
  }
}

RunHandle WorkflowManager::run(const wfcommons::Workflow& workflow,
                               CompletionCallback on_complete,
                               std::optional<WfmConfig> config) {
  const std::string& workdir = config ? config->workdir : config_.workdir;
  return run(build_plan(workflow, workdir), std::move(on_complete), std::move(config));
}

RunHandle WorkflowManager::run(ExecutionPlan plan, CompletionCallback on_complete,
                               std::optional<WfmConfig> config) {
  auto state = std::make_shared<WfmRunState>();
  state->owner = this;
  state->config = config ? std::move(*config) : config_;
  state->result.run_id = next_run_id_++;
  state->result.scheduling = state->config.scheduling;
  state->result.workflow_name = plan.workflow_name();
  state->result.tasks_total = plan.task_count();
  state->plan = std::move(plan);
  state->on_complete = std::move(on_complete);
  state->started_at = sim_.now();
  if (trace_ != nullptr && trace_->enabled()) {
    state->trace = trace_;
    state->trace_pid = trace_->process(
        support::format("wfm run {} ({})", state->result.run_id, state->result.workflow_name));
    state->run_lane = trace_->lane(state->trace_pid, "run");
  }
  runs_.emplace(state->result.run_id, state);

  if (state->config.stage_external_inputs) {
    for (const wfcommons::TaskFile& file : state->plan.external_inputs()) {
      fs_.stage(file.name, file.size_bytes);
    }
  }

  WFS_LOG_INFO("wfm", "run {}: {} ({} tasks, {} levels, {})", state->result.run_id,
               state->result.workflow_name, state->result.tasks_total,
               state->plan.level_count(), to_string(state->config.scheduling));

  if (state->config.add_header_tail) {
    // The header function marks the run's start on the platform (and warms
    // the route); it carries no files and no work.
    send_marker(state, "header", [this, state] { start_run(state); });
  } else {
    start_run(state);
  }
  return RunHandle(state->result.run_id, state);
}

void WorkflowManager::send_marker(StatePtr state, const std::string& suffix,
                                  std::function<void()> next) {
  // The marker is posted to the same endpoint as the workflow's functions;
  // any non-empty level provides one (level 0 may legitimately be empty on
  // hand-built plans, which previously skipped the markers entirely).
  const ExecutionPlan& plan = state->plan;
  std::string_view endpoint;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    const auto range = plan.tasks_in_level(level);
    if (!range.empty()) {
      endpoint = plan.api_url(range.front());
      break;
    }
  }
  if (endpoint.empty()) {
    next();
    return;
  }
  wfbench::TaskParams params;
  params.name = state->result.workflow_name + "_" + suffix;
  params.percent_cpu = 0.1;
  params.cpu_work = 0.0;
  params.memory_bytes = 0;
  params.workdir = state->config.workdir;
  params.tenant = state->config.tenant;

  net::HttpRequest request;
  request.url = net::parse_url(endpoint);
  request.body = json::write_compact(wfbench::to_json(params));
  const sim::SimTime sent_at = sim_.now();
  router_.send(std::move(request), [state, suffix, name = params.name, sent_at,
                                    next = std::move(next)](const net::HttpResponse& response) {
    const sim::SimTime now =
        state->owner != nullptr ? state->owner->sim_.now() : sent_at;
    // Marker outcomes do not affect the run result, but the header's round
    // trip gates the first release — the profiler needs its timing to place
    // a fresh deployment's first cold start on the critical path.
    if (suffix == "header") {
      MarkerOutcome& header = state->result.header;
      header.sent = true;
      header.sent_seconds = sim::to_seconds(sent_at - state->started_at);
      header.finished_seconds = sim::to_seconds(now - state->started_at);
      header.queue_seconds = response.timing.queue_seconds;
      header.cold_start_seconds = response.timing.cold_start_seconds;
      header.transfer_seconds = response.timing.transfer_seconds;
      header.compute_seconds = response.timing.compute_seconds;
    }
    if (tracing(*state)) {
      state->trace->complete(state->trace_pid, state->run_lane, name, "marker", sent_at,
                             now);
    }
    next();
  });
}

void WorkflowManager::prime_gates(const StatePtr& state) {
  const ExecutionPlan& plan = state->plan;
  const std::size_t total = plan.task_count();
  state->levels.resize(plan.level_count());
  state->unfinished = total;
  state->gate_delay.assign(total, 0);
  state->released_at.assign(total, -1);
  state->dispatched_at.assign(total, -1);
  state->failed.assign(total, 0);
  state->gated_by.assign(total, -1);
  state->task_lane.assign(total, 0);
  state->barrier_next.assign(plan.level_count(), {});

  if (state->config.scheduling == SchedulingMode::kDependencyDriven) {
    const auto indegrees = plan.indegrees();
    state->pending.assign(indegrees.begin(), indegrees.end());
    for (sim::SimTime& delay : state->gate_delay) delay = state->config.dispatch_delay;
    return;
  }

  // Phase barrier: a level's gates (one pending unit per task) open when the
  // nearest previous non-empty level completes; consecutive empty levels
  // each contribute one phase_delay, matching the prototype's lockstep loop.
  state->pending.assign(total, 0);
  std::size_t previous = std::numeric_limits<std::size_t>::max();  // none yet
  std::size_t empties = 0;
  for (std::size_t level = 0; level < plan.level_count(); ++level) {
    const auto range = plan.tasks_in_level(level);
    if (range.empty()) {
      ++empties;
      continue;
    }
    if (previous == std::numeric_limits<std::size_t>::max()) {
      // First non-empty level: ready at start (delayed only by any empty
      // levels preceding it).
      for (const TaskId id : range) {
        state->gate_delay[id] = state->config.phase_delay * static_cast<sim::SimTime>(empties);
      }
    } else {
      state->barrier_next[previous] = {range.begin_id(), range.end_id()};
      for (const TaskId id : range) {
        state->pending[id] = 1;
        state->gate_delay[id] =
            state->config.phase_delay * static_cast<sim::SimTime>(1 + empties);
      }
    }
    previous = level;
    empties = 0;
  }
}

void WorkflowManager::drain_ready(const StatePtr& state) {
  // Reentrancy guard: a release may finish a task synchronously (fail-fast)
  // and enqueue more ready ids — those extend the queue the outermost frame
  // is already walking, so the nested call just returns.
  if (state->draining) return;
  state->draining = true;
  while (state->ready_head < state->ready_queue.size()) {
    const TaskId id = state->ready_queue[state->ready_head++];
    release_task(state, id, state->gate_delay[id]);
    if (state->delivered) break;
  }
  state->ready_queue.clear();
  state->ready_head = 0;
  state->draining = false;
}

void WorkflowManager::start_run(StatePtr state) {
  if (state->delivered) return;
  prime_gates(state);
  if (state->unfinished == 0) {
    finish_run(state);
    return;
  }
  // Release the initial ready set (tasks whose gate is already open).
  for (TaskId id = 0; id < state->pending.size(); ++id) {
    if (state->pending[id] == 0) state->ready_queue.push_back(id);
  }
  drain_ready(state);
}

void WorkflowManager::release_task(StatePtr state, TaskId task_id, sim::SimTime delay) {
  state->released_at[task_id] = sim_.now();
  auto dispatch = [this, state, task_id] {
    dispatch_task(state, task_id, state->config.max_input_polls);
  };
  if (delay <= 0) {
    dispatch();
  } else {
    if (tracing(*state)) {
      // The gate is open but dispatch waits out the configured delay — the
      // "queued" segment of the task's attempt timeline.
      state->trace->complete(state->trace_pid, task_lane(*state, task_id),
                             std::string(state->plan.name(task_id)), "queued", sim_.now(),
                             sim_.now() + delay);
    }
    sim_.schedule_in(delay, std::move(dispatch));
  }
}

void WorkflowManager::dispatch_task(StatePtr state, TaskId task_id, int polls_left) {
  if (state->delivered) return;
  const ExecutionPlan& plan = state->plan;
  const std::size_t level = plan.level_of(task_id);
  auto& stats = state->levels[level];
  if (stats.first_dispatch < 0) stats.first_dispatch = sim_.now();
  if (state->dispatched_at[task_id] < 0) state->dispatched_at[task_id] = sim_.now();
  if (state->config.check_inputs) {
    bool all_present = true;
    const std::size_t inputs = plan.input_count(task_id);
    for (std::size_t i = 0; i < inputs; ++i) {
      if (!fs_.exists(std::string(plan.input_name(task_id, i)))) {
        all_present = false;
        break;
      }
    }
    if (!all_present) {
      // A failed parent never writes its outputs — polling for them is a
      // misleading way to spend max_input_polls x input_poll_interval.
      // (Checked every poll round, so a parent failing mid-wait is caught.)
      if (state->config.fail_fast_on_upstream_failure) {
        for (const TaskId parent : plan.parents(task_id)) {
          if (state->failed[parent] == 0) continue;
          ++state->result.upstream_failures;
          TaskOutcome outcome;
          outcome.name = std::string(plan.name(task_id));
          outcome.ok = false;
          outcome.phase = level;
          outcome.started_seconds =
              sim::to_seconds(state->dispatched_at[task_id] - state->started_at);
          outcome.input_wait_seconds =
              sim::to_seconds(sim_.now() - state->dispatched_at[task_id]);
          outcome.wall_seconds = outcome.input_wait_seconds;
          outcome.error = support::format("upstream task {} failed; inputs will never appear",
                                          plan.name(parent));
          task_finished(state, task_id, outcome);
          return;
        }
      }
      if (polls_left <= 0) {
        ++state->result.input_wait_timeouts;
        TaskOutcome outcome;
        outcome.name = std::string(plan.name(task_id));
        outcome.ok = false;
        outcome.phase = level;
        outcome.started_seconds =
            sim::to_seconds(state->dispatched_at[task_id] - state->started_at);
        outcome.input_wait_seconds =
            sim::to_seconds(sim_.now() - state->dispatched_at[task_id]);
        outcome.wall_seconds = outcome.input_wait_seconds;
        outcome.error = "input files never appeared on the shared drive";
        task_finished(state, task_id, outcome);
        return;
      }
      sim_.schedule_in(state->config.input_poll_interval,
                       [this, state, task_id, polls_left] {
                         dispatch_task(state, task_id, polls_left - 1);
                       });
      return;
    }
  }
  if (tracing(*state) && sim_.now() > state->dispatched_at[task_id]) {
    state->trace->complete(state->trace_pid, task_lane(*state, task_id),
                           std::string(plan.name(task_id)), "input-wait",
                           state->dispatched_at[task_id], sim_.now());
  }
  send_request(state, task_id, state->config.task_retries, AttemptContext{});
}

void WorkflowManager::send_request(StatePtr state, TaskId task_id, int retries_left,
                                   AttemptContext context) {
  const ExecutionPlan& plan = state->plan;
  net::HttpRequest request;
  request.url = net::parse_url(plan.api_url(task_id));
  if (state->config.tenant.empty()) {
    request.body = json::write_compact(wfbench::to_json(plan.task_params(task_id)));
  } else {
    // Stamp the run's tenant without mutating the (shared) plan.
    wfbench::TaskParams params = plan.task_params(task_id);
    params.tenant = state->config.tenant;
    request.body = json::write_compact(wfbench::to_json(params));
  }
  const sim::SimTime sent_at = sim_.now();
  // Attempt accounting spans retries: started_seconds/wall_seconds on the
  // final outcome cover every attempt plus the backoff time between them,
  // not just the last round-trip.
  if (context.first_sent_at < 0) context.first_sent_at = sent_at;
  ++context.attempts;
  if (attempts_metric_ != nullptr) attempts_metric_->inc();
  router_.send(std::move(request),
               [this, state, task_id, retries_left, name = std::string(plan.name(task_id)),
                level = static_cast<std::size_t>(plan.level_of(task_id)), sent_at,
                context](const net::HttpResponse& response) {
    if (state->delivered) return;
    if (tracing(*state)) {
      json::Object args;
      args.set("attempt", context.attempts);
      args.set("status", response.status);
      state->trace->complete(state->trace_pid, task_lane(*state, task_id), name,
                             "attempt", sent_at, sim_.now(), std::move(args));
    }
    if (!response.ok() && retries_left > 0) {
      // Transient fault (pod killed mid-request, 503 during scale-down):
      // re-invoke after a backoff — the function is idempotent, it just
      // rewrites its outputs. A platform Retry-After hint overrides the
      // configured backoff.
      ++state->result.task_retries;
      if (retries_metric_ != nullptr) retries_metric_->inc();
      const sim::SimTime backoff =
          response.retry_after_ms > 0
              ? static_cast<sim::SimTime>(response.retry_after_ms) * sim::kMillisecond
              : state->config.retry_backoff;
      WFS_LOG_DEBUG("wfm", "retrying {} ({} attempts left) after status {}", name,
                    retries_left, response.status);
      if (tracing(*state)) {
        state->trace->complete(state->trace_pid, task_lane(*state, task_id), name,
                               "retry-backoff", sim_.now(), sim_.now() + backoff);
      }
      AttemptContext next = context;
      next.retry_wait_seconds += sim::to_seconds(backoff);
      next.timing += response.timing;
      sim_.schedule_in(backoff, [this, state, task_id, retries_left, next] {
        if (state->delivered) return;
        send_request(state, task_id, retries_left - 1, next);
      });
      return;
    }
    TaskOutcome outcome;
    outcome.name = name;
    outcome.http_status = response.status;
    outcome.ok = response.ok();
    outcome.phase = level;
    outcome.attempts = context.attempts;
    outcome.retry_wait_seconds = context.retry_wait_seconds;
    outcome.input_wait_seconds =
        sim::to_seconds(context.first_sent_at - state->dispatched_at[task_id]);
    outcome.started_seconds = sim::to_seconds(context.first_sent_at - state->started_at);
    outcome.wall_seconds = sim::to_seconds(sim_.now() - context.first_sent_at);
    net::ServerTiming timing = context.timing;
    timing += response.timing;
    outcome.queue_seconds = timing.queue_seconds;
    outcome.cold_start_seconds = timing.cold_start_seconds;
    outcome.transfer_seconds = timing.transfer_seconds;
    outcome.compute_seconds = timing.compute_seconds;
    if (outcome.ok) {
      // Extract the service-reported runtime when the body parses.
      json::Value body;
      std::string error;
      if (json::try_parse(response.body, body, error)) {
        if (const json::Value* runtime = body.find("runtimeInSeconds")) {
          outcome.runtime_seconds = runtime->double_or(0.0);
        }
      }
    } else {
      outcome.error = response.body;
    }
    task_finished(state, task_id, outcome);
  });
}

void WorkflowManager::task_finished(StatePtr state, TaskId task_id, TaskOutcome outcome) {
  if (state->delivered) return;
  const ExecutionPlan& plan = state->plan;
  const std::size_t level = plan.level_of(task_id);
  auto& stats = state->levels[level];
  // Profiler timeline, filled centrally so every outcome path (success,
  // retry exhaustion, fail-fast, input-wait timeout) carries it.
  outcome.task_id = static_cast<std::int64_t>(task_id);
  outcome.gated_by = state->gated_by[task_id];
  outcome.released_seconds = sim::to_seconds(
      (state->released_at[task_id] >= 0 ? state->released_at[task_id] : state->started_at) -
      state->started_at);
  outcome.dispatched_seconds = sim::to_seconds(
      (state->dispatched_at[task_id] >= 0 ? state->dispatched_at[task_id] : state->started_at) -
      state->started_at);
  outcome.finished_seconds = sim::to_seconds(sim_.now() - state->started_at);
  if (!outcome.ok) {
    ++state->result.tasks_failed;
    ++stats.failed;
    state->failed[task_id] = 1;
    WFS_LOG_DEBUG("wfm", "task {} failed: {} ({})", outcome.name, outcome.http_status,
                  outcome.error);
  }
  state->result.input_wait_seconds += outcome.input_wait_seconds;
  state->result.retry_wait_seconds += outcome.retry_wait_seconds;
  if (input_wait_metric_ != nullptr && outcome.input_wait_seconds > 0.0) {
    input_wait_metric_->inc(outcome.input_wait_seconds);
  }
  if (tracing(*state)) {
    const obs::TraceRecorder::Tid lane = task_lane(*state, task_id);
    if (outcome.attempts == 0 && outcome.input_wait_seconds > 0.0) {
      // Never sent: the whole timeline was input polling (timeout or
      // upstream failure) — the success path emits this span at send time.
      state->trace->complete(state->trace_pid, lane, outcome.name, "input-wait",
                             state->dispatched_at[task_id], sim_.now());
    }
    json::Object args;
    args.set("ok", outcome.ok);
    args.set("attempts", outcome.attempts);
    args.set("status", outcome.http_status);
    if (!outcome.error.empty()) args.set("error", outcome.error);
    state->trace->instant(state->trace_pid, lane, outcome.name, "done", sim_.now(),
                          std::move(args));
  }
  state->result.tasks.push_back(outcome);
  ++stats.finished;
  stats.last_finish = std::max(stats.last_finish, sim_.now());
  --state->unfinished;

  // Collect the newly-ready ids this completion unlocks. One batch serves
  // both modes; only the edge set differs: the CSR children span versus the
  // complete bipartite level barrier.
  // The unlocker is, by construction, the last completion the gate waited
  // on: the final parent (dependency edge) or the barrier level's slowest
  // task (resource-wait edge) — exactly the observed critical-path edge.
  if (state->config.scheduling == SchedulingMode::kDependencyDriven) {
    for (const TaskId child : plan.children(task_id)) {
      if (--state->pending[child] == 0) {
        state->gated_by[child] = static_cast<std::int64_t>(task_id);
        state->ready_queue.push_back(child);
      }
    }
  } else if (stats.finished == plan.level_size(level)) {
    const auto& next = state->barrier_next[level];
    for (TaskId id = next.begin; id < next.end; ++id) {
      if (--state->pending[id] == 0) {
        state->gated_by[id] = static_cast<std::int64_t>(task_id);
        state->ready_queue.push_back(id);
      }
    }
  }
  drain_ready(state);

  if (state->unfinished == 0) finish_run(state);
}

namespace {

/// Lowers the run's TaskOutcomes into the profiler's input rows.
std::vector<obs::TaskTiming> profile_timings(const WorkflowRunResult& result) {
  std::vector<obs::TaskTiming> timings;
  timings.reserve(result.tasks.size());
  for (const TaskOutcome& outcome : result.tasks) {
    obs::TaskTiming timing;
    timing.name = outcome.name;
    timing.task_id = outcome.task_id;
    timing.gated_by = outcome.gated_by;
    timing.released = outcome.released_seconds;
    timing.dispatched = outcome.dispatched_seconds;
    timing.first_sent = outcome.started_seconds;
    timing.finished = outcome.finished_seconds;
    timing.queue_seconds = outcome.queue_seconds;
    timing.cold_start_seconds = outcome.cold_start_seconds;
    timing.transfer_seconds = outcome.transfer_seconds;
    timing.compute_seconds = outcome.compute_seconds;
    timing.retry_wait_seconds = outcome.retry_wait_seconds;
    timing.attempts = outcome.attempts;
    timing.ok = outcome.ok;
    timings.push_back(std::move(timing));
  }
  // The header marker gates every initially-ready task: no release happens
  // until its response returns, so on a fresh deployment its round trip is
  // the first cold start. Surface it as the path's leading node and re-gate
  // the roots on it; otherwise that time shows up as head-gap overhead.
  if (result.header.sent &&
      result.header.finished_seconds >= result.header.sent_seconds) {
    std::int64_t header_id = 0;
    for (const TaskOutcome& outcome : result.tasks) {
      header_id = std::max(header_id, outcome.task_id + 1);
    }
    for (obs::TaskTiming& timing : timings) {
      if (timing.gated_by < 0) timing.gated_by = header_id;
    }
    obs::TaskTiming timing;
    timing.name = result.workflow_name + "_header";
    timing.task_id = header_id;
    timing.gated_by = -1;
    timing.released = result.header.sent_seconds;
    timing.dispatched = result.header.sent_seconds;
    timing.first_sent = result.header.sent_seconds;
    timing.finished = result.header.finished_seconds;
    timing.queue_seconds = result.header.queue_seconds;
    timing.cold_start_seconds = result.header.cold_start_seconds;
    timing.transfer_seconds = result.header.transfer_seconds;
    timing.compute_seconds = result.header.compute_seconds;
    timing.attempts = 1;
    timing.ok = true;
    timings.push_back(std::move(timing));
  }
  return timings;
}

}  // namespace

void WorkflowManager::finish_run(StatePtr state) {
  auto complete = [this, state] {
    if (state->delivered) return;
    state->result.completed = true;
    record_level_outcomes(state);
    state->result.makespan_seconds = sim::to_seconds(sim_.now() - state->started_at);
    state->result.profile = obs::build_profile(profile_timings(state->result),
                                               state->result.makespan_seconds);
    state->result.profile.static_cp_seconds = static_critical_path_seconds(state->plan);
    if (tracing(*state)) {
      // Highlighted critical-path lane: one span per path node, labelled by
      // its dominant segment, so the bottleneck chain pops out of the trace.
      const obs::TraceRecorder::Tid cp_lane = state->trace->lane(state->trace_pid,
                                                                 "critical-path");
      for (const obs::CriticalPathNode& node : state->result.profile.path) {
        json::Object args;
        args.set("dominant", obs::to_string(node.dominant()));
        for (std::size_t i = 0; i < obs::kSegmentCount; ++i) {
          args.set(obs::to_string(static_cast<obs::Segment>(i)), node.segments.seconds[i]);
        }
        state->trace->complete(state->trace_pid, cp_lane, node.name, "critical-path",
                               state->started_at + sim::from_seconds(node.start_seconds),
                               state->started_at + sim::from_seconds(node.end_seconds),
                               std::move(args));
      }
    }
    if (tracing(*state)) {
      json::Object args;
      args.set("tasks_total", state->result.tasks_total);
      args.set("tasks_failed", state->result.tasks_failed);
      args.set("task_retries", state->result.task_retries);
      state->trace->complete(state->trace_pid, state->run_lane,
                             state->result.workflow_name, "run", state->started_at,
                             sim_.now(), std::move(args));
    }
    WFS_LOG_INFO("wfm", "run {}: {} finished in {:.1f}s ({} failed of {})",
                 state->result.run_id, state->result.workflow_name,
                 state->result.makespan_seconds, state->result.tasks_failed,
                 state->result.tasks_total);
    deliver(state);
  };
  if (state->config.add_header_tail) {
    send_marker(state, "tail", complete);
  } else {
    complete();
  }
}

void WorkflowManager::record_level_outcomes(const StatePtr& state) {
  state->result.phases.clear();
  state->result.phases.reserve(state->levels.size());
  for (std::size_t level = 0; level < state->levels.size(); ++level) {
    const auto& stats = state->levels[level];
    const double wall = stats.first_dispatch >= 0
                            ? sim::to_seconds(std::max<sim::SimTime>(
                                  stats.last_finish - stats.first_dispatch, 0))
                            : 0.0;
    state->result.phases.push_back(
        PhaseOutcome{level, state->plan.level_size(level), stats.failed, wall});
  }
}

void WorkflowManager::cancel_run(const StatePtr& state) {
  state->cancelled = true;
  state->result.cancelled = true;
  state->result.completed = false;
  record_level_outcomes(state);
  state->result.makespan_seconds = sim::to_seconds(sim_.now() - state->started_at);
  if (tracing(*state)) {
    json::Object args;
    args.set("cancelled", true);
    state->trace->complete(state->trace_pid, state->run_lane, state->result.workflow_name,
                           "run", state->started_at, sim_.now(), std::move(args));
  }
  WFS_LOG_INFO("wfm", "run {}: {} cancelled after {:.1f}s ({} of {} tasks done)",
               state->result.run_id, state->result.workflow_name,
               state->result.makespan_seconds, state->result.tasks.size(),
               state->result.tasks_total);
  deliver(state);
}

void WorkflowManager::deliver(const StatePtr& state) {
  if (state->delivered) return;
  state->delivered = true;
  runs_.erase(state->result.run_id);
  if (state->on_complete) state->on_complete(std::move(state->result));
}

}  // namespace wfs::core
